#!/usr/bin/env python
"""Gate a ``mpros bench`` result against the committed ratio baseline.

Usage::

    python scripts/check_bench_regression.py BENCH.json benchmarks/baseline.json

Only *ratios* are gated (batched vs legacy from the same run on the same
machine), never absolute throughput — CI runners vary wildly in speed
but a within-run ratio is machine-independent.  A measured ratio may
fall at most 20% below its baseline value before the gate fails.

A ratio measured by the benchmark but absent from the baseline is *not*
a regression — it is a new stage awaiting a baseline entry; the gate
warns (naming the key) and stays green.  A baseline entry missing from
the result is a failure: a gated stage silently disappearing from the
bench is exactly what the gate exists to catch — unless the baseline
lists the name under ``"optional"``, which marks stages newer than some
result documents still in circulation (the gate warns instead, so a
pre-PR bench result stays checkable against the current baseline).
"""

from __future__ import annotations

import json
import sys

TOLERANCE = 0.8  # measured >= baseline * TOLERANCE


class GateReport:
    """The outcome of evaluating measured ratios against floors."""

    __slots__ = ("lines", "warnings", "failures")

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.warnings: list[str] = []
        self.failures: list[str] = []

    @property
    def passed(self) -> bool:
        return not self.failures


def _base_name(name: str) -> str:
    """Strip stage metadata: ``shard_ingest_speedup@shards=4`` gates
    against its own baseline key if present, else against the
    ``shard_ingest_speedup`` base entry."""
    return name.split("@", 1)[0]


def evaluate(
    ratios: dict[str, float],
    floors: dict[str, float],
    tolerance: float = TOLERANCE,
    optional: tuple[str, ...] = (),
) -> GateReport:
    """Pure gate logic: compare measured ``ratios`` to baseline ``floors``.

    Per gated name the effective floor is ``baseline * tolerance``.
    Ungated measured ratios produce warnings; gated-but-unmeasured
    ratios produce failures — except names listed in ``optional``,
    which only warn when missing (for result documents predating the
    stage, or per-shard-count ratios a small CI host cannot emit).

    A measured name carrying stage metadata (``name@key=value``) gates
    against the exactly matching baseline entry when one exists, and
    otherwise falls back to the metadata-free base name — a per-shard-
    count measurement is compared, never warned-and-skipped, as long as
    the baseline knows the stage at all.
    """
    report = GateReport()
    # Measured name -> (floor, the baseline key that supplied it).
    matched: dict[str, tuple[float, str]] = {}
    for name in ratios:
        if name in floors:
            matched[name] = (floors[name], name)
        else:
            base = _base_name(name)
            if base != name and base in floors:
                matched[name] = (floors[base], base)
    for name in sorted(set(ratios) - set(matched)):
        report.warnings.append(
            f"stage {name!r} has no baseline entry; "
            f"skipping (add it to gate this stage)"
        )
    for name in sorted(matched):
        measured = ratios[name]
        floor, source = matched[name]
        limit = floor * tolerance
        verdict = "ok" if measured >= limit else "REGRESSION"
        via = "" if source == name else f"  (baseline key {source!r})"
        report.lines.append(
            f"{name:24s} measured {measured:7.3f}  baseline {floor:6.3f}"
            f"  floor {limit:6.3f}  {verdict}{via}"
        )
        if measured < limit:
            report.failures.append(
                f"{name}: {measured:.3f} < {limit:.3f} "
                f"(baseline {floor:.3f} * {tolerance})"
            )
    covered = set(ratios) | {source for _, source in matched.values()}
    for name in floors:
        if name in covered:
            continue
        if name in optional:
            report.warnings.append(
                f"optional stage {name!r} missing from bench result; "
                f"skipping (result predates the stage?)"
            )
        else:
            report.failures.append(f"{name}: missing from bench result")
    return report


def check(result_path: str, baseline_path: str) -> int:
    with open(result_path, encoding="utf-8") as fp:
        result = json.load(fp)
    with open(baseline_path, encoding="utf-8") as fp:
        baseline = json.load(fp)

    report = evaluate(
        result.get("ratios", {}),
        baseline.get("ratios", {}),
        optional=tuple(baseline.get("optional", [])),
    )
    for warning in report.warnings:
        print(f"warning: {warning}")
    for line in report.lines:
        print(line)
    if not report.passed:
        print("\nbenchmark regression gate FAILED:")
        for failure in report.failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        raise SystemExit(2)
    raise SystemExit(check(sys.argv[1], sys.argv[2]))
