#!/usr/bin/env python
"""Gate a ``mpros bench`` result against the committed ratio baseline.

Usage::

    python scripts/check_bench_regression.py BENCH.json benchmarks/baseline.json

Only *ratios* are gated (batched vs legacy from the same run on the same
machine), never absolute throughput — CI runners vary wildly in speed
but a within-run ratio is machine-independent.  A measured ratio may
fall at most 20% below its baseline value before the gate fails.
"""

from __future__ import annotations

import json
import sys

TOLERANCE = 0.8  # measured >= baseline * TOLERANCE


def check(result_path: str, baseline_path: str) -> int:
    with open(result_path, encoding="utf-8") as fp:
        result = json.load(fp)
    with open(baseline_path, encoding="utf-8") as fp:
        baseline = json.load(fp)

    ratios = result.get("ratios", {})
    floors = baseline.get("ratios", {})
    failures = []
    # A stage measured by the benchmark but absent from the committed
    # baseline is not a regression — it is a new stage awaiting a
    # baseline entry.  Warn (naming the key) and keep the gate green.
    for name in sorted(set(ratios) - set(floors)):
        print(f"warning: stage {name!r} has no baseline entry in "
              f"{baseline_path}; skipping (add it to gate this stage)")
    for name, floor in floors.items():
        measured = ratios.get(name)
        if measured is None:
            failures.append(f"{name}: missing from {result_path}")
            continue
        limit = floor * TOLERANCE
        verdict = "ok" if measured >= limit else "REGRESSION"
        print(f"{name:24s} measured {measured:7.3f}  baseline {floor:6.3f}"
              f"  floor {limit:6.3f}  {verdict}")
        if measured < limit:
            failures.append(
                f"{name}: {measured:.3f} < {limit:.3f} (baseline {floor:.3f} * {TOLERANCE})"
            )
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        raise SystemExit(2)
    raise SystemExit(check(sys.argv[1], sys.argv[2]))
