import pytest

from repro.cli import build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "mc:motor-imbalance" in out
    assert "[FMEA, vibration]" in out
    assert "mc:refrigerant-leak" in out


def test_fleet_accounting(capsys):
    assert main(["fleet", "--ships", "10", "--dcs", "50"]) == 0
    out = capsys.readouterr().out
    assert "per DC:" in out and "fleet:" in out


def test_ema_detects(capsys):
    assert main(["ema", "--stiction-rate", "0.08", "--cycles", "4000"]) == 0
    out = capsys.readouterr().out
    assert "stiction flagged" in out


def test_ema_healthy_reports_nothing(capsys):
    assert main(["ema", "--stiction-rate", "0.0", "--cycles", "300"]) == 0
    out = capsys.readouterr().out
    assert "no stiction detected" in out


def test_demo_runs_scenario(capsys):
    assert main(["demo", "--hours", "1", "--chillers", "1",
                 "--fault", "mc:motor-imbalance"]) == 0
    out = capsys.readouterr().out
    assert "MPROS Browser" in out
    assert "prioritized maintenance list" in out
    assert "reports received:" in out


def test_demo_unknown_fault_errors(capsys):
    assert main(["demo", "--fault", "mc:warp-core-breach"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_campaign_summary(capsys):
    assert main(["campaign", "--duration", "600", "--scan", "300"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "(healthy control)" in out


def test_metrics_snapshot_covers_subsystems(capsys, tmp_path):
    jsonl = tmp_path / "metrics.jsonl"
    assert main(["metrics", "--hours", "1", "--chillers", "1",
                 "--jsonl", str(jsonl)]) == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    # Acceptance: counters/histograms from >= 5 instrumented subsystems
    # after a scripted DC->PDME run.
    assert len(doc["subsystems"]) >= 5
    for prefix in ("dc.uplink", "netsim.rpc", "hpc.pipeline", "fusion", "pdme"):
        assert prefix in doc["subsystems"]
    assert doc["counters"]["fusion.ingested"] > 0
    assert any(k.startswith("netsim.link.delay_seconds")
               for k in doc["histograms"])
    lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert any(l["type"] == "span" for l in lines)
    assert any(l["type"] == "histogram" for l in lines)


def test_metrics_unknown_fault_errors(capsys):
    assert main(["metrics", "--fault", "mc:warp-core-breach"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- mpros verify ------------------------------------------------------------

def test_verify_all_machines_passes(capsys):
    assert main(["verify", "--all-machines"]) == 0
    out = capsys.readouterr().out
    assert "deployment 'ema'" in out
    assert "deployment 'dc-default'" in out
    assert "0 error(s), 0 warning(s)" in out


def test_verify_lint_src_repro_passes(capsys):
    assert main(["verify", "--lint", "src/repro"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_machine_file_flags_defects(capsys, tmp_path):
    from repro.sbfr import MachineSpec, State, Transition, cmp, encode_machine
    from repro.sbfr.spec import Input

    bad = MachineSpec(
        "bad", (State("w"), State("x")),
        (Transition(0, 1, cmp(Input(9), ">", 0.5)),),
    )
    path = tmp_path / "bad.sbfr"
    path.write_bytes(encode_machine(bad))
    assert main(["verify", "--machine", str(path), "--channels", "2"]) == 1
    out = capsys.readouterr().out
    assert "sbfr.channel-range" in out
    assert "channel 9" in out


def test_verify_machine_file_clean_exits_zero(capsys, tmp_path):
    from repro.sbfr import build_spike_machine, encode_machine

    path = tmp_path / "spike.sbfr"
    path.write_bytes(encode_machine(build_spike_machine(0)))
    assert main(["verify", "--machine", str(path),
                 "--channels", "1", "--peers", "1"]) == 0


def test_verify_strict_promotes_warnings(capsys, tmp_path):
    # A machine with a warning-only finding (shadowed transition).
    from repro.sbfr import MachineSpec, State, Transition, cmp, encode_machine
    from repro.sbfr.spec import Always, Input

    warn_only = MachineSpec(
        "warny", (State("a"), State("b")),
        (Transition(0, 1, Always()),
         Transition(0, 1, cmp(Input(0), ">", 0.5)),
         Transition(1, 0, Always())),
    )
    path = tmp_path / "warny.sbfr"
    path.write_bytes(encode_machine(warn_only))
    args = ["verify", "--machine", str(path), "--channels", "1", "--peers", "1"]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--strict"]) == 1
    assert "sbfr.shadowed-transition" in capsys.readouterr().out


def test_verify_without_targets_is_usage_error(capsys):
    assert main(["verify"]) == 2
    assert "nothing to verify" in capsys.readouterr().err


def test_verify_missing_machine_file_errors(capsys):
    assert main(["verify", "--machine", "/no/such/file.sbfr"]) == 2
    assert "cannot read" in capsys.readouterr().err


# -- mpros score -------------------------------------------------------------

def test_score_single_scenario_quick(capsys, tmp_path):
    jsonl = tmp_path / "cards.jsonl"
    md = tmp_path / "cards.md"
    assert main(["score", "--scenario", "turbine", "--quick",
                 "--jsonl", str(jsonl), "--markdown", str(md)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("turbine-quick:")
    assert "detection" in out
    import json

    lines = jsonl.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1
    doc = json.loads(lines[0])
    assert doc["scenario"] == "turbine-quick"
    assert doc["detection_rate"] == 1.0
    report = md.read_text(encoding="utf-8")
    assert "## Prognostic scorecards" in report
    assert "mc:compressor-fouling" in report


def test_score_all_scenarios_quick(capsys):
    assert main(["score", "--all-scenarios", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "chiller-quick:" in out
    assert "turbine-quick:" in out


def test_score_unknown_scenario_errors(capsys):
    assert main(["score", "--scenario", "windmill", "--quick"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_score_without_targets_is_usage_error(capsys):
    assert main(["score"]) == 2
    assert "nothing to score" in capsys.readouterr().err


# -- turbine domain through chaos/verify ------------------------------------

def test_chaos_turbine_scenario_passes(capsys):
    assert main(["chaos", "--scenario", "turbine", "--seed", "11"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_chaos_unknown_scenario_errors(capsys):
    assert main(["chaos", "--scenario", "hurricane"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_verify_covers_turbine_deployment(capsys):
    assert main(["verify", "--all-machines"]) == 0
    out = capsys.readouterr().out
    assert "deployment 'dc-turbine'" in out
    assert "FAIL" not in out
