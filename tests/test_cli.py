import pytest

from repro.cli import build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "mc:motor-imbalance" in out
    assert "[FMEA, vibration]" in out
    assert "mc:refrigerant-leak" in out


def test_fleet_accounting(capsys):
    assert main(["fleet", "--ships", "10", "--dcs", "50"]) == 0
    out = capsys.readouterr().out
    assert "per DC:" in out and "fleet:" in out


def test_ema_detects(capsys):
    assert main(["ema", "--stiction-rate", "0.08", "--cycles", "4000"]) == 0
    out = capsys.readouterr().out
    assert "stiction flagged" in out


def test_ema_healthy_reports_nothing(capsys):
    assert main(["ema", "--stiction-rate", "0.0", "--cycles", "300"]) == 0
    out = capsys.readouterr().out
    assert "no stiction detected" in out


def test_demo_runs_scenario(capsys):
    assert main(["demo", "--hours", "1", "--chillers", "1",
                 "--fault", "mc:motor-imbalance"]) == 0
    out = capsys.readouterr().out
    assert "MPROS Browser" in out
    assert "prioritized maintenance list" in out
    assert "reports received:" in out


def test_demo_unknown_fault_errors(capsys):
    assert main(["demo", "--fault", "mc:warp-core-breach"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_campaign_summary(capsys):
    assert main(["campaign", "--duration", "600", "--scan", "300"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "(healthy control)" in out


def test_metrics_snapshot_covers_subsystems(capsys, tmp_path):
    jsonl = tmp_path / "metrics.jsonl"
    assert main(["metrics", "--hours", "1", "--chillers", "1",
                 "--jsonl", str(jsonl)]) == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    # Acceptance: counters/histograms from >= 5 instrumented subsystems
    # after a scripted DC->PDME run.
    assert len(doc["subsystems"]) >= 5
    for prefix in ("dc.uplink", "netsim.rpc", "hpc.pipeline", "fusion", "pdme"):
        assert prefix in doc["subsystems"]
    assert doc["counters"]["fusion.ingested"] > 0
    assert any(k.startswith("netsim.link.delay_seconds")
               for k in doc["histograms"])
    lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert any(l["type"] == "span" for l in lines)
    assert any(l["type"] == "histogram" for l in lines)


def test_metrics_unknown_fault_errors(capsys):
    assert main(["metrics", "--fault", "mc:warp-core-breach"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
