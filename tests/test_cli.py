import pytest

from repro.cli import build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "mc:motor-imbalance" in out
    assert "[FMEA, vibration]" in out
    assert "mc:refrigerant-leak" in out


def test_fleet_accounting(capsys):
    assert main(["fleet", "--ships", "10", "--dcs", "50"]) == 0
    out = capsys.readouterr().out
    assert "per DC:" in out and "fleet:" in out


def test_ema_detects(capsys):
    assert main(["ema", "--stiction-rate", "0.08", "--cycles", "4000"]) == 0
    out = capsys.readouterr().out
    assert "stiction flagged" in out


def test_ema_healthy_reports_nothing(capsys):
    assert main(["ema", "--stiction-rate", "0.0", "--cycles", "300"]) == 0
    out = capsys.readouterr().out
    assert "no stiction detected" in out


def test_demo_runs_scenario(capsys):
    assert main(["demo", "--hours", "1", "--chillers", "1",
                 "--fault", "mc:motor-imbalance"]) == 0
    out = capsys.readouterr().out
    assert "MPROS Browser" in out
    assert "prioritized maintenance list" in out
    assert "reports received:" in out


def test_demo_unknown_fault_errors(capsys):
    assert main(["demo", "--fault", "mc:warp-core-breach"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_campaign_summary(capsys):
    assert main(["campaign", "--duration", "600", "--scan", "300"]) == 0
    out = capsys.readouterr().out
    assert "detected" in out
    assert "(healthy control)" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
