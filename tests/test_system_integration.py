"""End-to-end integration: the Figure-1 pipeline on one kernel."""

import numpy as np
import pytest

from repro import build_mpros_system
from repro.common.errors import MprosError
from repro.netsim.network import LinkConfig
from repro.plant import FaultKind
from repro.plant.faults import seeded


def test_build_validates():
    with pytest.raises(MprosError):
        build_mpros_system(n_chillers=0)


def test_healthy_system_stays_quiet():
    system = build_mpros_system(n_chillers=1, seed=1)
    system.run(hours=0.5)
    assert system.reports_received() == 0
    assert system.priority_screen().count("no suspect components") == 1


def test_fault_flows_dc_to_pdme_to_browser():
    system = build_mpros_system(n_chillers=2, seed=0)
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
    system.run(hours=1.0)

    # Reports crossed the network and landed in the OOSM.
    assert system.reports_received() > 0
    reports = system.model.reports_for(motor)
    assert any(r.machine_condition_id == "mc:motor-imbalance" for r in reports)
    assert all(r.dc_id == "dc:0" for r in reports)

    # Knowledge fusion produced a suspect and a priority entry.
    suspects = system.pdme.engine.suspects(threshold=0.5)
    assert any(c == "mc:motor-imbalance" and o == motor for o, c, _ in suspects)
    priorities = system.pdme.priorities(now=system.kernel.now())
    assert priorities[0].machine_condition_id == "mc:motor-imbalance"

    # The browser screen shows both halves of Fig. 2.
    screen = system.browser_screen(motor)
    assert "mc:motor-imbalance" in screen
    assert "Fused failure predictions" in screen

    # The healthy second chiller accumulated nothing.
    other = system.units[1].motor
    assert system.model.reports_for(other) == []


def test_process_fault_detected_by_nonvibration_suites():
    system = build_mpros_system(n_chillers=1, seed=2)
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.REFRIGERANT_LEAK, onset=600.0, severity=0.9))
    system.run(hours=1.5)
    conditions = {r.machine_condition_id for r in system.model.reports_for(motor)}
    assert "mc:refrigerant-leak" in conditions
    sources = {r.knowledge_source_id for r in system.model.reports_for(motor)}
    assert sources & {"ks:fuzzy", "ks:sbfr"}


def test_multiple_sources_reinforce_through_fusion():
    system = build_mpros_system(n_chillers=1, seed=3)
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.REFRIGERANT_LEAK, onset=0.0, severity=0.95))
    system.run(hours=2.0)
    reports = system.model.reports_for(motor)
    sources = {r.knowledge_source_id for r in reports
               if r.machine_condition_id == "mc:refrigerant-leak"}
    assert len(sources) >= 2  # fuzzy and SBFR both called it
    state = system.pdme.engine.diagnostic.state(motor, "refrigeration")
    single = max(r.belief for r in reports
                 if r.machine_condition_id == "mc:refrigerant-leak")
    # Reinforcement: fused belief at least matches the strongest single
    # source and is essentially certain after repeated agreement.
    assert state.beliefs["mc:refrigerant-leak"] >= single
    assert state.beliefs["mc:refrigerant-leak"] > 0.95


def test_lossy_link_still_converges():
    system = build_mpros_system(
        n_chillers=1, seed=4, link=LinkConfig(latency=0.01, drop_rate=0.3)
    )
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
    system.run(hours=1.0)
    assert system.reports_received() > 0


def test_determinism_across_identical_builds():
    a = build_mpros_system(n_chillers=1, seed=7)
    b = build_mpros_system(n_chillers=1, seed=7)
    for s in (a, b):
        s.inject_fault(s.units[0].motor,
                       seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
        s.run(hours=1.0)
    assert a.reports_received() == b.reports_received()
    ra = [r.summary() for r in a.model.all_reports()]
    rb = [r.summary() for r in b.model.all_reports()]
    assert ra == rb


def test_network_outage_store_and_forward():
    """§4.9: a DC disconnected from the PDME holds its reports and
    delivers them after the link recovers."""
    system = build_mpros_system(n_chillers=1, seed=5)
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))

    system.set_network_outage(0, down=True)
    system.run(hours=1.0)
    assert system.reports_received() == 0           # nothing got through
    backlog_during = system.uplink_backlog()
    assert backlog_during > 0                        # but nothing was lost

    system.set_network_outage(0, down=False)
    system.run(hours=0.25)                           # scheduled flush runs
    assert system.uplink_backlog() == 0
    assert system.reports_received() >= backlog_during


def test_pdme_drops_duplicate_reports():
    system = build_mpros_system(
        n_chillers=1, seed=6, link=LinkConfig(latency=0.01, drop_rate=0.5)
    )
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
    system.run(hours=2.0)
    # Lossy acks force retransmissions; fused report count equals the
    # number of *distinct* reports, not transmissions.
    assert system.reports_received() > 0
    assert system.pdme.duplicates_dropped >= 0
    stats = system.network.stats()
    assert stats["dropped"] > 0


def test_emi_corrupted_link_never_corrupts_reports():
    """Bit flips on the ship's network are caught by the frame CRC:
    every report the PDME fuses is byte-identical to one a DC sent."""
    system = build_mpros_system(
        n_chillers=1, seed=8, link=LinkConfig(latency=0.01, corrupt_rate=0.3)
    )
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
    system.run(hours=1.5)
    assert system.network.stats()["corrupted"] > 0
    received = system.model.reports_for(motor)
    assert received
    # All fused reports are structurally sound and from the real DC.
    for r in received:
        assert r.dc_id == "dc:0"
        assert 0.0 <= r.belief <= 1.0
        assert r.machine_condition_id.startswith("mc:")
