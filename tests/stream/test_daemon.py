"""The always-on streaming loop: tick scheduling, the dual-signal
watchdog ladder, hysteresis backpressure, and bounded catch-up."""

import pytest

from repro.common.errors import MprosError
from repro.obs import MetricsRegistry
from repro.plant.faults import FaultKind, seeded
from repro.protocol import FailurePredictionReport
from repro.stream import (
    BackpressureController,
    CatchupController,
    DaemonConfig,
    StreamDaemon,
    Watchdog,
)
from repro.system import build_mpros_system


def make_system(seed=5, n_chillers=2, fault=False):
    system = build_mpros_system(
        n_chillers=n_chillers, seed=seed, metrics=MetricsRegistry()
    )
    if fault:
        system.inject_fault(
            system.units[0].motor,
            seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.8),
        )
    return system


def make_daemon(config=None, **kwargs):
    system = make_system(**kwargs)
    return system, StreamDaemon(system, config, metrics=system.metrics)


# -- configuration & validation ---------------------------------------------

def test_daemon_config_validation():
    with pytest.raises(MprosError):
        DaemonConfig(tick_interval=0.0)
    with pytest.raises(MprosError):
        DaemonConfig(advance_budget=0)
    with pytest.raises(MprosError):
        DaemonConfig(retry_slices=-1)


def test_controller_validation():
    system = make_system()
    with pytest.raises(MprosError):
        BackpressureController(system, high=0.2, low=0.5)     # inverted marks
    with pytest.raises(MprosError):
        BackpressureController(system, stretch=0.5)
    with pytest.raises(MprosError):
        CatchupController(system, threshold=-1)
    with pytest.raises(MprosError):
        CatchupController(system, chunk=0)
    with pytest.raises(MprosError):
        CatchupController(system, staleness_cutoff=0.0)
    with pytest.raises(MprosError):
        Watchdog(system, restart_cooldown_ticks=0)


def test_daemon_requires_a_monitored_system():
    system = make_system()
    system.monitor = None
    with pytest.raises(MprosError):
        StreamDaemon(system, metrics=MetricsRegistry())


def test_run_arguments_validated():
    system, daemon = make_daemon()
    with pytest.raises(MprosError):
        daemon.run(0)
    with pytest.raises(MprosError):
        daemon.run_for(0.0)


# -- steady state ------------------------------------------------------------

def test_steady_state_ticks_and_skips_empty_stages():
    system, daemon = make_daemon()
    report = daemon.run(30)
    assert report.ticks == 30
    assert report.sim_seconds == pytest.approx(30 * 60.0)
    assert report.stalled_ticks == 0
    # advance and sweep run every tick; a healthy quiet system never
    # pays for flush or catch-up machinery.
    assert report.stage_runs["advance"] == 30
    assert report.stage_runs["sweep"] == 30
    assert report.stage_runs["flush"] + report.stage_skips["flush"] == 30
    assert report.stage_skips["catchup"] == 30
    assert report.events_executed > 0
    assert report.all_alive
    assert report.max_recovery_seconds == 0.0
    assert report.watchdog.restarts == 0
    assert report.flap_counts == {}
    assert "daemon: 30 ticks" in report.summary()


def test_run_for_covers_the_window_in_whole_ticks():
    system, daemon = make_daemon()
    report = daemon.run_for(150.0)          # 2.5 nominal ticks -> 3 whole
    assert report.ticks == 3
    assert system.kernel.now() >= 150.0


def test_tick_metrics_are_published():
    system, daemon = make_daemon()
    daemon.run(5)
    reg = system.metrics
    assert reg.counter("stream.ticks").value == 5
    assert reg.counter("stream.stage_runs", stage="advance").value == 5
    assert reg.gauge("stream.tick_interval_seconds").value == 60.0


def test_stalled_tick_is_recorded_and_loop_moves_on():
    """A budget too small for one tick's events: the tick is recorded
    as stalled, the clock does not jump to the boundary, and the next
    ticks resume from where the kernel stopped."""
    system, daemon = make_daemon(
        config=DaemonConfig(advance_budget=1, retry_slices=0)
    )
    daemon.tick()
    assert daemon.stalled_ticks == 1
    assert system.kernel.now() < 60.0
    report = daemon.run(3)
    assert report.stalled_ticks >= 1
    assert report.ticks == 4


# -- the watchdog ladder -----------------------------------------------------

def test_watchdog_walks_the_ladder_to_a_forced_restart():
    """A real crash: heartbeats stop AND beacons freeze.  The ladder
    must escalate retry -> stage-restart -> dc-restart, and the forced
    restart brings the DC back ALIVE with a bounded recovery time."""
    system, daemon = make_daemon(fault=True)
    system.kernel.schedule_at(300.003, lambda: system.crash_dc(1))
    report = daemon.run_for(900.0)
    assert report.watchdog.escalations["retry"] >= 1
    assert report.watchdog.escalations["stage-restart"] >= 1
    assert report.watchdog.escalations["dc-restart"] == 1
    assert report.watchdog.restarts == 1
    assert report.all_alive
    dcs_recovered = [dc for dc, _ in report.watchdog.recovery_times]
    assert "dc:1" in dcs_recovered
    assert 0.0 < report.max_recovery_seconds <= 300.0
    # The healed DC flapped exactly once through the monitor's view.
    assert report.flap_counts.get("dc:1", 0) == 1


def test_watchdog_heals_a_clock_hold_at_rung_two():
    """A hung (suspended) scheduler stops both heartbeats and beacons,
    but the process state is intact — the stage-restart rung's resume
    must heal it without ever reaching the restart rung."""
    system, daemon = make_daemon()
    system.dcs[0].scheduler.suspend()
    report = daemon.run(8)
    assert report.watchdog.escalations["retry"] == 1
    assert report.watchdog.escalations["stage-restart"] == 1
    assert report.watchdog.escalations["dc-restart"] == 0
    assert report.watchdog.restarts == 0
    assert not system.dcs[0].scheduler.suspended
    assert report.all_alive
    assert any(dc == "dc:0" for dc, _ in report.watchdog.recovery_times)


def test_watchdog_leaves_network_partitions_to_the_breaker():
    """Degraded on the network but locally progressing: restarting
    would destroy queue state and 'heal' a partition the daemon does
    not own.  The ladder must never fire."""
    system, daemon = make_daemon()
    system.set_network_outage(0, True)
    for _ in range(6):
        daemon.tick()
    assert sum(daemon.watchdog.stats.escalations.values()) == 0
    system.set_network_outage(0, False)
    report = daemon.run(5)
    assert report.watchdog.restarts == 0
    assert sum(report.watchdog.escalations.values()) == 0
    assert report.all_alive
    # ...but the completed degradation cycle is visible as a flap.
    assert report.flap_counts.get("dc:0", 0) >= 1


# -- backpressure ------------------------------------------------------------

def test_backpressure_hysteresis_and_scan_deferral():
    system = make_system()
    bp = BackpressureController(
        system, high=0.5, low=0.2, stretch=2.0, metrics=system.metrics
    )
    gauge = system.metrics.gauge("dc.uplink.backlog", dc="dc:0")
    task = system.dcs[0].scheduler.task("process-scan")

    gauge.set(300)                          # 300/512 ≈ 0.59 >= high
    assert bp.update() == 2.0
    assert bp.active
    assert task.enabled is False            # low-priority scan deferred
    assert system.dcs[0].scheduler.task("rms-scan").enabled is True

    gauge.set(200)                          # 0.39: under high, over low
    assert bp.update() == 2.0               # hysteresis holds it engaged

    gauge.set(50)                           # 0.098 <= low
    assert bp.update() == 1.0
    assert not bp.active
    assert task.enabled is True
    states = [(e.dc, e.state) for e in bp.events]
    assert states == [("dc:0", "engaged"), ("dc:0", "released")]
    assert bp.ticks_active == 2


def test_shedding_engages_backpressure_immediately():
    system = make_system()
    bp = BackpressureController(
        system, high=0.9, low=0.1, metrics=system.metrics
    )
    assert bp.update() == 1.0
    # A shed since the last look engages regardless of the water marks.
    system.uplinks[1].stats.shed += 1
    assert bp.update() > 1.0
    assert [e.dc for e in bp.events] == ["dc:1"]


# -- bounded catch-up --------------------------------------------------------

def make_report(system, i):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=system.units[0].motor,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


def fill_outage_backlog(system, n=20):
    """Queue ``n`` reports on dc:0 during a hard outage, settled (no
    attempt still in flight)."""
    # Park the periodic retry task so only the catch-up controller
    # drains the backlog under test.
    system.dcs[0].scheduler.enable("uplink-flush", False)
    system.set_network_outage(0, True)
    for i in range(n):
        system.uplinks[0].submit(make_report(system, i))
    system.kernel.run_until(system.kernel.now() + 120.0)
    assert system.uplinks[0].backlog == n
    return system.uplinks[0]


def test_catchup_drains_in_bounded_chunks():
    system = make_system()
    uplink = fill_outage_backlog(system, 20)
    system.set_network_outage(0, False)

    cc = CatchupController(
        system, threshold=4, chunk=5, max_batch=4,
        staleness_cutoff=1e9, metrics=system.metrics,
    )
    assert cc.pending()
    for _ in range(100):
        if not cc.pending():
            break
        assert cc.update() <= 5             # never more than one chunk
        # A tick's worth of time: acks land, the breaker's half-open
        # probes re-close it.
        system.kernel.run_until(system.kernel.now() + 60.0)
    assert not cc.pending()
    assert uplink.backlog <= 4
    assert cc.stats.ticks_active >= 2       # took several bounded slices
    assert cc.stats.stale_shed == 0
    assert system.pdme.report_count() >= 16


def test_catchup_sheds_stale_reports_before_spending_the_chunk():
    system = make_system()
    uplink = fill_outage_backlog(system, 20)
    # Jump far past the cutoff: the whole backlog is ancient history.
    system.kernel.run_until(system.kernel.now() + 7200.0)
    system.set_network_outage(0, False)

    cc = CatchupController(
        system, threshold=4, chunk=5, staleness_cutoff=1800.0,
        metrics=system.metrics,
    )
    assert cc.pending()
    assert cc.update() == 0                 # nothing worth replaying
    assert cc.stats.stale_shed == 20
    assert uplink.backlog == 0
    assert uplink.stats.oldest_shed_age > 1800.0
    assert not cc.pending()
