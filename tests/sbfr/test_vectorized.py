import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SbfrError
from repro.sbfr import SbfrSystem, VectorizedAlarmBank, level_alarm_machine


def reference_statuses(samples, thresholds, hold):
    """Run the generic interpreter, one level-alarm machine per channel."""
    n_ch = samples.shape[1]
    sys = SbfrSystem(channels=[f"c{i}" for i in range(n_ch)])
    for i in range(n_ch):
        sys.add_machine(
            level_alarm_machine(channel=i, threshold=float(thresholds[i]), hold_cycles=hold)
        )
    out = np.empty(samples.shape, dtype=np.int8)
    for r, row in enumerate(samples):
        sys.cycle(row)
        out[r] = [sys.status(m) for m in range(n_ch)]
    return out


def test_bank_validates_inputs():
    with pytest.raises(SbfrError):
        VectorizedAlarmBank(np.zeros((2, 2)))
    with pytest.raises(SbfrError):
        VectorizedAlarmBank(np.zeros(3), hold_cycles=-1)
    bank = VectorizedAlarmBank(np.zeros(3))
    with pytest.raises(SbfrError):
        bank.cycle(np.zeros(4))
    with pytest.raises(SbfrError):
        bank.run(np.zeros((5, 4)))


def test_alarm_fires_after_hold():
    bank = VectorizedAlarmBank(np.array([0.5]), hold_cycles=2)
    sig = np.array([[0.0], [1.0], [1.0], [1.0], [1.0], [0.0]])
    out = bank.run(sig)
    # Enters High at cycle 1; elapsed reaches hold (2) at cycle 3.
    assert out[:, 0].tolist() == [0, 0, 0, 1, 1, 0]


def test_short_excursion_does_not_alarm():
    bank = VectorizedAlarmBank(np.array([0.5]), hold_cycles=3)
    sig = np.array([[1.0], [1.0], [0.0], [1.0], [1.0], [0.0]])
    assert not bank.run(sig).any()


def test_channels_are_independent():
    bank = VectorizedAlarmBank(np.array([0.5, 10.0]), hold_cycles=0)
    out = bank.run(np.array([[1.0, 1.0], [1.0, 1.0]]))
    assert out[-1, 0] == 1 and out[-1, 1] == 0


def test_reset():
    bank = VectorizedAlarmBank(np.array([0.5]), hold_cycles=0)
    bank.run(np.ones((3, 1)))
    bank.reset()
    assert bank.cycle_count == 0
    assert not bank.status.any()
    assert (bank.state == 0).all()


def test_matches_interpreter_on_fixed_case():
    rng = np.random.default_rng(42)
    samples = rng.random((50, 4))
    thresholds = np.full(4, 0.6)
    vec = VectorizedAlarmBank(thresholds, hold_cycles=2).run(samples)
    ref = reference_statuses(samples, thresholds, hold=2)
    assert np.array_equal(vec, ref)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    hold=st.integers(min_value=0, max_value=4),
    n_ch=st.integers(min_value=1, max_value=3),
    n_cycles=st.integers(min_value=1, max_value=40),
)
def test_vectorized_equivalent_to_interpreter(seed, hold, n_ch, n_cycles):
    """Property: the vectorized bank is cycle-for-cycle identical to
    the generic interpreter running the same machines."""
    rng = np.random.default_rng(seed)
    samples = rng.random((n_cycles, n_ch))
    thresholds = rng.uniform(0.2, 0.8, n_ch)
    vec = VectorizedAlarmBank(thresholds, hold_cycles=hold).run(samples)
    ref = reference_statuses(samples, thresholds, hold=hold)
    assert np.array_equal(vec, ref)


def test_vectorized_reassert_matches_interpreter_with_consumer():
    """With an external consumer clearing status bits each cycle, the
    vectorized bank and the interpreter re-assert identically while
    the alarm persists."""
    rng = np.random.default_rng(9)
    samples = rng.random((30, 2))
    samples[:, 0] = 0.9        # channel 0 persistently above threshold
    thresholds = np.array([0.5, 0.5])

    # Interpreter run with a consumer.
    sys_ = SbfrSystem(channels=["a", "b"])
    for i in range(2):
        sys_.add_machine(level_alarm_machine(channel=i, threshold=0.5, hold_cycles=1))
    interp_seen = []
    for row in samples:
        sys_.cycle(row)
        statuses = [sys_.status(m) for m in range(2)]
        interp_seen.append(list(statuses))
        for m in range(2):
            if statuses[m]:
                sys_.set_status(m, 0)   # consume

    bank = VectorizedAlarmBank(thresholds, hold_cycles=1)
    vec_seen = []
    for row in samples:
        status = bank.cycle(row).copy()
        vec_seen.append(status.tolist())
        bank.status[status.astype(bool)] = 0  # consume

    assert vec_seen == interp_seen
    # The persistent channel re-asserted repeatedly.
    assert sum(s[0] for s in interp_seen) > 5
