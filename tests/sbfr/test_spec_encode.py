import pytest

from repro.common.errors import SbfrError
from repro.sbfr import (
    And,
    Const,
    Delta,
    Elapsed,
    IncrLocal,
    Input,
    Local,
    MachineSpec,
    Not,
    Or,
    OrStatus,
    SetLocal,
    SetStatus,
    State,
    Status,
    Transition,
    build_spike_machine,
    build_stiction_machine,
    cmp,
    decode_machine,
    encode_machine,
    encoded_size,
)
from repro.sbfr.spec import Always, referenced_channels


def simple_machine():
    return MachineSpec(
        name="toy",
        states=(State("a"), State("b")),
        transitions=(
            Transition(0, 1, cmp(Input(0), ">", 0.5), (OrStatus(-1, 1),)),
            Transition(1, 0, cmp(Status(-1), "==", 0), (SetLocal(0, 0.0),)),
        ),
        n_locals=1,
    )


# -- spec validation --------------------------------------------------------

def test_machine_needs_states():
    with pytest.raises(SbfrError):
        MachineSpec("x", (), ())


def test_transition_state_bounds_checked():
    with pytest.raises(SbfrError):
        MachineSpec("x", (State("a"),), (Transition(0, 5, Always()),))


def test_transition_negative_state_rejected():
    with pytest.raises(SbfrError):
        Transition(-1, 0, Always())


def test_unknown_comparison_rejected():
    with pytest.raises(SbfrError):
        cmp(Input(0), "~", 1.0)


def test_cmp_wraps_floats_in_const():
    c = cmp(0.5, "<", Input(0))
    assert isinstance(c.lhs, Const)


def test_state_index_lookup():
    m = simple_machine()
    assert m.state_index("b") == 1
    with pytest.raises(SbfrError):
        m.state_index("zz")


def test_transitions_from():
    m = simple_machine()
    assert len(m.transitions_from(0)) == 1
    assert m.transitions_from(0)[0].target == 1


def test_condition_operators_compose():
    c = (cmp(Input(0), ">", 1) & cmp(Input(1), "<", 2)) | ~cmp(Local(0), "==", 0)
    assert isinstance(c, Or)
    assert isinstance(c.a, And)
    assert isinstance(c.b, Not)


def test_referenced_channels():
    m = build_spike_machine(current_channel=3)
    assert referenced_channels(m) == {3}
    s = build_stiction_machine(cpos_channel=1)
    assert referenced_channels(s) == {1}


# -- encoding ---------------------------------------------------------------

def test_roundtrip_simple_machine():
    m = simple_machine()
    decoded = decode_machine(encode_machine(m))
    assert len(decoded.states) == 2
    assert decoded.n_locals == 1
    assert decoded.transitions == m.transitions


def test_roundtrip_fig3_machines():
    for m in (build_spike_machine(0), build_stiction_machine(1)):
        decoded = decode_machine(encode_machine(m))
        assert decoded.transitions == m.transitions
        assert len(decoded.states) == len(m.states)


def test_roundtrip_all_node_types():
    m = MachineSpec(
        name="everything",
        states=(State("a"), State("b")),
        transitions=(
            Transition(
                0, 1,
                Or(
                    And(cmp(Delta(2), ">=", 0.25), Not(cmp(Elapsed(), "!=", 3))),
                    cmp(Status(1), "<=", Local(0)),
                ),
                (SetStatus(1, 0), OrStatus(-1, 3), SetLocal(1, 2.5), IncrLocal(0, -1.0)),
            ),
            Transition(1, 0, Always()),
        ),
        n_locals=2,
    )
    decoded = decode_machine(encode_machine(m))
    assert decoded.transitions == m.transitions


def test_decode_bad_magic():
    with pytest.raises(SbfrError):
        decode_machine(b"XX\x01\x01\x00\x00")


def test_decode_trailing_bytes_rejected():
    data = encode_machine(simple_machine()) + b"\x00"
    with pytest.raises(SbfrError):
        decode_machine(data)


# -- the paper's footprint claims (§6.3) -------------------------------------

def test_spike_machine_size_order_of_paper():
    """Paper: spike machine 229 bytes. Ours must land in the same
    small-embedded ballpark (well under 512 B)."""
    size = encoded_size(build_spike_machine(0))
    assert 40 <= size <= 512


def test_stiction_machine_size_order_of_paper():
    """Paper: stiction machine 93 bytes."""
    size = encoded_size(build_stiction_machine(1))
    assert 30 <= size <= 256


def test_stiction_smaller_than_spike():
    assert encoded_size(build_stiction_machine(1)) < encoded_size(build_spike_machine(0))


def test_hundred_machines_under_32k():
    """Paper: '100 state machines operating in parallel and their
    interpreter can fit in less than 32K bytes'."""
    total = 50 * encoded_size(build_spike_machine(0)) + 50 * encoded_size(
        build_stiction_machine(1)
    )
    assert total < 32 * 1024
