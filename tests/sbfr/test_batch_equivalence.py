"""Formal equivalence of the vectorized SBFR executors.

The bank, the watch grid and the grid→interpreter migration are all
claimed to be *exact* reimplementations of the AST interpreter's
semantics.  These tests replay long randomized traces through both
sides and compare complete state AND status trajectories — not just
final values — so a single divergent cycle anywhere fails loudly.
"""

import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.sbfr_source import SbfrKnowledgeSource, SbfrWatch
from repro.sbfr import (
    SbfrSystem,
    SbfrWatchGrid,
    VectorizedAlarmBank,
    count_threshold_machine,
    level_alarm_machine,
)


def test_bank_matches_interpreter_100_machines_10k_cycles():
    """Full state/status traces, per-channel hold times, random
    consumers clearing flags mid-run (exercises the re-assert loop)."""
    rng = np.random.default_rng(2024)
    n, cycles = 100, 10_000
    thresholds = rng.uniform(-0.5, 0.5, size=n)
    holds = rng.integers(0, 6, size=n)

    interp = SbfrSystem(channels=[f"ch{i}" for i in range(n)])
    for i in range(n):
        interp.add_machine(
            level_alarm_machine(
                channel=i,
                threshold=float(thresholds[i]),
                hold_cycles=int(holds[i]),
            )
        )
    bank = VectorizedAlarmBank(thresholds, hold_cycles=holds)

    # A slow random walk keeps machines crossing thresholds often
    # enough to visit every transition repeatedly.
    steps = rng.normal(0.0, 0.15, size=(cycles, n))
    samples = np.clip(np.cumsum(steps, axis=0), -2.0, 2.0)
    consume_at = rng.random(size=(cycles, n)) < 0.02

    for c in range(cycles):
        interp.cycle(samples[c])
        bank.cycle(samples[c])
        i_state = np.array([s.state for s in interp.states])
        i_status = np.array([s.status for s in interp.states])
        np.testing.assert_array_equal(bank.state, i_state, err_msg=f"cycle {c}")
        np.testing.assert_array_equal(bank.status, i_status, err_msg=f"cycle {c}")
        for i in np.flatnonzero(consume_at[c]):
            interp.set_status(int(i), 0)
            bank.status[i] = 0


def test_watch_grid_matches_interpreter_pairs():
    """The grid's fused level+counter step against real machine pairs,
    including missing-channel cycles (presence mask vs dict samples)."""
    rng = np.random.default_rng(7)
    n_watches, n_objects, cycles = 5, 12, 2000
    thresholds = rng.uniform(0.3, 0.7, size=n_watches)
    channels = [f"pv{i}" for i in range(n_watches)]

    grid = SbfrWatchGrid(thresholds, hold_cycles=2, repeat_count=3)
    rows = np.array([grid.add_row() for _ in range(n_objects)])

    systems = []
    for _ in range(n_objects):
        sys_ = SbfrSystem(channels=channels)
        for i in range(n_watches):
            alarm = sys_.add_machine(
                level_alarm_machine(channel=i, threshold=float(thresholds[i]),
                                    hold_cycles=2)
            )
            sys_.add_machine(count_threshold_machine(watched_machine=alarm, count=3))
        systems.append(sys_)

    values = rng.normal(0.5, 0.25, size=(cycles, n_objects, n_watches))
    present = rng.random(size=(cycles, n_objects, n_watches)) < 0.8

    for c in range(cycles):
        cstatus = grid.cycle_rows(rows, values[c], present[c])
        for o, sys_ in enumerate(systems):
            sample = {
                channels[i]: float(values[c, o, i])
                for i in range(n_watches)
                if present[c, o, i]
            }
            sys_.cycle(sample)
            for i in range(n_watches):
                level, counter = sys_.states[2 * i], sys_.states[2 * i + 1]
                where = f"cycle {c} object {o} watch {i}"
                assert grid.lstate[rows[o], i] == level.state, where
                assert grid.lstatus[rows[o], i] == level.status, where
                assert grid.cstate[rows[o], i] == counter.state, where
                assert cstatus[o, i] == counter.status, where
                assert grid.ccount[rows[o], i] == counter.locals[0], where
            # Consume fired flags on both sides, as the source does.
            for i in np.flatnonzero(cstatus[o]):
                grid.consume(rows[o], int(i))
                sys_.set_status(2 * int(i) + 1, 0)


WATCHES = (
    SbfrWatch("pv0", 0.6, "mc:w0"),
    SbfrWatch("pv1", 0.5, "mc:w1"),
    SbfrWatch("pv2", 0.4, "mc:w2", invert=True),
)


def _report_keys(reports):
    return [
        (r.sensed_object_id, r.machine_condition_id, r.severity, r.belief,
         r.explanation)
        for r in reports
    ]


def _ctx_stream(n_objects, scans, seed):
    rng = np.random.default_rng(seed)
    out = []
    for s in range(scans):
        for o in range(n_objects):
            proc = {
                w.channel: float(rng.normal(0.5, 0.2))
                for w in WATCHES
                if rng.random() < 0.9
            }
            out.append(
                SourceContext(
                    sensed_object_id=f"obj:m{o}",
                    timestamp=60.0 * (s + 1),
                    process=proc,
                    dc_id="dc:test",
                )
            )
    return out


def _never_firing_machine():
    return level_alarm_machine(channel=0, threshold=1e9, hold_cycles=2)


def test_source_grid_vs_scalar_reports_identical():
    """The knowledge source emits identical reports whether its objects
    run on the grid or on per-object interpreters."""
    grid_src = SbfrKnowledgeSource(watches=WATCHES)
    scalar_src = SbfrKnowledgeSource(watches=WATCHES)
    # Installing any machine forces scalar mode; this one never fires,
    # so the report streams stay comparable.
    scalar_src.install_machine(_never_firing_machine(), "mc:never")
    assert scalar_src._systems is not None

    for ctx in _ctx_stream(n_objects=6, scans=150, seed=11):
        assert _report_keys(grid_src.analyze(ctx)) == _report_keys(
            scalar_src.analyze(ctx)
        )


def test_source_migration_preserves_trend_state():
    """A closer-look download mid-run migrates every grid row onto the
    interpreter with state intact: the continued stream must match a
    source that ran scalar from the start."""
    migrating = SbfrKnowledgeSource(watches=WATCHES)
    scalar = SbfrKnowledgeSource(watches=WATCHES)
    scalar.install_machine(_never_firing_machine(), "mc:never")

    ctxs = _ctx_stream(n_objects=6, scans=150, seed=23)
    split = len(ctxs) // 2
    for ctx in ctxs[:split]:
        assert _report_keys(migrating.analyze(ctx)) == _report_keys(
            scalar.analyze(ctx)
        )
    assert migrating._systems is None  # still on the grid
    migrating.install_machine(_never_firing_machine(), "mc:never")
    assert migrating._systems is not None  # migrated, state carried over
    for ctx in ctxs[split:]:
        assert _report_keys(migrating.analyze(ctx)) == _report_keys(
            scalar.analyze(ctx)
        )


def test_source_analyze_batch_matches_serial_analyze():
    """analyze_batch is a pure fan-out of analyze (same reports, same
    order) for a whole scan of contexts."""
    batch_src = SbfrKnowledgeSource(watches=WATCHES)
    serial_src = SbfrKnowledgeSource(watches=WATCHES)

    ctxs = _ctx_stream(n_objects=8, scans=100, seed=31)
    scan_width = 8
    for s in range(0, len(ctxs), scan_width):
        scan = ctxs[s : s + scan_width]
        got = batch_src.analyze_batch(scan)
        want = [serial_src.analyze(ctx) for ctx in scan]
        assert [_report_keys(g) for g in got] == [_report_keys(w) for w in want]


def test_grid_rejects_bad_shapes():
    grid = SbfrWatchGrid(np.array([0.5, 0.6]), hold_cycles=1, repeat_count=2)
    row = grid.add_row()
    with pytest.raises(Exception):
        grid.cycle_rows(np.array([row]), np.zeros((1, 3)), np.ones((1, 3), bool))
    with pytest.raises(Exception):
        grid.cycle_rows(np.array([row + 5]), np.zeros((1, 2)), np.ones((1, 2), bool))
