import numpy as np
import pytest

from repro.common.errors import SbfrError
from repro.sbfr import (
    MachineSpec,
    SbfrSystem,
    State,
    Transition,
    build_spike_machine,
    build_stiction_machine,
    cmp,
    count_threshold_machine,
    level_alarm_machine,
)
from repro.sbfr.spec import Always, Delta, Elapsed, Input, OrStatus


def spike_train(n_spikes, gap=20, amplitude=2.0, base=1.0):
    """Synthetic drive-current trace with sharp spikes."""
    sig = [base] * 10
    for _ in range(n_spikes):
        sig += [base + amplitude, base]          # sharp up, sharp down
        sig += [base] * gap
    return np.array(sig)


def make_ema_system():
    sys = SbfrSystem(channels=["current", "cpos"])
    sys.add_machine(build_spike_machine(current_channel=0, self_index=0))
    sys.add_machine(build_stiction_machine(cpos_channel=1, spike_machine=0, self_index=1))
    return sys


# -- basics ---------------------------------------------------------------

def test_duplicate_channels_rejected():
    with pytest.raises(SbfrError):
        SbfrSystem(channels=["a", "a"])


def test_unknown_channel_rejected():
    sys = SbfrSystem(channels=["a"])
    with pytest.raises(SbfrError):
        sys.cycle({"b": 1.0})


def test_wrong_sample_shape_rejected():
    sys = SbfrSystem(channels=["a", "b"])
    with pytest.raises(SbfrError):
        sys.cycle(np.zeros(3))
    with pytest.raises(SbfrError):
        sys.run(np.zeros((5, 3)))


def test_missing_dict_channels_hold_previous_value():
    """§5.1: inputs may be fragmentary; missing channels hold."""
    sys = SbfrSystem(channels=["a", "b"])
    sys.add_machine(level_alarm_machine(channel=1, threshold=0.5, hold_cycles=0))
    sys.cycle({"a": 0.0, "b": 1.0})
    for _ in range(3):
        sys.cycle({"a": 0.0})  # b holds at 1.0
    assert sys.status(0) == 1


def test_elapsed_counts_cycles_in_state():
    spec = MachineSpec(
        "t", (State("w"), State("x")),
        (Transition(0, 1, cmp(Elapsed(), ">=", 3)),),
    )
    sys = SbfrSystem(channels=["a"])
    sys.add_machine(spec)
    for _ in range(3):
        sys.cycle({"a": 0.0})
        assert sys.state_name(0) == "w"
    sys.cycle({"a": 0.0})
    assert sys.state_name(0) == "x"


def test_first_enabled_transition_wins():
    spec = MachineSpec(
        "t", (State("w"), State("x"), State("y")),
        (
            Transition(0, 1, Always()),
            Transition(0, 2, Always()),
        ),
    )
    sys = SbfrSystem(channels=["a"])
    sys.add_machine(spec)
    sys.cycle({"a": 0.0})
    assert sys.state_name(0) == "x"


def test_delta_is_zero_on_first_cycle():
    spec = MachineSpec(
        "t", (State("w"), State("x")),
        (Transition(0, 1, cmp(Delta(0), ">", 0.0)),),
    )
    sys = SbfrSystem(channels=["a"])
    sys.add_machine(spec)
    sys.cycle({"a": 5.0})       # no previous sample: delta treated as 0
    assert sys.state_name(0) == "w"
    sys.cycle({"a": 6.0})
    assert sys.state_name(0) == "x"


def test_reset_restores_initial_state():
    sys = make_ema_system()
    current = spike_train(6)
    sys.run(np.column_stack([current, np.zeros_like(current)]))
    sys.reset()
    assert sys.state_name(0) == "Wait" and sys.state_name(1) == "Wait"
    assert sys.status(0) == 0 and sys.status(1) == 0
    assert sys.cycle_count == 0


def test_run_returns_state_change_log():
    sys = SbfrSystem(channels=["a"])
    sys.add_machine(level_alarm_machine(channel=0, threshold=0.5, hold_cycles=1))
    log = sys.run(np.array([[0.0], [1.0], [1.0], [1.0], [0.0]]))
    machines = [m for _, m, _ in log]
    assert machines.count(0) >= 2  # entered High, Alarm, back to Wait


# -- Figure 3: the EMA spike/stiction pair -----------------------------------

def test_spike_machine_recognizes_sharp_spike():
    sys = make_ema_system()
    current = np.array([1.0, 1.0, 3.0, 1.0, 1.0, 1.0])
    for c in current:
        sys.cycle({"current": c, "cpos": 0.0})
    # The stiction machine consumed and reset the spike flag, and
    # counted it.
    assert sys.states[1].locals[1] == 1


def test_slow_ramp_is_not_a_spike():
    sys = make_ema_system()
    # Slow rise over many cycles, slow fall: never a spike.
    current = np.concatenate([
        np.full(5, 1.0),
        np.linspace(1.0, 3.0, 40),
        np.linspace(3.0, 1.0, 40),
    ])
    for c in current:
        sys.cycle({"current": c, "cpos": 0.0})
    assert sys.states[1].locals[1] == 0
    assert sys.status(1) == 0


def test_stiction_flag_after_five_uncommanded_spikes():
    """'When the count is greater than 4, a stiction condition is
    flagged' — the fifth uncommanded spike trips the machine."""
    sys = make_ema_system()
    current = spike_train(5)
    cpos = np.zeros_like(current)
    sys.run(np.column_stack([current, cpos]))
    assert sys.state_name(1) == "Stiction"
    assert sys.status(1) & 1


def test_four_spikes_do_not_flag():
    sys = make_ema_system()
    current = spike_train(4)
    sys.run(np.column_stack([current, np.zeros_like(current)]))
    assert sys.state_name(1) == "Wait"
    assert sys.status(1) == 0


def test_commanded_spikes_are_not_counted():
    """Spikes during commanded position changes (CPOS) are expected and
    must not count toward stiction."""
    sys = make_ema_system()
    current = spike_train(8)
    # The actuator moves over a few cycles around each spike, so CPOS
    # is changing while the spike is being recognized.
    deltas = np.diff(current, prepend=current[0])
    cpos = np.zeros_like(current)
    for i in np.flatnonzero(deltas > 0.5):
        for k in range(4):
            j = min(i + k, len(cpos) - 1)
            cpos[j:] += 0.25
    sys.run(np.column_stack([current, cpos]))
    assert sys.states[1].locals[1] == 0
    assert sys.state_name(1) == "Wait"


def test_consumer_reset_restarts_counting():
    """'That agent has the responsibility to then reset Machine 1's
    status register to 0 allowing the machine itself to set the count
    back to 0 and start over.'"""
    sys = make_ema_system()
    current = spike_train(5)
    sys.run(np.column_stack([current, np.zeros_like(current)]))
    assert sys.state_name(1) == "Stiction"
    # Higher-level software consumes the flag and resets the register.
    sys.set_status(1, 0)
    sys.cycle({"current": 1.0, "cpos": 0.0})
    assert sys.state_name(1) == "Wait"
    assert sys.states[1].locals[1] == 0
    # Counting starts over: five more spikes trip it again.
    current2 = spike_train(5)
    sys.run(np.column_stack([current2, np.zeros_like(current2)]))
    assert sys.state_name(1) == "Stiction"


def test_spike_machine_keeps_looking_while_stiction_waits():
    """Machine 1 resets Machine 0's status after each spike so Machine 0
    'can continue looking for spikes in parallel'."""
    sys = make_ema_system()
    current = spike_train(3)
    sys.run(np.column_stack([current, np.zeros_like(current)]))
    assert sys.states[1].locals[1] == 3
    assert sys.status(0) == 0  # always consumed
    assert sys.state_name(0) == "Wait"


# -- layered recognition -------------------------------------------------------

def test_count_threshold_machine_layers_on_alarm():
    """§6.3 layered architecture: a counter machine watches a level
    alarm and fires after repeated alarms."""
    sys = SbfrSystem(channels=["x"])
    alarm_idx = sys.add_machine(level_alarm_machine(channel=0, threshold=0.5, hold_cycles=0))
    counter_idx = sys.add_machine(count_threshold_machine(watched_machine=0, count=2))
    burst = [1.0, 1.0, 0.0, 0.0]
    for _ in range(3):
        for v in burst:
            sys.cycle({"x": v})
    assert sys.status(counter_idx) & 1
    assert sys.state_name(counter_idx) == "Fired"
