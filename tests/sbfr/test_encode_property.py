"""Property-based round-trip tests for the SBFR binary encoding,
over hypothesis-generated random machines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sbfr import (
    MachineSpec,
    SbfrSystem,
    State,
    Transition,
    decode_machine,
    encode_machine,
)
from repro.sbfr.spec import (
    Always,
    And,
    Compare,
    Const,
    Delta,
    Elapsed,
    IncrLocal,
    Input,
    Local,
    Not,
    Or,
    OrStatus,
    SetLocal,
    SetStatus,
    Status,
)

N_CHANNELS = 4
N_LOCALS = 3
N_MACHINES = 3

# float32-exact constants so the round trip is bit-exact.
_consts = st.integers(min_value=-100, max_value=100).map(lambda i: Const(i / 4.0))
_exprs = st.one_of(
    st.integers(0, N_CHANNELS - 1).map(Input),
    st.integers(0, N_CHANNELS - 1).map(Delta),
    st.integers(0, N_LOCALS - 1).map(Local),
    st.integers(-1, N_MACHINES - 1).map(Status),
    st.just(Elapsed()),
    _consts,
)
_compares = st.builds(
    Compare, st.sampled_from(["<", ">", "<=", ">=", "==", "!="]), _exprs, _exprs
)


def _conditions(depth=2):
    if depth == 0:
        return st.one_of(_compares, st.just(Always()))
    sub = _conditions(depth - 1)
    return st.one_of(
        _compares,
        st.just(Always()),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(Not, sub),
    )


_actions = st.one_of(
    st.builds(SetStatus, st.integers(-1, N_MACHINES - 1), st.integers(0, 3)),
    st.builds(OrStatus, st.integers(-1, N_MACHINES - 1), st.integers(1, 7)),
    st.builds(SetLocal, st.integers(0, N_LOCALS - 1), _consts.map(lambda c: c.v)),
    st.builds(IncrLocal, st.integers(0, N_LOCALS - 1), _consts.map(lambda c: c.v)),
)


@st.composite
def machines(draw):
    n_states = draw(st.integers(min_value=1, max_value=5))
    n_transitions = draw(st.integers(min_value=0, max_value=8))
    transitions = tuple(
        Transition(
            source=draw(st.integers(0, n_states - 1)),
            target=draw(st.integers(0, n_states - 1)),
            condition=draw(_conditions()),
            actions=tuple(draw(st.lists(_actions, max_size=3))),
        )
        for _ in range(n_transitions)
    )
    return MachineSpec(
        name="random",
        states=tuple(State(f"s{i}") for i in range(n_states)),
        transitions=transitions,
        n_locals=N_LOCALS,
    )


@settings(max_examples=120, deadline=None)
@given(m=machines())
def test_encode_decode_roundtrip(m):
    decoded = decode_machine(encode_machine(m))
    assert decoded.transitions == m.transitions
    assert len(decoded.states) == len(m.states)
    assert decoded.n_locals == m.n_locals


@settings(max_examples=30, deadline=None)
@given(m=machines(), seed=st.integers(0, 10_000))
def test_decoded_machine_behaves_identically(m, seed):
    """A decoded machine produces the same state/status trajectory as
    the original on identical input."""
    rng = np.random.default_rng(seed)
    samples = rng.random((20, N_CHANNELS))

    def run(spec):
        system = SbfrSystem(channels=[f"c{i}" for i in range(N_CHANNELS)])
        idx = system.add_machine(spec)
        # Pad to N_MACHINES so Status() references resolve.
        from repro.sbfr.spec import MachineSpec as MS, State as S

        while len(system.machines) < N_MACHINES:
            system.add_machine(MS("pad", (S("w"),), (), 0))
        trajectory = []
        for row in samples:
            system.cycle(row)
            trajectory.append(
                (system.states[idx].state, system.states[idx].status,
                 tuple(system.states[idx].locals))
            )
        return trajectory

    assert run(m) == run(decode_machine(encode_machine(m)))


@settings(max_examples=60, deadline=None)
@given(m=machines())
def test_encoding_is_deterministic_and_compact(m):
    a = encode_machine(m)
    b = encode_machine(m)
    assert a == b
    # Every transition costs a handful of bytes, never kilobytes.
    assert len(a) <= 6 + len(m.transitions) * 120
