import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint, RpcError
from repro.netsim.transport import encode_message


def make_net(seed=0):
    kernel = EventKernel()
    return kernel, Network(kernel, np.random.default_rng(seed))


# -- network / links -----------------------------------------------------------

def test_delivery_with_latency():
    kernel, net = make_net()
    inbox = []
    net.attach("b", lambda s, f: inbox.append((s, f, kernel.now())))
    net.connect("a", "b", LinkConfig(latency=0.25))
    net.send("a", "b", b"\x04\x00\x00\x00ping")
    kernel.run()
    assert inbox[0][0] == "a"
    assert inbox[0][2] == pytest.approx(0.25)


def test_send_to_unattached_endpoint_rejected():
    _, net = make_net()
    with pytest.raises(NetworkError):
        net.send("a", "ghost", b"x")


def test_attach_twice_rejected():
    _, net = make_net()
    net.attach("a", lambda s, f: None)
    with pytest.raises(NetworkError):
        net.attach("a", lambda s, f: None)


def test_drop_rate_loses_frames():
    kernel, net = make_net(seed=1)
    inbox = []
    net.attach("b", lambda s, f: inbox.append(f))
    net.connect("a", "b", LinkConfig(drop_rate=0.5))
    for _ in range(200):
        net.send("a", "b", b"\x01\x00\x00\x00x")
    kernel.run()
    assert 60 < len(inbox) < 140
    stats = net.stats()
    assert stats["dropped"] == 200 - len(inbox)


def test_jitter_reorders():
    kernel, net = make_net(seed=3)
    order = []
    net.attach("b", lambda s, f: order.append(f))
    net.connect("a", "b", LinkConfig(latency=0.01, jitter=0.1))
    frames = [bytes([1, 0, 0, 0, i]) for i in range(20)]
    for f in frames:
        net.send("a", "b", f)
    kernel.run()
    assert sorted(order) == sorted(frames)
    assert order != frames  # some reordering occurred


def test_bandwidth_serializes():
    kernel, net = make_net()
    times = []
    net.attach("b", lambda s, f: times.append(kernel.now()))
    net.connect("a", "b", LinkConfig(latency=0.0, bandwidth_bps=1000.0))
    net.send("a", "b", b"x" * 500)   # 0.5 s serialization
    net.send("a", "b", b"x" * 500)   # queued behind the first
    kernel.run()
    assert times[0] == pytest.approx(0.5)
    assert times[1] == pytest.approx(1.0)


def test_link_config_validation():
    with pytest.raises(NetworkError):
        LinkConfig(latency=-1.0)
    with pytest.raises(NetworkError):
        LinkConfig(drop_rate=1.5)


# -- RPC ------------------------------------------------------------------------

def make_rpc_pair(config=None, seed=0, timeout=0.5, retries=2):
    kernel, net = make_net(seed)
    if config is not None:
        net.connect("client", "server", config)
    client = RpcEndpoint("client", net, kernel, timeout=timeout, retries=retries)
    server = RpcEndpoint("server", net, kernel, timeout=timeout, retries=retries)
    return kernel, client, server


def test_basic_call_reply():
    kernel, client, server = make_rpc_pair()
    server.register("add", lambda p: {"sum": p["a"] + p["b"]})
    replies = []
    client.call("server", "add", {"a": 2, "b": 3}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"sum": 5}]
    assert client.stats["failures"] == 0
    assert server.stats["served"] == 1


def test_unknown_method_is_error():
    kernel, client, server = make_rpc_pair()
    errors = []
    client.call("server", "nope", {}, on_error=errors.append)
    kernel.run()
    assert len(errors) == 1
    assert isinstance(errors[0], RpcError)


def test_handler_exception_propagates_as_error():
    kernel, client, server = make_rpc_pair()

    def boom(p):
        raise ValueError("broken")

    server.register("boom", boom)
    errors = []
    client.call("server", "boom", {}, on_error=errors.append)
    kernel.run()
    assert "broken" in str(errors[0])


def test_register_twice_rejected():
    _, client, server = make_rpc_pair()
    server.register("m", lambda p: {})
    with pytest.raises(NetworkError):
        server.register("m", lambda p: {})


def test_retry_recovers_from_lossy_link():
    """With 40% drop and 3 retries the call almost surely succeeds."""
    kernel, client, server = make_rpc_pair(
        config=LinkConfig(latency=0.01, drop_rate=0.4), seed=5, retries=5
    )
    server.register("echo", lambda p: p)
    replies = []
    client.call("server", "echo", {"v": 1}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"v": 1}]
    assert client.stats["retries"] >= 0


def test_total_loss_exhausts_retries():
    kernel, client, server = make_rpc_pair(
        config=LinkConfig(drop_rate=1.0), retries=2
    )
    server.register("echo", lambda p: p)
    errors = []
    client.call("server", "echo", {}, on_error=errors.append)
    kernel.run()
    assert len(errors) == 1
    assert client.stats["failures"] == 1
    assert client.stats["retries"] == 2


def test_duplicate_reply_after_retry_ignored():
    """A slow (not lost) reply racing a retry must not double-deliver."""
    kernel, client, server = make_rpc_pair(
        config=LinkConfig(latency=0.3, jitter=0.5), seed=7, timeout=0.45, retries=5
    )
    server.register("echo", lambda p: p)
    replies = []
    client.call("server", "echo", {"v": 1}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"v": 1}]


def test_many_concurrent_calls():
    kernel, client, server = make_rpc_pair()
    server.register("sq", lambda p: {"out": p["x"] ** 2})
    out = {}
    for x in range(50):
        client.call("server", "sq", {"x": x},
                    on_reply=lambda r, x=x: out.__setitem__(x, r["out"]))
    kernel.run()
    assert out == {x: x**2 for x in range(50)}


def test_corrupt_frames_counted_and_dropped():
    """Bit flips on the wire are line noise: the receiver counts them
    and the RPC retry machinery recovers."""
    kernel, client, server = make_rpc_pair(
        config=LinkConfig(latency=0.01, corrupt_rate=0.5), seed=11, retries=8
    )
    server.register("echo", lambda p: p)
    replies = []
    for i in range(5):
        client.call("server", "echo", {"v": i}, on_reply=replies.append)
    kernel.run()
    assert sorted(r["v"] for r in replies) == [0, 1, 2, 3, 4]
    corrupt_seen = client.stats.get("corrupt_frames", 0) + server.stats.get(
        "corrupt_frames", 0
    )
    assert corrupt_seen > 0


def test_corrupt_rate_validation():
    with pytest.raises(NetworkError):
        LinkConfig(corrupt_rate=1.5)


def test_total_corruption_exhausts_retries():
    kernel, client, server = make_rpc_pair(
        config=LinkConfig(corrupt_rate=1.0), retries=2
    )
    server.register("echo", lambda p: p)
    errors = []
    client.call("server", "echo", {}, on_error=errors.append)
    kernel.run()
    assert len(errors) == 1
