import pytest

from repro.common.errors import NetworkError, SchedulingError
from repro.netsim import EventKernel, decode_message, encode_message


# -- kernel ----------------------------------------------------------------

def test_events_run_in_time_order():
    k = EventKernel()
    log = []
    k.schedule(2.0, lambda: log.append("b"))
    k.schedule(1.0, lambda: log.append("a"))
    k.schedule(3.0, lambda: log.append("c"))
    k.run()
    assert log == ["a", "b", "c"]
    assert k.now() == 3.0


def test_same_time_fifo():
    k = EventKernel()
    log = []
    k.schedule(1.0, lambda: log.append(1))
    k.schedule(1.0, lambda: log.append(2))
    k.run()
    assert log == [1, 2]


def test_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        EventKernel().schedule(-1.0, lambda: None)


def test_run_until_stops_at_boundary():
    k = EventKernel()
    log = []
    k.schedule(1.0, lambda: log.append("early"))
    k.schedule(5.0, lambda: log.append("late"))
    executed = k.run_until(2.0)
    assert executed == 1
    assert log == ["early"]
    assert k.now() == 2.0
    assert k.pending == 1


def test_run_until_past_rejected():
    k = EventKernel(start=10.0)
    with pytest.raises(SchedulingError):
        k.run_until(5.0)


def test_cancel_prevents_execution():
    k = EventKernel()
    log = []
    eid = k.schedule(1.0, lambda: log.append("x"))
    k.cancel(eid)
    k.run()
    assert log == []


def test_events_can_schedule_events():
    k = EventKernel()
    log = []

    def first():
        log.append(("first", k.now()))
        k.schedule(1.0, lambda: log.append(("second", k.now())))

    k.schedule(1.0, first)
    k.run()
    assert log == [("first", 1.0), ("second", 2.0)]


def test_runaway_schedule_bounded():
    k = EventKernel()

    def loop():
        k.schedule(0.1, loop)

    k.schedule(0.1, loop)
    with pytest.raises(SchedulingError):
        k.run(max_events=100)


def test_schedule_at_absolute():
    k = EventKernel(start=5.0)
    log = []
    k.schedule_at(7.5, lambda: log.append(k.now()))
    k.run()
    assert log == [7.5]


# -- transport ----------------------------------------------------------------

def test_message_roundtrip():
    payload = {"a": 1, "b": [1, 2, 3], "c": "text"}
    assert decode_message(encode_message(payload)) == payload


def test_unencodable_payload_rejected():
    with pytest.raises(NetworkError):
        encode_message({"x": object()})


def test_truncated_frame_rejected():
    frame = encode_message({"a": 1})
    with pytest.raises(NetworkError):
        decode_message(frame[:2])
    with pytest.raises(NetworkError):
        decode_message(frame[:-1])


def test_corrupt_body_rejected():
    frame = bytearray(encode_message({"a": 1}))
    frame[5] ^= 0xFF
    with pytest.raises(NetworkError):
        decode_message(bytes(frame))


def test_non_object_payload_rejected():
    import json
    import struct
    import zlib

    body = json.dumps([1, 2]).encode()
    frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
    with pytest.raises(NetworkError):
        decode_message(frame)


def test_any_single_bitflip_detected():
    """CRC32 catches every single-bit corruption of a frame."""
    frame = bytearray(encode_message({"belief": 0.75, "id": 42}))
    for byte_idx in range(len(frame)):
        corrupted = bytearray(frame)
        corrupted[byte_idx] ^= 0x10
        with pytest.raises(NetworkError):
            decode_message(bytes(corrupted))
