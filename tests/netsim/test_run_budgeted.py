"""Budgeted kernel slices: the streaming daemon's deterministic
per-stage deadline (`EventKernel.run_budgeted`)."""

import pytest

from repro.common.errors import SchedulingError
from repro.netsim import EventKernel


def make_kernel_with_events(n=10, spacing=1.0):
    k = EventKernel()
    log = []
    for i in range(n):
        t = spacing * (i + 1)
        k.schedule_at(t, lambda t=t: log.append(t))
    return k, log


def test_budget_exhaustion_stops_without_reaching_the_boundary():
    k, log = make_kernel_with_events(10)
    executed, completed = k.run_budgeted(10.0, max_events=3)
    assert (executed, completed) == (3, False)
    assert log == [1.0, 2.0, 3.0]
    # The clock stays at the last executed event, never at t_end, so a
    # follow-up slice resumes exactly where this one stopped.
    assert k.now() == 3.0
    assert k.pending == 7


def test_follow_up_slice_resumes_and_completes():
    k, log = make_kernel_with_events(10)
    k.run_budgeted(10.0, max_events=3)
    executed, completed = k.run_budgeted(10.0, max_events=1000)
    assert (executed, completed) == (7, True)
    assert log == [float(i) for i in range(1, 11)]
    assert k.now() == 10.0
    assert k.pending == 0


def test_completion_on_empty_queue_advances_to_t_end():
    k = EventKernel()
    assert k.run_budgeted(5.0, max_events=1) == (0, True)
    assert k.now() == 5.0


def test_events_past_the_boundary_are_left_alone():
    k = EventKernel()
    fired = []
    k.schedule_at(20.0, lambda: fired.append(True))
    executed, completed = k.run_budgeted(10.0, max_events=100)
    assert (executed, completed) == (0, True)
    assert k.now() == 10.0
    assert k.pending == 1
    assert fired == []


def test_cancelled_events_do_not_consume_budget():
    k = EventKernel()
    log = []
    k.schedule_at(1.0, lambda: log.append(1.0))
    doomed = k.schedule_at(2.0, lambda: log.append(2.0))
    k.schedule_at(3.0, lambda: log.append(3.0))
    k.cancel(doomed)
    executed, completed = k.run_budgeted(5.0, max_events=2)
    assert (executed, completed) == (2, True)
    assert log == [1.0, 3.0]


def test_run_budgeted_validation():
    k = EventKernel(start=10.0)
    with pytest.raises(SchedulingError):
        k.run_budgeted(5.0, max_events=10)       # t_end in the past
    with pytest.raises(SchedulingError):
        k.run_budgeted(20.0, max_events=0)       # no budget at all


def test_exhausted_slice_replays_identically():
    """The budget is a pure function of the schedule: two kernels with
    the same events slice identically (the property the daemon's stall
    detection rests on)."""
    a, log_a = make_kernel_with_events(8, spacing=0.5)
    b, log_b = make_kernel_with_events(8, spacing=0.5)
    for kernel in (a, b):
        while True:
            _, completed = kernel.run_budgeted(4.0, max_events=3)
            if completed:
                break
    assert log_a == log_b
    assert a.now() == b.now() == 4.0
