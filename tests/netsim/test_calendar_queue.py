"""The calendar-queue scheduler vs the binary-heap ablation.

The kernel promises *identical* dispatch order across schedulers —
golden-master traces are byte-compared elsewhere, so any divergence
here is a correctness bug, not a tuning issue.  These tests drive both
schedulers through the awkward shapes: same-time ties, cancellations,
run_until boundaries, and the retreat path (a callback scheduling
*behind* the day the queue has advanced to).
"""

import pytest

from repro.common.errors import SchedulingError
from repro.netsim import EventKernel
from repro.obs import MetricsRegistry


def make(scheduler):
    return EventKernel(scheduler=scheduler, metrics=MetricsRegistry())


def trace_run(kernel, horizon=500.0, n=300):
    trace = []

    def tick(idx, period):
        def cb():
            trace.append((idx, kernel.now()))
            if kernel.now() + period <= horizon:
                kernel.schedule(period, cb)
        return cb

    for i in range(n):
        period = 7.0 + (i % 23) * 1.3
        kernel.schedule((i % 11) * 0.5, tick(i, period))
    kernel.run_until(horizon)
    return trace


def test_unknown_scheduler_rejected():
    with pytest.raises(SchedulingError):
        EventKernel(scheduler="wheel", metrics=MetricsRegistry())


def test_dispatch_traces_identical_across_schedulers():
    assert trace_run(make("heap")) == trace_run(make("calendar"))


def test_same_time_ties_dispatch_in_schedule_order():
    kernel = make("calendar")
    order = []
    for tag in "abcde":
        kernel.schedule(5.0, lambda tag=tag: order.append(tag))
    kernel.run()
    assert order == list("abcde")


def test_cancel_works_on_calendar_scheduler():
    kernel = make("calendar")
    fired = []
    keep = kernel.schedule(1.0, lambda: fired.append("keep"))
    drop = kernel.schedule(2.0, lambda: fired.append("drop"))
    kernel.cancel(drop)
    kernel.run()
    assert fired == ["keep"]
    assert keep != drop


def test_run_until_boundary_is_inclusive_and_future_stays_queued():
    for scheduler in ("heap", "calendar"):
        kernel = make(scheduler)
        fired = []
        kernel.schedule(10.0, lambda: fired.append("at"))
        kernel.schedule(10.000001, lambda: fired.append("after"))
        assert kernel.run_until(10.0) == 1
        assert fired == ["at"]
        assert kernel.pending == 1
        assert kernel.now() == 10.0


def test_retreat_path_callback_schedules_behind_advanced_day():
    # run_until jumps the clock far past pending work; a later schedule
    # lands *under* the bucket-day the calendar has advanced to, and
    # must still dispatch before the far-future event.
    for scheduler in ("heap", "calendar"):
        kernel = make(scheduler)
        fired = []
        kernel.schedule(100.0, lambda: fired.append("far"))
        kernel.run_until(50.0)
        kernel.schedule(10.0, lambda: fired.append("near"))   # t=60 < 100
        kernel.run()
        assert fired == ["near", "far"], scheduler


def test_sparse_far_future_events_dispatch_in_order():
    kernel = make("calendar")
    fired = []
    for t in (100000.0, 10.0, 5000.0, 0.5, 300.0):
        kernel.schedule(t, lambda t=t: fired.append(t))
    kernel.run()
    assert fired == sorted(fired)
    assert kernel.now() == 100000.0


def test_pending_counts_match_between_schedulers():
    heap, cal = make("heap"), make("calendar")
    for k in (heap, cal):
        for i in range(50):
            k.schedule(float(i), lambda: None)
        k.run_until(25.0)
    assert heap.pending == cal.pending
