"""Property-based tests for the byte-level framing (§4.9 robustness).

Two guarantees the rest of the system leans on:

* any JSON-object payload round-trips exactly, and
* a single flipped bit anywhere in a frame raises
  :class:`~repro.common.errors.NetworkError` — corruption is *never*
  silently decoded into a different payload.

CRC32 detects every single-bit error, and bit flips in the length
header produce a length mismatch, so the second property is exhaustive
over flip positions, not probabilistic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import NetworkError
from repro.netsim.transport import _HEADER, decode_message, encode_message
from repro.obs import MetricsRegistry

# JSON-compatible values.  NaN/inf are excluded because the frame
# format is strict JSON on the wire (json.dumps would emit non-standard
# tokens, and NaN != NaN breaks round-trip equality anyway).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)
_payloads = st.dictionaries(st.text(max_size=12), _json_values, max_size=8)


@settings(max_examples=200, derandomize=True)
@given(payload=_payloads)
def test_roundtrip_arbitrary_json_payloads(payload):
    assert decode_message(encode_message(payload)) == payload


@settings(max_examples=200, derandomize=True)
@given(payload=_payloads, data=st.data())
def test_any_single_bit_flip_is_detected(payload, data):
    """Flip one bit anywhere (header or body): decoding must raise,
    never silently return a different payload."""
    frame = bytearray(encode_message(payload))
    bit = data.draw(st.integers(min_value=0, max_value=len(frame) * 8 - 1))
    frame[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(NetworkError):
        decode_message(bytes(frame))


@settings(max_examples=100, derandomize=True)
@given(payload=_payloads, data=st.data())
def test_truncation_is_detected(payload, data):
    frame = encode_message(payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    with pytest.raises(NetworkError):
        decode_message(frame[:cut])


def test_non_object_payload_rejected():
    # A frame whose body is valid JSON but not an object is line noise.
    body = b"[1,2,3]"
    import struct
    import zlib

    frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
    with pytest.raises(NetworkError):
        decode_message(frame)


def test_decode_errors_are_counted_by_reason():
    reg = MetricsRegistry()
    good = encode_message({"a": 1}, reg)
    assert decode_message(good, reg) == {"a": 1}
    frame = bytearray(good)
    frame[-1] ^= 0x01
    with pytest.raises(NetworkError):
        decode_message(bytes(frame), reg)
    with pytest.raises(NetworkError):
        decode_message(b"", reg)
    snap = reg.snapshot()["counters"]
    assert snap["netsim.transport.decode_errors{reason=checksum}"] == 1.0
    assert snap["netsim.transport.decode_errors{reason=truncated}"] == 1.0
    assert snap["netsim.transport.frames_encoded"] == 1.0
    assert snap["netsim.transport.frames_decoded"] == 1.0


def test_header_size_unchanged():
    # The data-rate accounting (repro.hpc.datarates) assumes an 8-byte
    # frame header; fail loudly if the wire format drifts.
    assert _HEADER.size == 8
