"""Edge cases at the fault boundary: in-flight frames vs. outages,
late duplicate replies, and addressing errors that must name names."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import NetworkError
from repro.netsim import EventKernel, Network, RpcEndpoint
from repro.netsim.transport import encode_message
from repro.obs import MetricsRegistry


def make_net(seed=0, metrics=None):
    kernel = EventKernel(metrics=metrics)
    return kernel, Network(kernel, np.random.default_rng(seed), metrics=metrics)


# -- outage semantics ----------------------------------------------------------

def test_frames_in_flight_survive_set_down():
    """``Link.down`` is checked at send time only: a frame already on
    the wire when the link drops still arrives.  A partition cuts new
    traffic, it does not vaporize photons mid-flight."""
    kernel, net = make_net()
    inbox = []
    net.attach("b", lambda s, f: inbox.append(f))
    assert net.send("a", "b", b"before")
    net.set_down("a", "b", True)
    assert not net.send("a", "b", b"during")
    kernel.run()
    assert inbox == [b"before"]


def test_send_after_restore_delivers_again():
    kernel, net = make_net()
    inbox = []
    net.attach("b", lambda s, f: inbox.append(f))
    net.set_down("a", "b", True)
    assert not net.send("a", "b", b"lost")
    net.set_down("a", "b", False)
    assert net.send("a", "b", b"back")
    kernel.run()
    assert inbox == [b"back"]


# -- addressing errors name both endpoints ------------------------------------

def test_send_to_unattached_endpoint_names_both_ends():
    _, net = make_net()
    with pytest.raises(NetworkError) as err:
        net.send("dc:0", "ghost", b"x")
    assert "'dc:0'" in str(err.value)
    assert "'ghost'" in str(err.value)
    assert "never attached" in str(err.value)


def test_invalid_link_pair_names_both_ends():
    _, net = make_net()
    for src, dst in [("", "b"), ("a", ""), ("a", "a")]:
        with pytest.raises(NetworkError) as err:
            net.link(src, dst)
        assert repr(src) in str(err.value)
        assert repr(dst) in str(err.value)


# -- late duplicate replies ----------------------------------------------------

@settings(max_examples=25, derandomize=True, deadline=None)
@given(n_duplicates=st.integers(min_value=1, max_value=4),
       spacing=st.floats(min_value=0.001, max_value=2.0))
def test_late_duplicate_reply_is_ignored(n_duplicates, spacing):
    """However many copies of a reply straggle in after the first, the
    callback fires once and ``netsim.rpc.in_flight`` stays consistent."""
    metrics = MetricsRegistry()
    kernel, net = make_net(metrics=metrics)
    server = RpcEndpoint("pdme", net, kernel, metrics=metrics)
    server.register("ping", lambda p: {"pong": True})
    client = RpcEndpoint("dc:0", net, kernel, metrics=metrics)
    replies = []
    req_id = client.call("pdme", "ping", {}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"pong": True}]

    # A retransmitting server (or a mirroring switch) re-sends the
    # same reply frame; deliver each copy at a different time.
    frame = encode_message(
        {"kind": "reply", "id": req_id, "result": {"pong": True}}, metrics
    )
    for i in range(n_duplicates):
        kernel.schedule(i * spacing, lambda: net.send("pdme", "dc:0", frame))
    kernel.run()

    assert replies == [{"pong": True}]          # on_reply fired exactly once
    assert not client._pending                  # nothing resurrected
    gauge = metrics.snapshot()["gauges"]["netsim.rpc.in_flight{endpoint=dc:0}"]
    assert gauge == 0.0


def test_duplicate_reply_racing_a_retry_settles_once():
    """The nastier interleaving: the original reply was delayed past
    the timeout, a retry went out, and then *both* replies land."""
    metrics = MetricsRegistry()
    kernel, net = make_net(metrics=metrics)
    calls = []
    server = RpcEndpoint("pdme", net, kernel, metrics=metrics)
    server.register("ping", lambda p: calls.append(1) or {"pong": True})
    client = RpcEndpoint("dc:0", net, kernel, timeout=0.5, retries=2,
                         metrics=metrics)
    # Slow the forward path so the first request's reply arrives after
    # the client has already retried.
    from dataclasses import replace
    link = net.link("dc:0", "pdme")
    link.config = replace(link.config, latency=0.6)
    replies = []
    client.call("pdme", "ping", {}, on_reply=replies.append)
    kernel.run()
    assert len(calls) >= 2                      # the server really ran twice
    assert len(replies) == 1                    # the client settled once
    assert not client._pending
    gauge = metrics.snapshot()["gauges"]["netsim.rpc.in_flight{endpoint=dc:0}"]
    assert gauge == 0.0
