"""Heartbeat emitter/monitor unit tests on simulated time."""

import numpy as np
import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NetworkError
from repro.netsim import EventKernel, Network, RpcEndpoint
from repro.obs import MetricsRegistry
from repro.supervisor import DcHealth, HeartbeatEmitter, HeartbeatMonitor


def make_monitor(**kwargs):
    clock = SimulatedClock()
    defaults = dict(suspect_after=40.0, down_after=90.0, metrics=MetricsRegistry())
    defaults.update(kwargs)
    return clock, HeartbeatMonitor(clock, **defaults)


def test_registered_dc_starts_alive_with_grace():
    clock, monitor = make_monitor()
    monitor.register("dc:0")
    assert monitor.state("dc:0") is DcHealth.ALIVE
    clock.advance(39.0)
    assert monitor.state("dc:0") is DcHealth.ALIVE


def test_silence_degrades_alive_suspect_down():
    clock, monitor = make_monitor()
    monitor.register("dc:0")
    clock.advance(40.0)
    assert monitor.state("dc:0") is DcHealth.SUSPECT
    clock.advance(50.0)
    assert monitor.state("dc:0") is DcHealth.DOWN
    assert [(dc, old, new) for _, dc, old, new in monitor.transitions] == [
        ("dc:0", "alive", "suspect"),
        ("dc:0", "suspect", "down"),
    ]


def test_beat_revives_a_down_dc():
    clock, monitor = make_monitor()
    monitor.register("dc:0")
    clock.advance(100.0)
    assert monitor.state("dc:0") is DcHealth.DOWN
    monitor.beat("dc:0")
    assert monitor.state("dc:0") is DcHealth.ALIVE
    assert monitor.transitions[-1][3] == "alive"


def test_unknown_dc_raises_and_empty_beat_ignored():
    _, monitor = make_monitor()
    with pytest.raises(NetworkError):
        monitor.state("dc:ghost")
    monitor.beat("")            # corrupted frame names nobody: no crash
    assert monitor.states() == {}


def test_monitor_validation():
    clock = SimulatedClock()
    with pytest.raises(NetworkError):
        HeartbeatMonitor(clock, suspect_after=90.0, down_after=40.0,
                         metrics=MetricsRegistry())


def test_flap_counts_count_completed_degradation_cycles():
    """The state gauge reads a healthy 0 between bounces; the flap
    counter is what actually exposes an unstable link."""
    reg = MetricsRegistry()
    clock, monitor = make_monitor(metrics=reg)
    monitor.register("dc:0")
    monitor.register("dc:1")
    assert monitor.flap_counts() == {}      # registration is not a flap

    # dc:0 bounces twice through SUSPECT and once through DOWN; dc:1
    # degrades but never recovers, so it never completes a cycle.
    for _ in range(2):
        clock.advance(45.0)
        monitor.sweep()
        assert monitor.state("dc:0") is DcHealth.SUSPECT
        monitor.beat("dc:0")
        assert monitor.state("dc:0") is DcHealth.ALIVE
    clock.advance(100.0)
    monitor.sweep()
    assert monitor.state("dc:0") is DcHealth.DOWN
    monitor.beat("dc:0")

    assert monitor.flap_counts() == {"dc:0": 3}
    assert reg.counter("supervisor.heartbeat.flaps", dc="dc:0").value == 3
    assert reg.counter("supervisor.heartbeat.flaps", dc="dc:1").value == 0


def test_steady_beats_never_count_as_flaps():
    clock, monitor = make_monitor()
    monitor.register("dc:0")
    for _ in range(10):
        clock.advance(15.0)
        monitor.beat("dc:0")
        monitor.sweep()
    assert monitor.flap_counts() == {}


def test_emitter_beats_over_real_rpc():
    metrics = MetricsRegistry()
    kernel = EventKernel(metrics=metrics)
    network = Network(kernel, np.random.default_rng(0), metrics=metrics)
    monitor = HeartbeatMonitor(kernel.clock, metrics=metrics)
    pdme_ep = RpcEndpoint("pdme", network, kernel, metrics=metrics)
    monitor.serve_on(pdme_ep)
    dc_ep = RpcEndpoint("dc:0", network, kernel, metrics=metrics)
    emitter = HeartbeatEmitter(dc_ep, "pdme", metrics=metrics)
    monitor.register("dc:0")

    # Beat every 15 s: stays ALIVE indefinitely.
    for _ in range(10):
        emitter.emit(kernel.now())
        kernel.run_until(kernel.now() + 15.0)
        monitor.sweep()
    assert monitor.state("dc:0") is DcHealth.ALIVE
    assert emitter.seq == 10

    # Silence: SUSPECT then DOWN; a resumed beat revives.
    kernel.run_until(kernel.now() + 200.0)
    assert monitor.state("dc:0") is DcHealth.DOWN
    emitter.emit(kernel.now())
    kernel.run()
    assert monitor.state("dc:0") is DcHealth.ALIVE


def test_emitter_survives_network_outage():
    metrics = MetricsRegistry()
    kernel = EventKernel(metrics=metrics)
    network = Network(kernel, np.random.default_rng(0), metrics=metrics)
    pdme_ep = RpcEndpoint("pdme", network, kernel, metrics=metrics)
    monitor = HeartbeatMonitor(kernel.clock, metrics=metrics)
    monitor.serve_on(pdme_ep)
    dc_ep = RpcEndpoint("dc:0", network, kernel, metrics=metrics)
    emitter = HeartbeatEmitter(dc_ep, "pdme", metrics=metrics)
    monitor.register("dc:0")
    network.set_down("dc:0", "pdme", True)
    emitter.emit(kernel.now())          # delivery fails; must not raise
    kernel.run()
    kernel.run_until(100.0)
    assert monitor.state("dc:0") is DcHealth.DOWN
