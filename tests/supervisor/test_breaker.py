"""Circuit breaker unit tests, driven by an explicit simulated clock."""

import numpy as np
import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NetworkError
from repro.netsim import EventKernel, Network, RpcEndpoint
from repro.obs import MetricsRegistry
from repro.supervisor import (
    BreakerState,
    BreakerTrippedError,
    CircuitBreaker,
    GuardedEndpoint,
)


def make_breaker(**kwargs):
    clock = SimulatedClock()
    defaults = dict(failure_threshold=3, open_seconds=30.0, metrics=MetricsRegistry())
    defaults.update(kwargs)
    return clock, CircuitBreaker(clock, name="dc:test", **defaults)


def test_starts_closed_and_allows():
    _, breaker = make_breaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_trips_open_after_consecutive_failures():
    _, breaker = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()


def test_success_resets_the_failure_streak():
    _, breaker = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_half_open_admits_exactly_one_probe():
    clock, breaker = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.allow()                      # the probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow()                  # second caller refused
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_failed_probe_reopens_and_restarts_cooldown():
    clock, breaker = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    clock.advance(29.0)
    assert not breaker.allow()                  # cool-down restarted
    clock.advance(1.0)
    assert breaker.allow()


def test_late_failure_while_open_does_not_extend_cooldown():
    clock, breaker = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.advance(20.0)
    breaker.record_failure()                    # straggler from before the trip
    clock.advance(10.0)
    assert breaker.allow()                      # original cool-down expired


def test_transition_log_is_timestamped():
    clock, breaker = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    breaker.allow()
    breaker.record_success()
    assert breaker.transitions == [
        (0.0, "closed", "open"),
        (30.0, "open", "half-open"),
        (30.0, "half-open", "closed"),
    ]


def test_validation():
    clock = SimulatedClock()
    with pytest.raises(NetworkError):
        CircuitBreaker(clock, failure_threshold=0, metrics=MetricsRegistry())
    with pytest.raises(NetworkError):
        CircuitBreaker(clock, open_seconds=0.0, metrics=MetricsRegistry())


# -- GuardedEndpoint over the real RPC stack ---------------------------------

def make_rpc_pair(metrics):
    kernel = EventKernel(metrics=metrics)
    network = Network(kernel, np.random.default_rng(0), metrics=metrics)
    server = RpcEndpoint("pdme", network, kernel, metrics=metrics)
    server.register("ping", lambda p: {"pong": True})
    client = RpcEndpoint("dc:0", network, kernel, metrics=metrics)
    breaker = CircuitBreaker(
        kernel.clock, name="dc:0", failure_threshold=2, open_seconds=30.0,
        metrics=metrics,
    )
    return kernel, network, GuardedEndpoint(client, breaker), breaker


def test_guarded_endpoint_records_success():
    metrics = MetricsRegistry()
    kernel, _, guarded, breaker = make_rpc_pair(metrics)
    replies = []
    guarded.call("pdme", "ping", {}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"pong": True}]
    assert breaker.state is BreakerState.CLOSED


def test_guarded_endpoint_trips_on_outage_and_fails_fast():
    metrics = MetricsRegistry()
    kernel, network, guarded, breaker = make_rpc_pair(metrics)
    network.set_down("dc:0", "pdme", True)
    errors = []
    for _ in range(2):
        guarded.call("pdme", "ping", {}, on_error=errors.append)
        kernel.run()
    assert breaker.state is BreakerState.OPEN
    # Next call is refused locally, synchronously, with no frames sent.
    sent_before = network.stats()["sent"]
    req = guarded.call("pdme", "ping", {}, on_error=errors.append)
    assert req == -1
    assert isinstance(errors[-1], BreakerTrippedError)
    assert network.stats()["sent"] == sent_before


def test_guarded_endpoint_probe_recloses_after_recovery():
    metrics = MetricsRegistry()
    kernel, network, guarded, breaker = make_rpc_pair(metrics)
    network.set_down("dc:0", "pdme", True)
    for _ in range(2):
        guarded.call("pdme", "ping", {})
        kernel.run()
    assert breaker.state is BreakerState.OPEN
    network.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + 30.0)
    replies = []
    guarded.call("pdme", "ping", {}, on_reply=replies.append)
    kernel.run()
    assert replies == [{"pong": True}]
    assert breaker.state is BreakerState.CLOSED


def test_guarded_endpoint_delegates_server_side():
    metrics = MetricsRegistry()
    _, _, guarded, _ = make_rpc_pair(metrics)
    assert guarded.name == "dc:0"
    guarded.register("echo", lambda p: p)      # __getattr__ delegation
    assert "echo" in guarded.endpoint._methods
