"""Sensor quarantine unit tests on simulated time."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import AcquisitionError
from repro.obs import MetricsRegistry
from repro.supervisor import SensorQuarantine


def make_quarantine(**kwargs):
    clock = SimulatedClock()
    defaults = dict(consecutive_alarms=3, cooldown=1800.0, metrics=MetricsRegistry())
    defaults.update(kwargs)
    return clock, SensorQuarantine(clock, **defaults)


def test_streak_quarantines_after_threshold():
    clock, q = make_quarantine()
    assert q.observe([0]) == []
    clock.advance(60.0)
    assert q.observe([0]) == []
    clock.advance(60.0)
    assert q.observe([0]) == [0]
    assert q.is_quarantined(0)
    assert q.active() == [0]


def test_clean_scan_breaks_the_streak():
    clock, q = make_quarantine()
    q.observe([0])
    clock.advance(60.0)
    q.observe([0])
    clock.advance(60.0)
    q.observe([])               # intermittent: machinery, not a dead sensor
    clock.advance(60.0)
    q.observe([0])
    clock.advance(60.0)
    q.observe([0])
    assert not q.is_quarantined(0)
    assert q.observe([0]) == [0]


def test_cooldown_releases_and_requires_a_fresh_streak():
    clock, q = make_quarantine(cooldown=100.0)
    for _ in range(3):
        q.observe([0])
    assert q.is_quarantined(0)
    clock.advance(100.0)
    assert not q.is_quarantined(0)
    assert q.events[-1][2] == "released"
    # One more alarm is not enough: the streak restarted.
    assert q.observe([0]) == []
    assert not q.is_quarantined(0)


def test_quarantined_channel_does_not_accumulate_streak():
    clock, q = make_quarantine(consecutive_alarms=2, cooldown=100.0)
    q.observe([0])
    assert q.observe([0]) == [0]
    q.observe([0])              # alarms while quarantined are ignored
    clock.advance(100.0)
    assert q.observe([0]) == []  # needs a new full streak


def test_manual_release():
    clock, q = make_quarantine(consecutive_alarms=1)
    assert q.observe([3]) == [3]
    q.release(3)
    assert not q.is_quarantined(3)
    assert [what for _, _, what in q.events] == ["quarantined", "released"]


def test_independent_channels():
    _, q = make_quarantine(consecutive_alarms=2)
    q.observe([0, 1])
    assert sorted(q.observe([0, 1])) == [0, 1]
    assert q.active() == [0, 1]
    assert not q.is_quarantined(2)


def test_validation():
    clock = SimulatedClock()
    with pytest.raises(AcquisitionError):
        SensorQuarantine(clock, consecutive_alarms=0, metrics=MetricsRegistry())
    with pytest.raises(AcquisitionError):
        SensorQuarantine(clock, cooldown=0.0, metrics=MetricsRegistry())
