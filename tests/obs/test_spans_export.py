import io
import json

import pytest

from repro.common.clock import SimulatedClock
from repro.obs import MetricsRegistry, Tracer, export_jsonl, snapshot_json


def make_tracer(max_spans: int = 1024):
    reg = MetricsRegistry()
    clock = SimulatedClock()
    return reg, clock, Tracer(clock, reg, max_spans=max_spans)


def test_span_nesting_parent_child():
    reg, clock, tracer = make_tracer()
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            clock.advance(0.5)
        with tracer.span("inner2") as inner2:
            pass
    assert outer.parent_id is None and outer.depth == 0
    assert inner.parent_id == outer.span_id and inner.depth == 1
    assert inner2.parent_id == outer.span_id and inner2.depth == 1
    assert inner.duration == 0.5
    assert outer.duration == 1.5
    # Children finish before their parent.
    assert [s.name for s in tracer.finished] == ["inner", "inner2", "outer"]


def test_active_span_tracking():
    _, _, tracer = make_tracer()
    assert tracer.active is None
    with tracer.span("a") as a:
        assert tracer.active is a
        with tracer.span("b") as b:
            assert tracer.active is b
        assert tracer.active is a
    assert tracer.active is None


def test_span_closed_on_exception():
    _, clock, tracer = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            clock.advance(2.0)
            raise RuntimeError("suite died")
    assert tracer.active is None
    assert tracer.finished[-1].name == "boom"
    assert tracer.finished[-1].duration == 2.0


def test_span_durations_feed_histograms():
    reg, clock, tracer = make_tracer()
    for _ in range(3):
        with tracer.span("dc.dispatch"):
            clock.advance(0.2)
    h = reg.histogram("trace.dc.dispatch.seconds")
    assert h.count == 3
    assert h.sum == pytest.approx(0.6)


def test_finished_ring_is_bounded():
    _, _, tracer = make_tracer(max_spans=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert tracer.started == 10
    assert [s.name for s in tracer.finished] == ["s6", "s7", "s8", "s9"]


def test_open_span_duration_raises():
    _, _, tracer = make_tracer()
    with tracer.span("open") as s:
        with pytest.raises(ValueError):
            _ = s.duration


def test_snapshot_json_includes_spans():
    reg, clock, tracer = make_tracer()
    reg.counter("c").inc()
    with tracer.span("op", dc="dc:0"):
        clock.advance(1.0)
    doc = json.loads(snapshot_json(reg, tracer))
    assert doc["counters"]["c"] == 1.0
    (span,) = doc["spans"]
    assert span["name"] == "op"
    assert span["attrs"] == {"dc": "dc:0"}
    assert span["end"] - span["start"] == 1.0


def test_export_jsonl_roundtrips():
    reg, clock, tracer = make_tracer()
    reg.counter("dc.uplink.delivered", dc="dc:0").inc(5)
    reg.gauge("dc.uplink.queue_depth", dc="dc:0").set(2)
    reg.histogram("netsim.link.delay_seconds").observe(0.004)
    with tracer.span("op"):
        clock.advance(1.5)
    buf = io.StringIO()
    n = export_jsonl(reg, buf, clock=clock, tracer=tracer)
    lines = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert n == len(lines) == 5  # trace histogram + 3 metrics + 1 span
    by_series = {l.get("series"): l for l in lines if "series" in l}
    counter = by_series["dc.uplink.delivered{dc=dc:0}"]
    assert counter["type"] == "counter"
    assert counter["value"] == 5.0
    assert counter["labels"] == {"dc": "dc:0"}
    assert counter["t"] == 1.5  # simulated clock, not wall time
    hist = by_series["netsim.link.delay_seconds"]
    assert hist["type"] == "histogram"
    assert sum(hist["counts"]) == 1
    (span,) = [l for l in lines if l["type"] == "span"]
    assert span["name"] == "op"


def test_export_jsonl_deterministic():
    def dump() -> str:
        reg, clock, tracer = make_tracer()
        with tracer.span("a"):
            clock.advance(1.0)
        reg.counter("z").inc()
        reg.counter("a").inc()
        buf = io.StringIO()
        export_jsonl(reg, buf, clock=clock, tracer=tracer)
        return buf.getvalue()

    assert dump() == dump()
