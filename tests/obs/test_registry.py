import json

import pytest

from repro.common.errors import ObservabilityError
from repro.common.rng import make_rng
from repro.obs import (
    DEFAULT_TIME_EDGES,
    MetricsRegistry,
    default_registry,
    render_series,
    use_registry,
)


def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("x.count")
    assert c.inc() == 1.0
    assert c.inc(2.5) == 3.5
    assert c.inc(0) == 3.5  # zero is allowed (no-op)
    with pytest.raises(ObservabilityError):
        c.inc(-1)
    assert c.value == 3.5  # failed inc left the value untouched


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("x.depth")
    g.set(10)
    g.dec(3)
    g.inc(1)
    assert g.value == 8.0


def test_get_or_create_returns_same_series():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.counter("a", dc="0") is reg.counter("a", dc="0")
    assert reg.counter("a", dc="0") is not reg.counter("a", dc="1")
    assert len(reg) == 3


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ObservabilityError):
        reg.gauge("x")
    with pytest.raises(ObservabilityError):
        reg.histogram("x")


def test_histogram_edge_conflict_rejected():
    reg = MetricsRegistry()
    reg.histogram("h", edges=(1.0, 2.0))
    with pytest.raises(ObservabilityError):
        reg.histogram("h", edges=(1.0, 3.0))
    # Same edges: same series.
    assert reg.histogram("h", edges=(1.0, 2.0)).count == 0


def test_histogram_edges_must_increase():
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.histogram("h", edges=())
    with pytest.raises(ObservabilityError):
        reg.histogram("h2", edges=(2.0, 1.0))
    with pytest.raises(ObservabilityError):
        reg.histogram("h3", edges=(1.0, 1.0))


def test_histogram_bucketing():
    """Bucket i covers [edges[i-1], edges[i]); under/overflow exist."""
    reg = MetricsRegistry()
    h = reg.histogram("h", edges=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 9.99, 10.0, 99.0, 100.0, 1e6):
        h.observe(v)
    # counts: (<1), [1,10), [10,100), [100,inf)
    assert h.counts == [1, 2, 2, 2]
    assert h.count == 7
    assert h.min == 0.5
    assert h.max == 1e6
    assert h.sum == pytest.approx(0.5 + 1.0 + 9.99 + 10.0 + 99.0 + 100.0 + 1e6)


def test_histogram_snapshot_shape():
    reg = MetricsRegistry()
    h = reg.histogram("h", edges=DEFAULT_TIME_EDGES)
    snap = h.snapshot()
    assert len(snap["counts"]) == len(DEFAULT_TIME_EDGES) + 1
    assert "min" not in snap  # empty histogram has no extrema
    h.observe(0.2)
    assert h.snapshot()["min"] == 0.2


def test_render_series_sorts_labels():
    assert render_series("a.b", ()) == "a.b"
    reg = MetricsRegistry()
    c = reg.counter("a.b", z="1", a="2")
    assert render_series(c.name, c.labels) == "a.b{a=2,z=1}"


def test_snapshot_deterministic_under_seeded_load():
    """Identical seeded workloads produce byte-identical snapshots."""

    def run(seed: int) -> str:
        reg = MetricsRegistry()
        rng = make_rng(seed)
        for _ in range(500):
            kind = int(rng.integers(0, 3))
            v = float(rng.uniform(0, 120))
            if kind == 0:
                reg.counter("load.count", src=str(int(rng.integers(0, 4)))).inc()
            elif kind == 1:
                reg.gauge("load.depth").set(v)
            else:
                reg.histogram("load.delay_seconds").observe(v)
        return json.dumps(reg.snapshot(), sort_keys=True)

    assert run(7) == run(7)
    assert run(7) != run(8)  # the load actually differs by seed


def test_snapshot_insertion_order_independent():
    a = MetricsRegistry()
    a.counter("one").inc()
    a.counter("two").inc(2)
    b = MetricsRegistry()
    b.counter("two").inc(2)
    b.counter("one").inc()
    assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())


def test_subsystems_prefixes():
    reg = MetricsRegistry()
    reg.counter("dc.uplink.delivered")
    reg.counter("dc.uplink.shed")
    reg.counter("fusion.ingested")
    assert reg.subsystems() == ["dc.uplink", "fusion"]


def test_use_registry_swaps_default():
    outer = default_registry()
    with use_registry() as reg:
        assert default_registry() is reg
        assert reg is not outer
        with use_registry(outer):
            assert default_registry() is outer
        assert default_registry() is reg
    assert default_registry() is outer
