import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.hpc import (
    ChannelSummary,
    EmbeddedBudget,
    FeaturePipeline,
    FleetConfig,
    LoadGenerator,
    check_sbfr_budget,
    fleet_data_rate,
    parallel_feature_extraction,
    serial_feature_extraction,
)
from repro.hpc.budget import PAPER_SBFR_BUDGET, interpreter_code_bytes
from repro.hpc.pipeline import naive_process
from repro.sbfr import build_spike_machine, build_stiction_machine


# -- data rates -----------------------------------------------------------------

def test_fleet_rate_reaches_millions():
    """§1: 'millions of data points per second' fleet-wide."""
    rates = fleet_data_rate(FleetConfig())
    assert rates.fleet > 1e6
    assert rates.per_ship * 30 == pytest.approx(rates.fleet)
    assert rates.per_dc * 200 == pytest.approx(rates.per_ship)


def test_fleet_config_validation():
    with pytest.raises(MprosError):
        FleetConfig(n_ships=0)
    with pytest.raises(MprosError):
        FleetConfig(dynamic_duty_cycle=0.0)


def test_load_generator_block_geometry():
    gen = LoadGenerator(8, 1024, np.random.default_rng(0))
    block = gen.next_block()
    assert block.shape == (8, 1024)
    assert gen.points_per_block == 8 * 1024
    assert gen.blocks_generated == 1


def test_load_generator_reuses_buffer():
    gen = LoadGenerator(2, 64, np.random.default_rng(0))
    a = gen.next_block()
    b = gen.next_block()
    assert a is b  # in-place refill, no per-block allocation


def test_load_generator_validation():
    with pytest.raises(MprosError):
        LoadGenerator(0, 10, np.random.default_rng(0))


# -- pipeline ---------------------------------------------------------------------

def test_pipeline_matches_naive_reference():
    rng = np.random.default_rng(1)
    block = rng.normal(size=(6, 512))
    bands = ((0.0, 1000.0), (1000.0, 4000.0))
    pipe = FeaturePipeline(6, 512, 16384.0, bands)
    fast = pipe.process(block)
    slow = naive_process(block, 16384.0, bands)
    assert np.allclose(fast.rms, slow.rms)
    assert np.allclose(fast.peak, slow.peak)
    assert np.allclose(fast.crest, slow.crest)
    assert np.allclose(fast.band_energy, slow.band_energy)


def test_pipeline_counts_throughput():
    pipe = FeaturePipeline(4, 256, 8192.0)
    for _ in range(3):
        pipe.process(np.zeros((4, 256)))
    assert pipe.blocks_processed == 3
    assert pipe.points_processed == 3 * 4 * 256


def test_pipeline_validates():
    with pytest.raises(MprosError):
        FeaturePipeline(0, 256, 8192.0)
    with pytest.raises(MprosError):
        FeaturePipeline(4, 256, -1.0)
    pipe = FeaturePipeline(4, 256, 8192.0)
    with pytest.raises(MprosError):
        pipe.process(np.zeros((4, 128)))


def test_pipeline_zero_signal_safe():
    pipe = FeaturePipeline(2, 64, 8192.0)
    s = pipe.process(np.zeros((2, 64)))
    assert np.all(s.rms == 0) and np.all(s.crest == 0)


# -- parallel farm -------------------------------------------------------------------

def test_parallel_matches_serial():
    rng = np.random.default_rng(2)
    blocks = rng.normal(size=(8, 4, 256))
    serial = serial_feature_extraction(blocks, 8192.0)
    parallel = parallel_feature_extraction(blocks, 8192.0, n_workers=2)
    assert serial.shape == (8, 4, 6)
    assert np.allclose(serial, parallel)


def test_parallel_single_worker_shortcut():
    blocks = np.random.default_rng(3).normal(size=(2, 2, 64))
    out = parallel_feature_extraction(blocks, 8192.0, n_workers=1)
    assert out.shape == (2, 2, 6)


def test_parallel_validation():
    with pytest.raises(MprosError):
        parallel_feature_extraction(np.zeros((2, 2)), 8192.0)
    with pytest.raises(MprosError):
        parallel_feature_extraction(np.zeros((2, 2, 64)), 8192.0, n_workers=0)


# -- budgets ---------------------------------------------------------------------------

def test_budget_validation():
    with pytest.raises(MprosError):
        EmbeddedBudget(total_bytes=0)


def test_interpreter_code_bytes_order_of_paper():
    """Paper: interpreter ≈ 2000 bytes; ours lands the same order."""
    size = interpreter_code_bytes()
    assert 300 <= size <= 8000


def test_hundred_machines_fit_paper_budget():
    """§6.3: 100 machines + interpreter < 32 KB, cycle < 4 ms."""
    machines = [build_spike_machine(i % 16, self_index=2 * i) for i in range(50)]
    machines += [
        build_stiction_machine(i % 16, spike_machine=2 * i, self_index=2 * i + 1)
        for i in range(50)
    ]
    report = check_sbfr_budget(machines, cycle_seconds=1e-3)
    assert len(machines) == PAPER_SBFR_BUDGET.n_machines
    assert report.fits_memory
    assert report.fits_cycle
    assert "OK" in report.describe()


def test_budget_report_flags_overruns():
    report = check_sbfr_budget(
        [build_spike_machine(0)], cycle_seconds=10.0,
        budget=EmbeddedBudget(total_bytes=10, cycle_seconds=1e-3),
    )
    assert not report.fits_memory and not report.fits_cycle
    assert "OVER" in report.describe()
