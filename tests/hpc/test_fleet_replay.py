"""Multi-DC replay executor: determinism, merging, and the bench harness."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.hpc import DcReplaySpec, merge_fleet_reports, replay_dc, replay_fleet

REPO_ROOT = Path(__file__).resolve().parents[2]


def _key(r):
    return (
        r.sensed_object_id, r.machine_condition_id, r.timestamp,
        r.severity, r.belief, r.explanation, r.dc_id, r.degraded,
    )


@pytest.fixture(scope="module")
def small_fleet_specs():
    from repro.system import build_fleet_specs

    return build_fleet_specs(n_dcs=3, machines_per_dc=1, hours=0.5, seed=3)


def test_replay_dc_is_deterministic(small_fleet_specs):
    spec = small_fleet_specs[0]
    a = [_key(r) for r in replay_dc(spec)]
    b = [_key(r) for r in replay_dc(spec)]
    assert a == b
    assert a, "faulted DC produced no reports"


def test_serial_and_parallel_replay_bit_identical(small_fleet_specs):
    serial = replay_fleet(small_fleet_specs, n_workers=1)
    pooled = replay_fleet(small_fleet_specs, n_workers=3)
    assert [_key(r) for r in serial] == [_key(r) for r in pooled]


def test_merge_is_stable_and_timestamp_sorted(small_fleet_specs):
    streams = [replay_dc(s) for s in small_fleet_specs]
    merged = merge_fleet_reports(streams)
    times = [r.timestamp for r in merged]
    assert times == sorted(times)
    # Same-timestamp reports keep DC order (stable sort).
    assert len(merged) == sum(len(s) for s in streams)
    assert merge_fleet_reports(streams) == merged


def test_spec_machine_ids_are_channel_ordered():
    spec = DcReplaySpec(dc_index=2, seed=0, n_machines=3)
    assert spec.machine_ids() == (
        "obj:fleet-dc2-m0", "obj:fleet-dc2-m1", "obj:fleet-dc2-m2"
    )


def test_replay_validation_errors():
    with pytest.raises(MprosError):
        replay_dc(DcReplaySpec(dc_index=0, seed=0, n_machines=0))
    with pytest.raises(MprosError):
        replay_fleet([], n_workers=0)


def test_replay_fleet_to_model_posts_all_reports(small_fleet_specs):
    from repro.system import replay_fleet_to_model

    model, reports = replay_fleet_to_model(small_fleet_specs)
    assert reports, "fleet scenario produced no reports"
    assert model.report_count == len(reports)
    for spec in small_fleet_specs:
        for machine_id in spec.machine_ids():
            assert machine_id in model


# -- bench harness ------------------------------------------------------------

def test_histogram_percentiles_interpolate():
    from repro.bench import _histogram_stats
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    hist = reg.histogram("bench.test.seconds", edges=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        hist.observe(v)
    snap = hist.snapshot()
    stats = _histogram_stats(tuple(snap["edges"]), snap["counts"])
    assert 1.0 <= stats["p50"] <= 2.0
    assert 2.0 <= stats["p99"] <= 4.0
    empty = _histogram_stats((1.0, 2.0), [0, 0, 0])
    assert np.isnan(empty["p50"]) and np.isnan(empty["p99"])


def test_bench_dsp_stage_reports_equal_work():
    from repro.bench import _bench_dsp
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    out = _bench_dsp(reg, quick=True)
    assert out["scalar"]["signals_per_s"] > 0
    assert out["batched"]["signals_per_s"] > 0
    assert out["speedup"] > 0
    # Every stage feeds its latencies into real obs histograms.
    names = reg.snapshot()["histograms"].keys()
    assert any("bench.dsp.scalar" in n for n in names)
    assert any("bench.dsp.batched" in n for n in names)


def test_regression_gate_passes_and_fails(tmp_path):
    script = REPO_ROOT / "scripts" / "check_bench_regression.py"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"ratios": {"scan_batch_speedup": 2.0}}))

    good = tmp_path / "good.json"
    good.write_text(json.dumps({"ratios": {"scan_batch_speedup": 1.9}}))
    ok = subprocess.run(
        [sys.executable, str(script), str(good), str(baseline)],
        capture_output=True, text=True,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"ratios": {"scan_batch_speedup": 1.0}}))
    fail = subprocess.run(
        [sys.executable, str(script), str(bad), str(baseline)],
        capture_output=True, text=True,
    )
    assert fail.returncode == 1
    assert "REGRESSION" in fail.stdout

    missing = tmp_path / "missing.json"
    missing.write_text(json.dumps({"ratios": {}}))
    gone = subprocess.run(
        [sys.executable, str(script), str(missing), str(baseline)],
        capture_output=True, text=True,
    )
    assert gone.returncode == 1
