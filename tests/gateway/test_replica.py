"""Read-replica semantics: merge order, read-only enforcement,
per-thread connections."""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import GatewayError, OosmError
from repro.gateway.replica import ReadReplica
from repro.oosm.persistence import ReportLogReader, ReportStore
from repro.protocol.report import FailurePredictionReport


def _report(i: int) -> FailurePredictionReport:
    return FailurePredictionReport(
        knowledge_source_id="ks:rep",
        sensed_object_id=f"obj:m{i % 3}",
        machine_condition_id="mc:motor-imbalance",
        severity=0.4,
        belief=0.3,
        timestamp=float(i),
        dc_id="dc:rep",
    )


@pytest.fixture
def partitions(tmp_path):
    """Two partition logs holding interleaved global intake_seqs."""
    paths = [tmp_path / "p0.sqlite", tmp_path / "p1.sqlite"]
    stores = [ReportStore(p) for p in paths]
    # Even seqs to shard 0, odd to shard 1 — a merge must interleave.
    for shard in (0, 1):
        seqs = [s for s in range(20) if s % 2 == shard]
        stores[shard].ingest_batch(
            [_report(s) for s in seqs],
            [f"dc:rep#{s}" for s in seqs],
            intake_seqs=seqs,
        )
    return paths


def test_merge_reproduces_global_arrival_order(partitions):
    replica = ReadReplica(partitions)
    rows = replica.page_after(None, 100)
    assert [r[0] for r in rows] == list(range(20))
    assert replica.count == 20


def test_pages_resume_exactly_across_partitions(partitions):
    replica = ReadReplica(partitions)
    seen = []
    after = None
    while True:
        page = replica.page_after(after, 7)
        if not page:
            break
        seen.extend(r[0] for r in page)
        after = (page[-1][0], page[-1][1])
    assert seen == list(range(20))


def test_replica_is_read_only(partitions):
    reader = ReportLogReader(partitions[0])
    with pytest.raises(Exception):  # sqlite3.OperationalError: readonly
        reader._conn.execute("DELETE FROM report_log")
    reader.close()


def test_per_thread_connections(partitions):
    replica = ReadReplica(partitions)
    counts = []

    def worker():
        counts.append(len(replica.page_after(None, 100)))
        replica.close()

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counts == [20, 20, 20, 20]


def test_replica_rejects_empty_and_memory_and_missing(tmp_path):
    with pytest.raises(GatewayError):
        ReadReplica([])
    with pytest.raises(OosmError):
        ReportLogReader(":memory:")
    with pytest.raises(OosmError):
        ReportLogReader(tmp_path / "does-not-exist.sqlite")
    replica = ReadReplica([tmp_path / "also-missing.sqlite"])
    with pytest.raises(OosmError):
        replica.page_after(None, 1)
    with pytest.raises(GatewayError):
        ReadReplica([tmp_path]).page_after(None, 0)


def test_reader_sees_writer_appends_without_reopen(tmp_path):
    """WAL: committed batches become visible to an already-open
    read-only connection — the live-serving property."""
    path = tmp_path / "live.sqlite"
    store = ReportStore(path)
    store.ingest_batch([_report(0)], ["dc:rep#0"], intake_seqs=[0])
    replica = ReadReplica([path])
    assert replica.count == 1
    store.ingest_batch(
        [_report(1), _report(2)],
        ["dc:rep#1", "dc:rep#2"],
        intake_seqs=[1, 2],
    )
    assert replica.count == 3
    assert [r[0] for r in replica.page_after(None, 10)] == [0, 1, 2]
