"""HTTP round trips through the stdlib gateway server."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.gateway.server import GatewayHTTPServer
from repro.protocol.wire import encode_report


@pytest.fixture
def http_fleet(fleet, gateway):
    server = GatewayHTTPServer(("127.0.0.1", 0), gateway)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield fleet, gateway, f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, json.loads(resp.read())


def test_get_routes_round_trip(http_fleet):
    fleet, gateway, base = http_fleet
    model, _, reports, _ = fleet
    first = sorted({r.sensed_object_id for r in reports})[0]
    model.post_reports([r for r in reports if r.sensed_object_id == first][:4])

    status, health = _get(base, "/fleet/health")
    assert status == 200 and set(health) == {"as_of", "diagnostic", "prognostic"}
    # The HTTP body is exactly the gateway's canonical rendering.
    with urllib.request.urlopen(base + "/fleet/health") as resp:
        assert resp.read().decode() == gateway.fleet_health_json()

    status, page = _get(base, "/objects?limit=3")
    assert status == 200 and len(page["items"]) == 3 and page["nextCursor"]

    status, one = _get(base, f"/objects/{first}")
    assert status == 200 and one["id"] == first

    status, slice_doc = _get(base, f"/objects/{first}/health")
    assert status == 200 and slice_doc["object"] == first

    status, series = _get(base, f"/objects/{first}/measurements?limit=2")
    assert status == 200 and len(series["items"]) == 2

    status, logs = _get(base, "/reports?limit=5")
    assert status == 200 and len(logs["items"]) == 5
    status, logs2 = _get(base, f"/reports?limit=5&cursor={logs['nextCursor']}")
    assert status == 200
    assert logs2["items"][0]["intakeSeq"] == logs["items"][-1]["intakeSeq"] + 1

    status, alarms = _get(base, "/alarms?threshold=0.4")
    assert status == 200 and "alarms" in alarms

    status, stats = _get(base, "/stats")
    assert status == 200 and stats["watermark"] == len(reports)


def test_error_statuses(http_fleet):
    _, _, base = http_fleet
    for path, code in (
        ("/objects/obj:nope", 404),
        ("/no/such/route", 404),
        ("/reports?cursor=garbage", 400),
        ("/reports?limit=zero", 400),
        ("/alarms?threshold=hot", 400),
    ):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, path)
        assert err.value.code == code, path
        assert "error" in json.loads(err.value.read())


def test_serve_handles_bounded_requests_then_returns(fleet, gateway):
    """serve(max_requests=N) answers N requests and exits — the shape
    the CLI smoke path and CI use."""
    import socket

    from repro.gateway.server import serve

    # Reserve an ephemeral port for the bounded server to bind.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    results = []

    def client():
        for _ in range(50):  # the server thread binds asynchronously
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/stats"
                ) as resp:
                    results.append(resp.status)
                return
            except OSError:
                threading.Event().wait(0.05)

    t = threading.Thread(target=client, daemon=True)
    t.start()
    serve(gateway, "127.0.0.1", port, max_requests=1)
    t.join(timeout=10)
    assert results == [200]


def test_bulk_post_writes_through_router(http_fleet):
    fleet, gateway, base = http_fleet
    _, pdme, reports, ids = fleet
    fresh = reports[0].__class__(
        knowledge_source_id="ks:http",
        sensed_object_id=reports[0].sensed_object_id,
        machine_condition_id="mc:oil-contamination",
        severity=0.8,
        belief=0.7,
        timestamp=88888.0,
        dc_id="dc:http",
    )
    body = json.dumps(
        {"reports": [encode_report(fresh)], "reportIds": ["dc:http#1"]}
    ).encode()
    req = urllib.request.Request(base + "/reports", data=body, method="POST")
    with urllib.request.urlopen(req) as resp:
        assert json.loads(resp.read()) == {"written": 1}
    # A replay of the same id is absorbed (exactly-once).
    with urllib.request.urlopen(
        urllib.request.Request(base + "/reports", data=body, method="POST")
    ) as resp:
        assert json.loads(resp.read()) == {"written": 0}

    bad = urllib.request.Request(
        base + "/reports", data=b'{"nope": 1}', method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(bad)
    assert err.value.code == 400
