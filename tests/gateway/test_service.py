"""FleetGateway endpoint behaviour: paging, health slices, alarms,
subscriptions, bulk writes, error paths."""

from __future__ import annotations

import pytest

from repro.common.errors import GatewayError
from repro.gateway import FleetGateway, gateway_for_executive
from repro.obs.registry import MetricsRegistry


def _first_object(reports):
    return sorted({r.sensed_object_id for r in reports})[0]


def test_managed_objects_drain_matches_model(fleet, gateway):
    model, _, _, _ = fleet
    seen = []
    cursor = None
    while True:
        page = gateway.managed_objects(after=cursor, limit=3)
        seen.extend(m.id for m in page.items)
        if page.next_cursor is None:
            break
        cursor = page.next_cursor
    assert seen == sorted(e.id for e in model.entities())


def test_managed_object_resource_fields(fleet, gateway):
    model, _, reports, _ = fleet
    first = _first_object(reports)
    mo = gateway.managed_object(first)
    assert mo.id == first
    assert mo.type == "rotating-machine"
    assert mo.system == first  # no part-of edges in this fleet
    doc = mo.to_json()
    assert set(doc) == {
        "id", "type", "name", "properties", "parent", "system",
        "childAssets", "proximate", "flowsTo", "monitoredBy",
    }


def test_measurements_page_over_retained_series(fleet, gateway):
    model, _, reports, _ = fleet
    first = _first_object(reports)
    mine = [r for r in reports if r.sensed_object_id == first]
    model.post_reports(mine)
    page = gateway.measurements(first, limit=10)
    assert [m.time for m in page.items] == [r.timestamp for r in mine[:10]]
    rest = gateway.measurements(
        first, after=page.next_cursor and page.next_cursor, limit=1000
    )
    assert len(page.items) + len(rest.items) == len(mine)


def test_reports_drain_is_global_arrival_order(fleet, gateway):
    _, _, reports, _ = fleet
    seqs = []
    cursor = None
    while True:
        page = gateway.reports(cursor, 37)
        seqs.extend(r.intake_seq for r in page.items)
        if page.next_cursor is None:
            break
        cursor = page.next_cursor
    assert seqs == list(range(len(reports)))


def test_health_slice_restricted_to_object(fleet, gateway):
    _, _, reports, _ = fleet
    first = _first_object(reports)
    doc = gateway.health(first)
    assert doc["object"] == first
    assert doc["diagnostic"]  # this object has fused state
    for key in list(doc["diagnostic"]) + list(doc["prognostic"]):
        assert key.split("|", 1)[0] == first


def test_alarm_threshold_monotone(gateway):
    low = gateway.alarms(0.1)
    high = gateway.alarms(0.9)
    assert len(low) >= len(high)
    assert all(a.severity >= 0.5 for a in gateway.alarms(0.5))
    assert all(a.status == "ACTIVE" for a in low)


def test_subscription_filter_and_cancel(fleet, gateway):
    model, _, reports, _ = fleet
    first = _first_object(reports)
    other = [r for r in reports if r.sensed_object_id != first][0]
    mine: list = []
    everything: list = []
    sub = gateway.subscribe(mine.append, object_id=first)
    fire = gateway.subscribe(everything.append)
    model.post_report(next(r for r in reports if r.sensed_object_id == first))
    model.post_report(other)
    assert len(mine) == 1 and sub.delivered == 1
    assert len(everything) == 2 and fire.delivered == 2
    sub.cancel()
    assert not sub.active
    model.post_report(other)
    assert len(mine) == 1  # detached
    assert len(everything) == 3


def test_batch_post_fans_out_to_subscribers(fleet, gateway):
    model, _, reports, _ = fleet
    got: list = []
    gateway.subscribe(got.append)
    model.post_reports(reports[:5])
    assert len(got) == 5


def test_post_reports_routes_through_writer_with_dedup(fleet, gateway):
    _, pdme, reports, ids = fleet
    before = pdme.intake_watermark
    # Replays of already-written ids are absorbed: exactly-once fusion.
    assert gateway.post_reports(reports[:5], ids[:5]) == 0
    fresh = [
        reports[0].__class__(
            knowledge_source_id="ks:gw",
            sensed_object_id=reports[0].sensed_object_id,
            machine_condition_id="mc:oil-contamination",
            severity=0.7,
            belief=0.6,
            timestamp=99999.0,
            dc_id="dc:gw",
        )
    ]
    assert gateway.post_reports(fresh, ["dc:gw#1"]) == 1
    assert pdme.intake_watermark > before


def test_unknown_object_and_missing_backends_raise(fleet, gateway):
    model, pdme, _, _ = fleet
    for call in (
        lambda: gateway.managed_object("obj:nope"),
        lambda: gateway.measurements("obj:nope"),
        lambda: gateway.health("obj:nope"),
        lambda: gateway.subscribe(lambda r: None, "obj:nope"),
    ):
        with pytest.raises(GatewayError):
            call()
    bare = FleetGateway(model, pdme, metrics=MetricsRegistry())
    with pytest.raises(GatewayError):
        bare.reports(None, 10)
    with pytest.raises(GatewayError):
        bare.post_reports([], [])


def test_request_metrics_accumulate(gateway):
    gateway.fleet_health()
    gateway.fleet_health()
    gateway.alarms(0.5)
    counters = gateway.metrics.snapshot()["counters"]
    assert counters["gateway.requests{endpoint=fleet_health}"] == 2
    assert counters["gateway.requests{endpoint=alarms}"] == 1


def test_executive_deployment_serves_and_accepts_writes(workload):
    from repro.pdme.executive import PdmeExecutive

    reports, _ = workload
    executive = _build_executive(reports)
    gw = gateway_for_executive(executive, metrics=MetricsRegistry())
    oracle = gw.fleet_health_json(use_cache=False)
    assert gw.fleet_health_json() == oracle
    n = len(executive.model.reports_for(reports[0].sensed_object_id))
    assert gw.post_reports([reports[0]]) == 1
    assert (
        len(executive.model.reports_for(reports[0].sensed_object_id)) == n + 1
    )


def _build_executive(reports):
    from repro.fusion.groups import default_chiller_groups
    from repro.oosm.model import ShipModel
    from repro.pdme.executive import PdmeExecutive

    model = ShipModel()
    for oid in sorted({r.sensed_object_id for r in reports}):
        model.create("rotating-machine", id=oid, name=oid)
    executive = PdmeExecutive(model, default_chiller_groups())
    executive.submit_batch(list(reports))
    return executive
