"""Golden-master pins on canonical gateway responses, per resource.

One deterministic fleet, one response document per resource type
(managed object, measurement page, report page, alarms, fleet health
excerpt), all rendered through ``canonical_dumps`` and compared
byte-for-byte against a committed golden file.  Any drift in resource
field sets, key naming, float rounding, or collection ordering shows
up here first.

Regenerate intentionally with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \\
        tests/gateway/test_resources_golden.py

and review the golden diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.protocol.canonical import canonical_dumps

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"
GOLDEN_FILE = "gateway_resources.json"


def _check_golden(payload: str) -> None:
    path = GOLDEN_DIR / GOLDEN_FILE
    if os.environ.get("GOLDEN_REGEN"):
        path.write_text(payload, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with GOLDEN_REGEN=1"
    )
    assert payload == path.read_text(encoding="utf-8"), (
        f"{GOLDEN_FILE} drifted from its golden master; if the change "
        "is intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


def test_canonical_responses_are_pinned(fleet, gateway):
    model, pdme, reports, _ = fleet
    first = sorted({r.sensed_object_id for r in reports})[0]
    # The OOSM retains series for measurements; post a slice of the
    # same stream (entity state only — fused state came via the PDME).
    model.post_reports(reports[:12])

    doc = {
        "managedObject": json.loads(gateway.managed_object_json(first)),
        "managedObjects": gateway.managed_objects(limit=3).to_json(),
        "measurements": gateway.measurements(first, limit=5).to_json(),
        "reports": gateway.reports(None, 5).to_json(),
        "alarms": json.loads(gateway.alarms_json(0.3)),
        "health": gateway.health(first),
        "subscription": gateway.subscribe(lambda r: None, first).to_json(),
        "stats_keys": sorted(gateway.stats()),
    }
    _check_golden(canonical_dumps(doc))


def test_responses_reproducible_across_instances(fleet):
    """The same fleet through two independent gateways renders
    byte-identical responses — nothing instance-local leaks in."""
    from repro.gateway import gateway_for_sharded
    from repro.obs.registry import MetricsRegistry

    model, pdme, _, _ = fleet
    a = gateway_for_sharded(model, pdme, metrics=MetricsRegistry())
    b = gateway_for_sharded(model, pdme, metrics=MetricsRegistry())
    assert a.fleet_health_json() == b.fleet_health_json()
    assert a.alarms_json(0.3) == b.alarms_json(0.3)
    assert canonical_dumps(a.reports(None, 7).to_json()) == canonical_dumps(
        b.reports(None, 7).to_json()
    )
