"""Versioned-cache semantics: hits, LRU eviction, key-driven
invalidation through watermarks and model versions."""

from __future__ import annotations

import pytest

from repro.common.errors import GatewayError
from repro.gateway.cache import VersionedCache
from repro.obs.registry import MetricsRegistry


def test_get_put_and_counters():
    cache = VersionedCache(4, metrics=MetricsRegistry())
    assert cache.get(("a", 1)) is None
    cache.put(("a", 1), "payload")
    assert cache.get(("a", 1)) == "payload"
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_evicts_oldest_first():
    cache = VersionedCache(2, metrics=MetricsRegistry())
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes recency: b is now LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert len(cache) == 2


def test_put_returns_value_and_clear_empties():
    cache = VersionedCache(8, metrics=MetricsRegistry())
    assert cache.put("k", [1, 2]) == [1, 2]
    assert cache.clear() == 1
    assert len(cache) == 0


def test_zero_capacity_rejected():
    with pytest.raises(GatewayError):
        VersionedCache(0, metrics=MetricsRegistry())


def test_watermark_invalidates_fused_responses(fleet, gateway):
    """Ingest bumps the watermark; the next query misses and refuses
    stale bytes — invalidation with no explicit purge anywhere."""
    model, pdme, reports, _ = fleet
    before = gateway.fleet_health_json()
    assert gateway.fleet_health_json() == before  # steady state: hit

    extra = reports[0].__class__(
        knowledge_source_id="ks:new",
        sensed_object_id=reports[0].sensed_object_id,
        machine_condition_id="mc:oil-contamination",
        severity=0.95,
        belief=0.9,
        timestamp=max(r.timestamp for r in reports) + 60.0,
        dc_id="dc:new",
    )
    pdme.submit_batch([extra], ["dc:new#1"])
    after = gateway.fleet_health_json()
    assert after != before
    assert after == gateway.fleet_health_json(use_cache=False)


def test_model_version_invalidates_entity_responses(fleet, gateway):
    model, pdme, reports, _ = fleet
    first = sorted({r.sensed_object_id for r in reports})[0]
    before = gateway.managed_object_json(first)
    model.set_property(first, "location", "engine room 2")
    after = gateway.managed_object_json(first)
    assert after != before
    assert "engine room 2" in after


def test_cached_bytes_identical_to_uncached_oracle(gateway):
    oracle = gateway.fleet_health_json(use_cache=False)
    assert gateway.fleet_health_json() == oracle
    assert gateway.fleet_health_json() == oracle
