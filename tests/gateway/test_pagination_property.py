"""Property tests: keyset pages are exhaustive, non-overlapping, and
stable under concurrent ingest.

The gateway's pagination claim is exactly these three invariants:

* **exhaustive** — draining page-by-page sees every stored row;
* **non-overlapping** — no row appears on two pages (keys strictly
  increase across the drain);
* **stable under concurrent ingest** — a drain that started before a
  batch of appends still sees every row that existed when it started,
  exactly once, because appends land strictly beyond already-served
  keys.  (An OFFSET-paginated listing fails the third.)
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gateway.pagination import (
    clamp_limit,
    decode_cursor,
    decode_string_cursor,
    encode_cursor,
    encode_string_cursor,
    page_sequence,
)
from repro.common.errors import GatewayError
from repro.oosm.persistence import ReportStore
from repro.protocol.report import FailurePredictionReport

import pytest


def _report(i: int) -> FailurePredictionReport:
    return FailurePredictionReport(
        knowledge_source_id="ks:page",
        sensed_object_id=f"obj:m{i % 4}",
        machine_condition_id="mc:motor-imbalance",
        severity=0.4,
        belief=0.2 + 0.01 * (i % 9),
        timestamp=float(i),
        dc_id="dc:page",
    )


def _drain(store, page_size: int, mid_drain=None):
    """Page the store to exhaustion; optionally mutate it mid-drain."""
    rows = []
    after = None
    fired = False
    while True:
        page = store.page_after(after, page_size)
        if not page:
            break
        rows.extend(page)
        after = (
            page[-1][0] if page[-1][0] is not None else -1,
            page[-1][1],
        )
        if mid_drain is not None and not fired:
            mid_drain()
            fired = True
    return rows


@settings(max_examples=40, deadline=None)
@given(
    n_initial=st.integers(0, 40),
    page_size=st.integers(1, 17),
    n_concurrent=st.integers(0, 25),
)
def test_keyset_pages_exhaustive_disjoint_and_ingest_stable(
    n_initial, page_size, n_concurrent
):
    store = ReportStore()
    initial = [_report(i) for i in range(n_initial)]
    store.ingest_batch(
        initial,
        [f"dc:page#{i}" for i in range(n_initial)],
        intake_seqs=list(range(n_initial)),
    )

    late = [_report(1000 + i) for i in range(n_concurrent)]

    def appender():
        # A writer lands a coalesced batch *between two pages* of an
        # in-flight drain — the concurrent-ingest case.
        store.ingest_batch(
            late,
            [f"dc:page#late{i}" for i in range(n_concurrent)],
            intake_seqs=[n_initial + i for i in range(n_concurrent)],
        )

    rows = _drain(store, page_size, mid_drain=appender if n_initial else None)
    if not n_initial:
        # Nothing stored when the drain began; append after the fact
        # and drain again to cover the empty-start case too.
        appender()
        rows = _drain(store, page_size)

    keys = [(r[0] if r[0] is not None else -1, r[1]) for r in rows]
    # Non-overlapping + ordered: strictly increasing keys.
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))
    # Exhaustive: every row that existed at drain start is present;
    # rows appended mid-drain land beyond served keys, so the drain
    # picks them up too (never skips, never duplicates).
    assert len(rows) == n_initial + n_concurrent
    assert {r[2] for r in rows} == {
        f"dc:page#{i}" for i in range(n_initial)
    } | {f"dc:page#late{i}" for i in range(n_concurrent)}


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=6), min_size=0, max_size=30, unique=True),
       st.integers(1, 9))
def test_page_sequence_partitions_any_sorted_listing(ids, limit):
    ids = sorted(ids)
    seen = []
    after = None
    while True:
        page = page_sequence(ids, lambda s: s, after, limit)
        seen.extend(page.items)
        if page.next_cursor is None:
            break
        after = decode_string_cursor(page.next_cursor)
    assert seen == ids


def test_cursor_round_trip_and_rejection():
    assert decode_cursor(encode_cursor((7, 42))) == (7, 42)
    assert decode_cursor(encode_cursor((-1, 3))) == (-1, 3)
    assert decode_cursor(None) is None
    assert decode_cursor("") is None
    assert decode_string_cursor(encode_string_cursor("obj:m1")) == "obj:m1"
    for bad in ("junk", "k7", "kx.y", "7.42"):
        with pytest.raises(GatewayError):
            decode_cursor(bad)
    with pytest.raises(GatewayError):
        decode_string_cursor("k7.42")


def test_clamp_limit_bounds():
    assert clamp_limit(None) == 50
    assert clamp_limit(3) == 3
    assert clamp_limit(10_000) == 1000
    with pytest.raises(GatewayError):
        clamp_limit(0)
