"""Shared gateway fixtures: a small fused fleet behind a gateway."""

from __future__ import annotations

import pytest

from repro.bench import _ingest_workload
from repro.gateway import gateway_for_sharded
from repro.obs.registry import MetricsRegistry
from repro.oosm.model import ShipModel
from repro.pdme.shard import ShardedPdme


@pytest.fixture(scope="module")
def workload():
    return _ingest_workload(quick=True)


@pytest.fixture
def fleet(tmp_path, workload):
    """(model, pdme, reports, ids) with the full stream already fused."""
    reports, ids = workload
    pdme = ShardedPdme(
        2, store_paths=[tmp_path / "shard-0.sqlite", tmp_path / "shard-1.sqlite"]
    )
    model = ShipModel()
    for oid in sorted({r.sensed_object_id for r in reports}):
        model.create("rotating-machine", id=oid, name=oid)
    pdme.submit_batch(reports, ids)
    yield model, pdme, reports, ids
    pdme.close()


@pytest.fixture
def gateway(fleet):
    model, pdme, _, _ = fleet
    return gateway_for_sharded(model, pdme, metrics=MetricsRegistry())
