import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.fuzzy import (
    FuzzyDiagnostics,
    FuzzyRule,
    Gaussian,
    LinguisticVariable,
    MamdaniEngine,
    Trapezoid,
    Triangle,
    chiller_rulebase,
    chiller_variables,
    trend_prognostic,
)
from repro.common.errors import MprosError
from repro.common.units import days, months
from repro.plant import ChillerSimulator, FaultKind
from repro.plant.faults import seeded


# -- membership functions ------------------------------------------------------

def test_triangle_shape():
    mf = Triangle(0.0, 5.0, 10.0)
    assert mf(5.0) == 1.0
    assert mf(0.0) == 0.0 and mf(10.0) == 0.0
    assert mf(2.5) == pytest.approx(0.5)
    assert mf(-1.0) == 0.0 and mf(11.0) == 0.0


def test_triangle_validation():
    with pytest.raises(MprosError):
        Triangle(5.0, 4.0, 10.0)


def test_trapezoid_plateau_and_shoulders():
    mf = Trapezoid(0.0, 2.0, 4.0, 6.0)
    assert mf(3.0) == 1.0
    assert mf(1.0) == pytest.approx(0.5)
    assert mf(5.0) == pytest.approx(0.5)
    # Left-shoulder form: a == b.
    sh = Trapezoid(10.0, 10.0, 20.0, 25.0)
    assert sh(10.0) == 1.0
    assert sh(9.99) == 0.0


def test_trapezoid_validation():
    with pytest.raises(MprosError):
        Trapezoid(0, 3, 2, 5)


def test_gaussian():
    mf = Gaussian(0.0, 1.0)
    assert mf(0.0) == 1.0
    assert mf(1.0) == pytest.approx(np.exp(-0.5))
    with pytest.raises(MprosError):
        Gaussian(0.0, 0.0)


def test_linguistic_variable():
    v = LinguisticVariable("x", {"low": Triangle(0, 0, 1)})
    assert v.membership("low", 0.0) == 1.0
    with pytest.raises(MprosError):
        v.membership("high", 0.0)
    with pytest.raises(MprosError):
        LinguisticVariable("", {})


# -- Mamdani engine ---------------------------------------------------------------

@pytest.fixture
def engine():
    return MamdaniEngine(chiller_variables(), chiller_rulebase())


def test_rule_validation(engine):
    with pytest.raises(MprosError):
        FuzzyRule((), "mc:x")
    with pytest.raises(MprosError):
        FuzzyRule((("a", "b"),), "mc:x", severity_term="catastrophic")
    with pytest.raises(MprosError):
        MamdaniEngine(chiller_variables(), (FuzzyRule((("nope", "low"),), "mc:x"),))
    with pytest.raises(MprosError):
        MamdaniEngine(
            chiller_variables(),
            (FuzzyRule((("superheat_c", "nope"),), "mc:x"),),
        )


def test_healthy_readings_fire_nothing(engine):
    readings = {
        "evap_pressure_kpa": 340.0,
        "cond_pressure_kpa": 990.0,
        "superheat_c": 4.5,
        "chw_supply_temp_c": 6.7,
        "cond_water_temp_c": 29.4,
        "oil_pressure_kpa": 280.0,
        "oil_temp_c": 54.0,
        "cond_pressure_std": 4.0,
    }
    assert engine.infer(readings) == []


def test_refrigerant_leak_pattern_fires(engine):
    readings = {"superheat_c": 15.0, "evap_pressure_kpa": 255.0}
    out = engine.infer(readings)
    assert out and out[0].condition_id == "mc:refrigerant-leak"
    assert out[0].belief == 1.0
    assert out[0].severity > 0.6        # the "severe" consequent dominates


def test_missing_variable_disables_rule(engine):
    # Superheat alone cannot fire the two-antecedent leak rules.
    assert engine.infer({"superheat_c": 15.0}) == []


def test_partial_membership_scales_belief(engine):
    mild = engine.infer({"superheat_c": 8.0, "evap_pressure_kpa": 300.0})
    strong = engine.infer({"superheat_c": 15.0, "evap_pressure_kpa": 255.0})
    if mild:  # mild pattern may fire weakly
        assert mild[0].belief < strong[0].belief


def test_surge_fires_on_oscillation(engine):
    out = engine.infer({"cond_pressure_std": 60.0})
    assert out[0].condition_id == "mc:surge"


def test_oil_rules(engine):
    out = engine.infer({"oil_pressure_kpa": 120.0})
    assert out[0].condition_id == "mc:oil-pressure-low"
    out = engine.infer({"oil_temp_c": 70.0, "oil_pressure_kpa": 280.0})
    assert out[0].condition_id == "mc:oil-contamination"


def test_conclusions_sorted_by_belief(engine):
    readings = {
        "superheat_c": 15.0,
        "evap_pressure_kpa": 255.0,
        "oil_temp_c": 63.0,          # borderline
        "oil_pressure_kpa": 280.0,
    }
    out = engine.infer(readings)
    beliefs = [c.belief for c in out]
    assert beliefs == sorted(beliefs, reverse=True)


# -- trend prognostic ----------------------------------------------------------------

def test_trend_flat_history_far_horizon():
    v = trend_prognostic([0.3, 0.3, 0.3, 0.3], dt_seconds=60.0)
    assert v.probability_at(months(1)) < 0.1


def test_trend_rising_history_projects_crossing():
    # Severity rising 0.1 per hour from 0.2: hits 0.95 in ~7.5 hours.
    sev = [0.2 + 0.1 * i for i in range(5)]
    v = trend_prognostic(sev, dt_seconds=3600.0)
    t50 = v.time_to_probability(0.5)
    assert 0 < t50 < days(1)


def test_trend_already_failed_imminent():
    v = trend_prognostic([0.5, 0.8, 0.97], dt_seconds=60.0)
    assert v.time_to_probability(0.5) <= days(1)


def test_trend_validation():
    with pytest.raises(MprosError):
        trend_prognostic([0.1, 0.2, 0.3], dt_seconds=0.0)
    with pytest.raises(MprosError):
        trend_prognostic(np.zeros((2, 2)), dt_seconds=1.0)


def test_trend_short_history_far_horizon():
    v = trend_prognostic([0.9], dt_seconds=1.0)
    assert v.probability_at(months(1)) < 0.1


# -- FuzzyDiagnostics knowledge source ---------------------------------------------

def run_sim_reports(fault_kind, seconds=1200.0):
    sim = ChillerSimulator(rng=np.random.default_rng(0))
    sim.inject(seeded(fault_kind, onset=0.0, severity=0.9))
    fz = FuzzyDiagnostics()
    history = []
    reports = []
    for _ in range(int(seconds / 60.0)):
        sim.step(60.0)
        sample = sim.sample_process()
        history.append(sample.values)
        ctx = SourceContext(
            sensed_object_id="obj:chiller",
            timestamp=sim.time,
            process=sample.values,
            history=history[-16:],
            dc_id="dc:0",
        )
        reports.extend(fz.analyze(ctx))
    return reports


@pytest.mark.parametrize(
    "fault,expected",
    [
        (FaultKind.REFRIGERANT_LEAK, "mc:refrigerant-leak"),
        (FaultKind.CONDENSER_FOULING, "mc:condenser-fouling"),
        (FaultKind.OIL_PRESSURE_LOW, "mc:oil-pressure-low"),
        (FaultKind.SURGE, "mc:surge"),
    ],
)
def test_detects_process_faults_on_simulator(fault, expected):
    reports = run_sim_reports(fault)
    assert any(r.machine_condition_id == expected for r in reports)


def test_healthy_simulator_quiet():
    sim = ChillerSimulator(rng=np.random.default_rng(1))
    fz = FuzzyDiagnostics()
    history = []
    reports = []
    for _ in range(20):
        sim.step(60.0)
        sample = sim.sample_process()
        history.append(sample.values)
        ctx = SourceContext(
            sensed_object_id="obj:chiller", timestamp=sim.time,
            process=sample.values, history=history[-16:],
        )
        reports.extend(fz.analyze(ctx))
    assert reports == []


def test_no_process_no_reports():
    fz = FuzzyDiagnostics()
    assert fz.analyze(SourceContext(sensed_object_id="o", timestamp=0.0)) == []


def test_report_fields():
    reports = run_sim_reports(FaultKind.REFRIGERANT_LEAK)
    r = reports[-1]
    assert r.knowledge_source_id == "ks:fuzzy"
    assert 0 < r.belief <= 1 and 0 <= r.severity <= 1
    assert "fuzzy" in r.explanation
    assert len(r.prognostic) > 0
