import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.sbfr_source import SbfrKnowledgeSource, SbfrWatch
from repro.common.errors import MprosError
from repro.plant import ChillerSimulator, FaultKind
from repro.plant.faults import seeded


def feed(source, values_by_cycle, obj="obj:chiller"):
    reports = []
    for t, proc in enumerate(values_by_cycle):
        ctx = SourceContext(
            sensed_object_id=obj, timestamp=float(t), process=proc, dc_id="dc:0"
        )
        reports.extend(source.analyze(ctx))
    return reports


def test_validation():
    with pytest.raises(MprosError):
        SbfrKnowledgeSource(watches=())
    with pytest.raises(MprosError):
        SbfrKnowledgeSource(
            watches=(
                SbfrWatch("a", 1.0, "mc:x"),
                SbfrWatch("a", 2.0, "mc:y"),
            )
        )


def test_sustained_repeated_excursions_fire():
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
        hold_cycles=1,
        repeat_count=2,
    )
    # Three sustained episodes above 10, separated by dips.
    stream = []
    for _ in range(3):
        stream += [{"superheat_c": 15.0}] * 4
        stream += [{"superheat_c": 4.0}] * 2
    reports = feed(src, stream)
    assert any(r.machine_condition_id == "mc:refrigerant-leak" for r in reports)


def test_short_excursion_does_not_fire():
    """An excursion that clears before accumulating repeat_count
    alarm-cycles stays unreported."""
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
        hold_cycles=1,
        repeat_count=3,
    )
    stream = [{"superheat_c": 15.0}] * 3 + [{"superheat_c": 4.0}] * 10
    assert feed(src, stream) == []


def test_persistent_abnormality_fires():
    """A fault that stays abnormal (never dipping) accumulates
    alarm-cycles and is reported — the persistent-leak case."""
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
        hold_cycles=2,
        repeat_count=3,
    )
    stream = [{"superheat_c": 15.0}] * 12
    reports = feed(src, stream)
    assert any(r.machine_condition_id == "mc:refrigerant-leak" for r in reports)


def test_brief_spikes_do_not_fire():
    """One-cycle blips never satisfy the hold requirement."""
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
        hold_cycles=3,
        repeat_count=1,
    )
    stream = []
    for _ in range(10):
        stream += [{"superheat_c": 15.0}, {"superheat_c": 4.0}]
    assert feed(src, stream) == []


def test_inverted_watch_fires_on_low_values():
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("oil_pressure_kpa", 210.0, "mc:oil-pressure-low", invert=True),),
        hold_cycles=1,
        repeat_count=2,
    )
    stream = []
    for _ in range(3):
        stream += [{"oil_pressure_kpa": 150.0}] * 4
        stream += [{"oil_pressure_kpa": 280.0}] * 2
    reports = feed(src, stream)
    assert any(r.machine_condition_id == "mc:oil-pressure-low" for r in reports)


def test_report_fires_once_per_episode():
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
        hold_cycles=1,
        repeat_count=1,
    )
    stream = [{"superheat_c": 15.0}] * 3 + [{"superheat_c": 4.0}] * 3
    reports = feed(src, stream)
    assert len(reports) == 1


def test_missing_channels_tolerated():
    src = SbfrKnowledgeSource()
    assert feed(src, [{"unrelated": 1.0}]) == []
    assert feed(src, [{}]) == []


def test_reset_clears_trend_state():
    def episode():
        return [{"superheat_c": 15.0}] * 3 + [{"superheat_c": 4.0}] * 2

    def fresh():
        return SbfrKnowledgeSource(
            watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
            hold_cycles=1,
            repeat_count=4,
        )

    # Control: two episodes accumulate enough alarm-cycles to fire.
    src = fresh()
    assert feed(src, episode()) == []
    assert feed(src, episode()) != []
    # With a reset in between, the second episode starts from zero.
    src = fresh()
    feed(src, episode())
    src.reset()
    assert feed(src, episode()) == []


def test_detects_leak_on_simulator():
    sim = ChillerSimulator(rng=np.random.default_rng(0))
    sim.inject(seeded(FaultKind.REFRIGERANT_LEAK, onset=0.0, severity=0.9))
    src = SbfrKnowledgeSource(hold_cycles=2, repeat_count=1)
    reports = []
    for _ in range(30):
        sim.step(60.0)
        ctx = SourceContext(
            sensed_object_id="obj:chiller",
            timestamp=sim.time,
            process=sim.sample_process().values,
        )
        reports.extend(src.analyze(ctx))
    assert any(r.machine_condition_id == "mc:refrigerant-leak" for r in reports)
    r = reports[0]
    assert r.knowledge_source_id == "ks:sbfr"
    assert len(r.prognostic) > 0
