"""Shaft-speed tracking: order rules must survive realistic speed
drift (slip varies with load)."""

import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.dli import DliExpertSystem
from repro.common.errors import MprosError
from repro.dsp.fft import estimate_shaft_speed, spectrum
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer

FS = 16384.0


def tone(freq, amp=1.0, n=32768):
    return amp * np.sin(2 * np.pi * freq * np.arange(n) / FS)


# -- estimator -----------------------------------------------------------------

def test_estimates_exact_tone():
    s = spectrum(tone(58.1), FS)
    est = estimate_shaft_speed(s, nominal_hz=59.3, search_pct=3.0)
    assert est == pytest.approx(58.1, abs=0.1)


def test_subbin_interpolation():
    """True frequency between bins is recovered to sub-bin accuracy."""
    s = spectrum(tone(59.55), FS)  # resolution 0.5 Hz -> between bins
    est = estimate_shaft_speed(s, nominal_hz=59.3)
    assert est == pytest.approx(59.55, abs=0.15)


def test_falls_back_to_nominal_without_peak():
    rng = np.random.default_rng(0)
    s = spectrum(rng.normal(0, 1.0, 32768), FS)
    assert estimate_shaft_speed(s, nominal_hz=59.3) == 59.3


def test_search_window_bounds_drift():
    """A strong tone outside the window must not hijack the estimate."""
    s = spectrum(tone(70.0), FS)
    assert estimate_shaft_speed(s, nominal_hz=59.3, search_pct=3.0) == 59.3


def test_estimator_validation():
    s = spectrum(tone(60.0), FS)
    with pytest.raises(MprosError):
        estimate_shaft_speed(s, nominal_hz=0.0)
    with pytest.raises(MprosError):
        estimate_shaft_speed(s, 60.0, search_pct=60.0)


# -- synthesizer jitter -------------------------------------------------------------

def test_speed_jitter_moves_the_one_x():
    synth = VibrationSynthesizer(
        MachineKinematics(shaft_hz=59.3), speed_jitter=0.02
    )
    rng = np.random.default_rng(3)
    peaks = []
    for _ in range(6):
        wave = synth.synthesize(32768, faults={FaultKind.MOTOR_IMBALANCE: 0.9}, rng=rng)
        s = spectrum(wave, synth.sample_rate)
        peaks.append(estimate_shaft_speed(s, 59.3, search_pct=10.0))
    assert np.std(peaks) > 0.3  # the speed genuinely drifts


# -- DLI under drift -----------------------------------------------------------------

@pytest.mark.parametrize("fault,expected", [
    (FaultKind.MOTOR_IMBALANCE, "mc:motor-imbalance"),
    (FaultKind.SHAFT_MISALIGNMENT, "mc:shaft-misalignment"),
])
def test_dli_detects_despite_speed_drift(fault, expected):
    kin = MachineKinematics(shaft_hz=59.3)
    synth = VibrationSynthesizer(kin, speed_jitter=0.015)
    rng = np.random.default_rng(4)
    dli = DliExpertSystem()
    hits = 0
    for _ in range(4):
        wave = synth.synthesize(32768, faults={fault: 0.9}, rng=rng)
        ctx = SourceContext(
            sensed_object_id="obj:m", timestamp=0.0, waveform=wave,
            sample_rate=synth.sample_rate, kinematics=kin,
            process={"prv_position_pct": 100.0},
        )
        if any(r.machine_condition_id == expected for r in dli.analyze(ctx)):
            hits += 1
    assert hits >= 3


def test_tracking_off_degrades_under_drift():
    """Ablation: with tracking disabled, drifted 1x misses the rule
    window and imbalance detection suffers."""
    kin = MachineKinematics(shaft_hz=59.3)
    synth = VibrationSynthesizer(kin, speed_jitter=0.025)
    rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)

    def run(dli, rng):
        hits = 0
        for _ in range(6):
            wave = synth.synthesize(32768, faults={FaultKind.MOTOR_IMBALANCE: 0.9}, rng=rng)
            ctx = SourceContext(
                sensed_object_id="obj:m", timestamp=0.0, waveform=wave,
                sample_rate=synth.sample_rate, kinematics=kin,
                process={"prv_position_pct": 100.0},
            )
            if any(r.machine_condition_id == "mc:motor-imbalance"
                   for r in dli.analyze(ctx)):
                hits += 1
        synth._phase = 0.0
        return hits

    with_tracking = run(DliExpertSystem(track_speed=True), rng_a)
    without = run(DliExpertSystem(track_speed=False), rng_b)
    assert with_tracking >= without
    assert with_tracking >= 5
