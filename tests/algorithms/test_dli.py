import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.dli import (
    DliExpertSystem,
    ReversalDatabase,
    RuleFrame,
    prognostic_from_grade,
    score_to_grade,
    standard_rulebase,
)
from repro.algorithms.dli.frames import load_sensitizer
from repro.common.errors import MprosError
from repro.common.units import days, months, weeks
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer
from repro.protocol.severity import SeverityGrade

KIN = MachineKinematics(shaft_hz=59.3)


def make_ctx(faults=None, load=1.0, seed=0, n=32768, process_extra=None):
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(seed)
    wave = synth.synthesize(n, faults=faults, load=load, rng=rng)
    process = {"prv_position_pct": 100.0 * load}
    process.update(process_extra or {})
    return SourceContext(
        sensed_object_id="obj:motor1",
        timestamp=10.0,
        waveform=wave,
        sample_rate=synth.sample_rate,
        process=process,
        kinematics=KIN,
        dc_id="dc:0",
    )


def conditions(reports):
    return {r.machine_condition_id for r in reports}


@pytest.fixture(scope="module")
def dli():
    return DliExpertSystem()


# -- detection on synthesized faults ------------------------------------------

def test_healthy_machine_no_reports(dli):
    assert dli.analyze(make_ctx()) == []


@pytest.mark.parametrize(
    "fault,expected",
    [
        (FaultKind.MOTOR_IMBALANCE, "mc:motor-imbalance"),
        (FaultKind.SHAFT_MISALIGNMENT, "mc:shaft-misalignment"),
        (FaultKind.BEARING_WEAR, "mc:bearing-wear"),
        (FaultKind.BEARING_HOUSING_LOOSENESS, "mc:bearing-housing-looseness"),
        (FaultKind.GEAR_TOOTH_WEAR, "mc:gear-tooth-wear"),
        (FaultKind.MOTOR_ROTOR_BAR, "mc:motor-rotor-bar"),
        (FaultKind.MOTOR_PHASE_IMBALANCE, "mc:motor-phase-imbalance"),
    ],
)
def test_detects_each_seeded_fault(dli, fault, expected):
    reports = dli.analyze(make_ctx({fault: 0.85}, seed=3))
    assert expected in conditions(reports)


def test_severity_tracks_fault_severity(dli):
    mild = dli.analyze(make_ctx({FaultKind.MOTOR_IMBALANCE: 0.35}, seed=1))
    severe = dli.analyze(make_ctx({FaultKind.MOTOR_IMBALANCE: 0.95}, seed=1))
    get = lambda rs: next(
        r.severity for r in rs if r.machine_condition_id == "mc:motor-imbalance"
    )
    assert get(severe) > get(mild)


def test_report_fields_are_complete(dli):
    reports = dli.analyze(make_ctx({FaultKind.MOTOR_IMBALANCE: 0.9}, seed=2))
    r = next(x for x in reports if x.machine_condition_id == "mc:motor-imbalance")
    assert r.knowledge_source_id == "ks:dli"
    assert r.dc_id == "dc:0"
    assert r.explanation and r.recommendations
    assert len(r.prognostic) > 0
    assert 0 < r.belief <= 1


# -- the §6.1 load sensitization ---------------------------------------------

def test_low_load_looseness_false_positive_avoided():
    """Unloaded compressors vibrate more; without sensitization the
    looseness rule false-alarms, with it, it does not."""
    # A machine with NO looseness fault, running unloaded: the
    # synthesizer adds the low-load flow-recirculation excess.
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(5)
    wave = synth.synthesize(32768, faults=None, load=0.1, rng=rng)

    sensitized = standard_rulebase()
    unsensitized = tuple(
        RuleFrame(
            f.condition_id, f.strength, f.threshold, f.full_scale, (), f.describe
        )
        for f in sensitized
    )
    ctx_kwargs = dict(
        sensed_object_id="obj:comp",
        timestamp=0.0,
        waveform=wave,
        sample_rate=synth.sample_rate,
        kinematics=KIN,
        process={"prv_position_pct": 10.0},
    )
    with_sens = DliExpertSystem(rulebase=sensitized).analyze(SourceContext(**ctx_kwargs))
    without_sens = DliExpertSystem(rulebase=unsensitized).analyze(SourceContext(**ctx_kwargs))
    loose_with = "mc:bearing-housing-looseness" in conditions(with_sens)
    loose_without = "mc:bearing-housing-looseness" in conditions(without_sens)
    assert loose_without and not loose_with


def test_true_looseness_still_detected_at_low_load(dli):
    reports = dli.analyze(
        make_ctx({FaultKind.BEARING_HOUSING_LOOSENESS: 0.95}, load=0.1, seed=6)
    )
    assert "mc:bearing-housing-looseness" in conditions(reports)


def test_load_sensitizer_bounds():
    s = load_sensitizer(gain=2.0)
    assert s({"prv_position_pct": 100.0}) == pytest.approx(1.0)
    assert s({"prv_position_pct": 0.0}) == pytest.approx(3.0)
    assert s({}) == 1.0


def test_sensitizer_below_one_rejected():
    frame = RuleFrame(
        "mc:x", lambda s, w, fs, k: 1.0, sensitizers=(lambda p: 0.5,)
    )
    from repro.dsp.fft import spectrum

    wave = np.random.default_rng(0).normal(size=1024)
    with pytest.raises(MprosError):
        frame.evaluate(spectrum(wave, 8192.0), wave, 8192.0, KIN, {})


# -- grading (§6.1 Slight/Moderate/Serious/Extreme) ----------------------------

def test_grade_boundaries():
    assert score_to_grade(0.1) is SeverityGrade.SLIGHT
    assert score_to_grade(0.3) is SeverityGrade.MODERATE
    assert score_to_grade(0.6) is SeverityGrade.SERIOUS
    assert score_to_grade(0.9) is SeverityGrade.EXTREME


def test_grade_prognostic_horizons_ordered():
    """Slight -> no foreseeable failure; Extreme -> days."""
    t50 = {
        g: prognostic_from_grade(g).time_to_probability(0.5)
        for g in SeverityGrade
    }
    assert t50[SeverityGrade.EXTREME] < t50[SeverityGrade.SERIOUS]
    assert t50[SeverityGrade.SERIOUS] < t50[SeverityGrade.MODERATE]
    assert t50[SeverityGrade.MODERATE] < t50[SeverityGrade.SLIGHT]
    assert t50[SeverityGrade.EXTREME] <= days(10)
    assert weeks(1) <= t50[SeverityGrade.SERIOUS] <= weeks(6)
    assert months(1) <= t50[SeverityGrade.MODERATE] <= months(6)


# -- believability (§6.1 reversal statistics) -----------------------------------

def test_reversal_database_smoothing():
    db = ReversalDatabase(prior_approvals=8, prior_reversals=1)
    assert db.believability("mc:new") == pytest.approx(8 / 9)


def test_reversal_database_learns():
    db = ReversalDatabase()
    for _ in range(50):
        db.record("mc:flaky", reversed_by_analyst=True)
    for _ in range(50):
        db.record("mc:solid", reversed_by_analyst=False)
    assert db.believability("mc:flaky") < 0.25
    assert db.believability("mc:solid") > 0.9
    assert db.counts("mc:flaky") == (0, 50)
    assert set(db.conditions()) == {"mc:flaky", "mc:solid"}


def test_reversal_database_validation():
    with pytest.raises(MprosError):
        ReversalDatabase(prior_approvals=-1)
    with pytest.raises(MprosError):
        ReversalDatabase(prior_approvals=0, prior_reversals=0)


def test_believability_discounts_report_belief():
    db = ReversalDatabase()
    for _ in range(100):
        db.record("mc:motor-imbalance", reversed_by_analyst=True)
    trusting = DliExpertSystem()
    skeptical = DliExpertSystem(reversal_db=db)
    ctx = make_ctx({FaultKind.MOTOR_IMBALANCE: 0.9}, seed=7)
    b_trust = next(
        r.belief for r in trusting.analyze(ctx)
        if r.machine_condition_id == "mc:motor-imbalance"
    )
    b_skept = next(
        r.belief for r in skeptical.analyze(ctx)
        if r.machine_condition_id == "mc:motor-imbalance"
    )
    assert b_skept < 0.3 * b_trust


# -- misc -----------------------------------------------------------------------

def test_process_only_context_produces_nothing(dli):
    ctx = SourceContext(
        sensed_object_id="obj:x", timestamp=0.0, process={"superheat_c": 20.0}
    )
    assert dli.analyze(ctx) == []


def test_frame_validation():
    with pytest.raises(MprosError):
        RuleFrame("", lambda *a: 0.0)
    with pytest.raises(MprosError):
        RuleFrame("mc:x", lambda *a: 0.0, threshold=0.9, full_scale=0.5)


def test_prognostic_from_score_convenience():
    from repro.algorithms.dli.severity import prognostic_from_score
    from repro.common.units import days

    v = prognostic_from_score(0.9)  # Extreme
    assert v.time_to_probability(0.5) <= days(10)
    v2 = prognostic_from_score(0.1)  # Slight
    assert v2.probability_at(days(180)) < 0.1
