import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.wnn import (
    FEATURE_NAMES,
    TrainConfig,
    WaveletNeuralNetwork,
    WnnFaultClassifier,
    assemble_features,
    train_network,
)
from repro.algorithms.wnn.features import assemble_batch
from repro.algorithms.wnn.network import mexican_hat, mexican_hat_prime
from repro.common.errors import MprosError
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer

KIN = MachineKinematics(shaft_hz=59.3)
CONDITIONS = ("mc:motor-imbalance", "mc:bearing-wear")


def make_dataset(n_per_class=30, window=1024, seed=0):
    """Labelled feature dataset from the plant synthesizer."""
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(seed)
    X, y = [], []
    classes = [None, {FaultKind.MOTOR_IMBALANCE: 0.8}, {FaultKind.BEARING_WEAR: 0.8}]
    for label, faults in enumerate(classes):
        for _ in range(n_per_class):
            wave = synth.synthesize(window, faults=faults, rng=rng)
            X.append(assemble_features(wave, synth.sample_rate))
            y.append(label)
    return np.vstack(X), np.array(y)


# -- features -----------------------------------------------------------------

def test_feature_vector_shape_and_names():
    x = assemble_features(np.random.default_rng(0).normal(size=1024), 16384.0)
    assert x.shape == (len(FEATURE_NAMES),)
    assert np.all(np.isfinite(x))


def test_feature_vector_includes_process_scalars():
    wave = np.random.default_rng(0).normal(size=1024)
    x0 = assemble_features(wave, 16384.0)
    x1 = assemble_features(wave, 16384.0, {"oil_temp_c": 70.0})
    idx = FEATURE_NAMES.index("oil_temp_c")
    assert x0[idx] == 0.0 and x1[idx] == 70.0


def test_feature_validation():
    with pytest.raises(MprosError):
        assemble_features(np.zeros(32), 16384.0)
    with pytest.raises(MprosError):
        assemble_features(np.zeros(100), 16384.0)  # not multiple of 64
    with pytest.raises(MprosError):
        assemble_batch(np.zeros(128), 16384.0)


def test_batch_matches_loop():
    rng = np.random.default_rng(1)
    windows = rng.normal(size=(3, 256))
    batch = assemble_batch(windows, 16384.0)
    for i in range(3):
        assert np.allclose(batch[i], assemble_features(windows[i], 16384.0))


# -- network mechanics -----------------------------------------------------------

def test_mexican_hat_properties():
    assert mexican_hat(np.array(0.0)) == pytest.approx(1.0)
    assert mexican_hat(np.array(1.0)) == pytest.approx(0.0)
    assert mexican_hat(np.array(5.0)) == pytest.approx(0.0, abs=1e-4)


def test_mexican_hat_prime_matches_numeric():
    z = np.linspace(-3, 3, 31)
    h = 1e-6
    numeric = (mexican_hat(z + h) - mexican_hat(z - h)) / (2 * h)
    assert np.allclose(mexican_hat_prime(z), numeric, atol=1e-6)


def test_network_validates_shapes():
    with pytest.raises(MprosError):
        WaveletNeuralNetwork(0, 4, 2)
    net = WaveletNeuralNetwork(5, 4, 2)
    with pytest.raises(MprosError):
        net.predict(np.zeros((3, 7)))
    with pytest.raises(MprosError):
        net.loss_and_grads(np.zeros((2, 5)), np.array([0, 5]))


def test_softmax_probabilities_normalized():
    net = WaveletNeuralNetwork(4, 8, 3, rng=np.random.default_rng(0))
    P = net.predict_proba(np.random.default_rng(1).normal(size=(10, 4)))
    assert P.shape == (10, 3)
    assert np.allclose(P.sum(axis=1), 1.0)
    assert np.all(P >= 0)


def test_gradients_match_finite_differences():
    rng = np.random.default_rng(0)
    net = WaveletNeuralNetwork(3, 4, 2, rng=rng)
    X = rng.normal(size=(6, 3))
    y = rng.integers(0, 2, 6)
    _, grads = net.loss_and_grads(X, y, l2=0.0)
    h = 1e-6
    for key in ("W", "t", "a", "V", "c"):
        param = net.parameters()[key]
        flat_idx = 0  # check the first element of each parameter
        orig = param.flat[flat_idx]
        param.flat[flat_idx] = orig + h
        lp, _ = net.loss_and_grads(X, y, l2=0.0)
        param.flat[flat_idx] = orig - h
        lm, _ = net.loss_and_grads(X, y, l2=0.0)
        param.flat[flat_idx] = orig
        numeric = (lp - lm) / (2 * h)
        assert grads[key].flat[flat_idx] == pytest.approx(numeric, abs=1e-4), key


def test_training_reduces_loss_and_learns():
    X, y = make_dataset(n_per_class=25)
    net = WaveletNeuralNetwork(X.shape[1], 16, 3, rng=np.random.default_rng(0))
    result = train_network(net, X, y, TrainConfig(epochs=80, patience=15),
                           rng=np.random.default_rng(1))
    assert result.train_losses[-1] < result.train_losses[0]
    assert result.best_val_accuracy >= 0.8


def test_train_config_validation():
    with pytest.raises(MprosError):
        TrainConfig(epochs=0)
    with pytest.raises(MprosError):
        TrainConfig(validation_fraction=1.0)


# -- classifier end-to-end ----------------------------------------------------------

@pytest.fixture(scope="module")
def trained():
    clf = WnnFaultClassifier(conditions=CONDITIONS, n_hidden=24, min_confidence=0.45)
    X, y = make_dataset(n_per_class=50)
    clf.fit(X, y, config=TrainConfig(epochs=150, patience=25),
            rng=np.random.default_rng(2))
    return clf


def test_classifier_validation():
    with pytest.raises(MprosError):
        WnnFaultClassifier(conditions=())
    with pytest.raises(MprosError):
        WnnFaultClassifier(conditions=("mc:x",), window=100)
    with pytest.raises(MprosError):
        WnnFaultClassifier(conditions=("mc:x",)).classify_window(
            np.zeros(1024), 16384.0
        )


def test_classifier_identifies_faults(trained):
    """Majority of fresh fault windows classify correctly."""
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(10)
    correct = 0
    for _ in range(8):
        wave = synth.synthesize(1024, faults={FaultKind.MOTOR_IMBALANCE: 0.8}, rng=rng)
        cond, conf, sev = trained.classify_window(wave, synth.sample_rate)
        assert 0.0 <= sev <= 1.0 and 0.0 <= conf <= 1.0
        if cond == "mc:motor-imbalance":
            correct += 1
    assert correct >= 5


def test_classifier_healthy_no_reports(trained):
    synth = VibrationSynthesizer(KIN)
    wave = synth.synthesize(8192, rng=np.random.default_rng(11))
    ctx = SourceContext(
        sensed_object_id="obj:m", timestamp=0.0,
        waveform=wave, sample_rate=synth.sample_rate, kinematics=KIN,
    )
    assert trained.analyze(ctx) == []


def test_classifier_analyze_emits_report(trained):
    synth = VibrationSynthesizer(KIN)
    wave = synth.synthesize(
        8192, faults={FaultKind.BEARING_WEAR: 0.8}, rng=np.random.default_rng(12)
    )
    ctx = SourceContext(
        sensed_object_id="obj:m", timestamp=5.0,
        waveform=wave, sample_rate=synth.sample_rate, kinematics=KIN, dc_id="dc:0",
    )
    reports = trained.analyze(ctx)
    assert any(r.machine_condition_id == "mc:bearing-wear" for r in reports)
    r = next(r for r in reports if r.machine_condition_id == "mc:bearing-wear")
    assert r.knowledge_source_id == "ks:wnn"
    assert len(r.prognostic) > 0


def test_classifier_short_waveform_no_reports(trained):
    ctx = SourceContext(
        sensed_object_id="obj:m", timestamp=0.0,
        waveform=np.zeros(100), sample_rate=16384.0,
    )
    assert trained.analyze(ctx) == []


def test_save_load_roundtrip(trained, tmp_path):
    """A trained classifier ships as weights and classifies
    identically after reload (§3.4 deployment)."""
    path = tmp_path / "wnn.npz"
    trained.save(path)
    restored = WnnFaultClassifier.load(path)
    assert restored.classes == trained.classes
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(20)
    for faults in (None, {FaultKind.MOTOR_IMBALANCE: 0.8}, {FaultKind.BEARING_WEAR: 0.8}):
        wave = synth.synthesize(1024, faults=faults, rng=rng)
        a = trained.classify_window(wave, synth.sample_rate)
        b = restored.classify_window(wave, synth.sample_rate)
        assert a[0] == b[0]
        assert a[1] == pytest.approx(b[1], abs=1e-12)
        assert a[2] == pytest.approx(b[2], abs=1e-12)


def test_save_untrained_rejected(tmp_path):
    clf = WnnFaultClassifier(conditions=("mc:x",))
    with pytest.raises(MprosError):
        clf.save(tmp_path / "x.npz")
