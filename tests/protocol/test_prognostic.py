import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.common.units import months
from repro.protocol import PrognosticPoint, PrognosticVector


def vec(*pairs):
    return PrognosticVector.from_pairs(list(pairs))


# -- validation ---------------------------------------------------------

def test_point_rejects_negative_time():
    with pytest.raises(ProtocolError):
        PrognosticPoint(-1.0, 0.5)


def test_point_rejects_probability_out_of_range():
    with pytest.raises(ProtocolError):
        PrognosticPoint(1.0, 1.5)
    with pytest.raises(ProtocolError):
        PrognosticPoint(1.0, -0.1)


def test_vector_sorts_points_by_time():
    v = vec((10.0, 0.9), (5.0, 0.5))
    assert list(v.times) == [5.0, 10.0]


def test_vector_rejects_duplicate_times():
    with pytest.raises(ProtocolError):
        vec((5.0, 0.1), (5.0, 0.2))


def test_vector_rejects_decreasing_probability():
    with pytest.raises(ProtocolError):
        vec((1.0, 0.9), (2.0, 0.1))


def test_empty_vector():
    v = PrognosticVector.empty()
    assert len(v) == 0
    assert v.probability_at(100.0) == 0.0
    assert v.time_to_probability(0.5) == math.inf


# -- the paper's example vector (§5.4) ---------------------------------

PAPER = [(months(3), 0.01), (months(4), 0.5), (months(5), 0.99)]


def test_paper_vector_knots_exact():
    v = PrognosticVector.from_pairs(PAPER)
    assert v.probability_at(months(3)) == pytest.approx(0.01)
    assert v.probability_at(months(4)) == pytest.approx(0.5)
    assert v.probability_at(months(5)) == pytest.approx(0.99)


def test_interpolation_between_knots():
    v = PrognosticVector.from_pairs(PAPER)
    p = v.probability_at(months(4.5))
    assert 0.5 < p < 0.99
    assert p == pytest.approx((0.5 + 0.99) / 2, rel=1e-6)


def test_ramp_from_zero_before_first_knot():
    v = PrognosticVector.from_pairs(PAPER)
    assert v.probability_at(0.0) == 0.0
    assert 0.0 < v.probability_at(months(1.5)) < 0.01


def test_extrapolation_beyond_last_knot_clipped():
    v = PrognosticVector.from_pairs(PAPER)
    assert v.probability_at(months(5.1)) > 0.99
    assert v.probability_at(months(12)) == 1.0


def test_time_to_probability_interpolates():
    v = PrognosticVector.from_pairs(PAPER)
    t50 = v.time_to_probability(0.5)
    assert t50 == pytest.approx(months(4), rel=1e-9)
    t25 = v.time_to_probability(0.25)
    assert months(3) < t25 < months(4)


def test_time_to_probability_extrapolates():
    v = PrognosticVector.from_pairs(PAPER)
    t_sure = v.time_to_probability(0.999)
    assert t_sure > months(5)
    assert t_sure < months(6)


def test_single_point_vector_holds_value():
    v = vec((months(2), 0.3))
    assert v.probability_at(months(4)) == pytest.approx(0.3)
    assert v.time_to_probability(0.5) == math.inf


# -- shifting -----------------------------------------------------------

def test_shift_rebases_times():
    v = PrognosticVector.from_pairs(PAPER).shifted(months(1))
    assert v.times[0] == pytest.approx(months(2))
    assert v.probabilities[0] == pytest.approx(0.01)


def test_shift_clamps_elapsed_horizons():
    v = PrognosticVector.from_pairs(PAPER).shifted(months(4))
    assert v.times[0] == 0.0
    # The strongest already-elapsed claim survives at t=0.
    assert v.probabilities[0] == pytest.approx(0.5)


def test_shift_zero_is_identity():
    v = PrognosticVector.from_pairs(PAPER)
    assert v.shifted(0.0) is v


def test_vectors_hash_and_compare():
    assert PrognosticVector.from_pairs(PAPER) == PrognosticVector.from_pairs(PAPER)
    assert hash(PrognosticVector.from_pairs(PAPER)) == hash(
        PrognosticVector.from_pairs(PAPER)
    )


# -- properties ---------------------------------------------------------

@st.composite
def prognostic_vectors(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1e8),
                min_size=n, max_size=n, unique=True,
            )
        )
    )
    probs = sorted(
        draw(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n))
    )
    return PrognosticVector.from_pairs(list(zip(times, probs)))


@settings(max_examples=60, deadline=None)
@given(v=prognostic_vectors(), t=st.floats(min_value=0.0, max_value=2e8))
def test_probability_at_always_in_unit_interval(v, t):
    p = v.probability_at(t)
    assert 0.0 <= p <= 1.0


@settings(max_examples=60, deadline=None)
@given(v=prognostic_vectors())
def test_probability_curve_is_monotone(v):
    ts = np.linspace(0.0, float(v.times[-1]) * 1.5 + 1.0, 64)
    ps = v.probability_at(ts)
    assert np.all(np.diff(ps) >= -1e-12)


@settings(max_examples=60, deadline=None)
@given(v=prognostic_vectors(), dt=st.floats(min_value=0.0, max_value=1e8))
def test_shift_preserves_validity(v, dt):
    w = v.shifted(dt)
    assert np.all(np.diff(w.times) > 0) or len(w) <= 1
    assert np.all(np.diff(w.probabilities) >= 0) or len(w) <= 1
