import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.protocol import (
    FailurePredictionReport,
    PrognosticVector,
    ReportKind,
    decode_report,
    encode_report,
)
from repro.protocol.wire import from_json, to_json


def make_report(**overrides):
    base = dict(
        knowledge_source_id="ks:0000",
        sensed_object_id="obj:0001",
        machine_condition_id="mc:0002",
        severity=0.6,
        belief=0.8,
        timestamp=12.0,
        dc_id="dc:0000",
        explanation="bearing housing looseness",
        recommendations="inspect at next port call",
        prognostic=PrognosticVector.from_pairs([(3600.0, 0.1), (7200.0, 0.5)]),
    )
    base.update(overrides)
    return FailurePredictionReport(**base)


# -- validation ---------------------------------------------------------

def test_requires_nonempty_ids():
    with pytest.raises(ProtocolError):
        make_report(knowledge_source_id="")
    with pytest.raises(ProtocolError):
        make_report(sensed_object_id="")
    with pytest.raises(ProtocolError):
        make_report(machine_condition_id="")


def test_severity_and_belief_bounds():
    with pytest.raises(ProtocolError):
        make_report(severity=1.2)
    with pytest.raises(ProtocolError):
        make_report(belief=-0.1)


def test_negative_timestamp_rejected():
    with pytest.raises(ProtocolError):
        make_report(timestamp=-1.0)


def test_prognostic_type_enforced():
    with pytest.raises(ProtocolError):
        make_report(prognostic=[(1.0, 0.5)])


# -- kind classification -------------------------------------------------

def test_kind_combined():
    assert make_report().kind is ReportKind.COMBINED


def test_kind_diagnostic_when_no_vector():
    r = make_report(prognostic=PrognosticVector.empty())
    assert r.kind is ReportKind.DIAGNOSTIC


def test_kind_prognostic_when_no_belief():
    r = make_report(belief=0.0)
    assert r.kind is ReportKind.PROGNOSTIC


def test_with_timestamp_restamps():
    r = make_report().with_timestamp(99.0)
    assert r.timestamp == 99.0
    assert r.machine_condition_id == "mc:0002"


def test_summary_mentions_condition():
    assert "mc:0002" in make_report().summary()


# -- wire round trips -----------------------------------------------------

def test_encode_decode_roundtrip():
    r = make_report()
    assert decode_report(encode_report(r)) == r


def test_json_roundtrip():
    r = make_report()
    assert from_json(to_json(r)) == r


def test_decode_missing_field_raises():
    payload = encode_report(make_report())
    del payload["belief"]
    with pytest.raises(ProtocolError):
        decode_report(payload)


def test_decode_bad_version_raises():
    payload = encode_report(make_report())
    payload["v"] = 999
    with pytest.raises(ProtocolError):
        decode_report(payload)


def test_decode_malformed_prognostic_raises():
    payload = encode_report(make_report())
    payload["prognostic"] = [["x", "y"]]
    with pytest.raises(ProtocolError):
        decode_report(payload)


def test_from_json_rejects_non_object():
    with pytest.raises(ProtocolError):
        from_json("[1,2,3]")
    with pytest.raises(ProtocolError):
        from_json("{not json")


def test_optional_text_fields_default_blank():
    payload = encode_report(make_report())
    del payload["explanation"], payload["recommendations"], payload["additional_info"]
    r = decode_report(payload)
    assert r.explanation == "" and r.recommendations == ""


@settings(max_examples=50, deadline=None)
@given(
    severity=st.floats(min_value=0.0, max_value=1.0),
    belief=st.floats(min_value=0.0, max_value=1.0),
    timestamp=st.floats(min_value=0.0, max_value=1e9),
    text=st.text(max_size=64),
)
def test_roundtrip_property(severity, belief, timestamp, text):
    r = make_report(
        severity=severity, belief=belief, timestamp=timestamp, explanation=text,
        prognostic=PrognosticVector.empty(),
    )
    assert from_json(to_json(r)) == r
