"""§5.7 PDME-resident model-based diagnostics."""

import pytest

from repro.netsim import EventKernel
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.pdme.resident import ModelBasedDiagnostics, attach_resident_analyzer
from repro.protocol import FailurePredictionReport


def rep(obj, cond, belief=0.8, ks="ks:fuzzy", t=1.0):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=0.6,
        belief=belief,
        timestamp=t,
    )


@pytest.fixture
def world():
    model, ship, units = build_chilled_water_ship(n_chillers=2)
    pdme = PdmeExecutive(model)
    return model, ship, units, pdme


def test_quiet_ship_produces_nothing(world):
    model, ship, units, pdme = world
    analyzer = ModelBasedDiagnostics(model, pdme.engine)
    assert analyzer.scan(now=10.0) == []


def test_root_cause_promotion(world):
    """Downstream oil contamination + upstream gear wear → reinforce
    the source diagnosis."""
    model, ship, units, pdme = world
    u = units[0]
    pdme.submit(rep(u.gearset, "mc:gear-tooth-wear", 0.8))
    pdme.submit(rep(u.compressor, "mc:oil-contamination", 0.6))
    analyzer = ModelBasedDiagnostics(model, pdme.engine)
    reports = analyzer.scan(now=20.0)
    promoted = [r for r in reports if r.sensed_object_id == u.gearset]
    assert promoted
    assert promoted[0].machine_condition_id == "mc:gear-tooth-wear"
    assert "model-based" in promoted[0].explanation


def test_common_cause_across_separate_chillers(world):
    """The same condenser fouling on both chillers points at the shared
    cooling-water supply — a conclusion no single DC could reach."""
    model, ship, units, pdme = world
    for u in units:
        pdme.submit(rep(u.motor, "mc:condenser-fouling", 0.8))
    analyzer = ModelBasedDiagnostics(model, pdme.engine)
    reports = analyzer.scan(now=30.0)
    common = [r for r in reports
              if r.machine_condition_id == "mc:cooling-water-supply-fouling"]
    assert common
    assert common[0].sensed_object_id == ship.id
    assert "separate units" in common[0].explanation


def test_single_unit_is_not_a_common_cause(world):
    model, ship, units, pdme = world
    pdme.submit(rep(units[0].motor, "mc:condenser-fouling", 0.9))
    analyzer = ModelBasedDiagnostics(model, pdme.engine)
    assert all(
        r.machine_condition_id != "mc:cooling-water-supply-fouling"
        for r in analyzer.scan(now=30.0)
    )


def test_conclusions_are_one_shot_until_reset(world):
    model, ship, units, pdme = world
    for u in units:
        pdme.submit(rep(u.motor, "mc:condenser-fouling", 0.8))
    analyzer = ModelBasedDiagnostics(model, pdme.engine)
    assert analyzer.scan(now=30.0)
    assert analyzer.scan(now=31.0) == []
    analyzer.reset()
    assert analyzer.scan(now=32.0)


def test_scheduled_scan_feeds_back_into_fusion(world):
    model, ship, units, pdme = world
    kernel = EventKernel()
    attach_resident_analyzer(pdme, period=300.0, kernel=kernel)
    for u in units:
        pdme.submit(rep(u.motor, "mc:condenser-fouling", 0.8))
    kernel.run_until(700.0)
    # The resident conclusion was posted, retained and fused.
    ship_reports = model.reports_for(ship.id)
    assert any(
        r.machine_condition_id == "mc:cooling-water-supply-fouling"
        for r in ship_reports
    )
    suspects = pdme.engine.suspects(threshold=0.5)
    assert any(c == "mc:cooling-water-supply-fouling" for _, c, _ in suspects)
