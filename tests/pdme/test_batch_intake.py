"""Batched report intake: ``post_report_batch`` RPC and the batched
uplink flush.

The contract under test: per-report decisions (accepted / duplicate /
refused) from one batch RPC are identical to ``post_report`` called
once per entry in order — including duplicates *within* a batch — and
the fused OOSM state ends up the same either way.
"""

import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.dc.uplink import ReportUplink
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint
from repro.obs import MetricsRegistry
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.protocol import FailurePredictionReport
from repro.protocol.wire import encode_report


def report(obj, i=0, belief=0.4):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=belief,
        timestamp=float(i),
    )


def make_pdme():
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    return model, pdme, units[0]


def payload(obj, i=0, rid=None, belief=0.4):
    p = encode_report(report(obj, i, belief))
    if rid is not None:
        p["report_id"] = rid
    return p


# -- the RPC handler directly -----------------------------------------------

def test_batch_rpc_mixed_results_align_with_request_order():
    model, pdme, unit = make_pdme()
    reply = pdme._rpc_post_report_batch({
        "reports": [
            payload(unit.motor, 0, rid="dc:0#0"),
            payload(unit.motor, 0, rid="dc:0#0"),       # intra-batch dup
            payload("obj:ghost", 1, rid="dc:0#1"),      # unknown object
            "not-a-mapping",                            # malformed entry
            payload(unit.motor, 2, rid="dc:0#2"),
        ]
    })
    assert reply["accepted"] is True
    assert reply["accepted_count"] == 2
    r = reply["results"]
    assert r[0] == {"accepted": True}
    assert r[1] == {"accepted": True, "duplicate": True}
    assert r[2]["accepted"] is False and "ghost" in r[2]["error"]
    assert r[3]["accepted"] is False
    assert r[4] == {"accepted": True}
    assert model.report_count == 2
    assert pdme.duplicates_dropped == 1


def test_batch_rpc_dedups_against_earlier_singles():
    model, pdme, unit = make_pdme()
    assert pdme._rpc_post_report({**payload(unit.motor, 0, rid="dc:0#0")})["accepted"]
    reply = pdme._rpc_post_report_batch({
        "reports": [
            payload(unit.motor, 0, rid="dc:0#0"),       # replayed ack loss
            payload(unit.motor, 1, rid="dc:0#1"),
        ]
    })
    assert reply["results"][0] == {"accepted": True, "duplicate": True}
    assert reply["results"][1] == {"accepted": True}
    assert model.report_count == 2


def test_batch_rpc_fingerprint_dedup_for_idless_senders():
    model, pdme, unit = make_pdme()
    same = payload(unit.motor, 0)
    reply = pdme._rpc_post_report_batch({"reports": [same, dict(same)]})
    assert reply["results"][0] == {"accepted": True}
    assert reply["results"][1] == {"accepted": True, "duplicate": True}
    assert model.report_count == 1


def test_batch_rpc_rejects_non_list():
    model, pdme, unit = make_pdme()
    reply = pdme._rpc_post_report_batch({"reports": "nope"})
    assert reply["accepted"] is False


def test_batch_equals_singles_fused_state():
    model_a, pdme_a, unit_a = make_pdme()
    model_b, pdme_b, unit_b = make_pdme()
    payloads = [
        payload(unit_a.motor, i, rid=f"dc:0#{i}", belief=0.3 + 0.05 * i)
        for i in range(6)
    ]
    for p in payloads:
        pdme_a._rpc_post_report(dict(p))
    pdme_b._rpc_post_report_batch({"reports": [dict(p) for p in payloads]})
    sa = pdme_a.engine.diagnostic.state(unit_a.motor, "rotating-mechanical")
    sb = pdme_b.engine.diagnostic.state(unit_b.motor, "rotating-mechanical")
    for c in sa.beliefs:
        assert sa.beliefs[c] == pytest.approx(sb.beliefs[c], abs=1e-12)
    assert model_a.report_count == model_b.report_count == 6


# -- the uplink batched flush over the simulated network --------------------

def make_world(**uplink_kw):
    metrics = MetricsRegistry()
    kernel = EventKernel(metrics=metrics)
    net = Network(kernel, np.random.default_rng(0), metrics=metrics)
    net.connect("dc:0", "pdme", LinkConfig())
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1, metrics=metrics)
    pdme_ep = RpcEndpoint("pdme", net, kernel, metrics=metrics)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model, metrics=metrics)
    pdme.serve_on(pdme_ep)
    uplink = ReportUplink(dc_ep, "pdme", metrics=metrics, **uplink_kw)
    return kernel, net, pdme, uplink, units[0].motor


def test_flush_batched_delivers_backlog_in_one_rpc_per_chunk():
    kernel, net, pdme, uplink, motor = make_world()
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(motor, i))
    kernel.run()                      # initial sends fail; all queued
    assert uplink.backlog == 10
    net.set_down("dc:0", "pdme", False)
    sent_before = net.stats()["sent"]
    assert uplink.flush_batched(force=True, max_batch=4) == 10
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 10
    assert pdme.report_count() == 10
    # 3 chunks (4+4+2): 3 requests + 3 replies, not 10 of each.
    assert net.stats()["sent"] - sent_before == 6


def test_flush_batched_respects_backoff_unless_forced():
    kernel, net, pdme, uplink, motor = make_world(
        retry_base=1000.0, retry_cap=1000.0
    )
    net.set_down("dc:0", "pdme", True)
    uplink.submit(report(motor, 0))
    kernel.run()
    assert uplink.backlog == 1
    net.set_down("dc:0", "pdme", False)
    assert uplink.flush_batched() == 0        # still inside backoff
    assert uplink.stats.deferred >= 1
    assert uplink.flush_batched(force=True) == 1
    kernel.run()
    assert uplink.backlog == 0


def test_flush_batched_replay_is_exactly_once_at_oosm():
    kernel, net, pdme, uplink, motor = make_world()
    for i in range(3):
        uplink.submit(report(motor, i))
    kernel.run()
    assert pdme.report_count() == 3
    # A crashed DC re-queues and re-sends the same ids via the batch
    # path; PDME dedup keeps the OOSM exactly-once.
    for key in range(3):
        uplink._queue[key] = report(motor, key)
    assert uplink.flush_batched(force=True) == 3
    kernel.run()
    assert pdme.report_count() == 3
    assert pdme.duplicates_dropped == 3


def test_flush_batched_validates_max_batch():
    kernel, net, pdme, uplink, motor = make_world()
    with pytest.raises(NetworkError):
        uplink.flush_batched(max_batch=0)
