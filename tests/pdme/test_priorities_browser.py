"""Edge cases for the priority list and the Fig. 2 browser.

The ISSUE-5 hot-path work made ``suspects()`` a memoized view and the
priority list a consumer of lazy prognoses — these tests pin the
behaviors that rewrite must not disturb: empty inputs, exact urgency
ties, and stale (time-disordered) reports reaching the temporal view.
"""

import pytest

from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive, prioritize, render_machine_screen, render_priority_list
from repro.protocol import FailurePredictionReport, PrognosticVector


def make_pdme():
    model, ship, units = build_chilled_water_ship(n_chillers=2)
    pdme = PdmeExecutive(model)
    return model, pdme, units


def report(obj, cond="mc:motor-imbalance", belief=0.6, sev=0.5, t=10.0,
           ks="ks:dli", pairs=()):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=sev,
        belief=belief,
        timestamp=t,
        prognostic=PrognosticVector.from_pairs(list(pairs)),
    )


# -- empty condition list -------------------------------------------------------------

def test_priorities_empty_engine():
    model, pdme, units = make_pdme()
    assert pdme.priorities(now=0.0) == []
    assert prioritize(pdme.engine) == []


def test_priorities_all_below_floor_is_empty():
    model, pdme, units = make_pdme()
    pdme.submit(report(units[0].motor, belief=0.1))
    assert prioritize(pdme.engine, belief_floor=0.2) == []


def test_render_priority_list_empty():
    text = render_priority_list([])
    assert "no suspect components" in text


def test_browser_screen_no_reports_no_state():
    model, pdme, units = make_pdme()
    text = render_machine_screen(model, pdme.engine, units[0].motor)
    assert "(none)" in text
    assert "(no fused state)" in text


# -- tied priorities ------------------------------------------------------------------

def test_tied_priorities_keep_both_entries_deterministically():
    model, pdme, units = make_pdme()
    # Identical evidence on two different machines: urgencies tie exactly.
    pdme.submit(report(units[0].motor, belief=0.6, sev=0.5, t=10.0))
    pdme.submit(report(units[1].motor, belief=0.6, sev=0.5, t=10.0))
    entries = pdme.priorities(now=10.0)
    tied = [e for e in entries if e.machine_condition_id == "mc:motor-imbalance"]
    assert len(tied) == 2
    assert tied[0].urgency == pytest.approx(tied[1].urgency)
    # The ordering of an exact tie is stable across repeated queries.
    again = pdme.priorities(now=10.0)
    assert [
        (e.sensed_object_id, e.machine_condition_id) for e in entries
    ] == [(e.sensed_object_id, e.machine_condition_id) for e in again]


# -- stale-report filtering -----------------------------------------------------------

def test_stale_report_skipped_by_temporal_view_not_fusion():
    model, pdme, units = make_pdme()
    motor = units[0].motor
    pdme.submit(report(motor, belief=0.7, t=100.0))
    # Time-disordered arrival (§5.1): older than what temporal has seen.
    pdme.submit(report(motor, belief=0.7, t=50.0, ks="ks:wnn"))
    # Fusion accepts both reports ...
    assert len(pdme.conclusions) == 2
    assert model.report_count == 2
    # ... the temporal tracker only advanced on the in-order one ...
    tracker = pdme.temporal.tracker(motor, "mc:motor-imbalance")
    assert tracker._last_time == 100.0
    # ... and the priority list still ranks the fused suspect.
    entries = pdme.priorities(now=100.0)
    assert any(
        e.sensed_object_id == motor
        and e.machine_condition_id == "mc:motor-imbalance"
        for e in entries
    )


def test_browser_screen_after_stale_report_lists_both():
    model, pdme, units = make_pdme()
    motor = units[0].motor
    pdme.submit(report(motor, belief=0.7, t=100.0))
    pdme.submit(report(motor, belief=0.5, t=50.0, ks="ks:wnn"))
    text = render_machine_screen(model, pdme.engine, motor, now=100.0)
    # Both retained reports are shown, newest-seen state is fused.
    assert "2 report(s) from 2 knowledge source(s)" in text
    assert "mc:motor-imbalance" in text
