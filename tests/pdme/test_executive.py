import math

import numpy as np
import pytest

from repro.common.units import months, weeks
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint
from repro.oosm import ShipModel, build_chilled_water_ship
from repro.pdme import PdmeExecutive, prioritize, render_machine_screen, render_priority_list
from repro.pdme.priorities import urgency_score
from repro.protocol import FailurePredictionReport, PrognosticVector
from repro.protocol.wire import encode_report


def make_pdme():
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    return model, pdme, units[0]


def report(obj, cond="mc:motor-imbalance", belief=0.6, sev=0.5, t=10.0,
           ks="ks:dli", pairs=()):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=sev,
        belief=belief,
        timestamp=t,
        prognostic=PrognosticVector.from_pairs(list(pairs)),
    )


# -- §5.1 loop -------------------------------------------------------------------

def test_submit_posts_to_oosm_and_fuses():
    model, pdme, unit = make_pdme()
    pdme.submit(report(unit.motor))
    assert model.report_count == 1
    assert len(pdme.conclusions) == 1
    c = pdme.conclusions[0]
    assert c.diagnosis.beliefs["mc:motor-imbalance"] == pytest.approx(0.6)


def test_display_callback_invoked():
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    seen = []
    pdme = PdmeExecutive(model, on_update=seen.append)
    pdme.submit(report(units[0].motor))
    assert len(seen) == 1


def test_reinforcing_sources_fuse():
    model, pdme, unit = make_pdme()
    pdme.submit(report(unit.motor, ks="ks:dli", belief=0.6))
    pdme.submit(report(unit.motor, ks="ks:wnn", belief=0.6))
    c = pdme.conclusions[-1]
    assert c.diagnosis.beliefs["mc:motor-imbalance"] == pytest.approx(1 - 0.16)


# -- RPC intake ---------------------------------------------------------------------

def make_rpc_pdme(drop_rate=0.0, seed=0):
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(seed))
    net.connect("dc:0", "pdme", LinkConfig(latency=0.01, drop_rate=drop_rate))
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=4)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    return kernel, dc_ep, pdme, units[0]


def test_report_over_rpc():
    kernel, dc_ep, pdme, unit = make_rpc_pdme()
    acks = []
    dc_ep.call("pdme", "post_report", encode_report(report(unit.motor)),
               on_reply=acks.append)
    kernel.run()
    assert acks == [{"accepted": True}]
    assert pdme.report_count() == 1


def test_report_over_lossy_link_retries():
    kernel, dc_ep, pdme, unit = make_rpc_pdme(drop_rate=0.4, seed=3)
    dc_ep.call("pdme", "post_report", encode_report(report(unit.motor)))
    kernel.run()
    assert pdme.report_count() == 1


def test_malformed_wire_report_rejected_not_fatal():
    kernel, dc_ep, pdme, unit = make_rpc_pdme()
    acks = []
    dc_ep.call("pdme", "post_report", {"garbage": True}, on_reply=acks.append)
    kernel.run()
    assert acks[0]["accepted"] is False
    assert pdme.intake_errors
    assert pdme.report_count() == 0


def test_report_for_unknown_object_rejected_gracefully():
    kernel, dc_ep, pdme, _ = make_rpc_pdme()
    acks = []
    dc_ep.call("pdme", "post_report", encode_report(report("obj:ghost")),
               on_reply=acks.append)
    kernel.run()
    assert acks[0]["accepted"] is False


# -- priorities -----------------------------------------------------------------------

def test_urgency_monotone():
    base = urgency_score(0.5, 0.5, months(1))
    assert urgency_score(0.9, 0.5, months(1)) > base
    assert urgency_score(0.5, 0.9, months(1)) > base
    assert urgency_score(0.5, 0.5, weeks(1)) > base
    assert urgency_score(0.5, 0.5, math.inf) < base


def test_priority_list_ranks_imminent_first():
    model, pdme, unit = make_pdme()
    pdme.submit(report(unit.motor, cond="mc:motor-imbalance", belief=0.8, sev=0.5,
                       pairs=[(months(6), 0.5)]))
    pdme.submit(report(unit.pump, cond="mc:bearing-wear", belief=0.8, sev=0.5,
                       pairs=[(weeks(1), 0.5)]))
    entries = pdme.priorities(now=10.0)
    assert entries[0].machine_condition_id == "mc:bearing-wear"
    assert entries[0].urgency > entries[1].urgency


def test_priority_floor_filters_weak_beliefs():
    model, pdme, unit = make_pdme()
    pdme.submit(report(unit.motor, belief=0.1))
    assert prioritize(pdme.engine, belief_floor=0.2) == []


# -- browser (Fig. 2) ----------------------------------------------------------------

def test_browser_screen_mirrors_fig2():
    """Six reports from four sources on 'A/C Compressor Motor 1', some
    conflicting, some reinforcing — then fused predictions."""
    model, pdme, unit = make_pdme()
    motor = unit.motor
    # Reinforcing: three sources call imbalance.
    pdme.submit(report(motor, "mc:motor-imbalance", 0.6, ks="ks:dli",
                       pairs=[(months(3), 0.5)]))
    pdme.submit(report(motor, "mc:motor-imbalance", 0.5, ks="ks:wnn"))
    pdme.submit(report(motor, "mc:motor-imbalance", 0.4, ks="ks:sbfr"))
    # Conflicting: one source calls misalignment (same group).
    pdme.submit(report(motor, "mc:shaft-misalignment", 0.7, ks="ks:fuzzy"))
    # Different group entirely.
    pdme.submit(report(motor, "mc:motor-rotor-bar", 0.5, ks="ks:dli"))
    pdme.submit(report(motor, "mc:oil-contamination", 0.45, ks="ks:fuzzy"))

    screen = render_machine_screen(model, pdme.engine, motor, now=10.0)
    assert "A/C Compressor Motor 1" in screen
    assert "6 report(s) from 4 knowledge source(s)" in screen
    assert "mc:motor-imbalance" in screen
    assert "[rotating-mechanical]" in screen
    assert "[electrical]" in screen
    assert "[lubricant]" in screen
    assert "unknown:" in screen
    assert "TTF" in screen


def test_browser_empty_machine():
    model, pdme, unit = make_pdme()
    screen = render_machine_screen(model, pdme.engine, unit.motor)
    assert "(none)" in screen
    assert "(no fused state)" in screen


def test_priority_list_rendering():
    model, pdme, unit = make_pdme()
    pdme.submit(report(unit.motor, belief=0.9, pairs=[(weeks(2), 0.5)]))
    text = render_priority_list(pdme.priorities(now=10.0))
    assert "1." in text and "mc:motor-imbalance" in text
    empty = render_priority_list([])
    assert "no suspect components" in empty


def test_temporal_analyzer_fed_from_conclusions():
    """§10.1 temporal reasoning rides the conclusion stream: an
    intermittent condition's episodes are visible to the PDME."""
    model, pdme, unit = make_pdme()
    motor = unit.motor
    # Three belief pulses: strong report, then a retraction-ish weak one.
    t = 0.0
    for gap in (100.0, 50.0, 25.0):
        pdme.submit(report(motor, belief=0.9, t=t))
        pdme.engine.diagnostic.reset(motor, "rotating-mechanical")
        pdme.submit(report(motor, belief=0.05, t=t + 5.0))
        pdme.engine.diagnostic.reset(motor, "rotating-mechanical")
        t += gap
    tracker = pdme.temporal.tracker(motor, "mc:motor-imbalance")
    assert len(tracker.episodes) >= 2
    acc = tracker.acceleration()
    assert acc < 0.9  # recurrence is accelerating


def test_accelerating_episodes_raise_priority():
    """An intermittent condition with accelerating recurrence outranks
    a steady one of equal belief/severity: its temporal projection
    supplies an earlier conservative TTF."""
    model, pdme, unit = make_pdme()
    motor, pump = unit.motor, unit.pump

    def pulse(obj, cond, t, close=True):
        pdme.submit(report(obj, cond=cond, belief=0.9, t=t))
        group = pdme.engine.diagnostic._registry.group_of(cond).name
        if close:
            pdme.engine.diagnostic.reset(obj, group)
            pdme.submit(report(obj, cond=cond, belief=0.05, t=t + 1.0))
            pdme.engine.diagnostic.reset(obj, group)

    # Accelerating episodes on the motor: intervals 400, 200, 100; the
    # final pulse stays open (belief stays high for the suspects list).
    for t in (0.0, 400.0, 600.0):
        pulse(motor, "mc:motor-imbalance", t)
    pulse(motor, "mc:motor-imbalance", 700.0, close=False)
    # Steady episodes on the pump: intervals 400, 400, 400.
    for t in (0.0, 400.0, 800.0):
        pulse(pump, "mc:bearing-wear", t)
    pulse(pump, "mc:bearing-wear", 1200.0, close=False)

    entries = pdme.priorities(now=1250.0)
    by_cond = {e.machine_condition_id: e for e in entries}
    accel = by_cond["mc:motor-imbalance"]
    steady = by_cond["mc:bearing-wear"]
    assert accel.time_to_failure < steady.time_to_failure
    assert accel.urgency > steady.urgency


def test_browser_labels_conflicting_and_reinforcing():
    model, pdme, unit = make_pdme()
    motor = unit.motor
    pdme.submit(report(motor, "mc:motor-imbalance", 0.8, ks="ks:dli"))
    pdme.submit(report(motor, "mc:motor-imbalance", 0.8, ks="ks:wnn"))
    screen = render_machine_screen(model, pdme.engine, motor, now=20.0)
    assert "reinforcing" in screen
    pdme.submit(report(motor, "mc:shaft-misalignment", 0.8, ks="ks:fuzzy"))
    screen = render_machine_screen(model, pdme.engine, motor, now=20.0)
    assert "conflicting (K=" in screen
