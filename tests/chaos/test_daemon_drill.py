"""The streaming-daemon chaos drill: the always-on loop under
storm + crash + clock-hold + flap, gated on conservation, liveness and
the deterministic recovery-time ceiling (the CI `mpros daemon --quick`
job runs exactly this)."""

import pytest

from repro.chaos import ChaosAction, daemon_scenario
from repro.common.errors import MprosError
from repro.obs import MetricsRegistry
from repro.stream import RECOVERY_CEILING, run_daemon_drill


@pytest.fixture(scope="module")
def drill():
    """One quick daemon drill, shared by every assertion below."""
    return run_daemon_drill(quick=True, metrics=MetricsRegistry())


def test_drill_passes_the_always_on_gate(drill):
    assert drill.ok
    assert "drill verdict: PASS" in drill.summary()


def test_conservation_law_balances(drill):
    res = drill.resilience
    assert res.produced > 0
    assert res.lost == 0
    assert res.duplicated == 0
    # The crash mid-window ate acks: the watchdog's forced restart
    # replayed the durable backlog, absorbed PDME-side as duplicates.
    assert res.recovered_reports > 0
    assert res.duplicate_acks >= 1


def test_every_mechanism_actually_engaged(drill):
    daemon = drill.daemon
    assert daemon.ticks > 0
    # The ladder ran all the way to a forced restart for the crash...
    assert daemon.watchdog.restarts >= 1
    assert daemon.watchdog.escalations["retry"] >= 1
    # ...and the clock-hold healed at the stage-restart rung.
    assert daemon.watchdog.escalations["stage-restart"] >= 1
    # The report storm tripped backpressure at least once.
    assert any(e.state == "engaged" for e in daemon.backpressure_events)
    assert any(e.state == "released" for e in daemon.backpressure_events)
    # The post-crash backlog drained through bounded catch-up.
    assert daemon.catchup.drained > 0


def test_recovery_beats_the_ceiling_and_ends_alive(drill):
    daemon = drill.daemon
    assert daemon.all_alive
    assert 0.0 < daemon.max_recovery_seconds <= RECOVERY_CEILING
    # Both abused DCs completed a degradation->recovery cycle.
    assert drill.resilience.heartbeat_flaps.get("dc:0", 0) >= 1
    assert drill.resilience.heartbeat_flaps.get("dc:1", 0) >= 1
    assert "heartbeat flaps" in drill.resilience.summary()


def test_daemon_drill_is_deterministic():
    a = run_daemon_drill(quick=True, metrics=MetricsRegistry())
    b = run_daemon_drill(quick=True, metrics=MetricsRegistry())
    assert (a.resilience.produced, a.resilience.at_oosm, a.resilience.shed) == (
        b.resilience.produced, b.resilience.at_oosm, b.resilience.shed
    )
    assert a.daemon.ticks == b.daemon.ticks
    assert a.daemon.watchdog.escalations == b.daemon.watchdog.escalations
    assert a.daemon.watchdog.recovery_times == b.daemon.watchdog.recovery_times
    assert [
        (e.t, e.dc, e.state) for e in a.daemon.backpressure_events
    ] == [(e.t, e.dc, e.state) for e in b.daemon.backpressure_events]


def test_daemon_scenario_shapes():
    quick = daemon_scenario(quick=True)
    full = daemon_scenario()
    for scenario in (quick, full):
        kinds = {a.kind for a in scenario.actions}
        assert {"report_storm", "storm", "crash", "clock_hold", "flap"} <= kinds
        assert scenario.max_dc_index() == 1
    assert quick.name == "daemon-quick"
    assert full.name == "daemon"
    assert quick.duration < full.duration


def test_report_storm_is_a_known_action_kind():
    action = ChaosAction(
        at=10.0, kind="report_storm", dc_index=0, duration=60.0,
        params={"bursts": 3, "per_burst": 2},
    )
    assert action.kind == "report_storm"
    with pytest.raises(MprosError):
        ChaosAction(at=10.0, kind="report-storm")    # typo'd kind rejected
