"""The turbine-domain chaos drill: the CODLAG plant under the same
fault storm — conservation, dedup, quarantine and liveness invariants
must hold exactly as they do for the chiller fleet."""

import pytest

from repro.chaos import ChaosEngine, run_scenario, turbine_scenario
from repro.obs import use_registry
from repro.plant.turbine import TurbineSimulator
from repro.supervisor import BreakerState
from repro.system import build_mpros_system


@pytest.fixture(scope="module")
def drill():
    """One turbine drill run, shared by every assertion below."""
    scenario = turbine_scenario(seed=11)
    with use_registry() as registry:
        system = build_mpros_system(
            n_chillers=2, seed=scenario.seed, plant=scenario.plant
        )
        engine = ChaosEngine(system, scenario)
        report = engine.run()
    return system, engine, report, registry


def test_drill_runs_turbine_plant(drill):
    system, _, _, _ = drill
    assert all(
        isinstance(sim, TurbineSimulator) for sim in system.simulators.values()
    )
    # Turbine units expose the power turbine as the monitored primary.
    assert all(unit.primary.startswith("powerturbine:") for unit in system.units)


def test_exactly_once_at_the_oosm(drill):
    _, _, report, _ = drill
    assert report.produced > 0
    assert report.lost == 0
    assert report.duplicated == 0
    assert report.shed == 0
    assert report.at_oosm + report.backlog == report.produced
    # The mid-flight crash exercised replay: recovered reports were
    # absorbed PDME-side as duplicate acks, never double-counted.
    assert report.recovered_reports > 0
    assert report.duplicate_acks >= report.recovered_reports


def test_breakers_reclosed_and_quarantine_released(drill):
    system, _, report, _ = drill
    assert report.breakers_closed
    assert all(b.state is BreakerState.CLOSED for b in system.breakers)
    assert report.degraded > 0
    dc = system.dcs[0]
    events = [(what, channel) for _, channel, what in dc.quarantine.events]
    assert ("quarantined", 0) in events
    assert ("released", 0) in events
    assert not dc.quarantine.active()


def test_liveness_saw_hold_and_crash(drill):
    _, _, report, _ = drill
    trans = [(dc, old, new) for _, dc, old, new in report.heartbeat_transitions]
    assert ("dc:1", "suspect", "down") in trans
    assert ("dc:1", "down", "alive") in trans
    assert all(f.recovery_seconds is not None for f in report.faults)
    assert report.ok
    assert "PASS" in report.summary()


def test_turbine_drill_is_deterministic():
    with use_registry():
        a = run_scenario(turbine_scenario(seed=11))
    with use_registry():
        b = run_scenario(turbine_scenario(seed=11))
    assert (a.produced, a.at_oosm, a.degraded, a.duplicate_acks) == (
        b.produced, b.at_oosm, b.degraded, b.duplicate_acks
    )
    assert a.heartbeat_transitions == b.heartbeat_transitions
