"""Scenario validation and per-fault-kind engine behaviour."""

import numpy as np
import pytest

from repro.chaos import ChaosAction, ChaosEngine, ChaosScenario
from repro.common.errors import MprosError
from repro.obs import MetricsRegistry
from repro.system import build_mpros_system


def scenario(*actions, duration=600.0, seed=3):
    return ChaosScenario(
        name="t", duration=duration, actions=tuple(actions), seed=seed
    )


def build(n_chillers=1, seed=3, **kwargs):
    return build_mpros_system(
        n_chillers=n_chillers, seed=seed, metrics=MetricsRegistry(), **kwargs
    )


# -- declarative spec validation ---------------------------------------------

def test_unknown_action_kind_rejected():
    with pytest.raises(MprosError):
        ChaosAction(at=0.0, kind="earthquake")


def test_negative_times_rejected():
    with pytest.raises(MprosError):
        ChaosAction(at=-1.0, kind="crash")
    with pytest.raises(MprosError):
        ChaosAction(at=0.0, kind="crash", duration=-5.0)
    with pytest.raises(MprosError):
        ChaosAction(at=0.0, kind="crash", dc_index=-1)


def test_action_overrunning_scenario_rejected():
    with pytest.raises(MprosError):
        scenario(ChaosAction(at=500.0, kind="partition", duration=200.0))


def test_scenario_shape_validation():
    with pytest.raises(MprosError):
        ChaosScenario(name="", duration=600.0, actions=())
    with pytest.raises(MprosError):
        ChaosScenario(name="t", duration=0.0, actions=())


def test_engine_rejects_out_of_range_dc_index():
    spec = scenario(ChaosAction(at=0.0, kind="crash", dc_index=5, duration=60.0))
    with pytest.raises(MprosError):
        ChaosEngine(build(n_chillers=1), spec)


# -- fault kinds the canonical drill does not cover --------------------------

def test_flap_trips_and_recloses_breaker():
    spec = scenario(
        ChaosAction(at=60.0, kind="flap", duration=240.0, params={"flaps": 2})
    )
    system = build()
    report = ChaosEngine(system, spec).run()
    states = [new for _, _, new in system.breakers[0].transitions]
    assert "open" in states
    assert report.breakers_closed
    assert report.lost == 0 and report.duplicated == 0


def test_storm_restores_link_config():
    spec = scenario(
        ChaosAction(
            at=60.0, kind="storm", duration=120.0,
            params={"drop_rate": 1.0, "corrupt_rate": 0.0},
        )
    )
    system = build()
    before = system.network.link("dc:0", "pdme").config
    report = ChaosEngine(system, spec).run()
    assert system.network.link("dc:0", "pdme").config == before
    assert report.lost == 0 and report.duplicated == 0


def test_clock_hold_freezes_then_resumes_reporting():
    spec = scenario(
        ChaosAction(at=60.0, kind="clock_hold", duration=120.0), duration=900.0
    )
    system = build()
    report = ChaosEngine(system, spec).run()
    assert not system.dcs[0].scheduler.suspended
    # The hold silenced heartbeats long enough for the monitor to
    # notice, and the resume revived the DC.
    outcome = report.faults[0]
    assert outcome.kind == "clock_hold"
    assert outcome.recovery_seconds is not None
    assert report.lost == 0 and report.duplicated == 0


def test_sensor_dropout_quarantines_channel():
    spec = scenario(
        ChaosAction(
            at=0.0, kind="machinery_fault",
            params={"fault": "mc:refrigerant-leak", "severity": 0.9},
        ),
        ChaosAction(
            at=60.0, kind="sensor_dropout", duration=1200.0,
            params={"channel": 0},
        ),
        duration=3600.0,
    )
    system = build()
    report = ChaosEngine(system, spec).run()
    events = [(ch, what) for _, ch, what in system.dcs[0].quarantine.events]
    assert (0, "quarantined") in events
    assert report.degraded > 0


def test_schedule_is_idempotent():
    spec = scenario(ChaosAction(at=60.0, kind="partition", duration=60.0))
    system = build()
    engine = ChaosEngine(system, spec)
    engine.schedule()
    engine.schedule()                   # no double-booking
    report = engine.run()
    assert len(report.faults) == 1


def test_crash_and_restart_apis_guard_state():
    system = build()
    with pytest.raises(MprosError):
        system.restart_dc(0)            # not down
    system.crash_dc(0)
    with pytest.raises(MprosError):
        system.crash_dc(0)              # already down
    system.restart_dc(0)
    assert not system.dcs[0].scheduler.suspended
