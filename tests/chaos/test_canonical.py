"""The ISSUE acceptance drill: the canonical chaos scenario must end
with zero lost and zero duplicated reports at the OOSM, every breaker
re-closed, and degraded (not absent) reporting while quarantined."""

import pytest

from repro.chaos import ChaosEngine, canonical_scenario, run_scenario
from repro.obs import use_registry
from repro.supervisor import BreakerState
from repro.system import build_mpros_system


@pytest.fixture(scope="module")
def drill():
    """One canonical run, shared by every assertion below."""
    scenario = canonical_scenario(seed=7)
    with use_registry() as registry:
        system = build_mpros_system(n_chillers=2, seed=scenario.seed)
        engine = ChaosEngine(system, scenario)
        report = engine.run()
    return system, engine, report, registry


def test_exactly_once_at_the_oosm(drill):
    system, _, report, _ = drill
    assert report.produced > 0
    assert report.lost == 0
    assert report.duplicated == 0
    assert report.shed == 0
    assert report.rejected == 0
    # Conservation closes exactly: everything produced is at the OOSM
    # or still queued (the final in-flight batch).
    assert report.at_oosm + report.backlog == report.produced
    # The mid-flight crash really exercised the replay path: at least
    # one report was recovered from the DC database and its replay
    # absorbed PDME-side as a duplicate.
    assert report.recovered_reports > 0
    assert report.duplicate_acks >= report.recovered_reports
    assert system.pdme.duplicates_dropped == report.duplicate_acks


def test_breakers_all_reclosed(drill):
    system, _, report, _ = drill
    assert report.breakers_closed
    assert all(b.state is BreakerState.CLOSED for b in system.breakers)
    # The partition actually tripped dc:0's breaker along the way.
    assert any(new == "open" for _, _, new in system.breakers[0].transitions)


def test_degraded_reports_while_quarantined(drill):
    system, _, report, _ = drill
    assert report.degraded > 0
    dc = system.dcs[0]
    assert dc.reports_degraded == report.degraded
    events = [(what, channel) for _, channel, what in dc.quarantine.events]
    assert ("quarantined", 0) in events
    assert ("released", 0) in events
    # Degraded reports crossed the wire with the flag intact.
    flagged = [
        r for r in system.model.reports_for(system.units[0].motor) if r.degraded
    ]
    assert len(flagged) == report.degraded
    # Quarantine over: the DC went back to full-evidence reporting.
    assert not dc.quarantine.active()


def test_crash_detected_and_recovered(drill):
    system, _, report, _ = drill
    trans = [(dc, old, new) for _, dc, old, new in report.heartbeat_transitions]
    assert ("dc:1", "suspect", "down") in trans
    assert ("dc:1", "down", "alive") in trans
    # Every scheduled fault recovered before the scenario ended.
    assert all(f.recovery_seconds is not None for f in report.faults)
    assert report.ok
    assert "PASS" in report.summary()


def test_registry_sees_the_supervision_layer(drill):
    _, _, _, registry = drill
    snap = registry.snapshot()
    assert snap["counters"]["supervisor.heartbeat.received{dc=dc:0}"] > 0
    assert snap["counters"]["supervisor.quarantine.events{dc=dc:0}"] == 2.0
    assert snap["counters"]["dc.uplink.recovered{dc=dc:1}"] > 0
    assert snap["gauges"]["supervisor.breaker.state{breaker=dc:0}"] == 0.0
    assert "dc.uplink.backlog{dc=dc:0}" in snap["gauges"]


def test_canonical_run_is_deterministic():
    with use_registry():
        a = run_scenario(canonical_scenario(seed=7))
    with use_registry():
        b = run_scenario(canonical_scenario(seed=7))
    assert (a.produced, a.at_oosm, a.degraded, a.duplicate_acks) == (
        b.produced, b.at_oosm, b.degraded, b.duplicate_acks
    )
    assert a.heartbeat_transitions == b.heartbeat_transitions
    assert a.quarantine_events == b.quarantine_events
