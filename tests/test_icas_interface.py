"""The §1 open interface: machinery condition and raw sensor data
served to other shipboard systems (ICAS)."""

import pytest

from repro import build_mpros_system
from repro.common.errors import MprosError
from repro.netsim.rpc import RpcEndpoint
from repro.pdme.icas import IcasClient
from repro.plant.faults import FaultKind, seeded


@pytest.fixture
def world():
    system = build_mpros_system(n_chillers=2, seed=0)
    motor = system.units[0].motor
    system.inject_fault(motor, seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9))
    system.run(hours=1.0)
    client_ep = RpcEndpoint("icas:client", system.network, system.kernel)
    client = IcasClient(client_ep)
    return system, client, motor


def test_get_condition(world):
    system, client, motor = world
    out = client.fetch(system.kernel, "get_condition", {"machine_id": motor})
    assert out["machine_id"] == motor
    groups = {g["group"]: g for g in out["groups"]}
    assert "rotating-mechanical" in groups
    g = groups["rotating-mechanical"]
    assert g["beliefs"]["mc:motor-imbalance"] > 0.9
    assert 0.0 <= g["unknown"] <= 1.0
    assert g["reports"] > 0


def test_get_condition_unknown_machine_is_rpc_error(world):
    system, client, motor = world
    with pytest.raises(MprosError):
        client.fetch(system.kernel, "get_condition", {"machine_id": "obj:ghost"})


def test_get_priorities(world):
    system, client, motor = world
    out = client.fetch(system.kernel, "get_priorities", {"limit": 5})
    assert out["entries"]
    top = out["entries"][0]
    assert top["machine_id"] == motor
    assert top["condition_id"] == "mc:motor-imbalance"
    assert top["urgency"] > 0
    assert top["time_to_failure_s"] is None or top["time_to_failure_s"] > 0


def test_get_health_rollup(world):
    system, client, motor = world
    ship_id = next(e.id for e in system.model.entities(type_name="ship"))
    out = client.fetch(system.kernel, "get_health", {"entity_id": ship_id})
    assert out["health"] < 1.0
    assert out["worst_part"] == motor
    assert motor in out["suspect_parts"]


def test_get_reports_wire_form(world):
    system, client, motor = world
    out = client.fetch(system.kernel, "get_reports", {"machine_id": motor, "limit": 3})
    assert 1 <= len(out["reports"]) <= 3
    r = out["reports"][0]
    assert r["sensed_object_id"] == motor
    assert "belief" in r and "prognostic" in r


def test_dc_raw_measurements(world):
    system, client, motor = world
    ep = RpcEndpoint("icas:raw", system.network, system.kernel)
    box = []
    ep.call("dc:0", "get_measurements",
            {"machine_id": motor, "kind": "rms", "limit": 10},
            on_reply=box.append)
    system.kernel.run_until(system.kernel.now() + 1.0)
    assert box
    history = box[0]["history"]
    assert history
    times = [t for t, v in history]
    assert times == sorted(times)
    assert all(v > 0 for _, v in history)
