import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import RingBuffer


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingBuffer(0)
    with pytest.raises(ValueError):
        RingBuffer(-3)


def test_empty_state():
    rb = RingBuffer(4)
    assert len(rb) == 0
    assert not rb.full
    assert rb.view_ordered().size == 0


def test_append_and_view():
    rb = RingBuffer(4)
    for x in (1.0, 2.0, 3.0):
        rb.append(x)
    assert np.allclose(rb.view_ordered(), [1, 2, 3])


def test_wraparound_keeps_latest():
    rb = RingBuffer(3)
    for x in range(5):
        rb.append(float(x))
    assert rb.full
    assert np.allclose(rb.view_ordered(), [2, 3, 4])


def test_extend_block_smaller_than_capacity():
    rb = RingBuffer(8)
    rb.extend(np.arange(5.0))
    assert np.allclose(rb.view_ordered(), np.arange(5.0))


def test_extend_block_spanning_wrap():
    rb = RingBuffer(4)
    rb.extend(np.arange(3.0))   # [0,1,2]
    rb.extend(np.array([3.0, 4.0]))  # wraps
    assert np.allclose(rb.view_ordered(), [1, 2, 3, 4])


def test_extend_block_larger_than_capacity():
    rb = RingBuffer(3)
    rb.extend(np.arange(10.0))
    assert np.allclose(rb.view_ordered(), [7, 8, 9])


def test_latest_returns_most_recent():
    rb = RingBuffer(5)
    rb.extend(np.arange(5.0))
    assert np.allclose(rb.latest(2), [3, 4])


def test_latest_clamps_to_size():
    rb = RingBuffer(5)
    rb.extend(np.arange(3.0))
    assert np.allclose(rb.latest(10), [0, 1, 2])


def test_latest_rejects_negative():
    with pytest.raises(ValueError):
        RingBuffer(3).latest(-1)


def test_clear_resets_size_not_capacity():
    rb = RingBuffer(3)
    rb.extend(np.arange(3.0))
    rb.clear()
    assert len(rb) == 0
    assert rb.capacity == 3


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=32),
    blocks=st.lists(
        st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=40),
        max_size=10,
    ),
)
def test_matches_reference_tail(capacity, blocks):
    """Property: buffer contents always equal the tail of everything written."""
    rb = RingBuffer(capacity)
    written: list[float] = []
    for block in blocks:
        rb.extend(np.array(block, dtype=np.float64))
        written.extend(float(x) for x in block)
    expect = np.array(written[-capacity:], dtype=np.float64)
    assert len(rb) == expect.size
    assert np.allclose(rb.view_ordered(), expect, equal_nan=True)
