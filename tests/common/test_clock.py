import pytest

from repro.common import Clock, SimulatedClock


def test_starts_at_zero_by_default():
    assert SimulatedClock().now() == 0.0


def test_starts_at_given_time():
    assert SimulatedClock(12.5).now() == 12.5


def test_advance_accumulates():
    clk = SimulatedClock()
    clk.advance(1.0)
    clk.advance(2.5)
    assert clk.now() == pytest.approx(3.5)


def test_advance_returns_new_time():
    clk = SimulatedClock(1.0)
    assert clk.advance(2.0) == pytest.approx(3.0)


def test_advance_zero_is_allowed():
    clk = SimulatedClock(5.0)
    assert clk.advance(0.0) == 5.0


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimulatedClock().advance(-0.1)


def test_advance_to_jumps_forward():
    clk = SimulatedClock()
    clk.advance_to(100.0)
    assert clk.now() == 100.0


def test_advance_to_rejects_rewind():
    clk = SimulatedClock(10.0)
    with pytest.raises(ValueError):
        clk.advance_to(9.0)


def test_satisfies_clock_protocol():
    assert isinstance(SimulatedClock(), Clock)


def test_repr_mentions_time():
    assert "3" in repr(SimulatedClock(3.0))
