import numpy as np

from repro.common import derive_rng, make_rng


def test_make_rng_is_deterministic():
    assert make_rng(7).random() == make_rng(7).random()


def test_make_rng_default_seed_is_stable():
    assert make_rng().random() == make_rng().random()


def test_make_rng_none_gives_entropy():
    # Two unseeded generators should (overwhelmingly) differ.
    assert make_rng(None).random() != make_rng(None).random()


def test_derive_rng_same_tags_same_stream():
    a = derive_rng(make_rng(1), "x", 2)
    b = derive_rng(make_rng(1), "x", 2)
    assert np.allclose(a.random(10), b.random(10))


def test_derive_rng_different_tags_differ():
    root = make_rng(1)
    a = derive_rng(root, "x", 1)
    b = derive_rng(root, "x", 2)
    assert not np.allclose(a.random(10), b.random(10))


def test_derive_rng_consumes_parent_state():
    # Deriving twice with identical tags from the *same* parent gives
    # different child streams (fresh entropy is folded in).
    root = make_rng(1)
    a = derive_rng(root, "x")
    b = derive_rng(root, "x")
    assert not np.allclose(a.random(10), b.random(10))


def test_derived_streams_are_generators():
    assert isinstance(derive_rng(make_rng(0), "t"), np.random.Generator)
