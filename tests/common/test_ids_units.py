import pytest

from repro.common import IdAllocator, days, hours, months, rpm_to_hz, weeks
from repro.common.ids import prefix_of


def test_ids_are_dense_per_prefix():
    alloc = IdAllocator()
    assert alloc.new("mc") == "mc:0000"
    assert alloc.new("mc") == "mc:0001"
    assert alloc.new("ks") == "ks:0000"


def test_peek_counts_allocations():
    alloc = IdAllocator()
    alloc.new("dc")
    alloc.new("dc")
    assert alloc.peek("dc") == 2
    assert alloc.peek("other") == 0


def test_invalid_prefix_rejected():
    alloc = IdAllocator()
    with pytest.raises(ValueError):
        alloc.new("")
    with pytest.raises(ValueError):
        alloc.new("a:b")


def test_prefix_of():
    assert prefix_of("mc:0042") == "mc"


def test_prefix_of_malformed():
    with pytest.raises(ValueError):
        prefix_of(":oops")


def test_time_units_compose():
    assert hours(24) == days(1)
    assert days(7) == weeks(1)
    assert months(1) == days(30)


def test_rpm_conversion():
    assert rpm_to_hz(3600) == pytest.approx(60.0)
    assert rpm_to_hz(1800) == pytest.approx(30.0)
