"""Golden shard-invariance: N shards fuse byte-identically to one.

The oracle discipline of the parallel fleet replay, applied to the
sharded PDME: the canonical fused model at every shard count must match
the single-engine rendering byte for byte, the multi-process executor
must match the in-process router, and the scenario scorecards at any
shard count must still match the committed ``tests/golden/`` masters.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import _ingest_workload
from repro.fusion.engine import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.pdme.shard import ShardedPdme, parallel_shard_ingest
from repro.protocol.canonical import canonical_dumps

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

pytestmark = pytest.mark.shard


def _check_golden(name: str, payload: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("GOLDEN_REGEN"):
        path.write_text(payload, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with GOLDEN_REGEN=1"
    )
    assert payload == path.read_text(encoding="utf-8"), (
        f"{name} drifted from its golden master; if the change is "
        "intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


@pytest.fixture(scope="module")
def workload():
    return _ingest_workload(quick=False)


@pytest.fixture(scope="module")
def oracle_json(workload):
    """The unsharded single-engine fused model, canonical bytes."""
    reports, _ = workload
    engine = KnowledgeFusionEngine(default_chiller_groups())
    engine.ingest_batch(list(reports))
    as_of = max(r.timestamp for r in reports)
    return canonical_dumps(engine.fused_snapshot(as_of=as_of))


def test_oracle_snapshot_matches_golden_master(oracle_json):
    _check_golden("fused_ingest_workload.json", oracle_json)


def test_sharded_router_is_byte_identical_to_single_engine(
    workload, oracle_json, n_shards
):
    reports, report_ids = workload
    pdme = ShardedPdme(n_shards)
    try:
        # Deliver in several batches (the realistic intake shape).
        step = 257
        for s in range(0, len(reports), step):
            pdme.submit_batch(reports[s : s + step], report_ids[s : s + step])
        assert pdme.report_count == len(reports)
        assert pdme.canonical_fused_json() == oracle_json
    finally:
        pdme.close()


def test_multiprocess_executor_matches_in_process_oracle(workload, oracle_json, n_shards):
    reports, report_ids = workload
    snap = parallel_shard_ingest(reports, report_ids, n_shards=n_shards)
    assert canonical_dumps(snap) == oracle_json


def test_executive_fused_model_matches_router(workload, oracle_json):
    """The single-executive PDME and the sharded router expose the same
    fused-model snapshot shape with the same canonical bytes."""
    from repro.oosm.model import ShipModel
    from repro.pdme import PdmeExecutive

    reports, _ = workload
    model = ShipModel()
    for m in sorted({r.sensed_object_id for r in reports}):
        model.create("rotating-machine", id=m, name=m)
    pdme = PdmeExecutive(model)
    pdme.submit_batch(list(reports))
    as_of = max(r.timestamp for r in reports)
    assert canonical_dumps(pdme.fused_model(as_of=as_of)) == oracle_json


@pytest.mark.parametrize("plant", ["chiller", "turbine"])
def test_scorecards_match_golden_masters_at_any_shard_count(plant, n_shards):
    from repro.validation.scenarios import get_scenario, run_scenario_suite

    spec = get_scenario(plant, quick=True)
    card = run_scenario_suite(spec, seed=0, n_resamples=500, shards=n_shards)
    golden = (GOLDEN_DIR / f"score_{plant}.json").read_text(encoding="utf-8")
    assert card.canonical_json() == golden, (
        f"{plant} scorecard at {n_shards} shard(s) drifted from the "
        f"committed master — sharding must not perturb scoring"
    )
