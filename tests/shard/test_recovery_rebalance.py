"""Cross-shard exactly-once: crash/restart and rebalance drills.

Extends the DC-side recovery discipline (``tests/dc/test_recovery.py``)
to the PDME side: a shard worker's fused state is volatile, its
partition log is durable, and report-id dedup cursors must survive
worker crashes *and* partition-layout changes.  At-least-once delivery
plus durable ids equals exactly-once fusion — through any sequence of
crashes, restarts, and rebalances.
"""

from __future__ import annotations

import pytest

from repro.bench import _ingest_workload
from repro.common.errors import MprosError
from repro.fusion.engine import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.pdme.shard import ShardedPdme
from repro.protocol.canonical import canonical_dumps

pytestmark = pytest.mark.shard


@pytest.fixture(scope="module")
def workload():
    return _ingest_workload(quick=True)


@pytest.fixture(scope="module")
def oracle_json(workload):
    reports, _ = workload
    engine = KnowledgeFusionEngine(default_chiller_groups())
    engine.ingest_batch(list(reports))
    as_of = max(r.timestamp for r in reports)
    return canonical_dumps(engine.fused_snapshot(as_of=as_of))


def file_backed(tmp_path, n):
    return ShardedPdme(
        n, store_paths=[tmp_path / f"shard-{i}.sqlite" for i in range(n)]
    )


def test_crashed_worker_refuses_intake_until_restart(tmp_path, workload):
    reports, ids = workload
    pdme = file_backed(tmp_path, 2)
    pdme.workers[0].crash()
    with pytest.raises(MprosError):
        pdme.submit_batch(reports[:10], ids[:10])
    pdme.workers[0].restart()
    assert pdme.submit_batch(reports[:10], ids[:10]) == 10
    pdme.close()


def test_crash_restart_replays_partition_and_keeps_dedup(
    tmp_path, workload, oracle_json
):
    """The strictest DC-recovery case on the PDME side: a batch lands
    durably, the worker dies before the sender's ack, and the sender
    replays.  The restart rebuilds fused state from the log and the
    replay is absorbed by the reloaded id cursors."""
    reports, ids = workload
    half = len(reports) // 2
    pdme = file_backed(tmp_path, 2)
    assert pdme.submit_batch(reports[:half], ids[:half]) == half
    victim = pdme.workers[0]
    persisted = victim.report_count
    victim.crash()
    replayed = victim.restart()
    assert replayed == persisted          # fused state rebuilt from the log
    # At-least-once: the sender re-delivers everything, then the tail.
    written = pdme.submit_batch(reports, ids)
    assert written == len(reports) - half
    assert pdme.report_count == len(reports)
    assert pdme.duplicates_dropped == half
    assert pdme.canonical_fused_json() == oracle_json


def test_dedup_holds_across_the_rebalanced_partition(
    tmp_path, workload, oracle_json
):
    """Report-id cursors migrate with their rows: ids delivered before
    a rebalance are still duplicates *after* it, on whichever shard now
    owns the object — even when a worker crashed mid-stream."""
    reports, ids = workload
    third = len(reports) // 3
    pdme = file_backed(tmp_path, 2)
    assert pdme.submit_batch(reports[:third], ids[:third]) == third

    # Mid-stream crash + restart of one worker.
    pdme.workers[1].crash()
    pdme.workers[1].restart()

    # Repartition 2 -> 4 under load.
    stats = pdme.rebalance(
        4, store_paths=[tmp_path / f"re-{i}.sqlite" for i in range(4)]
    )
    assert stats == {
        "from": 2, "to": 4, "total": third, "moved": stats["moved"]
    }
    assert 0 <= stats["moved"] <= third

    # The sender, unaware of any of it, replays from the start.
    written = pdme.submit_batch(reports, ids)
    assert written == len(reports) - third
    assert pdme.report_count == len(reports)
    assert pdme.duplicates_dropped == third
    assert pdme.canonical_fused_json() == oracle_json
    pdme.close()


def test_rebalance_preserves_bytes_and_counts(workload, oracle_json, n_shards):
    reports, ids = workload
    pdme = ShardedPdme(n_shards)
    pdme.submit_batch(reports, ids)
    for target in (n_shards + 1, max(1, n_shards - 1), n_shards):
        stats = pdme.rebalance(target)
        assert stats["total"] == len(reports)
        assert pdme.report_count == len(reports)
        assert pdme.canonical_fused_json() == oracle_json
    # Exactly-once across the whole migration chain.
    assert pdme.submit_batch(reports, ids) == 0
    assert pdme.report_count == len(reports)
    pdme.close()


def test_rebalance_growth_moves_rows_only_to_new_shards(workload):
    """The store-level form of layout minimality: growing N -> N+1
    leaves every surviving shard's partition a subset of what it held."""
    reports, ids = workload
    pdme = ShardedPdme(2)
    pdme.submit_batch(reports, ids)
    before = [
        {rid for _, rid, _ in w.store.rows()} for w in pdme.workers
    ]
    pdme.rebalance(3)
    after = [
        {rid for _, rid, _ in w.store.rows()} for w in pdme.workers
    ]
    assert after[0] <= before[0]
    assert after[1] <= before[1]
    assert after[2] == (before[0] - after[0]) | (before[1] - after[1])
    pdme.close()


def test_memory_partition_restart_is_honestly_empty(workload):
    """A ``:memory:`` partition has no durable log: restart yields an
    empty shard, not silently resurrected state."""
    reports, ids = workload
    pdme = ShardedPdme(2)
    pdme.submit_batch(reports, ids)
    w = pdme.workers[0]
    had = w.report_count
    assert had > 0
    w.crash()
    assert w.restart() == 0
    assert w.report_count == 0
    pdme.close()


def test_router_validates_geometry_and_id_lengths(workload):
    reports, ids = workload
    with pytest.raises(MprosError):
        ShardedPdme(2, store_paths=[":memory:"])
    pdme = ShardedPdme(2)
    with pytest.raises(MprosError):
        pdme.submit_batch(reports[:5], ids[:4])
    with pytest.raises(MprosError):
        pdme.rebalance(3, store_paths=[":memory:"])
    pdme.close()
