"""Consistent-hash layout: stable, total, balanced, and minimal.

The routing invariants the whole shard design leans on:

* every key maps to exactly one shard, as a pure function of
  (key, layout) — no process state, no hash salting;
* growing N -> N+1 shards moves a key only *to* the new shard, never
  between surviving shards (the exact form of "minimal migration");
* the moved fraction stays near the ideal 1/(N+1).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MprosError
from repro.pdme.shard import ShardLayout

keys = st.text(min_size=1, max_size=40)


@given(keys, st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_every_key_maps_to_exactly_one_valid_shard(key, n):
    layout = ShardLayout(n)
    shard = layout.shard_of(key)
    assert 0 <= shard < n
    # Stable: a freshly built identical layout agrees (no per-process
    # hash salt, no hidden state).
    assert ShardLayout(n).shard_of(key) == shard
    # Deterministic per call.
    assert layout.shard_of(key) == shard


@given(keys, st.integers(min_value=1, max_value=7))
@settings(max_examples=200, deadline=None)
def test_growth_moves_keys_only_to_the_new_shard(key, n):
    before = ShardLayout(n).shard_of(key)
    after = ShardLayout(n + 1).shard_of(key)
    assert after == before or after == n


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7])
def test_remigrated_fraction_is_near_minimal(n):
    corpus = [f"obj:asset-{i}" for i in range(3000)]
    a, b = ShardLayout(n), ShardLayout(n + 1)
    moved = sum(1 for k in corpus if a.shard_of(k) != b.shard_of(k))
    fraction = moved / len(corpus)
    ideal = 1.0 / (n + 1)
    # Something must move (the new shard takes real load), and vnode
    # granularity keeps the total close to the consistent-hash ideal.
    assert 0 < fraction <= 2.0 * ideal


def test_balance_across_shards():
    corpus = [f"obj:asset-{i}" for i in range(4000)]
    for n in (2, 4, 8):
        counts = [0] * n
        for k in corpus:
            counts[ShardLayout(n).shard_of(k)] += 1
        assert min(counts) > 0
        assert max(counts) <= 2.0 * len(corpus) / n


def test_partition_preserves_order_and_covers_all(simple_reports=None):
    from repro.bench import _ingest_workload

    reports, _ = _ingest_workload(quick=True)
    layout = ShardLayout(3)
    per = layout.partition(reports)
    flat = sorted(i for idxs in per for i in idxs)
    assert flat == list(range(len(reports)))
    for shard, idxs in enumerate(per):
        assert idxs == sorted(idxs)  # arrival order preserved per shard
        for i in idxs:
            assert layout.shard_of(reports[i].sensed_object_id) == shard


def test_layout_rejects_bad_geometry():
    with pytest.raises(MprosError):
        ShardLayout(0)
    with pytest.raises(MprosError):
        ShardLayout(2, vnodes=0)
