"""Shared helpers for the shard-invariance suite.

The matrix dimension is the shard count: ``MPROS_SHARDS`` (a
comma-separated list, default ``1,2``) selects which counts the
parametrized tests run at.  CI's shard-matrix job runs the suite at
``MPROS_SHARDS=1`` and ``MPROS_SHARDS=4``; the tier-1 default keeps the
local run cheap while still crossing the 1-vs-many boundary.
"""

from __future__ import annotations

import os

import pytest


def shard_counts() -> list[int]:
    raw = os.environ.get("MPROS_SHARDS", "1,2")
    counts = sorted({int(tok) for tok in raw.split(",") if tok.strip()})
    if not counts or any(n < 1 for n in counts):
        raise ValueError(f"bad MPROS_SHARDS={raw!r}; need positive integers")
    return counts


@pytest.fixture(params=shard_counts(), ids=lambda n: f"shards{n}")
def n_shards(request) -> int:
    return request.param
