import numpy as np
import pytest

from repro.common.errors import AcquisitionError
from repro.dc import DataConcentrator
from repro.netsim import EventKernel
from repro.plant import ChillerSimulator, FaultKind
from repro.plant.faults import seeded


def make_dc(seed=0):
    kernel = EventKernel()
    sink: list = []
    dc = DataConcentrator(
        dc_id="dc:0", kernel=kernel, sink=sink.append,
        rng=np.random.default_rng(seed),
    )
    return kernel, dc, sink


def attach_chiller(dc, seed=0, machine_id="obj:motor1", channel=0, faults=()):
    sim = ChillerSimulator(rng=np.random.default_rng(seed))
    for f in faults:
        sim.inject(f)
    dc.attach_machine(machine_id, "A/C Compressor Motor 1", sim, channel)
    return sim


def test_attach_machine_registers_config():
    _, dc, _ = make_dc()
    attach_chiller(dc)
    assert dc.database.machines() == ["obj:motor1"]
    assert dc.database.channels_for("obj:motor1")[0][2] == "accelerometer"


def test_attach_twice_rejected():
    _, dc, _ = make_dc()
    attach_chiller(dc)
    with pytest.raises(AcquisitionError):
        attach_chiller(dc, machine_id="obj:motor1", channel=1)


def test_healthy_machine_vibration_test_quiet():
    _, dc, sink = make_dc()
    attach_chiller(dc)
    produced = dc.run_vibration_tests(now=600.0)
    assert produced == 0
    assert sink == []
    # Measurements were still recorded.
    assert dc.database.measurement_count() >= 2


def test_faulty_machine_produces_reports():
    _, dc, sink = make_dc()
    attach_chiller(dc, faults=[seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)])
    produced = dc.run_vibration_tests(now=600.0)
    assert produced > 0
    assert any(r.machine_condition_id == "mc:motor-imbalance" for r in sink)
    r = sink[0]
    assert r.dc_id == "dc:0"
    assert dc.database.report_count() == len(sink)
    assert dc.reports_sent == len(sink)


def test_process_scan_detects_process_fault():
    _, dc, sink = make_dc()
    attach_chiller(dc, faults=[seeded(FaultKind.REFRIGERANT_LEAK, 0.0, 0.9)])
    for step in range(1, 25):
        dc.run_process_scan(now=step * 60.0)
    assert any(r.machine_condition_id == "mc:refrigerant-leak" for r in sink)
    # Process history accumulated and measurements recorded.
    m = dc.machines["obj:motor1"]
    assert len(m.process_history) >= 20


def test_scheduler_drives_tests():
    kernel, dc, sink = make_dc()
    attach_chiller(dc, faults=[seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)])
    dc.schedule_standard_tests(vibration_period=600.0, process_period=60.0)
    kernel.run_until(1300.0)
    assert dc.scheduler.task("vibration-test").runs == 2
    assert dc.scheduler.task("process-scan").runs >= 20
    assert len(sink) > 0
    assert dc.database.schedules()


def test_rms_alarm_scan_flags_severe_vibration():
    _, dc, _ = make_dc()
    sim = attach_chiller(dc, faults=[seeded(FaultKind.BEARING_WEAR, 0.0, 1.0)])
    sim.step(10.0)
    # Healthy RMS is ~0.1; bearing bursts push it past the 1.0 default?
    # Use a tight threshold instead to exercise the path.
    dc.acquisition.detectors.set_threshold(0, 0.05)
    alarmed = dc.rms_alarm_scan(n_samples=2048)
    assert 0 in alarmed


def test_multiple_machines_on_one_dc():
    _, dc, sink = make_dc()
    attach_chiller(dc, machine_id="obj:m1", channel=0,
                   faults=[seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)])
    attach_chiller(dc, seed=1, machine_id="obj:m2", channel=1)
    dc.run_vibration_tests(now=600.0)
    objs = {r.sensed_object_id for r in sink}
    assert "obj:m1" in objs and "obj:m2" not in objs


def test_broken_source_is_isolated():
    """A third-party suite that raises must not silence the others."""

    class BrokenSource:
        knowledge_source_id = "ks:broken"

        def analyze(self, ctx):
            raise RuntimeError("third-party bug")

    kernel, dc, sink = make_dc()
    attach_chiller(dc, faults=[seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)])
    dc.sources.insert(0, BrokenSource())  # runs first, fails every pass
    produced = dc.run_vibration_tests(now=600.0)
    assert produced > 0                       # DLI still reported
    assert any(r.machine_condition_id == "mc:motor-imbalance" for r in sink)
    assert dc.source_errors
    assert dc.source_errors[0][0] == "ks:broken"
