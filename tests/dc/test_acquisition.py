import numpy as np
import pytest

from repro.common.errors import AcquisitionError
from repro.dc.acquisition import (
    AcquisitionChain,
    DspCard,
    MAX_SAMPLE_RATE,
    MuxCard,
    RmsDetectorBank,
    TOTAL_CHANNELS,
)


def constant(value):
    return lambda n, rng: np.full(n, value)


# -- MUX ------------------------------------------------------------------------

def test_mux_bank_selection_routes_channels():
    mux = MuxCard(0)
    assert mux.live_channels() == (0, 1, 2, 3)
    mux.select_bank(2)
    assert mux.live_channels() == (8, 9, 10, 11)


def test_mux_validation():
    mux = MuxCard(0)
    with pytest.raises(AcquisitionError):
        mux.select_bank(4)
    with pytest.raises(AcquisitionError):
        mux.bind(16, constant(1.0))
    with pytest.raises(AcquisitionError):
        mux.read_output(4, 8, np.random.default_rng(0))


def test_mux_unbound_channel_reads_zero():
    mux = MuxCard(0)
    out = mux.read_output(0, 16, np.random.default_rng(0))
    assert np.all(out == 0.0)


def test_mux_reads_selected_bank_only():
    mux = MuxCard(0)
    mux.bind(0, constant(1.0))   # bank 0
    mux.bind(4, constant(2.0))   # bank 1
    rng = np.random.default_rng(0)
    assert mux.read_output(0, 4, rng)[0] == 1.0
    mux.select_bank(1)
    assert mux.read_output(0, 4, rng)[0] == 2.0


# -- DSP ------------------------------------------------------------------------

def test_dsp_samples_four_channels():
    mux = MuxCard(0)
    for c in range(4):
        mux.bind(c, constant(float(c)))
    dsp = DspCard()
    data = dsp.digitize(mux, 64, np.random.default_rng(0))
    assert data.shape == (4, 64)
    assert np.allclose(data[:, 0], [0, 1, 2, 3])


def test_dsp_rate_limits():
    assert DspCard(40000.0).sample_rate == 40000.0
    with pytest.raises(AcquisitionError):
        DspCard(MAX_SAMPLE_RATE + 1)
    with pytest.raises(AcquisitionError):
        DspCard(0.0)
    with pytest.raises(AcquisitionError):
        DspCard().digitize(MuxCard(0), 0, np.random.default_rng(0))


# -- RMS detectors -----------------------------------------------------------------

def test_rms_detectors_alarm_on_threshold():
    bank = RmsDetectorBank(4)
    bank.set_threshold(1, 0.5)
    blocks = np.zeros((4, 100))
    blocks[1] = 1.0  # RMS 1.0 > 0.5
    alarms = bank.scan(blocks)
    assert alarms.tolist() == [False, True, False, False]
    assert bank.last_rms[1] == pytest.approx(1.0)


def test_rms_detectors_alarm_below_floor():
    bank = RmsDetectorBank(4)
    bank.set_floor(2, 1e-3)
    blocks = np.ones((4, 100)) * 0.5
    blocks[2] = 0.0  # open circuit: dead quiet
    alarms = bank.scan(blocks)
    assert alarms.tolist() == [False, False, True, False]
    # A live signal on the same channel clears the alarm.
    blocks[2] = 0.5
    assert not bank.scan(blocks).any()


def test_rms_detector_floor_validation():
    bank = RmsDetectorBank(2)
    with pytest.raises(AcquisitionError):
        bank.set_floor(5, 1e-3)
    with pytest.raises(AcquisitionError):
        bank.set_floor(0, -1e-3)
    bank.set_floor(0, 0.0)          # zero disables: RMS is never < 0
    assert not bank.scan(np.zeros((2, 10))).any()


def test_rms_detectors_default_disabled():
    bank = RmsDetectorBank(2)
    assert not bank.scan(np.ones((2, 10)) * 100).any()


def test_rms_detector_validation():
    bank = RmsDetectorBank(2)
    with pytest.raises(AcquisitionError):
        bank.set_threshold(5, 1.0)
    with pytest.raises(AcquisitionError):
        bank.set_threshold(0, -1.0)
    with pytest.raises(AcquisitionError):
        bank.scan(np.zeros((3, 10)))
    with pytest.raises(AcquisitionError):
        RmsDetectorBank(0)


# -- assembled chain -----------------------------------------------------------------

def test_chain_global_channel_mapping():
    chain = AcquisitionChain()
    chain.bind(0, constant(1.0))     # MUX 0 bank 0
    chain.bind(20, constant(2.0))    # MUX 1, local 4 -> bank 1
    rng = np.random.default_rng(0)
    channels, data = chain.acquire_bank(0, 0, 8, rng)
    assert channels == (0, 1, 2, 3)
    assert data[0, 0] == 1.0
    channels, data = chain.acquire_bank(1, 1, 8, rng)
    assert channels == (20, 21, 22, 23)
    assert data[0, 0] == 2.0


def test_chain_bind_validation():
    chain = AcquisitionChain()
    with pytest.raises(AcquisitionError):
        chain.bind(32, constant(0.0))
    with pytest.raises(AcquisitionError):
        chain.acquire_bank(2, 0, 8, np.random.default_rng(0))


def test_sweep_covers_all_32_channels():
    chain = AcquisitionChain()
    for c in range(TOTAL_CHANNELS):
        chain.bind(c, constant(float(c)))
    out = chain.sweep(4, np.random.default_rng(0))
    assert set(out) == set(range(32))
    assert all(out[c][0] == float(c) for c in range(32))


def test_rms_scan_sees_unselected_banks():
    """Constant alarming: detectors fire even for channels the DSP is
    not currently digitizing."""
    chain = AcquisitionChain()
    chain.bind(9, constant(3.0))     # MUX 0 bank 2 — never selected here
    chain.detectors.set_threshold(9, 1.0)
    chain.muxes[0].select_bank(0)
    alarms = chain.rms_scan(64, np.random.default_rng(0))
    assert alarms[9]
    assert not alarms[0]
