import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.dc.uplink import ReportUplink
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.protocol import FailurePredictionReport


def make_world(link_config=None, seed=0, capacity=512):
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(seed))
    if link_config is not None:
        net.connect("dc:0", "pdme", link_config)
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    uplink = ReportUplink(dc_ep, "pdme", capacity=capacity)
    return kernel, net, pdme, uplink, units[0]


def report(obj, i=0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


def test_capacity_validation():
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    ep = RpcEndpoint("dc:0", net, kernel)
    with pytest.raises(NetworkError):
        ReportUplink(ep, capacity=0)


def test_clean_link_delivers_and_clears_queue():
    kernel, net, pdme, uplink, unit = make_world()
    for i in range(5):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 5
    assert pdme.report_count() == 5


def test_rejected_report_not_retried_forever():
    kernel, net, pdme, uplink, unit = make_world()
    uplink.submit(report("obj:ghost"))  # unknown object -> PDME refuses
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.rejected == 1
    assert pdme.report_count() == 0


def test_outage_queues_then_flush_recovers():
    """§4.9: reports produced during a comms outage survive and are
    delivered after recovery."""
    kernel, net, pdme, uplink, unit = make_world(LinkConfig(latency=0.01))
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert pdme.report_count() == 0
    assert uplink.backlog == 10
    # Link restored; once the retry backoff expires the scheduled
    # flush retries everything.
    net.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + uplink.retry_cap)
    uplink.flush()
    kernel.run()
    assert uplink.backlog == 0
    assert pdme.report_count() == 10
    assert uplink.stats.retries >= 10


def test_flush_is_idempotent_on_empty_queue():
    kernel, net, pdme, uplink, unit = make_world()
    assert uplink.flush() == 0


def test_bounded_queue_sheds_oldest():
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01), capacity=4
    )
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(unit.motor, i))
        kernel.run()  # let the failed attempts resolve
    assert uplink.backlog == 4
    assert uplink.stats.shed == 6
    net.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + uplink.retry_cap)
    uplink.flush()
    kernel.run()
    # The four newest survive.
    times = sorted(r.timestamp for r in pdme.model.all_reports())
    assert times == [6.0, 7.0, 8.0, 9.0]


def test_lossy_link_eventually_delivers_with_flushes():
    """At-least-once delivery: retransmissions may reach the PDME more
    than once, but idempotent intake fuses each report exactly once."""
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01, drop_rate=0.6), seed=3
    )
    for i in range(10):
        uplink.submit(report(unit.motor, i))
    for _ in range(30):  # periodic flush simulation
        kernel.run()
        if uplink.backlog == 0:
            break
        kernel.run_until(kernel.now() + 60.0)  # one flush period later
        uplink.flush()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 10
    assert pdme.report_count() == 10        # duplicates dropped at intake
    assert pdme.duplicates_dropped >= 0


def test_lost_ack_retransmission_is_idempotent():
    """Drop-prone link where some *acks* are lost: the report reaches
    the PDME once (fused once), the uplink counts one delivery, even
    though retransmissions occurred."""
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01, drop_rate=0.5), seed=7
    )
    uplink.submit(report(unit.motor))
    for _ in range(30):
        kernel.run()
        if uplink.backlog == 0:
            break
        kernel.run_until(kernel.now() + 60.0)  # one flush period later
        uplink.flush()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 1
    assert pdme.report_count() == 1
