import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.dc.uplink import ReportUplink
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint
from repro.obs import MetricsRegistry
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.protocol import FailurePredictionReport


def make_world(link_config=None, seed=0, capacity=512):
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(seed))
    if link_config is not None:
        net.connect("dc:0", "pdme", link_config)
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    uplink = ReportUplink(dc_ep, "pdme", capacity=capacity)
    return kernel, net, pdme, uplink, units[0]


def report(obj, i=0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


def test_capacity_validation():
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    ep = RpcEndpoint("dc:0", net, kernel)
    with pytest.raises(NetworkError):
        ReportUplink(ep, capacity=0)


def test_clean_link_delivers_and_clears_queue():
    kernel, net, pdme, uplink, unit = make_world()
    for i in range(5):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 5
    assert pdme.report_count() == 5


def test_rejected_report_not_retried_forever():
    kernel, net, pdme, uplink, unit = make_world()
    uplink.submit(report("obj:ghost"))  # unknown object -> PDME refuses
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.rejected == 1
    assert pdme.report_count() == 0


def test_outage_queues_then_flush_recovers():
    """§4.9: reports produced during a comms outage survive and are
    delivered after recovery."""
    kernel, net, pdme, uplink, unit = make_world(LinkConfig(latency=0.01))
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert pdme.report_count() == 0
    assert uplink.backlog == 10
    # Link restored; once the retry backoff expires the scheduled
    # flush retries everything.
    net.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + uplink.retry_cap)
    uplink.flush()
    kernel.run()
    assert uplink.backlog == 0
    assert pdme.report_count() == 10
    assert uplink.stats.retries >= 10


def test_flush_is_idempotent_on_empty_queue():
    kernel, net, pdme, uplink, unit = make_world()
    assert uplink.flush() == 0


def test_bounded_queue_sheds_oldest():
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01), capacity=4
    )
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(unit.motor, i))
        kernel.run()  # let the failed attempts resolve
    assert uplink.backlog == 4
    assert uplink.stats.shed == 6
    net.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + uplink.retry_cap)
    uplink.flush()
    kernel.run()
    # The four newest survive.
    times = sorted(r.timestamp for r in pdme.model.all_reports())
    assert times == [6.0, 7.0, 8.0, 9.0]


def test_lossy_link_eventually_delivers_with_flushes():
    """At-least-once delivery: retransmissions may reach the PDME more
    than once, but idempotent intake fuses each report exactly once."""
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01, drop_rate=0.6), seed=3
    )
    for i in range(10):
        uplink.submit(report(unit.motor, i))
    for _ in range(30):  # periodic flush simulation
        kernel.run()
        if uplink.backlog == 0:
            break
        kernel.run_until(kernel.now() + 60.0)  # one flush period later
        uplink.flush()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 10
    assert pdme.report_count() == 10        # duplicates dropped at intake
    assert pdme.duplicates_dropped >= 0


def make_metered_world(capacity=4, latency=0.01):
    """Like make_world but with a private registry so the shed-age
    instruments can be asserted without cross-test bleed."""
    metrics = MetricsRegistry()
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    net.connect("dc:0", "pdme", LinkConfig(latency=latency))
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    uplink = ReportUplink(dc_ep, "pdme", capacity=capacity, metrics=metrics)
    return kernel, net, pdme, uplink, units[0], metrics


def test_shed_age_accounting_records_the_oldest_victim():
    """`shed == 6` alone cannot say how stale the discard was; the
    shed-age stat/histogram/gauge can."""
    kernel, net, pdme, uplink, unit, metrics = make_metered_world(capacity=4)
    net.set_down("dc:0", "pdme", True)
    kernel.run_until(100.0)                 # reports are already 100 s old
    for i in range(10):
        uplink.submit(report(unit.motor, i))
        kernel.run()                        # settle the failed attempts
    assert uplink.stats.shed == 6
    # The first victim carried timestamp 0.0 and was shed after t=100,
    # so the worst observed age is at least the pre-outage gap.
    assert uplink.stats.oldest_shed_age >= 100.0
    assert uplink.stats.oldest_shed_age <= kernel.now()
    hist = metrics.histogram("dc.uplink.shed_age_seconds", dc="dc:0")
    assert hist.count == 6
    gauge = metrics.gauge("dc.uplink.oldest_shed_age_seconds", dc="dc:0")
    assert gauge.value == uplink.stats.oldest_shed_age


def test_shed_stale_sheds_only_old_settled_reports():
    kernel, net, pdme, uplink, unit, metrics = make_metered_world(capacity=64)
    net.set_down("dc:0", "pdme", True)
    for i in range(5):
        uplink.submit(report(unit.motor, i))     # timestamps 0..4
    kernel.run()
    kernel.run_until(1000.0)
    uplink.submit(report(unit.motor, 999))        # fresh, age ~1 s
    kernel.run()
    assert uplink.backlog == 6
    assert uplink.shed_stale(500.0) == 5
    assert uplink.backlog == 1
    assert uplink.stats.shed == 5
    assert uplink.stats.oldest_shed_age >= 1000.0
    # The survivor still delivers once the link returns.
    net.set_down("dc:0", "pdme", False)
    uplink.flush(force=True)
    kernel.run()
    assert pdme.report_count() == 1
    assert [r.timestamp for r in pdme.model.all_reports()] == [999.0]


def test_shed_stale_skips_in_flight_reports_and_validates_cutoff():
    kernel, net, pdme, uplink, unit, metrics = make_metered_world()
    net.set_down("dc:0", "pdme", True)
    kernel.run_until(100.0)
    uplink.submit(report(unit.motor, 0))
    # No kernel.run(): the submit's attempt is still in flight, so the
    # report is pinned even though it is far past the cutoff.
    assert uplink.shed_stale(10.0) == 0
    assert uplink.backlog == 1
    kernel.run()                            # the attempt fails; now settled
    assert uplink.shed_stale(10.0) == 1
    assert uplink.backlog == 0
    with pytest.raises(NetworkError):
        uplink.shed_stale(0.0)
    with pytest.raises(NetworkError):
        uplink.shed_stale(-5.0)


def test_flush_batched_limit_takes_oldest_first():
    kernel, net, pdme, uplink, unit, metrics = make_metered_world(capacity=64)
    net.set_down("dc:0", "pdme", True)
    for i in range(6):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    net.set_down("dc:0", "pdme", False)
    assert uplink.flush_batched(force=True, max_batch=2, limit=3) == 3
    kernel.run()
    assert pdme.report_count() == 3
    # The bounded chunk drained the *oldest* reports; the rest stayed
    # queued untouched.
    assert sorted(r.timestamp for r in pdme.model.all_reports()) == [0.0, 1.0, 2.0]
    assert uplink.backlog == 3
    assert uplink.flush_batched(force=True, max_batch=8) == 3
    kernel.run()
    assert uplink.backlog == 0
    assert pdme.report_count() == 6


def test_flush_batched_validation():
    kernel, net, pdme, uplink, unit = make_world()
    with pytest.raises(NetworkError):
        uplink.flush_batched(max_batch=0)
    with pytest.raises(NetworkError):
        uplink.flush_batched(limit=0)


def test_lost_ack_retransmission_is_idempotent():
    """Drop-prone link where some *acks* are lost: the report reaches
    the PDME once (fused once), the uplink counts one delivery, even
    though retransmissions occurred."""
    kernel, net, pdme, uplink, unit = make_world(
        LinkConfig(latency=0.01, drop_rate=0.5), seed=7
    )
    uplink.submit(report(unit.motor))
    for _ in range(30):
        kernel.run()
        if uplink.backlog == 0:
            break
        kernel.run_until(kernel.now() + 60.0)  # one flush period later
        uplink.flush()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 1
    assert pdme.report_count() == 1
