"""Crash/restart recovery: durable uplink backlog, scheduler cursors,
and exactly-once delivery at the OOSM."""

import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.dc.database import DcDatabase
from repro.dc.scheduler import EventScheduler
from repro.dc.uplink import ReportUplink
from repro.netsim import EventKernel, Network, RpcEndpoint
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.protocol import FailurePredictionReport


def make_world(seed=0):
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(seed))
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    store = DcDatabase()
    uplink = ReportUplink(dc_ep, "pdme", store=store)
    return kernel, net, pdme, uplink, store, units[0]


def report(obj, i=0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


# -- durable backlog ---------------------------------------------------------

def test_acked_reports_leave_the_store():
    kernel, net, pdme, uplink, store, unit = make_world()
    for i in range(4):
        uplink.submit(report(unit.motor, i))
    assert store.uplink_count() == 4        # persisted before any ack
    kernel.run()
    assert store.uplink_count() == 0        # acks cleared the store
    assert pdme.report_count() == 4


def test_crash_wipes_volatile_state_but_not_the_store():
    kernel, net, pdme, uplink, store, unit = make_world()
    net.set_down("dc:0", "pdme", True)
    for i in range(3):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert uplink.backlog == 3
    uplink.crash()
    assert uplink.backlog == 0
    assert store.uplink_count() == 3


def test_recover_reloads_backlog_with_original_ids():
    kernel, net, pdme, uplink, store, unit = make_world()
    net.set_down("dc:0", "pdme", True)
    for i in range(3):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    ids_before = [rid for rid, _ in store.uplink_rows()]
    uplink.crash()
    assert uplink.recover() == 3
    assert uplink.backlog == 3
    assert [uplink.report_id(k) for k in uplink._queue] == ids_before
    net.set_down("dc:0", "pdme", False)
    uplink.flush(force=True)
    kernel.run()
    assert uplink.backlog == 0
    assert pdme.report_count() == 3


def test_lost_ack_replay_is_exactly_once_at_the_oosm():
    """The strictest case: delivered, posted in the OOSM, but the DC
    died before the ack landed.  The replay must be absorbed."""
    kernel, net, pdme, uplink, store, unit = make_world()
    uplink.submit(report(unit.motor))
    # Run just far enough for the request to arrive at the PDME
    # (one-way 2 ms) but not the ack (4 ms round trip).
    kernel.run_until(0.003)
    assert pdme.report_count() == 1
    assert store.uplink_count() == 1        # ack never made it back
    uplink.endpoint.reset()                  # crash: forget in-flight calls
    uplink.crash()
    assert uplink.recover() == 1
    uplink.flush(force=True)
    kernel.run()
    assert uplink.backlog == 0
    assert store.uplink_count() == 0
    assert pdme.report_count() == 1          # not fused twice
    assert pdme.duplicates_dropped == 1


def test_recover_requires_store_and_empty_queue():
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    ep = RpcEndpoint("dc:0", net, kernel)
    bare = ReportUplink(ep, "pdme")
    with pytest.raises(NetworkError):
        bare.recover()
    _, net2, _, uplink, _, unit = make_world()
    net2.set_down("dc:0", "pdme", True)
    uplink.submit(report(unit.motor))
    with pytest.raises(NetworkError):
        uplink.recover()


def test_recover_rejects_foreign_report_ids():
    _, _, _, uplink, store, _ = make_world()
    store.uplink_put("dc:other#0", {"bogus": True})
    with pytest.raises(NetworkError):
        uplink.recover()


def test_bind_store_guards():
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    ep = RpcEndpoint("dc:9", net, kernel)
    uplink = ReportUplink(ep, "pdme")
    store = DcDatabase()
    uplink.bind_store(store)
    with pytest.raises(NetworkError):
        uplink.bind_store(DcDatabase())     # already bound


# -- shedding + crash/recover ------------------------------------------------

def make_small_world(capacity=4, seed=0):
    """A world whose uplink sheds early: durable store + tiny queue."""
    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(seed))
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1)
    pdme_ep = RpcEndpoint("pdme", net, kernel)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    pdme.serve_on(pdme_ep)
    store = DcDatabase()
    uplink = ReportUplink(dc_ep, "pdme", capacity=capacity, store=store)
    return kernel, net, pdme, uplink, store, units[0]


def test_recover_after_shedding_keeps_only_the_survivors():
    """A prolonged outage that overflowed the queue: shed reports are
    gone from the durable store too, so a crash/recover cycle reloads
    exactly the post-shed backlog — the conservation accounting
    (queued = delivered + backlog + shed + rejected) stays intact and
    nothing shed rises from the dead."""
    kernel, net, pdme, uplink, store, unit = make_small_world(capacity=4)
    net.set_down("dc:0", "pdme", True)
    for i in range(10):
        uplink.submit(report(unit.motor, i))
        kernel.run()                        # settle each failed attempt
    assert uplink.backlog == 4
    assert uplink.stats.shed == 6
    assert store.uplink_count() == 4        # shedding purged the store too
    shed_age_before = uplink.stats.oldest_shed_age
    assert shed_age_before > 0.0

    uplink.crash()
    assert uplink.recover() == 4            # only the survivors come back
    assert uplink.backlog == 4
    # Shed-age accounting rides the stats object, not the queue, so the
    # post-mortem signal survives the crash/recover cycle.
    assert uplink.stats.oldest_shed_age == shed_age_before
    assert uplink.stats.shed == 6

    net.set_down("dc:0", "pdme", False)
    uplink.flush(force=True)
    kernel.run()
    assert uplink.backlog == 0
    assert store.uplink_count() == 0
    # Exactly the four newest reports reach the OOSM — none of the six
    # shed ones resurrected.
    assert pdme.report_count() == 4
    times = sorted(r.timestamp for r in pdme.model.all_reports())
    assert times == [6.0, 7.0, 8.0, 9.0]
    # queued counts original submissions plus the recovery reload.
    assert uplink.stats.queued == 10 + 4
    assert uplink.stats.delivered == 4


def test_recover_does_not_resurrect_acked_reports():
    """Reports acknowledged before the outage are out of the store;
    recover() must reload only the unacked tail, and its replay stays
    exactly-once at the OOSM."""
    kernel, net, pdme, uplink, store, unit = make_small_world(capacity=8)
    for i in range(3):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    assert pdme.report_count() == 3
    assert store.uplink_count() == 0        # acks cleared the store
    net.set_down("dc:0", "pdme", True)
    for i in range(3, 5):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    uplink.crash()
    assert uplink.recover() == 2            # the unacked tail only
    net.set_down("dc:0", "pdme", False)
    uplink.flush(force=True)
    kernel.run()
    assert pdme.report_count() == 5
    assert pdme.duplicates_dropped == 0


def test_shed_stale_purges_the_durable_store():
    """The catch-up staleness cutoff must discard durably: a report
    shed as stale, then a crash/recover, must not bring it back."""
    kernel, net, pdme, uplink, store, unit = make_small_world(capacity=16)
    net.set_down("dc:0", "pdme", True)
    for i in range(4):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    kernel.run_until(kernel.now() + 2000.0)
    uplink.submit(report(unit.motor, int(kernel.now()) - 1))
    kernel.run()
    assert uplink.shed_stale(1000.0) == 4
    assert store.uplink_count() == 1
    uplink.crash()
    assert uplink.recover() == 1
    net.set_down("dc:0", "pdme", False)
    uplink.flush(force=True)
    kernel.run()
    assert pdme.report_count() == 1


# -- scheduler cursors -------------------------------------------------------

def test_cursors_persist_and_restore():
    kernel = EventKernel()
    db = DcDatabase()
    sched = EventScheduler(kernel, cursor_store=db.save_scheduler_cursor)
    runs = []
    sched.add_periodic("tick", 10.0, runs.append)
    kernel.run_until(35.0)
    assert db.scheduler_cursors() == {"tick": (3, 30.0)}

    # A "restarted" scheduler resumes where the old one stood.
    fresh = EventScheduler(kernel, cursor_store=db.save_scheduler_cursor)
    task = fresh.add_periodic("tick", 10.0, runs.append)
    assert fresh.restore_cursors(db.scheduler_cursors()) == 1
    assert task.runs == 3
    assert task.last_run == 30.0


def test_restore_ignores_unknown_tasks():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    sched.add_periodic("known", 10.0, lambda t: None)
    applied = sched.restore_cursors({"gone": (5, 50.0), "known": (2, 20.0)})
    assert applied == 1
    assert sched.task("known").runs == 2


def test_suspended_scheduler_skips_runs_but_keeps_cadence():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    runs = []
    sched.add_periodic("tick", 10.0, runs.append)
    kernel.run_until(20.0)
    assert runs == [10.0, 20.0]
    sched.suspend()
    assert sched.suspended
    kernel.run_until(50.0)
    assert runs == [10.0, 20.0]             # frozen
    sched.resume()
    kernel.run_until(70.0)
    assert runs == [10.0, 20.0, 60.0, 70.0]  # cadence preserved, no burst
