import pytest

from repro.common.errors import MprosError, SchedulingError
from repro.dc import DcDatabase, EventScheduler
from repro.netsim import EventKernel
from repro.protocol import FailurePredictionReport, PrognosticVector


def make_report(machine="m1", t=1.0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=machine,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.7,
        timestamp=t,
        prognostic=PrognosticVector.from_pairs([(100.0, 0.5)]),
    )


# -- database --------------------------------------------------------------------

def test_instrumentation_roundtrip():
    db = DcDatabase()
    db.register_channel(3, "accel:1", "m1", "accelerometer", 1.5)
    db.register_channel(4, "rtd:1", "m1", "rtd")
    assert set(db.channels_for("m1")) == {
        (3, "accel:1", "accelerometer"),
        (4, "rtd:1", "rtd"),
    }


def test_machinery_config_roundtrip():
    db = DcDatabase()
    db.register_machine("m1", "Motor 1", {"shaft_hz": 59.3})
    assert db.machine_config("m1") == {"shaft_hz": 59.3}
    assert db.machines() == ["m1"]
    with pytest.raises(MprosError):
        db.machine_config("ghost")


def test_schedules_roundtrip():
    db = DcDatabase()
    db.register_schedule("vib", 600.0, "vibration")
    assert db.schedules() == [("vib", 600.0, "vibration")]
    with pytest.raises(MprosError):
        db.register_schedule("bad", 0.0, "x")


def test_measurements_history_ordering():
    db = DcDatabase()
    for t in range(5):
        db.store_measurement(float(t), "rms", float(t) * 2, channel=1, machine_id="m1")
    hist = db.measurement_history("m1", "rms", limit=3)
    assert hist == [(2.0, 4.0), (3.0, 6.0), (4.0, 8.0)]
    assert db.measurement_count() == 5


def test_bulk_measurements():
    db = DcDatabase()
    db.store_measurements([(1.0, "rms", 0.5, 1, "m1"), (2.0, "peak", 1.5, 1, "m1")])
    assert db.measurement_count() == 2


def test_reports_roundtrip():
    db = DcDatabase()
    r = make_report()
    db.store_report(r)
    db.store_report(make_report(machine="m2"))
    assert db.report_count() == 2
    got = db.reports_for("m1")
    assert got == [r]


# -- scheduler --------------------------------------------------------------------

def test_periodic_task_runs_on_schedule():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    times = []
    sched.add_periodic("t", 10.0, times.append)
    kernel.run_until(35.0)
    assert times == [10.0, 20.0, 30.0]
    assert sched.task("t").runs == 3
    assert sched.task("t").last_run == 30.0


def test_duplicate_task_rejected():
    sched = EventScheduler(EventKernel())
    sched.add_periodic("t", 1.0, lambda t: None)
    with pytest.raises(SchedulingError):
        sched.add_periodic("t", 2.0, lambda t: None)


def test_bad_period_rejected():
    with pytest.raises(SchedulingError):
        EventScheduler(EventKernel()).add_periodic("t", 0.0, lambda t: None)


def test_command_runs_out_of_schedule():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    times = []
    sched.add_periodic("t", 100.0, times.append)
    sched.command("t")
    assert times == [0.0]
    with pytest.raises(SchedulingError):
        sched.command("ghost")


def test_disable_pauses_without_unscheduling():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    times = []
    sched.add_periodic("t", 10.0, times.append)
    sched.enable("t", False)
    kernel.run_until(25.0)
    assert times == []
    sched.enable("t", True)
    kernel.run_until(45.0)
    assert times == [30.0, 40.0]


def test_remove_stops_task():
    kernel = EventKernel()
    sched = EventScheduler(kernel)
    times = []
    sched.add_periodic("t", 10.0, times.append)
    sched.remove("t")
    kernel.run_until(50.0)
    assert times == []


def test_failing_task_is_isolated():
    kernel = EventKernel()
    sched = EventScheduler(kernel)

    def bad(t):
        raise RuntimeError("sensor exploded")

    good_times = []
    sched.add_periodic("bad", 10.0, bad)
    sched.add_periodic("good", 10.0, good_times.append)
    kernel.run_until(25.0)
    assert good_times == [10.0, 20.0]
    assert len(sched.errors) == 2
    assert sched.task("bad").runs == 0
