"""Fault-injection harness for the store-and-forward uplink (§4.9).

"Simulating the range of problems that may arise will let us improve
robustness to the point of long-term unattended operation."  These
tests script a hostile network — loss, corruption, jitter, and hard
outage windows — drive ~1k reports through it, and assert the
invariants unattended operation depends on:

* **conservation**: every submitted report is accounted for exactly
  once (delivered + rejected + shed + still-queued == queued);
* **oldest-first shedding**: under prolonged outage the bounded queue
  sheds stale reports, never fresh ones;
* **paced retries**: the flush path applies capped exponential backoff
  instead of hammering a dead link every tick.

Everything runs on the simulated clock under fixed seeds, so the whole
campaign is deterministic.
"""

import numpy as np
import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NetworkError
from repro.dc.uplink import ReportUplink
from repro.netsim import EventKernel, LinkConfig, Network, RpcEndpoint
from repro.obs import MetricsRegistry
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive
from repro.protocol import FailurePredictionReport


def make_world(link_config=None, seed=0, capacity=512, metrics=None, **uplink_kw):
    metrics = metrics if metrics is not None else MetricsRegistry()
    kernel = EventKernel(metrics=metrics)
    net = Network(kernel, np.random.default_rng(seed), metrics=metrics)
    if link_config is not None:
        net.connect("dc:0", "pdme", link_config)
    dc_ep = RpcEndpoint("dc:0", net, kernel, timeout=0.2, retries=1, metrics=metrics)
    pdme_ep = RpcEndpoint("pdme", net, kernel, metrics=metrics)
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model, metrics=metrics)
    pdme.serve_on(pdme_ep)
    uplink = ReportUplink(
        dc_ep, "pdme", capacity=capacity, metrics=metrics, **uplink_kw
    )
    return kernel, net, pdme, uplink, units[0], metrics


def report(obj, i=0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


def conserved(uplink):
    s = uplink.stats
    return s.delivered + s.rejected + s.shed + uplink.backlog == s.queued


# ---------------------------------------------------------------------------
# The 1k-report campaign.
# ---------------------------------------------------------------------------

N_REPORTS = 1000
#: (start, end) simulated seconds with the dc<->pdme link hard-down.
OUTAGES = [(20.0, 45.0), (60.0, 62.0), (80.0, 95.0)]


def run_campaign(seed):
    """Submit 1k reports over a lossy link with scripted outages."""
    kernel, net, pdme, uplink, unit, metrics = make_world(
        LinkConfig(latency=0.005, jitter=0.004, drop_rate=0.15, corrupt_rate=0.05),
        seed=seed,
        capacity=64,
        retry_base=0.5,
        retry_cap=8.0,
    )
    for start, end in OUTAGES:
        kernel.schedule_at(start, lambda: net.set_down("dc:0", "pdme", True))
        kernel.schedule_at(end, lambda: net.set_down("dc:0", "pdme", False))
    # ~10 reports/s for 100 s; a mix of good and malformed-object
    # reports so the PDME exercises its refusal path too.
    for i in range(N_REPORTS):
        obj = unit.motor if i % 97 else "obj:ghost"
        kernel.schedule_at(0.1 * i, lambda r=report(obj, i): uplink.submit(r))
    # Periodic recovery flush, §4.9 style.
    for t in range(5, 200, 5):
        kernel.schedule_at(float(t), lambda: uplink.flush())
    kernel.run_until(200.0)
    kernel.run()
    return kernel, pdme, uplink, metrics


def test_campaign_conserves_every_report():
    kernel, pdme, uplink, metrics = run_campaign(seed=11)
    s = uplink.stats
    assert s.queued == N_REPORTS
    assert conserved(uplink), vars(s)
    # The scenario actually exercised every fault path.
    assert s.delivered > 0
    assert s.rejected > 0
    assert s.shed > 0
    assert s.retries > 0
    assert s.deferred > 0
    # After recovery + flushes the backlog fully drains.
    assert uplink.backlog == 0
    # At-least-once: a report can fuse at the PDME yet miss its ack and
    # later be shed, so the fused count is bounded by delivered + shed,
    # and retransmissions never double-fuse.
    assert pdme.report_count() <= s.delivered + s.shed
    assert pdme.duplicates_dropped > 0
    # Metrics agree with the legacy stats view.
    counters = metrics.snapshot()["counters"]
    assert counters["dc.uplink.delivered{dc=dc:0}"] == s.delivered
    assert counters["dc.uplink.shed{dc=dc:0}"] == s.shed
    assert counters["netsim.link.frames_corrupted"] > 0
    assert counters["netsim.rpc.corrupt_frames{endpoint=pdme}"] > 0


def test_campaign_is_deterministic_under_seed():
    def fingerprint(seed):
        kernel, pdme, uplink, metrics = run_campaign(seed)
        import json

        return json.dumps(metrics.snapshot(), sort_keys=True)

    assert fingerprint(11) == fingerprint(11)
    assert fingerprint(11) != fingerprint(12)


def test_conservation_holds_mid_campaign():
    """The invariant holds at every checkpoint, not just at the end."""
    kernel, net, pdme, uplink, unit, _ = make_world(
        LinkConfig(latency=0.005, drop_rate=0.3), seed=5, capacity=32,
        retry_base=0.5, retry_cap=4.0,
    )
    kernel.schedule_at(10.0, lambda: net.set_down("dc:0", "pdme", True))
    kernel.schedule_at(25.0, lambda: net.set_down("dc:0", "pdme", False))
    for i in range(300):
        kernel.schedule_at(0.1 * i, lambda r=report(unit.motor, i): uplink.submit(r))
    for t in np.arange(1.0, 40.0, 1.0):
        kernel.run_until(float(t))
        uplink.flush()
        # In-flight reports are still queued, so conservation holds
        # even with calls outstanding.
        assert conserved(uplink), f"broken at t={t}: {vars(uplink.stats)}"
    kernel.run()
    assert conserved(uplink)


def test_outage_sheds_oldest_first():
    """Under a pure outage the survivors are exactly the newest."""
    kernel, net, pdme, uplink, unit, _ = make_world(
        LinkConfig(latency=0.01), capacity=8
    )
    net.set_down("dc:0", "pdme", True)
    for i in range(100):
        uplink.submit(report(unit.motor, i))
        kernel.run()  # resolve the failed attempt before the next submit
    assert uplink.stats.shed == 92
    assert uplink.backlog == 8
    net.set_down("dc:0", "pdme", False)
    kernel.run_until(kernel.now() + uplink.retry_cap)
    uplink.flush()
    kernel.run()
    assert uplink.backlog == 0
    delivered_times = sorted(r.timestamp for r in pdme.model.all_reports())
    assert delivered_times == [float(i) for i in range(92, 100)]


# ---------------------------------------------------------------------------
# Retry backoff (the fix): schedule unit-tested with a fake clock.
# ---------------------------------------------------------------------------

def test_retry_delay_schedule():
    kernel, net, pdme, uplink, unit, _ = make_world(
        retry_base=1.0, retry_factor=2.0, retry_cap=60.0
    )
    assert [uplink.retry_delay(n) for n in range(1, 9)] == [
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0, 60.0  # capped
    ]
    with pytest.raises(NetworkError):
        uplink.retry_delay(0)


def test_backoff_parameters_validated():
    kernel, net, pdme, uplink, unit, _ = make_world()
    ep = uplink.endpoint
    with pytest.raises(NetworkError):
        ReportUplink(ep, retry_base=0.0)
    with pytest.raises(NetworkError):
        ReportUplink(ep, retry_factor=0.5)
    with pytest.raises(NetworkError):
        ReportUplink(ep, retry_base=10.0, retry_cap=5.0)


def test_flush_defers_until_backoff_expires():
    """A failed report is not re-sent every flush tick; each flush
    before its deadline defers it, and the deadlines grow 1, 2, 4...s
    after successive failures (fake clock, no real time involved)."""
    clock = SimulatedClock()
    kernel, net, pdme, uplink, unit, _ = make_world(
        LinkConfig(latency=0.01),
        clock=clock,  # backoff reads this fake clock, not the kernel's
        retry_base=1.0, retry_factor=2.0, retry_cap=60.0,
    )
    net.set_down("dc:0", "pdme", True)
    uplink.submit(report(unit.motor))
    kernel.run()  # first attempt fails (timeout + 1 retry)
    key = next(iter(uplink._queue))
    assert uplink.next_retry_at(key) == pytest.approx(clock.now() + 1.0)

    # Flushing before the deadline defers instead of transmitting.
    assert uplink.flush() == 0
    assert uplink.stats.deferred == 1
    assert uplink.stats.retries == 0

    # After the deadline the flush re-sends; the next failure doubles
    # the backoff.
    clock.advance(1.0)
    assert uplink.flush() == 1
    kernel.run()  # fails again against the downed link
    assert uplink.stats.retries == 1
    assert uplink.next_retry_at(key) == pytest.approx(clock.now() + 2.0)
    assert uplink.flush() == 0

    clock.advance(2.0)
    assert uplink.flush() == 1
    kernel.run()
    assert uplink.next_retry_at(key) == pytest.approx(clock.now() + 4.0)

    # force=True overrides the pacing (operator-commanded flush).
    assert uplink.flush(force=True) == 1
    kernel.run()

    # Recovery: once delivered, the backoff bookkeeping is dropped.
    net.set_down("dc:0", "pdme", False)
    clock.advance(60.0)
    uplink.flush()
    kernel.run()
    assert uplink.backlog == 0
    assert uplink.stats.delivered == 1
    assert uplink.next_retry_at(key) == float("-inf")


def test_backoff_caps_flush_storm():
    """100 queued reports + 100 flush ticks against a dead link: the
    paced uplink makes ~log(ticks) attempts per report instead of one
    per report per tick."""
    kernel, net, pdme, uplink, unit, _ = make_world(
        LinkConfig(latency=0.01), capacity=200,
        retry_base=1.0, retry_factor=2.0, retry_cap=512.0,
    )
    net.set_down("dc:0", "pdme", True)
    for i in range(100):
        uplink.submit(report(unit.motor, i))
    kernel.run()
    attempts = 0
    for _ in range(100):  # one flush per second, §4.9 recovery loop
        kernel.run_until(kernel.now() + 1.0)
        attempts += uplink.flush()
        kernel.run()
    # Unpaced this would be ~100 * 100 = 10k attempts; the exponential
    # schedule admits ceil(log2(100)) ≈ 7 per report.
    assert attempts <= 100 * 8
    assert uplink.stats.deferred > attempts
    assert conserved(uplink)
