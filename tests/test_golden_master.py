"""Golden-master pins on the end-to-end report streams.

Three canonical scenarios are rendered through
:func:`repro.protocol.canonical_json` and compared byte-for-byte
against committed files in ``tests/golden/``.  Any behavioural change
in the scan→report pipeline — DSP, suites, SBFR, scheduling, RNG
derivation — shows up here before it shows up in the field.

Regenerate intentionally with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_master.py

and review the golden diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.protocol.canonical import canonical_json

GOLDEN_DIR = Path(__file__).parent / "golden"


def _check_golden(name: str, payload: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("GOLDEN_REGEN"):
        path.write_text(payload, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with GOLDEN_REGEN=1"
    )
    golden = path.read_text(encoding="utf-8")
    assert payload == golden, (
        f"{name} drifted from its golden master; if the change is "
        "intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


def test_quickstart_scenario_reports_are_pinned():
    """The quickstart story: 2 chillers, progressive motor imbalance."""
    from repro.plant.faults import FaultKind, progressive
    from repro.system import build_mpros_system

    system = build_mpros_system(n_chillers=2, seed=42)
    motor = system.units[0].motor
    system.run(hours=0.5)
    system.inject_fault(
        motor,
        progressive(
            FaultKind.MOTOR_IMBALANCE,
            onset=system.kernel.now(),
            end=system.kernel.now() + 3600.0,
            shape="exponential",
        ),
    )
    system.run(hours=1.5)
    reports = system.model.all_reports()
    assert reports, "quickstart scenario produced no reports"
    _check_golden("quickstart.json", canonical_json(reports))


def test_seeded_campaign_reports_are_pinned():
    """A reduced §9 campaign: 3 FMEA modes, fixed seeds."""
    from repro.algorithms.dli.engine import DliExpertSystem
    from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
    from repro.algorithms.sbfr_source import SbfrKnowledgeSource
    from repro.plant.faults import FaultKind
    from repro.validation import SeededFaultCampaign

    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem(), FuzzyDiagnostics(), SbfrKnowledgeSource()],
        faults=(
            FaultKind.MOTOR_IMBALANCE,
            FaultKind.BEARING_WEAR,
            FaultKind.BEARING_HOUSING_LOOSENESS,
        ),
        duration=1200.0,
        scan_period=120.0,
        rng=np.random.default_rng(0),
    )
    records = campaign.run(healthy_controls=1)
    reports = [r for record in records for r in record.reports]
    assert reports, "campaign produced no reports"
    _check_golden("seeded_campaign.json", canonical_json(reports))


@pytest.fixture(scope="module")
def fleet_serial_json() -> str:
    from repro.hpc.parallel import replay_fleet
    from repro.system import build_fleet_specs

    specs = build_fleet_specs(
        n_dcs=3, machines_per_dc=2, hours=0.5, seed=0
    )
    return canonical_json(replay_fleet(specs, n_workers=1))


def test_fleet_replay_reports_are_pinned(fleet_serial_json):
    """The fleet replay scenario itself is golden-pinned."""
    _check_golden("fleet_replay.json", fleet_serial_json)


def test_fleet_replay_parallel_is_byte_identical(fleet_serial_json):
    """Process-pool replay must render the exact same bytes as serial.

    This is the determinism contract of the multi-DC executor: DCs
    share nothing, all randomness derives from (seed, dc_index), and
    the merge is a pure function of the per-DC streams.
    """
    from repro.hpc.parallel import replay_fleet
    from repro.system import build_fleet_specs

    specs = build_fleet_specs(
        n_dcs=3, machines_per_dc=2, hours=0.5, seed=0
    )
    parallel_json = canonical_json(replay_fleet(specs, n_workers=2))
    assert parallel_json == fleet_serial_json


def test_fleet_replay_legacy_mode_matches_batched(fleet_serial_json):
    """The scalar/legacy ablation produces the same canonical stream.

    The entire batching layer (shared spectra, vectorized SBFR grid,
    batch suite dispatch) is a pure optimization — turning it off may
    only change speed, never reports.
    """
    from repro.hpc.parallel import replay_fleet
    from repro.system import build_fleet_specs

    specs = build_fleet_specs(
        n_dcs=3, machines_per_dc=2, hours=0.5, seed=0,
        batch=False, reuse_spectra=False,
    )
    legacy_json = canonical_json(replay_fleet(specs, n_workers=1))
    assert legacy_json == fleet_serial_json
