import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.plant import ChillerSimulator, EmaSimulator, FaultKind, SensorModel
from repro.plant.faults import progressive, seeded
from repro.plant.sensors import degraded, healthy


def sim(load=0.9, seed=0):
    return ChillerSimulator(rng=np.random.default_rng(seed), load=load)


def settle(s, seconds=600.0, dt=10.0):
    for _ in range(int(seconds / dt)):
        s.step(dt)


# -- chiller process model ------------------------------------------------------

def test_load_validation():
    with pytest.raises(MprosError):
        sim(load=1.4)
    s = sim()
    with pytest.raises(MprosError):
        s.set_load(-0.1)
    with pytest.raises(MprosError):
        s.step(0.0)


def test_healthy_steady_state_near_nominal():
    s = sim(load=1.0)
    settle(s)
    p = s.sample_process()
    assert p["evap_pressure_kpa"] == pytest.approx(330.0, abs=20)
    assert p["cond_pressure_kpa"] == pytest.approx(1000.0, abs=40)
    assert p["superheat_c"] == pytest.approx(4.5, abs=1.0)
    assert p["prv_position_pct"] == pytest.approx(100.0, abs=5)


def test_load_moves_current_and_prv():
    hi, lo = sim(load=1.0, seed=1), sim(load=0.2, seed=2)
    settle(hi), settle(lo)
    assert hi.sample_process()["motor_current_a"] > lo.sample_process()["motor_current_a"]
    assert lo.sample_process()["prv_position_pct"] == pytest.approx(20.0, abs=5)


def test_refrigerant_leak_signature():
    s = sim()
    s.inject(seeded(FaultKind.REFRIGERANT_LEAK, onset=0.0, severity=0.9))
    settle(s)
    p = s.sample_process()
    assert p["evap_pressure_kpa"] < 300.0       # suction down
    assert p["superheat_c"] > 10.0              # superheat up


def test_condenser_fouling_signature():
    s = sim()
    s.inject(seeded(FaultKind.CONDENSER_FOULING, onset=0.0, severity=0.9))
    settle(s)
    p = s.sample_process()
    assert p["cond_pressure_kpa"] > 1100.0
    assert p["motor_current_a"] > 420.0 * (0.35 + 0.65 * 0.9)


def test_oil_pressure_low_signature():
    s = sim()
    s.inject(seeded(FaultKind.OIL_PRESSURE_LOW, onset=0.0, severity=1.0))
    settle(s)
    assert s.sample_process()["oil_pressure_kpa"] < 200.0


def test_surge_oscillates_head_pressure():
    s = sim()
    s.inject(seeded(FaultKind.SURGE, onset=0.0, severity=1.0))
    settle(s, seconds=100.0, dt=1.0)
    readings = []
    for _ in range(32):
        s.step(1.0)
        readings.append(s.sample_process()["cond_pressure_kpa"])
    assert np.std(readings) > 30.0


def test_progressive_fault_grows():
    s = sim()
    s.inject(progressive(FaultKind.REFRIGERANT_LEAK, onset=0.0, end=10_000.0))
    settle(s, seconds=1_000.0)
    early = s.sample_process()["superheat_c"]
    settle(s, seconds=9_500.0)
    late = s.sample_process()["superheat_c"]
    assert late > early + 3.0


def test_clear_faults_recovers():
    s = sim()
    s.inject(seeded(FaultKind.CONDENSER_FOULING, onset=0.0, severity=1.0))
    settle(s)
    fouled = s.sample_process()["cond_pressure_kpa"]
    s.clear_faults()
    settle(s)
    assert s.sample_process()["cond_pressure_kpa"] < fouled - 100.0


def test_severities_reports_active_faults():
    s = sim()
    s.inject(seeded(FaultKind.SURGE, onset=100.0))
    assert s.severities() == {}
    settle(s, seconds=200.0)
    assert FaultKind.SURGE in s.severities()


def test_vibration_reflects_injected_fault():
    s = sim()
    s.inject(seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.9))
    settle(s, seconds=10.0)
    from repro.dsp import order_amplitudes, spectrum

    x = s.sample_vibration()
    spec = spectrum(x, s.vibration.sample_rate)
    o = order_amplitudes(spec, s.config.kinematics.shaft_hz, max_order=3)
    assert o[0] > 0.3


def test_deterministic_given_seed():
    a, b = sim(seed=42), sim(seed=42)
    settle(a, 100.0), settle(b, 100.0)
    assert a.sample_process().values == b.sample_process().values


# -- sensor models ------------------------------------------------------------

def test_sensor_gain_bias():
    m = SensorModel(gain=2.0, bias=1.0)
    out = m.apply(np.array([1.0, 2.0]), np.random.default_rng(0))
    assert np.allclose(out, [3.0, 5.0])


def test_sensor_saturation():
    m = SensorModel(saturation=1.0)
    out = m.apply(np.array([-5.0, 0.5, 5.0]), np.random.default_rng(0))
    assert np.allclose(out, [-1.0, 0.5, 1.0])


def test_sensor_dropout_rate():
    m = SensorModel(dropout_rate=0.5)
    out = m.apply(np.zeros(10_000), np.random.default_rng(0))
    frac = np.isnan(out).mean()
    assert 0.4 < frac < 0.6


def test_sensor_validation():
    with pytest.raises(MprosError):
        SensorModel(dropout_rate=2.0)
    with pytest.raises(MprosError):
        SensorModel(saturation=-1.0)


def test_presets():
    assert healthy().dropout_rate == 0.0
    assert degraded().dropout_rate > 0.0


# -- EMA ------------------------------------------------------------------------

def test_ema_healthy_flat_current():
    ema = EmaSimulator(stiction_rate=0.0)
    trace = ema.run(500, np.random.default_rng(0))
    current = trace[:, 0]
    assert np.all(np.abs(np.diff(current)) < 1.0)  # no spikes


def test_ema_stiction_produces_spikes():
    ema = EmaSimulator(stiction_rate=0.05)
    trace = ema.run(2000, np.random.default_rng(0))
    jumps = np.abs(np.diff(trace[:, 0])) > 1.5
    assert jumps.sum() >= 10


def test_ema_commanded_move_changes_cpos_and_current():
    ema = EmaSimulator()
    trace = ema.run(40, np.random.default_rng(0), command_schedule={10: 1.0})
    cpos = trace[:, 1]
    assert cpos[5] == 0.0
    assert cpos[-1] == pytest.approx(1.0)
    moving_current = trace[11:14, 0]
    assert np.all(moving_current > ema.base_current + 1.0)


def test_ema_validation():
    with pytest.raises(MprosError):
        EmaSimulator(stiction_rate=-1.0)
    with pytest.raises(MprosError):
        EmaSimulator().run(0, np.random.default_rng(0))


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plant.faults import FaultKind as _FK, seeded as _seeded

_ALL_FAULTS = list(_FK)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    load=st.floats(min_value=0.0, max_value=1.0),
    picks=st.lists(st.sampled_from(_ALL_FAULTS), max_size=3, unique=True),
    sev=st.floats(min_value=0.1, max_value=1.0),
)
def test_process_variables_stay_physical(seed, load, picks, sev):
    """Property: under any load and any fault mix the process model
    never leaves physically meaningful ranges."""
    s = ChillerSimulator(rng=np.random.default_rng(seed), load=load)
    for kind in picks:
        s.inject(_seeded(kind, onset=0.0, severity=sev))
    for _ in range(30):
        s.step(30.0)
    p = s.sample_process()
    assert 100.0 < p["evap_pressure_kpa"] < 700.0
    assert 500.0 < p["cond_pressure_kpa"] < 1700.0
    assert -5.0 < p["chw_supply_temp_c"] < 30.0
    assert 0.0 < p["superheat_c"] < 50.0
    assert 50.0 < p["oil_pressure_kpa"] < 400.0
    assert 30.0 < p["oil_temp_c"] < 110.0
    assert 0.0 < p["motor_current_a"] < 800.0
    assert -5.0 <= p["prv_position_pct"] <= 110.0
