import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.dsp import kurtosis_excess, order_amplitudes, spectrum
from repro.dsp.envelope import envelope_spectrum
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer


@pytest.fixture
def synth():
    return VibrationSynthesizer(MachineKinematics(shaft_hz=59.3))


def rng():
    return np.random.default_rng(7)


def acquire(synth, faults=None, load=1.0, n=16384):
    return synth.synthesize(n, faults=faults, load=load, rng=rng())


def orders(synth, x, n=5):
    s = spectrum(x, synth.sample_rate)
    return order_amplitudes(s, synth.kinematics.shaft_hz, max_order=n)


# -- validation ------------------------------------------------------------

def test_validates_inputs(synth):
    with pytest.raises(MprosError):
        synth.synthesize(4, rng=rng())
    with pytest.raises(MprosError):
        synth.synthesize(1024, load=1.5, rng=rng())
    with pytest.raises(MprosError):
        synth.synthesize(1024, faults={FaultKind.MOTOR_IMBALANCE: 2.0}, rng=rng())


def test_sample_rate_must_cover_gear_mesh():
    with pytest.raises(MprosError):
        VibrationSynthesizer(MachineKinematics(shaft_hz=60.0, gear_teeth=100), sample_rate=8192.0)


# -- healthy baseline ----------------------------------------------------------

def test_healthy_signal_has_baseline_orders(synth):
    o = orders(synth, acquire(synth))
    assert o[0] == pytest.approx(0.05, rel=0.3)   # 1x
    assert o[1] == pytest.approx(0.02, rel=0.4)   # 2x


def test_healthy_kurtosis_near_gaussian(synth):
    x = acquire(synth)
    assert abs(kurtosis_excess(x)) < 1.0


# -- fault signatures -------------------------------------------------------------

def test_imbalance_raises_1x(synth):
    healthy = orders(synth, acquire(synth))
    faulty = orders(synth, acquire(synth, {FaultKind.MOTOR_IMBALANCE: 0.8}))
    assert faulty[0] > 4 * healthy[0]
    assert faulty[1] == pytest.approx(healthy[1], rel=0.5)  # 2x unaffected


def test_misalignment_raises_2x_over_1x(synth):
    faulty = orders(synth, acquire(synth, {FaultKind.SHAFT_MISALIGNMENT: 0.8}))
    assert faulty[1] > faulty[0]


def test_severity_scales_signature(synth):
    mild = orders(synth, acquire(synth, {FaultKind.MOTOR_IMBALANCE: 0.2}))
    severe = orders(synth, acquire(synth, {FaultKind.MOTOR_IMBALANCE: 0.9}))
    assert severe[0] > 2 * mild[0]


def test_bearing_wear_raises_kurtosis_and_envelope_line(synth):
    x = acquire(synth, {FaultKind.BEARING_WEAR: 0.9})
    assert kurtosis_excess(x) > 1.5
    bf = synth.kinematics.bearing_defect_frequencies()
    es = envelope_spectrum(x, synth.sample_rate, band=(2000.0, 4500.0))
    line = es.amplitude_at(bf.bpfo, tolerance_bins=3)
    off = es.amplitude_at(bf.bpfo * 1.45, tolerance_bins=3)
    assert line > 2.5 * off


def test_looseness_creates_harmonic_raft_and_subharmonic(synth):
    x = acquire(synth, {FaultKind.BEARING_HOUSING_LOOSENESS: 0.9})
    s = spectrum(x, synth.sample_rate)
    shaft = synth.kinematics.shaft_hz
    sub = s.amplitude_at(0.5 * shaft)
    assert sub > 0.03
    high_orders = order_amplitudes(s, shaft, max_order=8)
    assert np.all(high_orders[:6] > 0.01)


def test_looseness_worse_at_low_load(synth):
    """§6.1: 'some compressors vibrate more at certain frequencies when
    unloaded' — the false-positive trap the rule sensitization avoids."""
    loaded = acquire(synth, {FaultKind.BEARING_HOUSING_LOOSENESS: 0.5}, load=1.0)
    unloaded = acquire(synth, {FaultKind.BEARING_HOUSING_LOOSENESS: 0.5}, load=0.1)
    o_loaded = orders(synth, loaded, n=8)
    o_unloaded = orders(synth, unloaded, n=8)
    assert o_unloaded[3:7].sum() > 1.5 * o_loaded[3:7].sum()


def test_gear_wear_raises_mesh_and_sidebands(synth):
    x = acquire(synth, {FaultKind.GEAR_TOOTH_WEAR: 0.9})
    s = spectrum(x, synth.sample_rate)
    mesh = synth.kinematics.gear_mesh_hz
    shaft = synth.kinematics.shaft_hz
    assert s.amplitude_at(mesh) > 0.15
    assert s.amplitude_at(mesh + shaft) > 0.05


def test_rotor_bar_sidebands(synth):
    x = acquire(synth, {FaultKind.MOTOR_ROTOR_BAR: 0.9}, n=65536)
    s = spectrum(x, synth.sample_rate)
    k = synth.kinematics
    sb = s.amplitude_at(k.shaft_hz + k.pole_pass_hz, tolerance_bins=1)
    assert sb > 0.08
    assert s.amplitude_at(2 * k.line_hz, tolerance_bins=1) > 0.04


def test_phase_imbalance_raises_twice_line(synth):
    x = acquire(synth, {FaultKind.MOTOR_PHASE_IMBALANCE: 0.9}, n=65536)
    s = spectrum(x, synth.sample_rate)
    assert s.amplitude_at(2 * synth.kinematics.line_hz, tolerance_bins=1) > 0.25


def test_process_faults_do_not_change_vibration(synth):
    clean = acquire(synth)
    leaky = acquire(synth, {FaultKind.REFRIGERANT_LEAK: 1.0})
    assert np.std(clean) == pytest.approx(np.std(leaky), rel=0.1)


def test_blocks_are_phase_continuous(synth):
    """Consecutive blocks continue in time (no restart transient)."""
    r = rng()
    a = synth.synthesize(1024, rng=r)
    b = synth.synthesize(1024, rng=r)
    assert not np.allclose(a, b)
