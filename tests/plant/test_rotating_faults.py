import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MprosError
from repro.plant import (
    FMEA_CANDIDATES,
    BearingGeometry,
    FaultKind,
    MachineKinematics,
    PROCESS_FAULTS,
    SeverityProfile,
    VIBRATION_FAULTS,
    bearing_frequencies,
)
from repro.plant.faults import progressive, seeded


# -- bearing kinematics ------------------------------------------------------

def test_bearing_frequency_ordering():
    f = bearing_frequencies(BearingGeometry(), 60.0)
    assert f.ftf < f.bpfo < f.bpfi
    assert 0 < f.ftf < 60.0


def test_bpfo_plus_bpfi_equals_nz():
    """BPFO + BPFI = n_balls × shaft rate (identity of the formulas)."""
    g = BearingGeometry(n_balls=11)
    f = bearing_frequencies(g, 47.5)
    assert f.bpfo + f.bpfi == pytest.approx(11 * 47.5, rel=1e-12)


def test_bearing_frequencies_scale_with_speed():
    g = BearingGeometry()
    f1 = bearing_frequencies(g, 30.0)
    f2 = bearing_frequencies(g, 60.0)
    assert f2.bpfo == pytest.approx(2 * f1.bpfo)


def test_bearing_geometry_validation():
    with pytest.raises(MprosError):
        BearingGeometry(n_balls=1)
    with pytest.raises(MprosError):
        BearingGeometry(ball_diameter=50.0, pitch_diameter=40.0)
    with pytest.raises(MprosError):
        bearing_frequencies(BearingGeometry(), 0.0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=20),
    ratio=st.floats(min_value=0.05, max_value=0.5),
    shaft=st.floats(min_value=1.0, max_value=200.0),
)
def test_bearing_frequencies_positive(n, ratio, shaft):
    g = BearingGeometry(n_balls=n, ball_diameter=ratio * 40.0, pitch_diameter=40.0)
    f = bearing_frequencies(g, shaft)
    assert f.bpfo > 0 and f.bpfi > 0 and f.bsf > 0 and f.ftf > 0


# -- machine kinematics --------------------------------------------------------

def test_gear_mesh_and_output_shaft():
    k = MachineKinematics(shaft_hz=60.0, gear_teeth=30, gear_ratio=3.0)
    assert k.gear_mesh_hz == 1800.0
    assert k.output_shaft_hz == 180.0


def test_slip_and_pole_pass():
    k = MachineKinematics(shaft_hz=59.3, line_hz=60.0, n_poles=2)
    assert k.slip_hz == pytest.approx(0.7)
    assert k.pole_pass_hz == pytest.approx(1.4)


def test_kinematics_validation():
    with pytest.raises(MprosError):
        MachineKinematics(shaft_hz=0.0)
    with pytest.raises(MprosError):
        MachineKinematics(gear_ratio=0.0)


# -- fault catalog ----------------------------------------------------------------

def test_fmea_selects_twelve_modes():
    """§3.3: the FMEA selected 12 candidate failure modes."""
    assert len(FMEA_CANDIDATES) == 12
    assert len(set(FMEA_CANDIDATES)) == 12


def test_vibration_and_process_faults_partition():
    assert VIBRATION_FAULTS & PROCESS_FAULTS == frozenset()
    assert VIBRATION_FAULTS | PROCESS_FAULTS == frozenset(FaultKind)


def test_condition_ids_match_protocol_style():
    for kind in FaultKind:
        assert kind.condition_id.startswith("mc:")


def test_paper_example_conditions_present():
    """§5.5 names motor imbalance, rotor bar, bearing housing looseness."""
    ids = {k.condition_id for k in FaultKind}
    assert {"mc:motor-imbalance", "mc:motor-rotor-bar",
            "mc:bearing-housing-looseness"} <= ids


# -- severity profiles --------------------------------------------------------------

def test_profile_validation():
    with pytest.raises(MprosError):
        SeverityProfile(10.0, 5.0)
    with pytest.raises(MprosError):
        SeverityProfile(0.0, 1.0, peak=0.0)
    with pytest.raises(MprosError):
        SeverityProfile(0.0, 1.0, shape="quadratic")


def test_step_profile():
    p = SeverityProfile(100.0, 101.0, peak=0.8, shape="step")
    assert p.severity_at(99.0) == 0.0
    assert p.severity_at(100.0) == pytest.approx(0.8)
    assert p.severity_at(500.0) == pytest.approx(0.8)


def test_linear_profile():
    p = SeverityProfile(0.0, 100.0, peak=1.0, shape="linear")
    assert p.severity_at(50.0) == pytest.approx(0.5)
    assert p.severity_at(200.0) == 1.0


def test_exponential_profile_accelerates():
    p = SeverityProfile(0.0, 100.0, shape="exponential")
    early = p.severity_at(25.0)
    late = p.severity_at(75.0) - p.severity_at(50.0)
    assert early < 0.2            # slow start
    assert p.severity_at(100.0) == pytest.approx(1.0)
    assert late > early           # accelerating


def test_profile_vectorized():
    p = SeverityProfile(0.0, 10.0)
    out = p.severity_at(np.array([-1.0, 5.0, 20.0]))
    assert out.shape == (3,)
    assert out[0] == 0.0 and out[2] == 1.0


@settings(max_examples=40, deadline=None)
@given(
    onset=st.floats(min_value=0, max_value=1e5),
    dur=st.floats(min_value=1.0, max_value=1e5),
    peak=st.floats(min_value=0.01, max_value=1.0),
    shape=st.sampled_from(["step", "linear", "exponential"]),
    t=st.floats(min_value=0, max_value=3e5),
)
def test_severity_always_in_bounds_and_monotone(onset, dur, peak, shape, t):
    p = SeverityProfile(onset, onset + dur, peak, shape)
    s = p.severity_at(t)
    assert 0.0 <= s <= peak + 1e-12
    assert p.severity_at(t + dur / 3) >= s - 1e-12


def test_seeded_and_progressive_helpers():
    f = seeded(FaultKind.BEARING_WEAR, onset=50.0, severity=0.7)
    assert f.severity_at(49.0) == 0.0
    assert f.severity_at(51.0) == pytest.approx(0.7)
    g = progressive(FaultKind.GEAR_TOOTH_WEAR, 0.0, 1000.0)
    assert g.severity_at(0.0) == 0.0
    assert g.severity_at(1000.0) == pytest.approx(1.0)
