"""The CODLAG gas-turbine simulator: steady state, fault signatures,
and duck-type compatibility with the chiller interface every DC,
campaign and chaos drill consumes."""

import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.plant import (
    TURBINE_FMEA_CANDIDATES,
    TURBINE_KINEMATICS,
    TURBINE_NOMINALS,
    FaultKind,
    TurbineConfig,
    TurbineSimulator,
)
from repro.plant.faults import seeded


def make_sim(**kwargs):
    return TurbineSimulator(rng=np.random.default_rng(7), **kwargs)


def settle(sim, seconds=600.0, dt=30.0):
    for _ in range(int(seconds / dt)):
        sim.step(dt)


# -- steady state -------------------------------------------------------------

def test_healthy_steady_state_near_nominals():
    sim = make_sim()
    settle(sim)
    s = sim.sample_process()
    for key, nominal in TURBINE_NOMINALS.items():
        assert s[key] == pytest.approx(nominal, rel=0.05), key


def test_kinematics_mesh_under_nyquist():
    # 23-tooth pinion at 90 Hz: the mesh and its first harmonics must
    # sit under the 16384 Hz acquisition Nyquist.
    assert TURBINE_KINEMATICS.gear_mesh_hz == pytest.approx(2070.0)
    assert 3 * TURBINE_KINEMATICS.gear_mesh_hz < 8192.0


def test_load_validation_and_setter():
    with pytest.raises(MprosError):
        TurbineSimulator(load=1.5)
    sim = make_sim()
    with pytest.raises(MprosError):
        sim.set_load(-0.1)
    sim.set_load(0.5)
    assert sim.load == 0.5


def test_step_rejects_nonpositive_dt():
    sim = make_sim()
    with pytest.raises(MprosError):
        sim.step(0.0)


def test_load_moves_torque_and_egt():
    hot = make_sim(load=0.95)
    cool = make_sim(load=0.4)
    settle(hot)
    settle(cool)
    assert hot._state["shaft_torque_knm"] > cool._state["shaft_torque_knm"]
    assert hot._state["egt_c"] > cool._state["egt_c"]


# -- gas-path fault signatures ------------------------------------------------

def faulted_state(kind, severity=0.9):
    sim = make_sim()
    sim.inject(seeded(kind, onset=0.0, severity=severity))
    settle(sim)
    return sim._state


def test_compressor_fouling_signature():
    s = faulted_state(FaultKind.COMPRESSOR_FOULING)
    assert s["compressor_discharge_kpa"] < 0.95 * TURBINE_NOMINALS["compressor_discharge_kpa"]
    assert s["egt_c"] > TURBINE_NOMINALS["egt_c"]
    assert s["fuel_flow_kg_s"] > TURBINE_NOMINALS["fuel_flow_kg_s"]


def test_fuel_metering_drift_signature():
    s = faulted_state(FaultKind.FUEL_METERING_DRIFT)
    assert s["fuel_flow_kg_s"] > 1.1 * TURBINE_NOMINALS["fuel_flow_kg_s"]
    assert s["shaft_torque_knm"] > TURBINE_NOMINALS["shaft_torque_knm"]


def test_blade_erosion_signature():
    s = faulted_state(FaultKind.TURBINE_BLADE_EROSION)
    assert s["egt_c"] > TURBINE_NOMINALS["egt_c"] + 60.0
    assert s["shaft_torque_knm"] < TURBINE_NOMINALS["shaft_torque_knm"]
    assert s["gg_speed_rpm"] > TURBINE_NOMINALS["gg_speed_rpm"]


def test_lube_faults_move_lube_channels():
    s = faulted_state(FaultKind.OIL_PRESSURE_LOW)
    assert s["lube_oil_pressure_kpa"] < 250.0
    s = faulted_state(FaultKind.OIL_CONTAMINATION)
    assert s["lube_oil_temp_c"] > 75.0


def test_bearing_wear_warms_thrust_bearing():
    s = faulted_state(FaultKind.BEARING_WEAR)
    assert s["thrust_brg_temp_c"] > TURBINE_NOMINALS["thrust_brg_temp_c"] + 5.0


# -- fault bookkeeping --------------------------------------------------------

def test_severities_and_clear_faults():
    sim = make_sim()
    sim.inject(seeded(FaultKind.COMPRESSOR_FOULING, onset=100.0, severity=0.6))
    sim.step(50.0)
    assert sim.severities() == {}
    sim.step(100.0)
    assert sim.severities() == {FaultKind.COMPRESSOR_FOULING: 0.6}
    sim.clear_faults()
    assert sim.severities() == {}


def test_turbine_fmea_candidates_are_distinct_faultkinds():
    assert len(set(TURBINE_FMEA_CANDIDATES)) == len(TURBINE_FMEA_CANDIDATES)
    assert FaultKind.COMPRESSOR_FOULING in TURBINE_FMEA_CANDIDATES
    assert FaultKind.MOTOR_IMBALANCE not in TURBINE_FMEA_CANDIDATES


# -- vibration path -----------------------------------------------------------

def test_vibration_block_shape_and_healthy_rms():
    sim = make_sim()
    block = sim.sample_vibration(16384)
    assert block.shape == (16384,)
    rms = float(np.sqrt(np.mean(block**2)))
    assert rms < 1.0  # under the DC alarm threshold when healthy


def test_bearing_wear_raises_vibration_energy():
    healthy = make_sim()
    worn = make_sim()
    worn.inject(seeded(FaultKind.BEARING_WEAR, onset=0.0, severity=1.0))
    worn.step(1.0)
    healthy.step(1.0)
    rms_h = float(np.sqrt(np.mean(healthy.sample_vibration(16384) ** 2)))
    rms_w = float(np.sqrt(np.mean(worn.sample_vibration(16384) ** 2)))
    assert rms_w > rms_h


def test_deterministic_under_fixed_rng():
    a = TurbineSimulator(rng=np.random.default_rng(42))
    b = TurbineSimulator(rng=np.random.default_rng(42))
    a.step(60.0)
    b.step(60.0)
    assert a.sample_process().values == b.sample_process().values
    np.testing.assert_array_equal(a.sample_vibration(4096), b.sample_vibration(4096))


def test_config_duck_type_fields():
    # The DC duck type: .config.kinematics, .vibration.sample_rate.
    sim = make_sim(config=TurbineConfig(name="GT-X"))
    assert sim.config.name == "GT-X"
    assert sim.config.kinematics is TURBINE_KINEMATICS
    assert sim.vibration.sample_rate > 2 * 3 * TURBINE_KINEMATICS.gear_mesh_hz
