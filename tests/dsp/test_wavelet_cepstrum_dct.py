import numpy as np
import pytest
import scipy.fft
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MprosError
from repro.dsp import dct2, dct_features, dwt, dwt_multilevel, idwt, real_cepstrum, wavedec_energies
from repro.dsp.wavelet import _FILTERS, wavelet_map, waverec


def sine(freq, n=1024, fs=4096.0):
    return np.sin(2 * np.pi * freq * np.arange(n) / fs)


# -- DWT filters --------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(_FILTERS))
def test_scaling_filters_orthonormal(name):
    lo = _FILTERS[name]
    assert np.sum(lo**2) == pytest.approx(1.0, abs=1e-10)
    assert np.sum(lo) == pytest.approx(np.sqrt(2), abs=1e-10)


@pytest.mark.parametrize("name", sorted(_FILTERS))
def test_perfect_reconstruction_one_level(name):
    rng = np.random.default_rng(0)
    x = rng.normal(size=128)
    a, d = dwt(x, name)
    assert a.size == d.size == 64
    xr = idwt(a, d, name)
    assert np.allclose(xr, x, atol=1e-10)


@pytest.mark.parametrize("name", sorted(_FILTERS))
def test_perfect_reconstruction_multilevel(name):
    rng = np.random.default_rng(1)
    x = rng.normal(size=256)
    coeffs = dwt_multilevel(x, name, levels=4)
    assert len(coeffs) == 5
    xr = waverec(coeffs, name)
    assert np.allclose(xr, x, atol=1e-9)


def test_dwt_validates():
    with pytest.raises(MprosError):
        dwt(np.zeros(7))          # odd length
    with pytest.raises(MprosError):
        dwt(np.zeros((4, 4)))
    with pytest.raises(MprosError):
        dwt(np.zeros(8), "sym13")
    with pytest.raises(MprosError):
        dwt_multilevel(np.zeros(16), levels=10)


def test_energy_conservation():
    """Orthonormal transform preserves energy (Parseval)."""
    rng = np.random.default_rng(2)
    x = rng.normal(size=256)
    coeffs = dwt_multilevel(x, "db4", levels=3)
    e = sum(float(np.sum(c**2)) for c in coeffs)
    assert e == pytest.approx(float(np.sum(x**2)), rel=1e-10)


def test_wavedec_energies_sum_to_one():
    e = wavedec_energies(sine(100.0, n=512), "db4", levels=4)
    assert e.shape == (5,)
    assert e.sum() == pytest.approx(1.0)


def test_wavedec_energies_zero_signal():
    assert wavedec_energies(np.zeros(64), "haar").sum() == 0.0


def test_low_frequency_energy_lands_in_approximation():
    e = wavedec_energies(sine(10.0, n=1024), "db4", levels=5)
    assert e[0] > 0.9


def test_high_frequency_energy_lands_in_fine_details():
    e = wavedec_energies(sine(1900.0, n=1024), "db4", levels=5)
    assert e[-1] > 0.5


def test_transient_localized_in_wavelet_map():
    x = np.zeros(512)
    x[300] = 1.0  # impulse
    wm = wavelet_map(x, "haar", levels=4)
    assert wm.n_levels == 4
    finest = wm.scales[-1]
    assert np.argmax(finest) == pytest.approx(300, abs=8)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 9999), levels=st.integers(1, 5))
def test_reconstruction_property(seed, levels):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=256)
    assert np.allclose(waverec(dwt_multilevel(x, "db2", levels), "db2"), x, atol=1e-9)


# -- cepstrum ------------------------------------------------------------------

def test_cepstrum_shape_and_truncation():
    x = sine(100.0)
    c = real_cepstrum(x)
    assert c.shape == x.shape
    assert real_cepstrum(x, n_coeffs=20).shape == (20,)


def test_cepstrum_validates():
    with pytest.raises(MprosError):
        real_cepstrum(np.zeros(4))
    with pytest.raises(MprosError):
        real_cepstrum(sine(100.0), n_coeffs=0)


def test_cepstrum_detects_harmonic_family():
    """A harmonic series at f0 creates rahmonic peaks at k/f0."""
    fs, n, f0 = 4096.0, 4096, 123.0
    rng = np.random.default_rng(0)
    t = np.arange(n) / fs
    x = sum(np.sin(2 * np.pi * k * f0 * t) for k in range(1, 9))
    x = np.asarray(x) + rng.normal(0, 0.01, n)
    c = np.abs(real_cepstrum(x))
    quefrency = fs / f0  # ~33.3 samples
    lo, hi = int(quefrency) - 2, int(quefrency) + 3
    background = np.median(c[16:300])
    assert c[lo:hi].max() > 3 * background


def test_cepstrum_finite_for_silent_signal():
    c = real_cepstrum(np.zeros(64))
    assert np.all(np.isfinite(c))


# -- DCT ------------------------------------------------------------------------

def test_dct2_matches_scipy():
    rng = np.random.default_rng(3)
    x = rng.normal(size=129)
    assert np.allclose(dct2(x), scipy.fft.dct(x, type=2, norm="ortho"), atol=1e-10)


def test_dct2_unnormalized_matches_scipy():
    rng = np.random.default_rng(4)
    x = rng.normal(size=64)
    assert np.allclose(dct2(x, norm=None), scipy.fft.dct(x, type=2), atol=1e-9)


def test_dct2_energy_preserved_ortho():
    rng = np.random.default_rng(5)
    x = rng.normal(size=128)
    assert np.sum(dct2(x) ** 2) == pytest.approx(np.sum(x**2), rel=1e-10)


def test_dct2_validates():
    with pytest.raises(MprosError):
        dct2(np.zeros(0))
    with pytest.raises(MprosError):
        dct2(np.zeros((2, 3)))
    with pytest.raises(MprosError):
        dct2(np.zeros(8), norm="bogus")


def test_dct_features_excludes_dc():
    x = np.ones(64) * 5.0  # pure DC
    f = dct_features(x, n_coeffs=8)
    assert f.shape == (8,)
    assert np.allclose(f, 0.0, atol=1e-10)
    with pytest.raises(MprosError):
        dct_features(x, n_coeffs=0)
