import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MprosError
from repro.dsp import (
    averaged_spectrum,
    band_rms,
    crest_factor,
    kurtosis_excess,
    order_amplitudes,
    peak_amplitude,
    rms,
    scalar_features,
    spectrum,
)

FS = 4096.0


def sine(freq, amp=1.0, n=4096, fs=FS, phase=0.0):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t + phase)


# -- spectrum -----------------------------------------------------------

def test_sine_peak_amplitude_recovered():
    s = spectrum(sine(100.0, amp=2.0), FS)
    assert s.amplitude_at(100.0) == pytest.approx(2.0, rel=0.05)


def test_spectrum_frequency_resolution():
    s = spectrum(sine(100.0), FS)
    assert s.resolution == pytest.approx(FS / 4096)


def test_amplitude_at_out_of_range_is_zero():
    s = spectrum(sine(100.0), FS)
    assert s.amplitude_at(-5.0) == 0.0
    assert s.amplitude_at(FS) == 0.0


def test_band_amplitude_catches_tone():
    s = spectrum(sine(100.0, amp=1.0), FS)
    assert s.band_amplitude(90.0, 110.0) > 0.8
    assert s.band_amplitude(400.0, 500.0) < 0.05


def test_two_tones_resolved():
    x = sine(100.0, 1.0) + sine(300.0, 0.5)
    s = spectrum(x, FS)
    assert s.amplitude_at(100.0) == pytest.approx(1.0, rel=0.1)
    assert s.amplitude_at(300.0) == pytest.approx(0.5, rel=0.1)


def test_spectrum_validates_input():
    with pytest.raises(MprosError):
        spectrum(np.zeros(4), FS)
    with pytest.raises(MprosError):
        spectrum(sine(10), -1.0)
    with pytest.raises(MprosError):
        spectrum(sine(10), FS, window="flat-top")


def test_averaged_spectrum_reduces_noise_floor_variance():
    rng = np.random.default_rng(0)
    x = sine(100.0) + rng.normal(0, 1.0, 4096)
    single = spectrum(x, FS)
    avg = averaged_spectrum(x, FS, n_averages=8)
    # Away from the tone, averaged bins vary less.
    noise_single = single.amps[(single.freqs > 500) & (single.freqs < 1500)]
    noise_avg = avg.amps[(avg.freqs > 500) & (avg.freqs < 1500)]
    assert np.std(noise_avg) < np.std(noise_single)


def test_averaged_spectrum_validates():
    with pytest.raises(MprosError):
        averaged_spectrum(sine(10), FS, overlap=1.5)
    with pytest.raises(MprosError):
        averaged_spectrum(sine(10), FS, n_averages=0)


def test_order_amplitudes_shape_and_peaks():
    shaft = 60.0
    x = sine(shaft, 1.0) + sine(2 * shaft, 0.4)
    s = spectrum(x, FS)
    orders = order_amplitudes(s, shaft, max_order=5)
    assert orders.shape == (5,)
    assert orders[0] == pytest.approx(1.0, rel=0.1)
    assert orders[1] == pytest.approx(0.4, rel=0.15)
    assert orders[3] < 0.05


def test_order_amplitudes_validates():
    s = spectrum(sine(100.0), FS)
    with pytest.raises(MprosError):
        order_amplitudes(s, 0.0)


# -- scalar features ---------------------------------------------------------

def test_rms_of_sine():
    assert rms(sine(100.0, amp=2.0)) == pytest.approx(2.0 / np.sqrt(2), rel=1e-3)


def test_peak_amplitude():
    assert peak_amplitude(sine(100.0, amp=3.0)) == pytest.approx(3.0, rel=1e-3)


def test_crest_factor_of_sine():
    assert crest_factor(sine(100.0)) == pytest.approx(np.sqrt(2), rel=1e-2)


def test_crest_factor_zero_signal():
    assert crest_factor(np.zeros(100)) == 0.0


def test_kurtosis_gaussian_near_zero():
    rng = np.random.default_rng(1)
    assert abs(kurtosis_excess(rng.normal(0, 1, 200_000))) < 0.1


def test_kurtosis_impulsive_positive():
    rng = np.random.default_rng(2)
    x = rng.normal(0, 0.1, 10_000)
    x[::500] += 5.0
    assert kurtosis_excess(x) > 3.0


def test_kurtosis_constant_signal_zero():
    assert kurtosis_excess(np.ones(64)) == 0.0


def test_features_batch_axis():
    x = np.vstack([sine(100.0), 2 * sine(100.0)])
    r = rms(x, axis=-1)
    assert r.shape == (2,)
    assert r[1] == pytest.approx(2 * r[0])


def test_band_rms_parseval():
    """Band RMS over the whole band equals time-domain RMS."""
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1, 4096)
    assert band_rms(x, FS, 0.0, FS) == pytest.approx(rms(x), rel=1e-9)


def test_band_rms_isolates_tone():
    x = sine(100.0, 1.0) + sine(1000.0, 1.0)
    in_band = band_rms(x, FS, 50.0, 150.0)
    assert in_band == pytest.approx(1.0 / np.sqrt(2), rel=0.05)


def test_band_rms_validates():
    with pytest.raises(MprosError):
        band_rms(np.zeros((2, 4)), FS, 0, 10)
    with pytest.raises(MprosError):
        band_rms(np.zeros(16), FS, 10, 5)


def test_scalar_features_keys():
    f = scalar_features(sine(50.0))
    assert set(f) == {"peak", "rms", "std", "crest", "kurtosis", "mean"}


@settings(max_examples=30, deadline=None)
@given(amp=st.floats(min_value=0.01, max_value=100.0),
       freq=st.floats(min_value=20.0, max_value=1500.0))
def test_spectrum_peak_scales_linearly(amp, freq):
    # Worst-case Hann scalloping loss (tone between bins) is ~15 %.
    s = spectrum(sine(freq, amp=amp), FS)
    assert s.amplitude_at(freq) == pytest.approx(amp, rel=0.2)


def test_total_amplitude_excludes_dc():
    x = sine(100.0, amp=1.0) + 5.0  # large DC offset
    s = spectrum(x, FS)
    total = s.total_amplitude()
    # Dominated by the tone (Hann mainlobe RSS = sqrt(1.5) of peak),
    # not by the 5x larger DC offset.
    assert total == pytest.approx(np.sqrt(1.5), rel=0.05)
