import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.dsp import envelope, envelope_spectrum

FS = 16384.0


def bearing_like_signal(defect_hz=97.0, resonance_hz=3200.0, n=16384, fs=FS):
    """Bursts at the defect rate exciting a structural resonance."""
    t = np.arange(n) / fs
    carrier = np.sin(2 * np.pi * resonance_hz * t)
    period = int(fs / defect_hz)
    mod = np.zeros(n)
    for start in range(0, n, period):
        length = min(64, n - start)
        mod[start : start + length] = np.exp(-np.arange(length) / 12.0)
    return carrier * mod


def test_envelope_of_am_signal():
    """Envelope of A(t)·sin(wt) recovers |A(t)|."""
    t = np.arange(8192) / FS
    a = 1.0 + 0.5 * np.sin(2 * np.pi * 50.0 * t)
    x = a * np.sin(2 * np.pi * 3000.0 * t)
    env = envelope(x, FS)
    core = slice(200, -200)  # ignore edge effects
    assert np.allclose(env[core], a[core], atol=0.07)


def test_envelope_validates():
    with pytest.raises(MprosError):
        envelope(np.zeros(4), FS)
    with pytest.raises(MprosError):
        envelope(np.zeros(64), FS, band=(100.0, 50.0))


def test_envelope_spectrum_reveals_defect_rate():
    """The defect repetition rate appears in the envelope spectrum even
    though the raw spectrum only shows the resonance."""
    defect = 97.0
    x = bearing_like_signal(defect_hz=defect)
    es = envelope_spectrum(x, FS, band=(2000.0, 4500.0))
    peak_region = es.amplitude_at(defect, tolerance_bins=3)
    # Compare with an arbitrary quiet frequency.
    assert peak_region > 3 * es.amplitude_at(defect * 1.5, tolerance_bins=3)


def test_envelope_bandpass_isolates():
    """Band-passing around the resonance suppresses an interfering
    low-frequency tone."""
    x = bearing_like_signal() + 5.0 * np.sin(2 * np.pi * 60.0 * np.arange(16384) / FS)
    env_full = envelope(x, FS)
    env_band = envelope(x, FS, band=(2000.0, 4500.0))
    assert env_band.max() < env_full.max()
