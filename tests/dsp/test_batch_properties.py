"""Property tests for the batched DSP layer.

Three claims the bench harness depends on are made formal here:

* the plan-backed FFT agrees with a literal O(n^2) DFT to 1e-9;
* the transform conserves energy (Parseval), so no amplitude is
  silently lost by the windowing/correction bookkeeping;
* every ``batch_*`` function agrees with its scalar counterpart
  row-for-row — batching is a pure layout change, never a numerical
  one.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    averaged_spectrum,
    batch_averaged_spectrum,
    batch_cepstrum,
    batch_envelope_spectrum,
    batch_scalar_features,
    batch_spectrum,
    envelope_spectrum,
    real_cepstrum,
    scalar_features,
    spectrum,
)
from repro.dsp.plan import fast_fft_len, get_plan

FS = 4096.0

#: Finite, moderately sized sample values — the properties are about
#: numerics, not about dynamic-range extremes.
finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


def signals(min_rows=1, max_rows=4, n=64):
    return st.lists(
        st.lists(finite, min_size=n, max_size=n),
        min_size=min_rows,
        max_size=max_rows,
    ).map(lambda rows: np.array(rows, dtype=np.float64))


def naive_dft(x: np.ndarray) -> np.ndarray:
    """Literal textbook DFT, O(n^2) — the ground truth."""
    n = x.size
    k = np.arange(n // 2 + 1)
    basis = np.exp(-2j * np.pi * np.outer(k, np.arange(n)) / n)
    return basis @ x


@given(signals(max_rows=3, n=64))
@settings(max_examples=40, deadline=None)
def test_plan_fft_matches_naive_dft(x):
    """The rfft under every plan is the textbook DFT to 1e-9."""
    plan = get_plan(64, "rect", FS)
    amps = plan.amplitudes(x)
    for row, out in zip(x, amps):
        ref = np.abs(naive_dft(row)) / 64
        ref[1:] *= 2.0  # single-sided fold (repo convention: DC only unhalved)
        scale = max(1.0, float(np.max(np.abs(row))))
        np.testing.assert_allclose(out, ref, atol=1e-9 * scale)


@given(st.lists(finite, min_size=64, max_size=64))
@settings(max_examples=40, deadline=None)
def test_parseval_energy_conserved(vals):
    """sum |x|^2 == (1/n) sum |X|^2 for the underlying transform."""
    x = np.array(vals, dtype=np.float64)
    spec = np.fft.rfft(x)
    # Undo the single-sided fold: interior bins appear twice in the
    # full spectrum.
    power = np.abs(spec[0]) ** 2 + np.abs(spec[-1]) ** 2
    power += 2.0 * np.sum(np.abs(spec[1:-1]) ** 2)
    time_energy = float(np.sum(x * x))
    np.testing.assert_allclose(power / 64, time_energy, rtol=1e-9, atol=1e-6)


@given(signals(n=128))
@settings(max_examples=25, deadline=None)
def test_batch_spectrum_matches_scalar_rows(x):
    batch = batch_spectrum(x, FS)
    for i, row in enumerate(x):
        ref = spectrum(row, FS)
        np.testing.assert_array_equal(batch.freqs, ref.freqs)
        np.testing.assert_allclose(batch.amps[i], ref.amps, rtol=0, atol=1e-12)


@given(signals(n=256))
@settings(max_examples=25, deadline=None)
def test_batch_averaged_spectrum_matches_scalar_rows(x):
    batch = batch_averaged_spectrum(x, FS, n_averages=4)
    for i, row in enumerate(x):
        ref = averaged_spectrum(row, FS, n_averages=4)
        np.testing.assert_array_equal(batch.freqs, ref.freqs)
        np.testing.assert_allclose(batch.amps[i], ref.amps, rtol=0, atol=1e-12)


@given(signals(n=256))
@settings(max_examples=25, deadline=None)
def test_batch_envelope_spectrum_matches_scalar_rows(x):
    for band in (None, (200.0, 1200.0)):
        batch = batch_envelope_spectrum(x, FS, band=band)
        for i, row in enumerate(x):
            ref = envelope_spectrum(row, FS, band=band)
            np.testing.assert_array_equal(batch.freqs, ref.freqs)
            np.testing.assert_allclose(
                batch.amps[i], ref.amps, rtol=0, atol=1e-12
            )


@given(signals(n=128))
@settings(max_examples=25, deadline=None)
def test_batch_cepstrum_matches_scalar_rows(x):
    batch = batch_cepstrum(x)
    for i, row in enumerate(x):
        np.testing.assert_allclose(
            batch[i], real_cepstrum(row), rtol=0, atol=1e-10
        )


@given(signals(n=64))
@settings(max_examples=25, deadline=None)
def test_batch_scalar_features_match_scalar_rows(x):
    batch = batch_scalar_features(x)
    for i, row in enumerate(x):
        ref = scalar_features(row)
        for key, vals in batch.items():
            np.testing.assert_allclose(
                vals[i], ref[key], rtol=1e-9, atol=1e-9,
                err_msg=f"feature {key} row {i}",
            )


def test_fast_fft_len_is_13_smooth_and_monotone():
    for n in (8, 64, 100, 1000, 13107, 32768):
        m = fast_fft_len(n)
        assert 8 <= m <= max(n, 8)
        k = m
        for p in (2, 3, 5, 7, 11, 13):
            while k % p == 0:
                k //= p
        assert k == 1, f"fast_fft_len({n}) = {m} is not 13-smooth"
    assert fast_fft_len(13107) == 13104
