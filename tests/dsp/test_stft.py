import numpy as np
import pytest

from repro.common.errors import MprosError
from repro.dsp.stft import Spectrogram, stft, transient_events

FS = 8192.0


def test_validation():
    with pytest.raises(MprosError):
        stft(np.zeros((2, 8)), FS)
    with pytest.raises(MprosError):
        stft(np.zeros(64), FS, frame=8)
    with pytest.raises(MprosError):
        stft(np.zeros(64), FS, frame=128)
    with pytest.raises(MprosError):
        stft(np.zeros(64), FS, overlap=1.0)
    with pytest.raises(MprosError):
        stft(np.zeros(64), -1.0, frame=32)


def test_stationary_tone_amplitude_calibrated():
    t = np.arange(4096) / FS
    x = 2.0 * np.sin(2 * np.pi * 512.0 * t)
    sg = stft(x, FS, frame=256)
    bin_idx = int(np.argmin(np.abs(sg.freqs - 512.0)))
    assert np.allclose(sg.amps[:, bin_idx], 2.0, rtol=0.05)


def test_shapes_and_times():
    sg = stft(np.zeros(1024), FS, frame=256, overlap=0.5)
    assert sg.freqs.shape == (129,)
    assert sg.amps.shape == (sg.n_frames, 129)
    assert sg.times[0] == pytest.approx(128 / FS)
    assert np.all(np.diff(sg.times) > 0)


def test_chirp_moves_through_bins():
    """A swept tone's peak frequency rises over time."""
    n = 8192
    t = np.arange(n) / FS
    f0, f1 = 200.0, 3000.0
    phase = 2 * np.pi * (f0 * t + (f1 - f0) * t**2 / (2 * t[-1]))
    sg = stft(np.sin(phase), FS, frame=256, overlap=0.75)
    peak_freqs = sg.freqs[np.argmax(sg.amps, axis=1)]
    early = peak_freqs[: sg.n_frames // 4].mean()
    late = peak_freqs[-sg.n_frames // 4 :].mean()
    assert late > 3 * early


def test_peak_frame_localizes_burst():
    rng = np.random.default_rng(0)
    x = rng.normal(0, 0.01, 8192)
    t0 = 5000
    x[t0 : t0 + 64] += np.sin(2 * np.pi * 2000.0 * np.arange(64) / FS)
    sg = stft(x, FS, frame=256, overlap=0.75)
    t_peak, f_peak = sg.peak_frame()
    assert t_peak == pytest.approx(t0 / FS, abs=0.02)
    assert f_peak == pytest.approx(2000.0, abs=100.0)


def test_band_profile_shape():
    sg = stft(np.zeros(1024), FS, frame=256)
    profile = sg.band_profile(100.0, 1000.0)
    assert profile.shape == (sg.n_frames,)


def test_transient_events_detected_and_merged():
    rng = np.random.default_rng(1)
    x = rng.normal(0, 0.01, 16384)
    for t0 in (3000, 9000, 14000):
        x[t0 : t0 + 96] += 0.8 * np.sin(2 * np.pi * 2500.0 * np.arange(96) / FS)
    sg = stft(x, FS, frame=256, overlap=0.75)
    events = transient_events(sg, band=(2000.0, 3000.0))
    assert len(events) == 3
    times = [e[0] for e in events]
    for expected, got in zip((3000, 9000, 14000), times):
        assert got == pytest.approx(expected / FS, abs=0.03)


def test_no_events_in_stationary_noise():
    rng = np.random.default_rng(2)
    sg = stft(rng.normal(0, 1.0, 8192), FS, frame=256)
    assert transient_events(sg, band=(1000.0, 3000.0), threshold_sigma=6.0) == []
