import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FusionError
from repro.common.units import days
from repro.fusion.bayes import (
    BayesDiagnosticFusion,
    BayesNet,
    LearnedSourceModel,
    learn_source_model,
)
from repro.fusion.survival import (
    KaplanMeier,
    LifeRecord,
    WeibullFit,
    fit_weibull,
    kaplan_meier,
    survival_refined_prognostic,
)
from repro.protocol import FailurePredictionReport, PrognosticVector


def report(obj="obj:m", cond="mc:bearing-wear", ks="ks:dli"):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=0.5,
        belief=0.7,
        timestamp=1.0,
    )


# -- BayesNet core ----------------------------------------------------------------

def test_net_validation():
    net = BayesNet()
    net.add("a", prior=0.5)
    with pytest.raises(FusionError):
        net.add("a", prior=0.5)                    # duplicate
    with pytest.raises(FusionError):
        net.add("b", ("ghost",), {(True,): 0.5, (False,): 0.5})
    with pytest.raises(FusionError):
        net.add("b", ("a",), {(True,): 0.5})       # incomplete CPT
    with pytest.raises(FusionError):
        net.add("b", ("a",), {(True,): 1.5, (False,): 0.5})
    with pytest.raises(FusionError):
        net.add("c", ("a",))                       # missing CPT
    with pytest.raises(FusionError):
        net.add("d")                               # missing prior
    with pytest.raises(FusionError):
        net.posterior("ghost", {})
    with pytest.raises(FusionError):
        net.posterior("a", {"ghost": True})


def test_prior_recovered_without_evidence():
    net = BayesNet()
    net.add("f", prior=0.3)
    assert net.posterior("f", {}) == pytest.approx(0.3)


def test_textbook_rain_sprinkler():
    """Classic explaining-away structure, hand-checked numbers."""
    net = BayesNet()
    net.add("rain", prior=0.2)
    net.add("sprinkler", prior=0.1)
    net.add(
        "wet", ("rain", "sprinkler"),
        {(True, True): 0.99, (True, False): 0.9,
         (False, True): 0.8, (False, False): 0.01},
    )
    p_rain_given_wet = net.posterior("rain", {"wet": True})
    assert p_rain_given_wet > 0.2  # evidence raises rain
    # Explaining away: learning the sprinkler ran lowers rain belief.
    p_rain_both = net.posterior("rain", {"wet": True, "sprinkler": True})
    assert p_rain_both < p_rain_given_wet


def test_bayes_chain_inference():
    net = BayesNet()
    net.add("root", prior=0.5)
    net.add("mid", ("root",), {(True,): 0.9, (False,): 0.1})
    net.add("leaf", ("mid",), {(True,): 0.9, (False,): 0.1})
    p = net.posterior("root", {"leaf": True})
    # By hand: P(leaf|root)=0.9*0.9+0.1*0.1=0.82; P(leaf|¬root)=0.18.
    assert p == pytest.approx(0.82 / (0.82 + 0.18))


def test_zero_probability_evidence_raises():
    net = BayesNet()
    net.add("a", prior=1.0)
    net.add("b", ("a",), {(True,): 1.0, (False,): 0.0})
    with pytest.raises(FusionError):
        net.posterior("a", {"b": False})


@settings(max_examples=40, deadline=None)
@given(
    prior=st.floats(min_value=0.01, max_value=0.99),
    tpr=st.floats(min_value=0.5, max_value=0.99),
    fpr=st.floats(min_value=0.01, max_value=0.4),
)
def test_two_node_posterior_matches_bayes_rule(prior, tpr, fpr):
    net = BayesNet()
    net.add("f", prior=prior)
    net.add("r", ("f",), {(True,): tpr, (False,): fpr})
    expected = prior * tpr / (prior * tpr + (1 - prior) * fpr)
    assert net.posterior("f", {"r": True}) == pytest.approx(expected, rel=1e-9)


# -- learned diagnostic fusion -----------------------------------------------------

class FakeRecord:
    def __init__(self, truth, reports):
        self.truth = truth
        self.reports = reports


def test_learn_source_model_rates():
    # 10 faulty runs: ks:good reports 9 times, ks:bad reports 2 times.
    records = []
    for i in range(10):
        reports = []
        if i < 9:
            reports.append(report(ks="ks:good"))
        if i < 2:
            reports.append(report(ks="ks:bad"))
        records.append(FakeRecord({"mc:bearing-wear"}, reports))
    # 10 healthy runs: ks:bad false-alarms 4 times.
    for i in range(10):
        reports = [report(ks="ks:bad")] if i < 4 else []
        records.append(FakeRecord(set(), reports))
    model = learn_source_model(records)
    tpr_good, fpr_good = model.rates("ks:good", "mc:bearing-wear")
    tpr_bad, fpr_bad = model.rates("ks:bad", "mc:bearing-wear")
    assert tpr_good > 0.75
    assert tpr_bad < 0.35
    assert fpr_bad > fpr_good
    assert model.priors["mc:bearing-wear"] == pytest.approx(0.5)


def test_bayes_fusion_reinforcement_and_silence():
    model = LearnedSourceModel(
        tpr={("ks:a", "mc:x"): 0.8, ("ks:b", "mc:x"): 0.8},
        fpr={("ks:a", "mc:x"): 0.05, ("ks:b", "mc:x"): 0.05},
        priors={"mc:x": 0.1},
    )
    fusion = BayesDiagnosticFusion(model, sources=("ks:a", "ks:b"))
    fusion.ingest(report(cond="mc:x", ks="ks:a"))
    one = fusion.posterior("obj:m", "mc:x")
    fusion.ingest(report(cond="mc:x", ks="ks:b"))
    both = fusion.posterior("obj:m", "mc:x")
    assert both > one > model.priors["mc:x"]
    # Silence from a capable source on another machine keeps it low.
    assert fusion.posterior("obj:other", "mc:x") < model.priors["mc:x"]


def test_bayes_fusion_discounts_flaky_source():
    model = LearnedSourceModel(
        tpr={("ks:solid", "mc:x"): 0.9, ("ks:flaky", "mc:x"): 0.6},
        fpr={("ks:solid", "mc:x"): 0.02, ("ks:flaky", "mc:x"): 0.4},
        priors={"mc:x": 0.1},
    )
    solid = BayesDiagnosticFusion(model, sources=("ks:solid",))
    flaky = BayesDiagnosticFusion(model, sources=("ks:flaky",))
    solid.ingest(report(cond="mc:x", ks="ks:solid"))
    flaky.ingest(report(cond="mc:x", ks="ks:flaky"))
    assert solid.posterior("obj:m", "mc:x") > flaky.posterior("obj:m", "mc:x")


def test_bayes_fusion_suspects_surface():
    model = LearnedSourceModel(priors={"mc:x": 0.2})
    fusion = BayesDiagnosticFusion(model, sources=("ks:a",))
    fusion.ingest(report(cond="mc:x", ks="ks:a"))
    suspects = fusion.suspects(threshold=0.5)
    assert suspects and suspects[0][1] == "mc:x"
    with pytest.raises(FusionError):
        BayesDiagnosticFusion(model, sources=())


# -- Kaplan-Meier -------------------------------------------------------------------

def test_km_simple_steps():
    km = kaplan_meier([LifeRecord(10.0), LifeRecord(20.0), LifeRecord(30.0)])
    assert km.at(5.0) == 1.0
    assert km.at(15.0) == pytest.approx(2 / 3)
    assert km.at(25.0) == pytest.approx(1 / 3)
    assert km.at(35.0) == pytest.approx(0.0)


def test_km_censoring_reduces_risk_set():
    km = kaplan_meier(
        [LifeRecord(10.0), LifeRecord(15.0, failed=False), LifeRecord(20.0)]
    )
    # After the censor at 15, only 1 unit is at risk at t=20.
    assert km.at(12.0) == pytest.approx(2 / 3)
    assert km.at(25.0) == pytest.approx(0.0)


def test_km_all_censored():
    km = kaplan_meier([LifeRecord(10.0, failed=False)])
    assert km.at(100.0) == 1.0


def test_km_validation():
    with pytest.raises(FusionError):
        kaplan_meier([])
    with pytest.raises(FusionError):
        LifeRecord(0.0)


# -- Weibull --------------------------------------------------------------------------

def test_weibull_fit_recovers_parameters():
    rng = np.random.default_rng(0)
    beta_true, eta_true = 2.5, days(200)
    samples = eta_true * rng.weibull(beta_true, 400)
    fit = fit_weibull([LifeRecord(float(t)) for t in samples])
    assert fit.beta == pytest.approx(beta_true, rel=0.15)
    assert fit.eta == pytest.approx(eta_true, rel=0.1)


def test_weibull_quantiles_monotone():
    fit = WeibullFit(beta=2.0, eta=100.0)
    assert fit.quantile(0.1) < fit.quantile(0.5) < fit.quantile(0.9)
    assert fit.failure_probability(fit.eta) == pytest.approx(1 - np.exp(-1))
    with pytest.raises(FusionError):
        fit.quantile(1.5)


def test_weibull_fit_needs_failures():
    with pytest.raises(FusionError):
        fit_weibull([LifeRecord(10.0, failed=False)] * 5)


# -- survival-refined prognostics ------------------------------------------------------

def test_refinement_is_conservative_max():
    """History can only pull failure earlier (§5.4 conservatism)."""
    live = PrognosticVector.from_pairs([(days(30), 0.1), (days(60), 0.3)])
    fit = WeibullFit(beta=3.0, eta=days(50))
    refined = survival_refined_prognostic(live, fit, age=days(40))
    for t in (days(30), days(60)):
        assert refined.probability_at(t) >= live.probability_at(t) - 1e-9
    # An old unit on a steep wear-out curve: history dominates.
    assert refined.probability_at(days(30)) > 0.5


def test_refinement_with_empty_live_vector():
    fit = WeibullFit(beta=2.0, eta=days(100))
    refined = survival_refined_prognostic(PrognosticVector.empty(), fit, age=0.0)
    assert len(refined) == 3
    assert refined.probability_at(fit.quantile(0.9)) >= 0.85


def test_refinement_young_unit_keeps_live_curve():
    """A young unit on a long-life fleet curve: the live evidence
    dominates the blend."""
    live = PrognosticVector.from_pairs([(days(10), 0.6)])
    fit = WeibullFit(beta=2.0, eta=days(1000))
    refined = survival_refined_prognostic(live, fit, age=days(1))
    assert refined.probability_at(days(10)) == pytest.approx(0.6, abs=0.01)


def test_refinement_validation():
    fit = WeibullFit(beta=2.0, eta=100.0)
    with pytest.raises(FusionError):
        survival_refined_prognostic(PrognosticVector.empty(), fit, age=-1.0)
