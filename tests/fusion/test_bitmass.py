"""Unit tests for the bitmask D-S hot path (BitMass, combine_incremental).

The frozenset :class:`MassFunction` stays the readable reference; these
tests pin the bitmask implementation's own contract — deterministic bit
layout, converter round-trips, conflict bookkeeping, and the memoized
combination cache.
"""

import pytest

from repro.common.errors import FusionError
from repro.fusion.dempster_shafer import (
    BitMass,
    MassFunction,
    bit_frame,
    combine,
    combine_incremental,
    combine_incremental_many,
)

FRAME = frozenset({"a", "b", "c"})


def test_bit_frame_is_cached_and_deterministic():
    f1 = bit_frame(FRAME)
    f2 = bit_frame(frozenset({"c", "b", "a"}))
    assert f1 is f2                       # one frame object per frozenset
    assert f1.hypotheses == ("a", "b", "c")  # sorted layout
    assert f1.full == 0b111
    assert f1.mask(["a", "c"]) == f1.bit("a") | f1.bit("c")
    assert f1.unmask(f1.mask(["a", "c"])) == frozenset({"a", "c"})


def test_mask_rejects_empty_and_unknown():
    frame = bit_frame(FRAME)
    with pytest.raises(FusionError):
        frame.mask([])
    with pytest.raises(FusionError):
        frame.bit("zebra")


def test_simple_support_extremes():
    frame = bit_frame(FRAME)
    vacuous = BitMass.simple_support(frame, "a", 0.0)
    assert vacuous.unknown() == pytest.approx(1.0)
    certain = BitMass.simple_support(frame, "a", 1.0)
    assert certain.belief("a") == pytest.approx(1.0)
    with pytest.raises(FusionError):
        BitMass.simple_support(frame, "a", 1.5)


def test_mass_function_round_trip():
    mf = MassFunction(FRAME, {"a": 0.5, "b": 0.2})
    bm = BitMass.from_mass_function(mf)
    back = bm.to_mass_function()
    assert back == mf
    for h in FRAME:
        assert bm.belief(h) == pytest.approx(mf.belief(h))
        assert bm.plausibility(h) == pytest.approx(mf.plausibility(h))


def test_combine_incremental_matches_oracle_and_tracks_conflict():
    frame = bit_frame(FRAME)
    e1 = BitMass.simple_support(frame, "a", 0.6)
    e2 = BitMass.simple_support(frame, "b", 0.5)
    fused = combine_incremental(e1, e2)
    oracle = combine(e1.to_mass_function(), e2.to_mass_function())
    for h in FRAME:
        assert fused.belief(h) == pytest.approx(oracle.belief(h), abs=1e-12)
    # Disjoint singletons: K = 0.6 * 0.5.
    assert fused.conflict_k == pytest.approx(0.3)


def test_combine_incremental_none_prior_is_identity():
    frame = bit_frame(FRAME)
    e = BitMass.simple_support(frame, "a", 0.4)
    assert combine_incremental(None, e) is e


def test_combine_incremental_total_conflict_raises():
    frame = bit_frame(FRAME)
    e1 = BitMass.simple_support(frame, "a", 1.0)
    e2 = BitMass.simple_support(frame, "b", 1.0)
    with pytest.raises(FusionError):
        combine_incremental(e1, e2)


def test_combine_incremental_rejects_frame_mismatch():
    e1 = BitMass.simple_support(bit_frame(FRAME), "a", 0.5)
    e2 = BitMass.simple_support(bit_frame(frozenset({"x", "y"})), "x", 0.5)
    with pytest.raises(FusionError):
        combine_incremental(e1, e2)


def test_combine_incremental_memoization_returns_equal_results():
    frame = bit_frame(FRAME)
    e1 = BitMass.simple_support(frame, "a", 0.37)
    e2 = BitMass.simple_support(frame, "b", 0.41)
    first = combine_incremental(e1, e2)
    again = combine_incremental(
        BitMass.simple_support(frame, "a", 0.37),
        BitMass.simple_support(frame, "b", 0.41),
    )
    assert again.masses == first.masses  # cache hit or not: same answer


def test_combine_incremental_many_folds_in_order():
    frame = bit_frame(FRAME)
    parts = [
        BitMass.simple_support(frame, c, b)
        for c, b in [("a", 0.3), ("b", 0.4), ("a", 0.2)]
    ]
    folded = combine_incremental_many(parts)
    step = None
    for p in parts:
        step = combine_incremental(step, p)
    assert folded.masses == pytest.approx(step.masses)
