import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FusionError
from repro.common.units import months
from repro.fusion import PrognosticFusion, conservative_envelope, noisy_or_envelope
from repro.protocol import FailurePredictionReport, PrognosticVector

PAPER_A = PrognosticVector.from_pairs(
    [(months(3), 0.01), (months(4), 0.5), (months(5), 0.99)]
)


def prog_report(pairs, t=0.0, obj="obj:comp", cond="mc:bearing-wear", ks="ks:dli"):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=0.5,
        belief=0.0,
        timestamp=t,
        prognostic=PrognosticVector.from_pairs(pairs),
    )


# -- the paper's §5.4 examples -------------------------------------------

def test_paper_example_mild_report_ignored():
    """((4.5mo, .12)) against the 3/4/5-month curve: 'we will ignore
    the second report, and stick with the first which is more
    conservative'."""
    b = PrognosticVector.from_pairs([(months(4.5), 0.12)])
    fused = conservative_envelope([PAPER_A, b])
    # At every horizon the fused curve equals A's curve.
    ts = np.linspace(0, months(6), 200)
    assert np.allclose(fused.probability_at(ts), PAPER_A.probability_at(ts), atol=1e-9)


def test_paper_example_pessimistic_report_dominates():
    """((4.5mo, .95)) 'would dominate, and the extrapolation of the
    curve beyond this point would indicate an even earlier demise'."""
    b = PrognosticVector.from_pairs([(months(4.5), 0.95)])
    fused = conservative_envelope([PAPER_A, b])
    # At 4.5 months the fused value is b's 0.95, not A's 0.745.
    assert fused.probability_at(months(4.5)) == pytest.approx(0.95)
    # Certain failure is now predicted earlier than A alone predicted.
    assert fused.time_to_probability(0.99) < PAPER_A.time_to_probability(0.99)
    # ... but still "some time after" A's 5-month knot region; i.e.
    # the fused curve stays a valid monotone curve.
    assert fused.time_to_probability(0.99) > months(4.5)


def test_envelope_level_shift_semantics():
    """A dominating single-point report rides the prevailing trend."""
    a = PrognosticVector.from_pairs([(10.0, 0.2), (20.0, 0.6)])
    b = PrognosticVector.from_pairs([(15.0, 0.5)])
    fused = conservative_envelope([a, b])
    assert fused.probability_at(10.0) == pytest.approx(0.2)
    # At b's knot the fused value is b's (0.5 > a's interpolated 0.4).
    assert fused.probability_at(15.0) == pytest.approx(0.5)
    # Beyond, b's level shift follows a's slope: 0.5 + (0.6 - 0.4).
    assert fused.probability_at(20.0) == pytest.approx(0.7)
    # Between knots the paper interpolates "a smooth curve from point
    # to point": the fused curve smooths toward b's dominating knot and
    # never under-calls a.
    assert fused.probability_at(12.5) == pytest.approx(0.35)
    assert fused.probability_at(12.5) >= float(a.probability_at(12.5))


def test_envelope_empty_inputs():
    assert len(conservative_envelope([])) == 0
    assert len(conservative_envelope([PrognosticVector.empty()])) == 0


def test_envelope_single_input_identity():
    assert conservative_envelope([PAPER_A]) == PAPER_A


def test_envelope_truncates_after_certainty():
    a = PrognosticVector.from_pairs([(1.0, 1.0)])
    b = PrognosticVector.from_pairs([(2.0, 0.5), (3.0, 0.9)])
    fused = conservative_envelope([a, b])
    assert float(fused.times[-1]) == 1.0
    assert fused.probability_at(5.0) == 1.0


# -- noisy-or ablation ------------------------------------------------------

def test_noisy_or_at_least_as_pessimistic():
    a = PrognosticVector.from_pairs([(10.0, 0.3)])
    b = PrognosticVector.from_pairs([(10.0, 0.4)])
    cons = conservative_envelope([a, b])
    nor = noisy_or_envelope([a, b])
    assert nor.probability_at(10.0) == pytest.approx(1 - 0.7 * 0.6)
    assert nor.probability_at(10.0) > cons.probability_at(10.0)


def test_noisy_or_empty():
    assert len(noisy_or_envelope([])) == 0


# -- PrognosticFusion stateful behaviour -------------------------------------

def test_fusion_tracks_per_condition():
    pf = PrognosticFusion()
    pf.ingest(prog_report([(100.0, 0.5)], cond="mc:a"))
    pf.ingest(prog_report([(200.0, 0.5)], cond="mc:b"))
    assert set(pf.conditions_for_object("obj:comp")) == {"mc:a", "mc:b"}


def test_fusion_rejects_empty_vector():
    pf = PrognosticFusion()
    with pytest.raises(FusionError):
        pf.ingest(prog_report([]))


def test_fusion_rebases_stale_reports():
    """A report issued earlier is age-shifted before combination."""
    pf = PrognosticFusion()
    pf.ingest(prog_report([(100.0, 0.8)], t=0.0))
    state = pf.state("obj:comp", "mc:bearing-wear", now=40.0)
    # The 100 s horizon is now only 60 s away.
    assert state.vector.probability_at(60.0) == pytest.approx(0.8)


def test_fusion_future_stamped_report_treated_as_now():
    pf = PrognosticFusion()
    pf.ingest(prog_report([(100.0, 0.8)], t=50.0))
    state = pf.state("obj:comp", "mc:bearing-wear", now=0.0)
    assert state.vector.probability_at(100.0) == pytest.approx(0.8)


def test_fusion_combines_multiple_sources():
    pf = PrognosticFusion()
    pf.ingest(prog_report([(100.0, 0.3)], ks="ks:dli"))
    state = pf.ingest(prog_report([(100.0, 0.7)], ks="ks:wnn"))
    assert state.vector.probability_at(100.0) == pytest.approx(0.7)
    assert state.report_count == 2


def test_time_to_failure_estimate():
    pf = PrognosticFusion()
    state = pf.ingest(prog_report([(months(4), 0.5)], t=0.0))
    assert state.time_to_failure(0.5) == pytest.approx(months(4))


def test_reset_forgets_history():
    pf = PrognosticFusion()
    pf.ingest(prog_report([(100.0, 0.5)]))
    pf.reset("obj:comp", "mc:bearing-wear")
    state = pf.state("obj:comp", "mc:bearing-wear", now=0.0)
    assert len(state.vector) == 0
    assert state.time_to_failure() == math.inf


# -- properties -------------------------------------------------------------

@st.composite
def vectors(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    times = sorted(draw(st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=n, max_size=n, unique=True)))
    probs = sorted(draw(st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n)))
    return PrognosticVector.from_pairs(list(zip(times, probs)))


@settings(max_examples=60, deadline=None)
@given(vs=st.lists(vectors(), min_size=1, max_size=4))
def test_envelope_dominates_every_input(vs):
    """The fused curve is never *less* conservative than any input,
    evaluated where that input actually claims something (at and after
    its first knot)."""
    fused = conservative_envelope(vs)
    grid = np.unique(np.concatenate([v.times for v in vs]))
    fused_vals = np.asarray(fused.probability_at(grid))
    for v in vs:
        mask = grid >= float(v.times[0])
        claimed = np.asarray(v.probability_at(grid))[mask]
        assert np.all(fused_vals[mask] >= claimed - 1e-9)


@settings(max_examples=60, deadline=None)
@given(vs=st.lists(vectors(), min_size=1, max_size=4))
def test_envelope_output_is_valid_vector(vs):
    fused = conservative_envelope(vs)
    assert np.all(np.diff(fused.times) > 0) or len(fused) <= 1
    assert np.all(np.diff(fused.probabilities) >= 0) or len(fused) <= 1


@settings(max_examples=40, deadline=None)
@given(vs=st.lists(vectors(), min_size=2, max_size=4))
def test_envelope_commutative(vs):
    assert conservative_envelope(vs) == conservative_envelope(list(reversed(vs)))


@settings(max_examples=40, deadline=None)
@given(vs=st.lists(vectors(), min_size=1, max_size=3))
def test_noisy_or_dominates_every_input(vs):
    """1 − Π(1−p_i) ≥ max p_i: noisy-or never under-calls any source."""
    nor = noisy_or_envelope(vs)
    grid = np.unique(np.concatenate([v.times for v in vs]))
    nor_vals = np.asarray(nor.probability_at(grid))
    for v in vs:
        assert np.all(nor_vals >= np.asarray(v.probability_at(grid)) - 1e-9)
