import pytest

from repro.fusion import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.fusion.hierarchy import HealthRollup, part_health
from repro.fusion.spatial import (
    flow_contamination_candidates,
    transmitted_vibration_candidates,
)
from repro.oosm import build_chilled_water_ship
from repro.protocol import FailurePredictionReport


def report(obj, cond="mc:motor-imbalance", belief=0.8, sev=0.6, ks="ks:dli"):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=sev,
        belief=belief,
        timestamp=1.0,
    )


@pytest.fixture
def world():
    model, ship, units = build_chilled_water_ship(n_chillers=2)
    engine = KnowledgeFusionEngine(default_chiller_groups())
    return model, ship, units, engine


# -- multi-level health rollup -------------------------------------------------

def test_part_health_healthy_is_one(world):
    _, _, units, engine = world
    h, cond = part_health(engine, units[0].motor)
    assert h == 1.0 and cond is None


def test_part_health_drops_with_evidence(world):
    _, _, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.8, sev=1.0))
    h, cond = part_health(engine, units[0].motor)
    assert h == pytest.approx(0.2, abs=0.01)
    assert cond == "mc:motor-imbalance"


def test_rollup_propagates_to_ship(world):
    """§10.1: 'reason about the health of a system based on the health
    of a constituent part'."""
    model, ship, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.9, sev=0.8))
    rollup = HealthRollup(model, engine)
    ship_health = rollup.assess(ship.id)
    assert ship_health.health < 0.3
    assert ship_health.worst_part == units[0].motor
    assert ship_health.worst_condition == "mc:motor-imbalance"
    assert units[0].motor in ship_health.suspect_parts


def test_rollup_sibling_unaffected(world):
    model, _, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.9))
    rollup = HealthRollup(model, engine)
    assert rollup.assess(units[1].chiller).healthy
    assert not rollup.assess(units[0].chiller).healthy


def test_rollup_criticality_discount(world):
    model, ship, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.9, sev=1.0))
    harsh = HealthRollup(model, engine).assess(ship.id)
    soft = HealthRollup(
        model, engine, criticality={units[0].motor: 0.3}
    ).assess(ship.id)
    assert soft.health > harsh.health


def test_ship_summary_sorted_worst_first(world):
    model, ship, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.9, sev=0.9))
    engine.ingest(report(units[1].pump, cond="mc:bearing-wear", belief=0.3, sev=0.3))
    rollup = HealthRollup(model, engine)
    summary = rollup.ship_summary(ship.id)
    healths = [a.health for a in summary]
    assert healths == sorted(healths)


# -- spatial (proximity) reasoning ------------------------------------------------

def test_transmitted_vibration_candidate_found(world):
    """'a device is vibrating because a component next to it is broken
    and vibrating wildly'."""
    model, _, units, engine = world
    motor, gearset = units[0].motor, units[0].gearset  # proximate
    # Gearset broken and vibrating wildly; motor shows a weak call.
    for _ in range(3):
        engine.ingest(report(gearset, cond="mc:gear-tooth-wear", belief=0.8, sev=0.9))
    engine.ingest(report(motor, cond="mc:motor-imbalance", belief=0.35, sev=0.3))
    candidates = transmitted_vibration_candidates(model, engine, threshold=0.3)
    assert candidates
    c = candidates[0]
    assert c.victim == motor and c.source == gearset
    assert c.source_condition == "mc:gear-tooth-wear"
    assert c.discount < 1.0
    assert "transmitted" in c.describe()


def test_no_candidate_when_beliefs_comparable(world):
    model, _, units, engine = world
    engine.ingest(report(units[0].motor, belief=0.7))
    engine.ingest(report(units[0].gearset, cond="mc:gear-tooth-wear", belief=0.7))
    assert transmitted_vibration_candidates(model, engine, dominance=1.5) == []


def test_no_candidate_for_distant_machines(world):
    model, _, units, engine = world
    # units[1].pump is not proximate to units[0].motor.
    for _ in range(3):
        engine.ingest(report(units[1].pump, cond="mc:bearing-wear", belief=0.9, sev=0.9))
    engine.ingest(report(units[0].motor, belief=0.3))
    candidates = transmitted_vibration_candidates(model, engine, threshold=0.2)
    assert all(c.victim != units[0].motor for c in candidates)


def test_process_conditions_not_treated_as_transmissible(world):
    model, _, units, engine = world
    for _ in range(3):
        engine.ingest(report(units[0].gearset, cond="mc:oil-contamination", belief=0.9))
    engine.ingest(report(units[0].motor, cond="mc:motor-imbalance", belief=0.3))
    candidates = transmitted_vibration_candidates(model, engine, threshold=0.2)
    assert all(c.source_condition != "mc:oil-contamination" for c in candidates)


# -- flow reasoning ------------------------------------------------------------------

def test_flow_contamination_candidate(world):
    """'one component passing fouled fluids on to other components
    downstream'."""
    model, _, units, engine = world
    gearset, compressor = units[0].gearset, units[0].compressor
    # Gear wear sheds metal; downstream compressor shows oil contamination.
    engine.ingest(report(gearset, cond="mc:gear-tooth-wear", belief=0.8))
    engine.ingest(report(compressor, cond="mc:oil-contamination", belief=0.6))
    candidates = flow_contamination_candidates(model, engine, threshold=0.3)
    assert candidates
    c = candidates[0]
    assert c.victim == compressor and c.source == gearset
    assert "source first" in c.describe()


def test_flow_requires_upstream_relation(world):
    model, _, units, engine = world
    # Pump is downstream of evaporator, not of the motor's gear train...
    # give the *pump* gear wear (nonsensical but upstream-less) and the
    # *motor* oil contamination: motor has no upstream, no candidate.
    engine.ingest(report(units[0].pump, cond="mc:gear-tooth-wear", belief=0.9))
    engine.ingest(report(units[0].motor, cond="mc:oil-contamination", belief=0.6))
    assert flow_contamination_candidates(model, engine, threshold=0.3) == []
