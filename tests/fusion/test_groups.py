import pytest

from repro.common.errors import FusionError
from repro.fusion import GroupRegistry, LogicalGroup
from repro.fusion.groups import UNKNOWN, default_chiller_groups


def test_group_requires_name_and_conditions():
    with pytest.raises(FusionError):
        LogicalGroup("", frozenset({"mc:x"}))
    with pytest.raises(FusionError):
        LogicalGroup("g", frozenset())


def test_unknown_sentinel_reserved():
    with pytest.raises(FusionError):
        LogicalGroup("g", frozenset({UNKNOWN}))


def test_frame_adds_unknown():
    g = LogicalGroup("g", frozenset({"mc:a", "mc:b"}))
    assert g.frame == {"mc:a", "mc:b", UNKNOWN}
    assert len(g) == 2
    assert "mc:a" in g


def test_registry_add_and_lookup():
    reg = GroupRegistry()
    g = reg.add("electrical", ["mc:rotor", "mc:stator"])
    assert reg.group_of("mc:rotor") is g
    assert reg.get("electrical") is g
    assert "electrical" in reg
    assert len(reg) == 1


def test_registry_rejects_duplicate_name():
    reg = GroupRegistry()
    reg.add("g", ["mc:a"])
    with pytest.raises(FusionError):
        reg.add("g", ["mc:b"])


def test_registry_rejects_condition_claimed_twice():
    reg = GroupRegistry()
    reg.add("g1", ["mc:a"])
    with pytest.raises(FusionError):
        reg.add("g2", ["mc:a", "mc:b"])


def test_unknown_condition_gets_auto_group():
    reg = GroupRegistry()
    g = reg.group_of("mc:novel")
    assert g.name == "auto:mc:novel"
    assert g.conditions == {"mc:novel"}


def test_get_unknown_group_raises():
    with pytest.raises(FusionError):
        GroupRegistry().get("nope")


def test_default_chiller_groups_cover_fmea():
    reg = default_chiller_groups()
    names = {g.name for g in reg.groups()}
    assert {"electrical", "lubricant", "rotating-mechanical",
            "transmission", "refrigeration"} <= names
    # Paper's §3.3: FMEA selected 12 candidate failure modes; our
    # default registry enumerates at least that many conditions.
    total = sum(len(g) for g in reg.groups())
    assert total >= 12


def test_default_groups_examples_from_paper():
    reg = default_chiller_groups()
    # "one group might be electrical failures, another lubricant failures"
    assert reg.group_of("mc:motor-rotor-bar").name == "electrical"
    assert reg.group_of("mc:oil-contamination").name == "lubricant"
