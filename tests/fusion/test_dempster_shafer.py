import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FusionError
from repro.fusion import MassFunction, combine, combine_many, conflict
from repro.fusion.dempster_shafer import from_simple_support

FRAME = frozenset({"A", "B", "C"})


# -- construction -------------------------------------------------------

def test_empty_frame_rejected():
    with pytest.raises(FusionError):
        MassFunction(set())


def test_residual_goes_to_unknown():
    m = MassFunction(FRAME, {"A": 0.4})
    assert m.unknown() == pytest.approx(0.6)
    assert m.total() == pytest.approx(1.0)


def test_vacuous_when_no_masses():
    assert MassFunction(FRAME).is_vacuous()


def test_negative_mass_rejected():
    with pytest.raises(FusionError):
        MassFunction(FRAME, {"A": -0.1})


def test_masses_over_one_rejected():
    with pytest.raises(FusionError):
        MassFunction(FRAME, {"A": 0.7, "B": 0.7})


def test_hypothesis_outside_frame_rejected():
    with pytest.raises(FusionError):
        MassFunction(FRAME, {"Z": 0.3})


def test_empty_focal_element_rejected():
    with pytest.raises(FusionError):
        MassFunction(FRAME, {(): 0.3})


def test_duplicate_focal_elements_accumulate():
    m = MassFunction(FRAME, {("A", "B"): 0.2, ("B", "A"): 0.3})
    assert m.mass(("A", "B")) == pytest.approx(0.5)


# -- belief / plausibility ----------------------------------------------

def test_belief_sums_subsets():
    m = MassFunction(FRAME, {"A": 0.3, ("A", "B"): 0.2})
    assert m.belief("A") == pytest.approx(0.3)
    assert m.belief(("A", "B")) == pytest.approx(0.5)


def test_plausibility_counts_intersections():
    m = MassFunction(FRAME, {"A": 0.3, ("A", "B"): 0.2})
    # Θ mass (0.5) intersects everything.
    assert m.plausibility("A") == pytest.approx(1.0)
    assert m.plausibility("C") == pytest.approx(0.5)


def test_belief_le_plausibility():
    m = MassFunction(FRAME, {"A": 0.5, ("B", "C"): 0.2})
    for h in FRAME:
        assert m.belief(h) <= m.plausibility(h) + 1e-12


def test_pignistic_distributes_evenly():
    m = MassFunction(FRAME, {("A", "B"): 0.6})
    bet = m.pignistic()
    assert bet["A"] == pytest.approx(0.3 + 0.4 / 3)
    assert bet["C"] == pytest.approx(0.4 / 3)
    assert sum(bet.values()) == pytest.approx(1.0)


# -- the paper's §5.3 worked example ------------------------------------

def test_paper_worked_example():
    """m1(A)=.40, m2(B∨C)=.75 ⇒ A 14%, B∨C 64%, unknown ~21-22%."""
    m1 = MassFunction(FRAME, {"A": 0.40})
    m2 = MassFunction(FRAME, {("B", "C"): 0.75})
    fused = combine(m1, m2)
    assert fused.mass("A") == pytest.approx(0.10 / 0.70, abs=1e-9)   # 14.28%
    assert fused.mass(("B", "C")) == pytest.approx(0.45 / 0.70, abs=1e-9)  # 64.29%
    assert fused.unknown() == pytest.approx(0.15 / 0.70, abs=1e-9)   # 21.43%
    assert round(fused.mass("A"), 2) == 0.14
    assert round(fused.mass(("B", "C")), 2) == 0.64


def test_paper_example_conflict_value():
    m1 = MassFunction(FRAME, {"A": 0.40})
    m2 = MassFunction(FRAME, {("B", "C"): 0.75})
    assert conflict(m1, m2) == pytest.approx(0.30)


# -- combination properties ----------------------------------------------

def test_combine_requires_same_frame():
    with pytest.raises(FusionError):
        combine(MassFunction({"A"}), MassFunction({"B"}))


def test_total_conflict_raises():
    m1 = MassFunction({"A", "B"}, {"A": 1.0})
    m2 = MassFunction({"A", "B"}, {"B": 1.0})
    with pytest.raises(FusionError):
        combine(m1, m2)


def test_vacuous_is_identity():
    m = MassFunction(FRAME, {"A": 0.4, ("B", "C"): 0.3})
    assert combine(m, MassFunction(FRAME)) == m


def test_combination_is_commutative():
    m1 = MassFunction(FRAME, {"A": 0.4, ("A", "B"): 0.2})
    m2 = MassFunction(FRAME, {"B": 0.5})
    assert combine(m1, m2) == combine(m2, m1)


def test_combination_is_associative():
    m1 = MassFunction(FRAME, {"A": 0.4})
    m2 = MassFunction(FRAME, {("B", "C"): 0.5})
    m3 = MassFunction(FRAME, {"B": 0.3})
    left = combine(combine(m1, m2), m3)
    right = combine(m1, combine(m2, m3))
    assert left == right


def test_combine_many_matches_fold():
    ms = [
        MassFunction(FRAME, {"A": 0.3}),
        MassFunction(FRAME, {"A": 0.3}),
        MassFunction(FRAME, {("B", "C"): 0.2}),
    ]
    assert combine_many(ms) == combine(combine(ms[0], ms[1]), ms[2])


def test_combine_many_empty_raises():
    with pytest.raises(FusionError):
        combine_many([])


def test_reinforcement_increases_belief():
    """Two agreeing reports yield more belief than either alone."""
    m = from_simple_support(FRAME, "A", 0.6)
    fused = combine(m, from_simple_support(FRAME, "A", 0.6))
    assert fused.belief("A") > 0.6
    assert fused.belief("A") == pytest.approx(1 - 0.4 * 0.4)


def test_simple_support_validates_belief():
    with pytest.raises(FusionError):
        from_simple_support(FRAME, "A", 1.5)


# -- property-based invariants --------------------------------------------

@st.composite
def mass_functions(draw):
    hyps = ["A", "B", "C", "D"]
    n = draw(st.integers(min_value=1, max_value=4))
    raw = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n)
    )
    total = sum(raw)
    if total < 1e-6:
        return MassFunction(hyps)  # vacuous
    scale = draw(st.floats(min_value=0.0, max_value=1.0)) / total
    subsets = draw(
        st.lists(
            st.sets(st.sampled_from(hyps), min_size=1, max_size=4),
            min_size=n, max_size=n,
        )
    )
    masses = {}
    for s, v in zip(subsets, raw):
        masses[frozenset(s)] = masses.get(frozenset(s), 0.0) + v * scale
    return MassFunction(hyps, masses)


@settings(max_examples=80, deadline=None)
@given(m=mass_functions())
def test_mass_always_normalized(m):
    assert m.total() == pytest.approx(1.0)


@settings(max_examples=80, deadline=None)
@given(m1=mass_functions(), m2=mass_functions())
def test_combined_mass_normalized_and_bounded(m1, m2):
    try:
        fused = combine(m1, m2)
    except FusionError:
        assert conflict(m1, m2) == pytest.approx(1.0, abs=1e-9)
        return
    assert fused.total() == pytest.approx(1.0)
    for h in fused.frame:
        b, p = fused.belief(h), fused.plausibility(h)
        assert -1e-9 <= b <= p <= 1 + 1e-9


@settings(max_examples=50, deadline=None)
@given(m=mass_functions())
def test_combining_with_vacuous_is_identity(m):
    assert combine(m, MassFunction(m.frame)) == m


@settings(max_examples=50, deadline=None)
@given(m1=mass_functions(), m2=mass_functions())
def test_conflict_symmetric_and_bounded(m1, m2):
    k = conflict(m1, m2)
    assert 0.0 - 1e-12 <= k <= 1.0 + 1e-12
    assert k == pytest.approx(conflict(m2, m1))
