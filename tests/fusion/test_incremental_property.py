"""Property tests certifying the incremental hot path against oracles.

The ISSUE-5 fusion rewrite keeps two independent implementations of
Dempster's rule: the frozenset :class:`MassFunction` (readable, used by
``full_recompute``) and the bitmask :class:`BitMass` incremental
combiner the live engine runs on.  Hypothesis drives arbitrary report
streams — beliefs, conditions, orderings — through both and pins them
together to 1e-9 (cross-ordering float drift is real; bit-exactness is
only promised for *identical* orderings, which the golden tests cover).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusion.dempster_shafer import (
    BitMass,
    bit_frame,
    combine_incremental,
)
from repro.fusion.diagnostic import DiagnosticFusion
from repro.fusion.groups import default_chiller_groups

_GROUPS = default_chiller_groups()
_ELECTRICAL = _GROUPS.get("electrical")
_CONDITIONS = sorted(_ELECTRICAL.conditions)

# Beliefs bounded away from 1.0 so combining many pieces of conflicting
# evidence cannot reach total conflict (K -> 1 raises, by design).
_beliefs = st.floats(min_value=0.0, max_value=0.9)
_streams = st.lists(
    st.tuples(st.sampled_from(_CONDITIONS), _beliefs), min_size=1, max_size=12
)


@settings(max_examples=60, deadline=None)
@given(_streams)
def test_incremental_bitmask_matches_full_recompute(stream):
    """Engine-side check: ingest N reports incrementally, then replay
    the retained history through the MassFunction oracle."""
    fusion = DiagnosticFusion(_GROUPS)

    class _R:
        def __init__(self, cond, belief):
            self.knowledge_source_id = "ks:prop"
            self.sensed_object_id = "obj:prop"
            self.machine_condition_id = cond
            self.belief = belief
            self.severity = 0.5
            self.timestamp = 0.0

    for cond, belief in stream:
        fusion.ingest(_R(cond, belief))
    fast = fusion.state("obj:prop", "electrical")
    oracle = fusion.full_recompute("obj:prop", "electrical")
    for c in _CONDITIONS:
        assert fast.beliefs[c] == pytest.approx(oracle.beliefs[c], abs=1e-9)
        assert fast.plausibilities[c] == pytest.approx(
            oracle.plausibilities[c], abs=1e-9
        )
    assert fast.unknown == pytest.approx(oracle.unknown, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(_streams)
def test_combine_incremental_order_invariant_beliefs(stream):
    """Dempster's rule is commutative/associative for exact masses: any
    ordering of the same evidence set fuses to the same beliefs."""
    frame = bit_frame(_ELECTRICAL.frame)

    def fuse(items):
        acc = None
        for cond, belief in items:
            acc = combine_incremental(
                acc, BitMass.simple_support(frame, cond, belief)
            )
        return acc

    forward = fuse(stream)
    backward = fuse(list(reversed(stream)))
    for c in _CONDITIONS:
        assert forward.belief(c) == pytest.approx(backward.belief(c), abs=1e-9)
    assert forward.unknown() == pytest.approx(backward.unknown(), abs=1e-9)
