import pytest

from repro.common.errors import FusionError
from repro.fusion import DiagnosticFusion, GroupRegistry
from repro.fusion.diagnostic import discounted_support
from repro.fusion.groups import LogicalGroup, default_chiller_groups
from repro.protocol import FailurePredictionReport


def report(condition, belief, obj="obj:chiller1", ks="ks:dli", sev=0.5, t=0.0):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=condition,
        severity=sev,
        belief=belief,
        timestamp=t,
    )


@pytest.fixture
def fusion():
    return DiagnosticFusion(default_chiller_groups())


def test_single_report_sets_belief(fusion):
    state = fusion.ingest(report("mc:motor-imbalance", 0.6))
    assert state.beliefs["mc:motor-imbalance"] == pytest.approx(0.6)
    assert state.group_name == "rotating-mechanical"
    assert state.report_count == 1


def test_reinforcing_reports_raise_belief(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.6, ks="ks:dli"))
    state = fusion.ingest(report("mc:motor-imbalance", 0.6, ks="ks:wnn"))
    assert state.beliefs["mc:motor-imbalance"] == pytest.approx(1 - 0.4 * 0.4)


def test_conflicting_reports_split_belief(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.7))
    state = fusion.ingest(report("mc:shaft-misalignment", 0.7))
    b1 = state.beliefs["mc:motor-imbalance"]
    b2 = state.beliefs["mc:shaft-misalignment"]
    assert b1 == pytest.approx(b2)
    assert b1 < 0.7  # conflict normalization reduces both


def test_unknown_mass_tracked(fusion):
    state = fusion.ingest(report("mc:motor-imbalance", 0.6))
    assert state.unknown == pytest.approx(0.4)


def test_groups_are_independent(fusion):
    """Concurrent failures in different groups keep full belief (§5.3)."""
    s1 = fusion.ingest(report("mc:motor-rotor-bar", 0.9))
    s2 = fusion.ingest(report("mc:oil-contamination", 0.9))
    assert s1.group_name == "electrical"
    assert s2.group_name == "lubricant"
    assert s1.beliefs["mc:motor-rotor-bar"] == pytest.approx(0.9)
    assert s2.beliefs["mc:oil-contamination"] == pytest.approx(0.9)


def test_states_for_object_lists_touched_groups(fusion):
    fusion.ingest(report("mc:motor-rotor-bar", 0.5))
    fusion.ingest(report("mc:oil-contamination", 0.5))
    states = fusion.states_for_object("obj:chiller1")
    assert {s.group_name for s in states} == {"electrical", "lubricant"}


def test_objects_are_independent(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.8, obj="obj:a"))
    state_b = fusion.state("obj:b", "rotating-mechanical")
    assert state_b.report_count == 0
    assert all(v == 0.0 for v in state_b.beliefs.values())


def test_severity_is_max_over_reports(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.4, sev=0.3))
    state = fusion.ingest(report("mc:motor-imbalance", 0.4, sev=0.8))
    assert state.severity == pytest.approx(0.8)


def test_believability_discounts_source():
    fusion = DiagnosticFusion(default_chiller_groups(), believability={"ks:flaky": 0.5})
    state = fusion.ingest(report("mc:motor-imbalance", 0.8, ks="ks:flaky"))
    assert state.beliefs["mc:motor-imbalance"] == pytest.approx(0.4)


def test_unregistered_condition_uses_auto_group(fusion):
    state = fusion.ingest(report("mc:brand-new-failure", 0.7))
    assert state.group_name == "auto:mc:brand-new-failure"
    assert state.beliefs["mc:brand-new-failure"] == pytest.approx(0.7)
    # And it is queryable afterwards.
    again = fusion.state("obj:chiller1", "auto:mc:brand-new-failure")
    assert again.report_count == 1


def test_suspects_ranked_and_thresholded(fusion):
    fusion.ingest(report("mc:motor-rotor-bar", 0.9))
    fusion.ingest(report("mc:oil-contamination", 0.6))
    fusion.ingest(report("mc:gear-tooth-wear", 0.2))
    suspects = fusion.suspects(threshold=0.5)
    assert [c for _, c, _ in suspects] == ["mc:motor-rotor-bar", "mc:oil-contamination"]


def test_top_returns_strongest(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.3))
    state = fusion.ingest(report("mc:shaft-misalignment", 0.8))
    top = state.top()
    assert top is not None and top[0] == "mc:shaft-misalignment"


def test_top_none_when_no_evidence(fusion):
    assert fusion.state("obj:x", "electrical").top() is None


def test_reset_clears_pair(fusion):
    fusion.ingest(report("mc:motor-imbalance", 0.9))
    fusion.reset("obj:chiller1", "rotating-mechanical")
    assert fusion.state("obj:chiller1", "rotating-mechanical").report_count == 0


def test_ingest_many_returns_each_state(fusion):
    states = fusion.ingest_many([
        report("mc:motor-imbalance", 0.5),
        report("mc:motor-imbalance", 0.5),
    ])
    assert len(states) == 2
    assert states[1].report_count == 2


def test_discounted_support_validates():
    g = LogicalGroup("g", frozenset({"mc:a"}))
    with pytest.raises(FusionError):
        discounted_support(g, "mc:zzz", 0.5)
    with pytest.raises(FusionError):
        discounted_support(g, "mc:a", 0.5, believability=2.0)


def test_multiple_failures_within_group_both_suspect(fusion):
    """§5.3: grouping 'does not preclude multiple failures within a
    group to all be suspect concurrently'."""
    for _ in range(3):
        fusion.ingest(report("mc:motor-imbalance", 0.5))
        fusion.ingest(report("mc:bearing-wear", 0.5))
    state = fusion.state("obj:chiller1", "rotating-mechanical")
    assert state.beliefs["mc:motor-imbalance"] > 0.25
    assert state.beliefs["mc:bearing-wear"] > 0.25


def test_conflict_measure_distinguishes_reinforcing_from_conflicting(fusion):
    """§3.2's 'some conflicting and some reinforcing', quantified: the
    D-S conflict K of the latest combination."""
    s1 = fusion.ingest(report("mc:motor-imbalance", 0.8, ks="ks:dli"))
    assert s1.conflict == 0.0          # first report: nothing to clash with
    s2 = fusion.ingest(report("mc:motor-imbalance", 0.8, ks="ks:wnn"))
    assert s2.conflict == pytest.approx(0.0)   # pure reinforcement
    s3 = fusion.ingest(report("mc:shaft-misalignment", 0.8, ks="ks:fuzzy"))
    assert s3.conflict > 0.5           # clashes with the fused imbalance mass
    fusion.reset("obj:chiller1", "rotating-mechanical")
    s4 = fusion.ingest(report("mc:motor-imbalance", 0.5))
    assert s4.conflict == 0.0          # reset cleared the memory
