import pytest

from repro.fusion import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.protocol import FailurePredictionReport, PrognosticVector


def report(cond="mc:motor-imbalance", belief=0.6, pairs=(), t=0.0, obj="obj:m1",
           ks="ks:dli"):
    return FailurePredictionReport(
        knowledge_source_id=ks,
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=0.5,
        belief=belief,
        timestamp=t,
        prognostic=PrognosticVector.from_pairs(list(pairs)),
    )


@pytest.fixture
def engine():
    return KnowledgeFusionEngine(default_chiller_groups())


def test_diagnostic_only_report(engine):
    c = engine.ingest(report(belief=0.7))
    assert c is not None
    assert c.diagnosis is not None and c.prognosis is None
    assert engine.stats.diagnostic_updates == 1
    assert engine.stats.prognostic_updates == 0


def test_prognostic_only_report(engine):
    c = engine.ingest(report(belief=0.0, pairs=[(100.0, 0.5)]))
    assert c.diagnosis is None and c.prognosis is not None
    assert engine.stats.prognostic_updates == 1


def test_combined_report_updates_both(engine):
    c = engine.ingest(report(belief=0.5, pairs=[(100.0, 0.5)]))
    assert c.diagnosis is not None and c.prognosis is not None


def test_empty_report_rejected_not_fatal(engine):
    """A report with neither belief nor prognosis is counted, skipped."""
    c = engine.ingest(report(belief=0.0))
    assert c is None
    assert engine.stats.rejected == 1
    assert engine.stats.ingested == 1


def test_sink_receives_conclusions():
    seen = []
    engine = KnowledgeFusionEngine(default_chiller_groups(), sink=seen.append)
    engine.ingest(report())
    assert len(seen) == 1
    assert seen[0].report.machine_condition_id == "mc:motor-imbalance"


def test_time_disordered_reports_handled(engine):
    """§5.1: inputs may be time-disordered; late-arriving stale
    prognostics are age-shifted against the newest time seen."""
    engine.ingest(report(belief=0.0, pairs=[(100.0, 0.4)], t=50.0))
    engine.ingest(report(belief=0.0, pairs=[(100.0, 0.8)], t=0.0, ks="ks:wnn"))
    # Second report is 50 s stale: its 100 s horizon is 50 s away now.
    ttf = engine.time_to_failure("obj:m1", "mc:motor-imbalance", probability=0.75)
    assert ttf < 100.0


def test_suspects_passthrough(engine):
    engine.ingest(report(belief=0.9))
    assert engine.suspects(0.5)[0][1] == "mc:motor-imbalance"


def test_stats_count_errors_without_raising(engine):
    # Force an internal FusionError path: conflicting certainty.
    engine.ingest(report(cond="mc:motor-imbalance", belief=1.0))
    c = engine.ingest(report(cond="mc:shaft-misalignment", belief=1.0))
    assert c is None
    assert engine.stats.rejected == 1
    assert engine.stats.errors


def test_multisource_reinforcement_via_engine(engine):
    engine.ingest(report(belief=0.6, ks="ks:dli"))
    c = engine.ingest(report(belief=0.6, ks="ks:sbfr"))
    assert c.diagnosis.beliefs["mc:motor-imbalance"] == pytest.approx(1 - 0.16)
