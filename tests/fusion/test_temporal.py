import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FusionError
from repro.fusion.temporal import Episode, EpisodeTracker, TemporalAnalyzer


def feed_episodes(tracker, starts, duration=5.0):
    """Feed synthetic belief pulses starting at the given times."""
    t = 0.0
    for s in starts:
        tracker.observe(s, 0.9)
        tracker.observe(s + duration, 0.1)
        t = s + duration
    return t


# -- tracker mechanics ----------------------------------------------------------

def test_hysteresis_validation():
    with pytest.raises(FusionError):
        EpisodeTracker(onset=0.3, clear=0.5)
    with pytest.raises(FusionError):
        EpisodeTracker(onset=0.5, clear=0.0)


def test_time_must_not_go_backwards():
    tr = EpisodeTracker()
    tr.observe(10.0, 0.1)
    with pytest.raises(FusionError):
        tr.observe(5.0, 0.1)


def test_episode_segmentation():
    tr = EpisodeTracker(onset=0.5, clear=0.3)
    for t, b in [(0, 0.1), (10, 0.6), (20, 0.7), (30, 0.2), (40, 0.8), (50, 0.1)]:
        tr.observe(float(t), b)
    assert tr.episodes == [Episode(10.0, 30.0), Episode(40.0, 50.0)]
    assert not tr.active


def test_hysteresis_does_not_fragment():
    """Belief dipping between clear and onset keeps the episode open."""
    tr = EpisodeTracker(onset=0.5, clear=0.3)
    for t, b in [(0, 0.6), (10, 0.4), (20, 0.6), (30, 0.1)]:
        tr.observe(float(t), b)
    assert len(tr.episodes) == 1
    assert tr.episodes[0] == Episode(0.0, 30.0)


def test_open_episode_counts_in_intervals():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 100.0])
    tr.observe(150.0, 0.9)  # third episode, still open
    assert tr.active
    assert np.allclose(tr.intervals(), [100.0, 50.0])


# -- acceleration ------------------------------------------------------------------

def test_steady_recurrence_acceleration_one():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 100.0, 200.0, 300.0])
    assert tr.acceleration() == pytest.approx(1.0)


def test_shrinking_recurrence_detected():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 100.0, 150.0, 175.0])  # halving intervals
    assert tr.acceleration() == pytest.approx(0.5, rel=0.05)


def test_too_few_episodes_neutral():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 50.0])
    assert tr.acceleration() == 1.0


# -- projection --------------------------------------------------------------------

def test_steady_fault_projects_far_horizon():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 100.0, 200.0, 300.0])
    v = tr.project(now=310.0)
    assert v.probability_at(30 * 86400.0) < 0.1


def test_accelerating_fault_projects_near_failure():
    tr = EpisodeTracker()
    feed_episodes(tr, [0.0, 100.0, 150.0, 175.0, 187.0])
    v = tr.project(now=190.0)
    # Geometric series with r=0.5 from ~12s: saturates within ~tens of
    # seconds, far sooner than a steady fault.
    t60 = v.time_to_probability(0.6)
    assert t60 < 3600.0


def test_faster_acceleration_means_earlier_projection():
    slow = EpisodeTracker()
    feed_episodes(slow, [0.0, 100.0, 180.0, 244.0])       # r = 0.8
    fast = EpisodeTracker()
    feed_episodes(fast, [0.0, 100.0, 140.0, 156.0])       # r = 0.4
    t_slow = slow.project(now=250.0).time_to_probability(0.6)
    t_fast = fast.project(now=160.0).time_to_probability(0.6)
    assert t_fast < t_slow


@settings(max_examples=40, deadline=None)
@given(r=st.floats(min_value=0.3, max_value=0.9), first=st.floats(min_value=10.0, max_value=1e4))
def test_projection_is_valid_vector(r, first):
    tr = EpisodeTracker()
    starts = [0.0]
    iv = first
    for _ in range(5):
        starts.append(starts[-1] + iv)
        iv *= r
    # Pulses must be shorter than the smallest recurrence gap.
    duration = 0.25 * first * r**5
    feed_episodes(tr, starts, duration=duration)
    v = tr.project(now=starts[-1] + 1.0)
    assert len(v) >= 2
    assert np.all(np.diff(v.times) > 0)
    assert np.all(np.diff(v.probabilities) >= 0)


# -- analyzer -----------------------------------------------------------------------

def test_analyzer_tracks_pairs_independently():
    an = TemporalAnalyzer()
    for s in [0.0, 100.0, 150.0, 175.0]:
        an.observe("obj:a", "mc:x", s, 0.9)
        an.observe("obj:a", "mc:x", s + 5.0, 0.1)
    for s in [0.0, 100.0, 200.0, 300.0]:
        an.observe("obj:b", "mc:x", s, 0.9)
        an.observe("obj:b", "mc:x", s + 5.0, 0.1)
    acc = an.accelerating(threshold=0.9)
    assert [(o, c) for o, c, _ in acc] == [("obj:a", "mc:x")]
    v = an.projection("obj:a", "mc:x", now=180.0)
    assert v.time_to_probability(0.6) < an.projection("obj:b", "mc:x", 310.0).time_to_probability(0.6)


def test_analyzer_unknown_pair_far_horizon():
    an = TemporalAnalyzer()
    v = an.projection("obj:ghost", "mc:x", now=0.0)
    assert v.probability_at(30 * 86400.0) < 0.1
