"""Content-hash summary cache: hits, misses, and corruption handling."""

from repro.analysis.cache import SummaryCache, content_key
from repro.analysis.callgraph import ANALYZER_VERSION, summarize_source

SRC_A = "import time\ndef f():\n    return time.time()\n"
SRC_B = "import time\ndef f():\n    return time.monotonic()\n"


def test_key_is_versioned_and_content_addressed():
    assert content_key(SRC_A).startswith(f"v{ANALYZER_VERSION}-")
    assert content_key(SRC_A) == content_key(SRC_A)
    assert content_key(SRC_A) != content_key(SRC_B)


def test_first_summarize_misses_then_hits(tmp_path):
    cache = SummaryCache(tmp_path)
    first = cache.summarize(SRC_A, "src/myapp/a.py")
    assert (cache.hits, cache.misses) == (0, 1)
    second = cache.summarize(SRC_A, "src/myapp/a.py")
    assert (cache.hits, cache.misses) == (1, 1)
    assert second == first
    # The cached round trip preserves extracted origins.
    (fn,) = second.functions
    assert [o.effect for o in fn.origins] == ["clock"]


def test_cache_survives_across_instances(tmp_path):
    SummaryCache(tmp_path).summarize(SRC_A, "src/myapp/a.py")
    fresh = SummaryCache(tmp_path)
    fresh.summarize(SRC_A, "src/myapp/a.py")
    assert (fresh.hits, fresh.misses) == (1, 0)


def test_different_content_is_a_miss(tmp_path):
    cache = SummaryCache(tmp_path)
    cache.summarize(SRC_A, "src/myapp/a.py")
    cache.summarize(SRC_B, "src/myapp/a.py")
    assert (cache.hits, cache.misses) == (0, 2)


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = SummaryCache(tmp_path)
    cache.summarize(SRC_A, "src/myapp/a.py")
    (entry,) = tmp_path.glob("*.json")
    entry.write_text("{truncated", encoding="utf-8")
    again = cache.summarize(SRC_A, "src/myapp/a.py")
    assert cache.misses == 2
    (fn,) = again.functions
    assert fn.qualname == "myapp.a.f"


def test_wrong_shape_entry_is_a_miss(tmp_path):
    cache = SummaryCache(tmp_path)
    key = content_key(SRC_A)
    cache.store(key, summarize_source(SRC_A, "src/myapp/a.py"))
    (entry,) = tmp_path.glob("*.json")
    entry.write_text('{"module": 42}', encoding="utf-8")
    assert cache.load(key) is None
