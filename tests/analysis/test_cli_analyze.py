"""The ``mpros analyze`` command and machine-readable ``--format``."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]

ROGUE = (
    "from repro.oosm.persistence import ReportStore\n"
    "def sneak(store: ReportStore, reports, ids):\n"
    "    store.ingest_batch(reports, ids, None)\n"
)

ALIASED_CLOCK = (
    "from time import time as now\n"
    "def stamp():\n"
    "    return now()\n"
)


@pytest.fixture()
def rogue_file(tmp_path):
    f = tmp_path / "corpus.py"
    f.write_text(ROGUE, encoding="utf-8")
    return f


def analyze(*extra, paths, tmp_path):
    return main([
        "analyze", *[str(p) for p in paths],
        "--no-cache",
        "--baseline", str(tmp_path / "absent-baseline.json"),
        *extra,
    ])


def test_analyze_flags_a_violation(rogue_file, tmp_path, capsys):
    rc = analyze(paths=[rogue_file], tmp_path=tmp_path)
    captured = capsys.readouterr()
    assert rc == 1
    assert "conc.single-writer" in captured.out
    assert "FAIL (1 error(s)" in captured.out


def test_analyze_jsonl_keeps_stdout_pure(rogue_file, tmp_path, capsys):
    rc = analyze("--format", "jsonl", paths=[rogue_file], tmp_path=tmp_path)
    captured = capsys.readouterr()
    assert rc == 1
    records = [json.loads(line) for line in captured.out.splitlines() if line]
    assert [r["rule"] for r in records] == ["conc.single-writer"]
    # Status lines went to stderr, not stdout.
    assert "FAIL" in captured.err
    assert "FAIL" not in captured.out


def test_analyze_sarif_is_valid_json(rogue_file, tmp_path, capsys):
    rc = analyze("--format", "sarif", paths=[rogue_file], tmp_path=tmp_path)
    captured = capsys.readouterr()
    assert rc == 1
    log = json.loads(captured.out)
    assert log["version"] == "2.1.0"
    (result,) = log["runs"][0]["results"]
    assert result["ruleId"] == "conc.single-writer"


def test_baseline_suppresses_known_findings(rogue_file, tmp_path, capsys):
    # First run in jsonl mode to learn the finding's fingerprint...
    analyze("--format", "jsonl", paths=[rogue_file], tmp_path=tmp_path)
    (record,) = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{
            "rule": record["rule"],
            "file": record["file"],
            "symbol": record["symbol"],
            "reason": "known legacy writer, tracked for removal",
        }],
    }))
    # ...then the baselined run passes, and says what it suppressed.
    rc = main(["analyze", str(rogue_file), "--no-cache",
               "--baseline", str(baseline)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "1 baseline-suppressed" in captured.out
    assert "conc.single-writer" not in captured.out.replace(
        "baseline-suppressed", "")


def test_analyze_cache_hits_on_second_run(rogue_file, tmp_path, capsys):
    argv = ["analyze", str(rogue_file),
            "--cache-dir", str(tmp_path / "cache"),
            "--baseline", str(tmp_path / "absent.json")]
    main(argv)
    first = capsys.readouterr().out
    assert "1 miss(es)" in first
    main(argv)
    second = capsys.readouterr().out
    assert "1 hit(s), 0 miss(es)" in second


def test_analyze_missing_path_is_usage_error(tmp_path, capsys):
    rc = main(["analyze", str(tmp_path / "nope"), "--no-cache"])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_analyze_src_repro_is_clean(tmp_path, capsys):
    rc = main(["analyze", str(REPO / "src" / "repro"),
               "--cache-dir", str(tmp_path / "cache"),
               "--baseline", str(REPO / "analysis" / "baseline.json")])
    captured = capsys.readouterr()
    assert rc == 0, captured.out
    assert "OK (0 error(s), 0 warning(s)" in captured.out


# -- verify --lint --format ---------------------------------------------------

def test_verify_lint_jsonl(tmp_path, capsys):
    f = tmp_path / "clocky.py"
    f.write_text(ALIASED_CLOCK, encoding="utf-8")
    rc = main(["verify", "--lint", str(f), "--format", "jsonl"])
    captured = capsys.readouterr()
    assert rc == 1
    records = [json.loads(line) for line in captured.out.splitlines() if line]
    assert [r["rule"] for r in records] == ["lint.wall-clock"]
    assert "error(s)" in captured.err and "error(s)" not in captured.out


def test_verify_lint_sarif(tmp_path, capsys):
    f = tmp_path / "clocky.py"
    f.write_text(ALIASED_CLOCK, encoding="utf-8")
    rc = main(["verify", "--lint", str(f), "--format", "sarif"])
    captured = capsys.readouterr()
    assert rc == 1
    log = json.loads(captured.out)
    assert [r["ruleId"] for r in log["runs"][0]["results"]] == [
        "lint.wall-clock"
    ]


def test_verify_lint_text_is_unchanged_default(tmp_path, capsys):
    f = tmp_path / "clocky.py"
    f.write_text(ALIASED_CLOCK, encoding="utf-8")
    rc = main(["verify", "--lint", str(f)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "lint.wall-clock" in captured.out
    assert "1 error(s)" in captured.out
