"""Adversarial SBFR corpus: every verifier rule caught by id.

Each corpus program seeds exactly one class of defect and the test
asserts the verifier reports *that* rule id — not merely "something
failed" — plus location metadata (machine name, byte offset) rich
enough to act on from a CI log.
"""

import dataclasses

import pytest

from repro.analysis import (
    Budgets,
    Severity,
    build_cfg,
    static_truth,
    verify_bytes,
    verify_machine,
    verify_set,
)
from repro.sbfr.encode import encode_machine
from repro.sbfr.library import (
    build_spike_machine,
    build_stiction_machine,
    canonical_deployments,
)
from repro.sbfr.spec import (
    Always,
    And,
    Elapsed,
    Input,
    Local,
    MachineSpec,
    Not,
    OrStatus,
    SetLocal,
    SetStatus,
    State,
    Status,
    Transition,
    cmp,
)


def machine(transitions, n_states=2, n_locals=0, name="corpus"):
    return MachineSpec(
        name=name,
        states=tuple(State(f"S{i}") for i in range(n_states)),
        transitions=tuple(transitions),
        n_locals=n_locals,
    )


def rule_ids(diags):
    return {d.rule_id for d in diags}


# -- reference-range rules ---------------------------------------------------

def test_channel_out_of_range_fires_channel_range():
    spec = machine([Transition(0, 1, cmp(Input(99), ">", 0.5))])
    diags = verify_machine(spec, n_channels=5)
    assert rule_ids(diags) == {"sbfr.channel-range"}
    assert "channel 99" in diags[0].message


def test_local_out_of_range_fires_local_range():
    spec = machine(
        [Transition(0, 1, cmp(Local(3), ">", 1.0), (SetLocal(7, 0.0),))],
        n_locals=2,
    )
    diags = verify_machine(spec, n_channels=1)
    assert rule_ids(diags) == {"sbfr.local-range"}
    assert len(diags) == 2  # the read and the write both flagged


def test_peer_out_of_range_fires_peer_range():
    spec = machine(
        [Transition(0, 1, cmp(Status(9), "!=", 0), (OrStatus(12, 1),))]
    )
    diags = verify_machine(spec, n_channels=1, n_machines=3)
    assert rule_ids(diags) == {"sbfr.peer-range"}


def test_self_reference_resolves_against_set_size():
    # Status(-1) is legal exactly when self_index < n_machines.
    spec = machine([Transition(0, 1, cmp(Status(-1), "==", 0))])
    assert not verify_machine(spec, self_index=2, n_channels=1, n_machines=3)
    diags = verify_machine(spec, self_index=3, n_channels=1, n_machines=3)
    assert rule_ids(diags) == {"sbfr.peer-range"}


# -- guard decidability ------------------------------------------------------

def test_negative_timer_bound_fires_timer_never_expires():
    spec = machine([Transition(0, 1, cmp(Elapsed(), "<", -1.0))])
    ids = rule_ids(verify_machine(spec, n_channels=1))
    assert "sbfr.timer-never-expires" in ids


def test_fractional_timer_equality_fires_timer_never_expires():
    # Elapsed() only takes integer values; == 2.5 can never be true.
    spec = machine([Transition(0, 1, cmp(Elapsed(), "==", 2.5))])
    ids = rule_ids(verify_machine(spec, n_channels=1))
    assert "sbfr.timer-never-expires" in ids


def test_statically_false_guard_fires_dead_transition():
    spec = machine([
        Transition(0, 1, cmp(Input(0), ">", 0.5)),
        Transition(0, 1, cmp(1.0, ">", 2.0)),
    ])
    diags = verify_machine(spec, n_channels=1)
    assert rule_ids(diags) == {"sbfr.dead-transition"}


def test_transition_after_always_fires_shadowed_transition():
    spec = machine([
        Transition(0, 1, Always()),
        Transition(0, 1, cmp(Input(0), ">", 0.5)),
    ])
    diags = verify_machine(spec, n_channels=1)
    assert "sbfr.shadowed-transition" in rule_ids(diags)
    shadowed = [d for d in diags if d.rule_id == "sbfr.shadowed-transition"]
    assert all(d.severity is Severity.WARNING for d in shadowed)


# -- reachability ------------------------------------------------------------

def test_orphan_state_fires_unreachable_state():
    spec = machine(
        [Transition(0, 1, cmp(Input(0), ">", 0.5)),
         Transition(2, 0, Always())],
        n_states=3,
    )
    diags = verify_machine(spec, n_channels=1)
    assert "sbfr.unreachable-state" in rule_ids(diags)
    hit = [d for d in diags if d.rule_id == "sbfr.unreachable-state"]
    assert hit[0].location.state == 2


def test_state_behind_dead_guard_is_unreachable():
    # The only edge into state 1 is statically false, so reachability
    # must not traverse it.
    spec = machine([Transition(0, 1, cmp(2.0, "<", 1.0))])
    ids = rule_ids(verify_machine(spec, n_channels=1))
    assert "sbfr.unreachable-state" in ids
    assert "sbfr.dead-transition" in ids


# -- budgets -----------------------------------------------------------------

def test_oversized_machine_fires_budget_machine_bytes():
    big = machine(
        [Transition(0, 0, cmp(Input(0), ">", float(i))) for i in range(60)],
        n_states=1,
    )
    tiny = dataclasses.replace(Budgets(), machine_bytes=100)
    ids = rule_ids(verify_machine(big, n_channels=1, budgets=tiny))
    assert "sbfr.budget-machine-bytes" in ids


def test_hot_state_fires_budget_cycle_time():
    # 60 guards out of one state ≈ 240 interpreter ops ≈ 61 µs: far
    # over the 40 µs per-machine share of the 4 ms / 100-machine budget.
    hot = machine(
        [Transition(0, 0, cmp(Input(0), ">", float(i))) for i in range(60)],
        n_states=1,
    )
    ids = rule_ids(verify_machine(hot, n_channels=1))
    assert "sbfr.budget-cycle-time" in ids


def test_aggregate_budget_over_32k_fires_budget_aggregate():
    # 200 spike machines overflow 32 KB even though each one is tiny.
    # (Status registers are a signed wire byte, so indices wrap at 100;
    # each register then has exactly one foreign writer — no race.)
    specs = [build_spike_machine(0, self_index=i % 100) for i in range(200)]
    report = verify_set(specs, n_channels=1)
    assert "sbfr.budget-aggregate" in report.rule_ids()


def test_paper_scale_deployment_fits_the_budgets():
    # 100 spike machines + interpreter reserve stay inside 32 KB and
    # 4 ms — the paper's headline claim, checked statically.
    specs = [build_spike_machine(0, self_index=i) for i in range(100)]
    report = verify_set(specs, n_channels=1)
    assert not report.errors


# -- cross-machine race analysis ---------------------------------------------

def test_read_of_never_written_register_warns():
    reader = machine([Transition(0, 1, cmp(Status(1), "!=", 0))], name="reader")
    silent = machine([Transition(0, 1, cmp(Input(0), ">", 0.5))], name="silent")
    report = verify_set([reader, silent], n_channels=1)
    assert "sbfr.status-never-written" in report.rule_ids()
    assert not report.errors  # warning severity: reported, non-blocking


def test_two_foreign_writers_fire_write_conflict():
    owner = machine([Transition(0, 1, cmp(Input(0), ">", 0.5),
                                (OrStatus(-1, 1),))], name="owner")
    w1 = machine([Transition(0, 1, cmp(Input(0), ">", 0.5),
                             (SetStatus(0, 0),))], name="w1")
    w2 = machine([Transition(0, 1, cmp(Input(0), ">", 0.5),
                             (SetStatus(0, 2),))], name="w2")
    report = verify_set([owner, w1, w2], n_channels=1)
    assert "sbfr.status-write-conflict" in report.rule_ids()
    conflict = [d for d in report.diagnostics
                if d.rule_id == "sbfr.status-write-conflict"][0]
    assert "w1" in conflict.message and "w2" in conflict.message


def test_figure3_single_consumer_pattern_is_clean():
    # Owner ORs its own bit, exactly one non-owner resets it: the
    # paper's Figure-3 handshake must not trip the race rules.
    report = verify_set(
        [build_spike_machine(0), build_stiction_machine(1, spike_machine=0)],
        n_channels=2,
    )
    assert not report.diagnostics


# -- wire-format (bytes-level) rules -----------------------------------------

def good_bytes():
    return encode_machine(build_spike_machine(0))


def test_bad_magic_fires_malformed_at_offset_zero():
    data = b"XX" + good_bytes()[2:]
    report = verify_bytes(data)
    assert report.rule_ids() == {"sbfr.malformed"}
    assert report.diagnostics[0].location.byte_offset == 0


def test_truncated_frame_fires_malformed():
    report = verify_bytes(good_bytes()[:-3])
    assert report.rule_ids() == {"sbfr.malformed"}


def test_trailing_garbage_fires_malformed():
    report = verify_bytes(good_bytes() + b"\x00\x00")
    assert "sbfr.malformed" in report.rule_ids()


def test_empty_frame_fires_malformed():
    assert verify_bytes(b"").rule_ids() == {"sbfr.malformed"}


def test_dangling_state_index_fires_undefined_state():
    spec = machine([Transition(0, 1, Always())])
    data = bytearray(encode_machine(spec))
    # Header: magic(2) version(1) n_states(1) n_locals(1) n_transitions(1);
    # first transition's target byte sits at offset 7.
    data[7] = 200
    report = verify_bytes(bytes(data))
    assert "sbfr.undefined-state" in report.rule_ids()
    hit = [d for d in report.diagnostics
           if d.rule_id == "sbfr.undefined-state"][0]
    assert hit.location.byte_offset == 6  # transition starts at 6
    assert hit.location.machine == "downloaded"


def test_corrupt_condition_bytecode_fires_malformed_bytecode():
    spec = machine([Transition(0, 1, Always())])
    data = bytearray(encode_machine(spec))
    # The 1-byte Always() condition starts right after source, target
    # and the u16 length field: offset 6 + 4 = 10.
    data[10] = 0x7F  # not an opcode
    report = verify_bytes(bytes(data))
    assert "sbfr.malformed-bytecode" in report.rule_ids()
    hit = [d for d in report.diagnostics
           if d.rule_id == "sbfr.malformed-bytecode"][0]
    assert hit.location.byte_offset == 10


def test_clean_bytes_pass_then_range_rules_apply():
    data = encode_machine(machine([Transition(0, 1, cmp(Input(4), ">", 0.0))]))
    assert verify_bytes(data, n_channels=8).ok
    report = verify_bytes(data, n_channels=2)
    assert report.rule_ids() == {"sbfr.channel-range"}
    # Wire-sourced diagnostics carry the *wire* byte offset.
    assert report.diagnostics[0].location.byte_offset == 6


# -- whole-library gate ------------------------------------------------------

@pytest.mark.parametrize("name", sorted(canonical_deployments()))
def test_library_deployment_verifies_clean(name):
    channels, specs = canonical_deployments()[name]
    report = verify_set(specs, n_channels=len(channels))
    assert report.ok, report.render()


def test_every_diagnostic_carries_machine_and_offset():
    # Satellite (a): spec-sourced transition diagnostics still locate
    # the offending bytes via the canonical encoding.
    spec = machine(
        [Transition(0, 1, cmp(Input(9), ">", 0.5))], name="offsety"
    )
    diags = verify_machine(spec, n_channels=1)
    assert diags
    for d in diags:
        assert d.location.machine == "offsety"
        assert d.location.byte_offset is not None


# -- static truth folding (unit level) ---------------------------------------

def test_static_truth_three_valued():
    assert static_truth(Always()) is True
    assert static_truth(cmp(1.0, "<", 2.0)) is True
    assert static_truth(cmp(1.0, ">", 2.0)) is False
    assert static_truth(cmp(Input(0), ">", 2.0)) is None
    assert static_truth(Not(cmp(1.0, "<", 2.0))) is False
    assert static_truth(And(Always(), cmp(Input(0), ">", 0.0))) is None
    assert static_truth(And(cmp(1.0, ">", 2.0), cmp(Input(0), ">", 0.0))) is False


def test_static_truth_elapsed_domain():
    assert static_truth(cmp(Elapsed(), ">=", 0.0)) is True
    assert static_truth(cmp(Elapsed(), "<", 0.0)) is False
    assert static_truth(cmp(Elapsed(), "<=", 4.0)) is None
    assert static_truth(cmp(0.0, ">", Elapsed())) is False  # flipped operand
    assert static_truth(cmp(Elapsed(), "!=", 0.5)) is True


def test_worst_cycle_ops_counts_heaviest_state():
    spec = build_spike_machine(0)
    cfg = build_cfg(spec, 0)
    # P2 evaluates transitions 4, 5, 6 — the heaviest state.
    p2_edges = cfg.out_edges(2)
    expect = sum(e.condition_ops for e in p2_edges) + max(
        e.action_ops for e in p2_edges
    )
    assert cfg.worst_cycle_ops() == expect
