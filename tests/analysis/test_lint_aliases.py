"""Regression: aliased imports no longer evade the source lints.

Before the import-table rewrite, ``from time import time as now`` and
``import numpy.random as npr`` slipped past lint.wall-clock and
lint.unseeded-rng because the rules matched surface names only.
"""

from repro.analysis.lint import lint_source
from repro.analysis.rules import DEFAULT_RULES


def diags(source, path="src/repro/x.py"):
    return lint_source(source, path, DEFAULT_RULES)


def ids(source, path="src/repro/x.py"):
    return [d.rule_id for d in diags(source, path)]


# -- lint.wall-clock through aliases ----------------------------------------

def test_from_time_import_time_as_now_is_caught():
    src = (
        "from time import time as now\n"
        "def stamp():\n"
        "    return now()\n"
    )
    assert ids(src) == ["lint.wall-clock"]
    (d,) = diags(src)
    # The message names both the alias and what it resolves to.
    assert "now" in d.message and "time.time" in d.message


def test_import_time_as_t_is_caught():
    src = "import time as t\ndef stamp():\n    return t.time()\n"
    assert ids(src) == ["lint.wall-clock"]


def test_from_datetime_import_datetime_as_dt_is_caught():
    src = (
        "from datetime import datetime as dt\n"
        "def stamp():\n"
        "    return dt.now()\n"
    )
    assert ids(src) == ["lint.wall-clock"]


def test_unrelated_local_named_now_is_not_flagged():
    src = (
        "def stamp(clock):\n"
        "    now = clock.now\n"
        "    return now()\n"
    )
    assert ids(src) == []


def test_function_level_alias_import_is_caught():
    src = (
        "def stamp():\n"
        "    from time import time as now\n"
        "    return now()\n"
    )
    assert ids(src) == ["lint.wall-clock"]


# -- lint.unseeded-rng through aliases --------------------------------------

def test_import_numpy_random_as_npr_is_caught():
    src = (
        "import numpy.random as npr\n"
        "def jitter(x):\n"
        "    return x + npr.normal()\n"
    )
    assert ids(src) == ["lint.unseeded-rng"]


def test_from_numpy_import_random_as_nr_is_caught():
    src = (
        "from numpy import random as nr\n"
        "def jitter(x):\n"
        "    return x + nr.random()\n"
    )
    assert ids(src) == ["lint.unseeded-rng"]


def test_from_random_import_as_is_caught():
    src = (
        "from random import random as roll\n"
        "def jitter(x):\n"
        "    return x + roll()\n"
    )
    assert ids(src) == ["lint.unseeded-rng"]


def test_unbound_np_root_still_means_numpy():
    # No import in scope (doc snippet / REPL paste): the conventional
    # `np` root is assumed to be numpy rather than silently skipped.
    src = "def jitter(x):\n    return x + np.random.normal()\n"
    assert ids(src) == ["lint.unseeded-rng"]


def test_np_bound_to_something_else_wins_over_convention():
    src = (
        "from myproject import notnumpy as np\n"
        "def jitter(x):\n"
        "    return x + np.random.normal()\n"
    )
    assert ids(src) == []


def test_aliased_default_rng_is_still_fine():
    src = (
        "import numpy.random as npr\n"
        "def jitter(x, seed):\n"
        "    rng = npr.default_rng(seed)\n"
        "    return x + rng.normal()\n"
    )
    assert ids(src) == []


def test_allow_comment_still_works_on_aliased_calls():
    src = (
        "from time import time as now\n"
        "def stamp():\n"
        "    return now()  # mpros: allow[lint.wall-clock]\n"
    )
    assert ids(src) == []
