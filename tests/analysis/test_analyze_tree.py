"""Whole-tree acceptance: the real src/repro is clean, and the
invariants the analyzer exists to protect actually trip it.

Each mutation test edits one real source file *in memory* and re-runs
the full interprocedural analysis — deleting the sequence stamp or
adding a second writer must fire ``conc.single-writer``; injecting a
wall-clock read into a report-feeding path must fire
``flow.clock-taints-report`` with the inducing chain.
"""

from pathlib import Path

import pytest

from repro.analysis.analyze import analyze_sources
from repro.analysis.output import Baseline

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"

STAMPED_WRITE = """\
            self.store.ingest_batch(
                fresh, fresh_ids, fresh_seqs if intake_seqs is not None else None
            )"""
UNSTAMPED_WRITE = "            self.store.ingest_batch(fresh, fresh_ids)"

ROGUE_WRITER = """

def rogue_write(worker: ShardWorker, reports: list, ids: list) -> None:
    worker.store.ingest_batch(reports, ids, None)
"""


@pytest.fixture(scope="module")
def tree_sources():
    sources = {}
    for path in sorted(SRC.rglob("*.py")):
        sources[str(path.relative_to(REPO))] = path.read_text(encoding="utf-8")
    assert len(sources) > 100
    return sources


def test_the_tree_is_clean_against_the_committed_baseline(tree_sources):
    report = analyze_sources(tree_sources)
    baseline = Baseline.load(REPO / "analysis" / "baseline.json")
    fresh, _known = baseline.split(report.diagnostics)
    assert fresh == (), "\n".join(d.render() for d in fresh)


def test_deleting_the_seq_stamp_fires_single_writer(tree_sources):
    shard = "src/repro/pdme/shard.py"
    assert STAMPED_WRITE in tree_sources[shard]
    mutated = dict(tree_sources)
    mutated[shard] = tree_sources[shard].replace(
        STAMPED_WRITE, UNSTAMPED_WRITE
    )
    report = analyze_sources(mutated)
    hits = [d for d in report.diagnostics
            if d.rule_id == "conc.single-writer"]
    assert hits, "dropping the sequence stamp must trip conc.single-writer"
    assert any(d.location.file == shard and "sequence stamp" in d.message
               for d in hits)


def test_a_second_writer_fires_single_writer(tree_sources):
    shard = "src/repro/pdme/shard.py"
    mutated = dict(tree_sources)
    mutated[shard] = tree_sources[shard] + ROGUE_WRITER
    report = analyze_sources(mutated)
    hits = [d for d in report.diagnostics
            if d.rule_id == "conc.single-writer"
            and d.symbol == "repro.pdme.shard.rogue_write"]
    assert hits, "a writer outside the owning worker must trip the rule"
    assert "does not own" in hits[0].message


def test_injected_wall_clock_in_report_path_fires_with_chain(tree_sources):
    fft = "src/repro/dsp/fft.py"
    lines = tree_sources[fft].splitlines()
    idx = next(i for i, ln in enumerate(lines)
               if ln.startswith("def spectrum("))
    while not lines[idx].rstrip().endswith(":"):
        idx += 1
    lines.insert(idx + 1, "    import time as _t; _t0 = _t.time()")
    mutated = dict(tree_sources)
    mutated[fft] = "\n".join(lines) + "\n"
    report = analyze_sources(mutated)
    hits = [d for d in report.diagnostics
            if d.rule_id == "flow.clock-taints-report"]
    assert hits, "a clock read feeding report construction must be flagged"
    diag = hits[0]
    # The chain walks from the report-adjacent anchor down to the origin.
    assert diag.chain, diag.render()
    assert "time.time()" in diag.chain[-1]
    assert "repro.dsp.fft.spectrum" in diag.chain[-1]
