"""The determinism/safety linter: each rule fires, allowlists hold,
and the shipped tree lints clean."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.rules import (
    BARE_EXCEPT,
    DEFAULT_RULES,
    FLOAT_EQUALITY,
    ITERATION_ORDER,
    UNSEEDED_RNG,
    WALL_CLOCK,
)
from repro.common.errors import AnalysisError

REPO = Path(__file__).resolve().parents[2]


def ids(source, path="src/repro/x.py", rules=DEFAULT_RULES):
    return [d.rule_id for d in lint_source(source, path, rules)]


# -- lint.wall-clock ---------------------------------------------------------

def test_wall_clock_flags_time_and_datetime_reads():
    src = (
        "import time, datetime\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
        "c = datetime.datetime.now()\n"
        "d = datetime.date.today()\n"
    )
    assert ids(src, rules=[WALL_CLOCK]) == ["lint.wall-clock"] * 4


def test_wall_clock_flags_bare_perf_counter_import():
    src = "from time import perf_counter\nt0 = perf_counter()\n"
    assert ids(src, rules=[WALL_CLOCK]) == ["lint.wall-clock"]


def test_wall_clock_ignores_simulated_clock_calls():
    src = "t = self.clock.now()\nu = kernel.now()\n"
    assert ids(src, rules=[WALL_CLOCK]) == []


def test_wall_clock_exempts_the_clock_module():
    src = "import time\nt = time.time()\n"
    assert ids(src, "src/repro/common/clock.py", [WALL_CLOCK]) == []


# -- lint.unseeded-rng -------------------------------------------------------

def test_unseeded_default_rng_flagged_seeded_ok():
    assert ids("rng = np.random.default_rng()\n", rules=[UNSEEDED_RNG]) == [
        "lint.unseeded-rng"
    ]
    assert ids("rng = np.random.default_rng(None)\n", rules=[UNSEEDED_RNG]) == [
        "lint.unseeded-rng"
    ]
    assert ids("rng = np.random.default_rng(42)\n", rules=[UNSEEDED_RNG]) == []
    assert ids("rng = np.random.default_rng(seed)\n", rules=[UNSEEDED_RNG]) == []


def test_legacy_numpy_and_stdlib_random_flagged():
    src = (
        "x = np.random.normal(0, 1)\n"
        "y = random.random()\n"
        "z = random.shuffle(items)\n"
    )
    assert ids(src, rules=[UNSEEDED_RNG]) == ["lint.unseeded-rng"] * 3


def test_generator_method_calls_not_flagged():
    # rng.random() on an explicit Generator is the blessed idiom.
    src = "x = rng.random()\ny = rng.normal(0, 1)\n"
    assert ids(src, rules=[UNSEEDED_RNG]) == []


def test_rng_module_exempt():
    src = "g = np.random.default_rng()\n"
    assert ids(src, "src/repro/common/rng.py", [UNSEEDED_RNG]) == []


# -- lint.iteration-order ----------------------------------------------------

def test_for_over_set_literal_flagged():
    assert ids("for x in {1, 2}:\n    pass\n", rules=[ITERATION_ORDER]) == [
        "lint.iteration-order"
    ]


def test_for_over_set_call_and_comprehension_flagged():
    src = (
        "for x in set(names):\n    pass\n"
        "out = [f(x) for x in {n.id for n in nodes}]\n"
    )
    assert ids(src, rules=[ITERATION_ORDER]) == ["lint.iteration-order"] * 2


def test_sorted_set_iteration_ok():
    src = "for x in sorted(set(names)):\n    pass\n"
    assert ids(src, rules=[ITERATION_ORDER]) == []


# -- lint.float-equality -----------------------------------------------------

def test_float_eq_flagged_in_sbfr_paths_only():
    src = "if x == 0.5:\n    pass\n"
    assert ids(src, "src/repro/sbfr/foo.py", [FLOAT_EQUALITY]) == [
        "lint.float-equality"
    ]
    assert ids(src, "src/repro/fusion/foo.py", [FLOAT_EQUALITY]) == [
        "lint.float-equality"
    ]
    # Outside the predicate modules the rule is silent.
    assert ids(src, "src/repro/dc/foo.py", [FLOAT_EQUALITY]) == []


def test_float_eq_integer_compare_ok():
    src = "if n == 3:\n    pass\nif status != 0:\n    pass\n"
    assert ids(src, "src/repro/sbfr/foo.py", [FLOAT_EQUALITY]) == []


def test_cmp_helper_with_float_equality_flagged():
    src = "g = cmp(Delta(0), '==', 0.5)\n"
    assert ids(src, "src/repro/sbfr/foo.py", [FLOAT_EQUALITY]) == [
        "lint.float-equality"
    ]


# -- lint.bare-except --------------------------------------------------------

def test_bare_except_flagged_typed_ok():
    src = (
        "try:\n    f()\nexcept:\n    pass\n"
        "try:\n    g()\nexcept ValueError:\n    pass\n"
    )
    assert ids(src, rules=[BARE_EXCEPT]) == ["lint.bare-except"]


# -- allowlist comments ------------------------------------------------------

def test_allow_comment_suppresses_named_rule():
    src = "t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]\n"
    assert ids(src, rules=[WALL_CLOCK]) == []


def test_allow_comment_other_rule_does_not_suppress():
    src = "t0 = time.perf_counter()  # mpros: allow[lint.bare-except]\n"
    assert ids(src, rules=[WALL_CLOCK]) == ["lint.wall-clock"]


def test_allow_comment_comma_list_and_wildcard():
    src = (
        "a = time.time()  # mpros: allow[lint.bare-except, lint.wall-clock]\n"
        "b = time.time()  # mpros: allow[*]\n"
        "c = time.time()\n"
    )
    diags = lint_source(src, "x.py", [WALL_CLOCK])
    assert [d.location.line for d in diags] == [3]


def test_unparseable_source_raises_analysis_error():
    with pytest.raises(AnalysisError):
        lint_source("def broken(:\n", "x.py", DEFAULT_RULES)


def test_missing_path_raises_analysis_error():
    with pytest.raises(AnalysisError):
        lint_paths([REPO / "no" / "such" / "dir"])


# -- the shipped tree --------------------------------------------------------

def test_src_repro_lints_clean():
    report = lint_paths([REPO / "src" / "repro"])
    assert report.ok, report.render()
    assert not report.warnings, report.render()


def test_examples_and_scripts_lint_clean():
    report = lint_paths(
        [REPO / "examples", REPO / "scripts", REPO / "benchmarks"]
    )
    assert report.ok, report.render()
