"""Adversarial corpus for the flow.* rules: each fires on the minimal
tainted program, stays quiet on the clean twin, and carries the
inducing call chain."""

import pytest

from repro.analysis.analyze import AnalyzeConfig, analyze_sources

REPORT_IMPORT = "from repro.protocol.report import FailurePredictionReport\n"
CANON_IMPORT = "from repro.protocol.canonical import canonical_dumps\n"


def rule_ids(report):
    return sorted(d.rule_id for d in report.diagnostics)


# -- flow.clock-taints-report ------------------------------------------------

CLOCK_TAINTED = {
    "src/myapp/leaf.py": (
        "from time import time as now\n"
        "def stamp():\n"
        "    return now()\n"
    ),
    "src/myapp/mid.py": (
        "from myapp.leaf import stamp\n"
        "def widen():\n"
        "    return stamp() * 2\n"
    ),
    "src/myapp/entry.py": (
        REPORT_IMPORT
        + "from myapp.mid import widen\n"
        "def produce(system):\n"
        "    t = widen()\n"
        "    return FailurePredictionReport(system, t)\n"
    ),
}


def test_clock_taints_report_fires_across_three_modules():
    report = analyze_sources(CLOCK_TAINTED)
    assert rule_ids(report) == ["flow.clock-taints-report"]
    (diag,) = report.diagnostics
    assert diag.symbol == "myapp.entry.produce"
    assert diag.location.file == "src/myapp/entry.py"
    # Chain: entry -> mid -> leaf, ending at the aliased time.time().
    assert len(diag.chain) == 3
    assert "myapp.entry.produce" in diag.chain[0]
    assert "myapp.mid.widen" in diag.chain[1]
    assert "time.time()" in diag.chain[2]


def test_clock_without_report_sink_is_quiet():
    sources = {k: v for k, v in CLOCK_TAINTED.items() if k != "src/myapp/entry.py"}
    assert rule_ids(analyze_sources(sources)) == []


def test_clock_origin_allow_comment_kills_the_taint():
    sources = dict(CLOCK_TAINTED)
    sources["src/myapp/leaf.py"] = (
        "from time import time as now\n"
        "def stamp():\n"
        "    return now()  # mpros: allow[flow.clock-taints-report]\n"
    )
    assert rule_ids(analyze_sources(sources)) == []


def test_clock_sink_allow_comment_suppresses_the_diagnostic():
    sources = dict(CLOCK_TAINTED)
    sources["src/myapp/entry.py"] = (
        REPORT_IMPORT
        + "from myapp.mid import widen\n"
        "def produce(system):\n"
        "    t = widen()  # mpros: allow[flow.clock-taints-report]\n"
        "    return FailurePredictionReport(system, t)\n"
    )
    assert rule_ids(analyze_sources(sources)) == []


# -- flow.rng-taints-fusion --------------------------------------------------

FUSION_CFG = AnalyzeConfig(fusion_prefixes=("myapp.fusion",))

RNG_TAINTED = {
    "src/myapp/jitter.py": (
        "import numpy.random as npr\n"
        "def wobble(x):\n"
        "    return x + npr.normal()\n"
    ),
    "src/myapp/fusion/engine.py": (
        "from myapp.jitter import wobble\n"
        "def fuse(masses):\n"
        "    return [wobble(m) for m in masses]\n"
    ),
}


def test_rng_taints_fusion_fires_through_the_aliased_import():
    report = analyze_sources(RNG_TAINTED, FUSION_CFG)
    assert rule_ids(report) == ["flow.rng-taints-fusion"]
    (diag,) = report.diagnostics
    assert diag.symbol == "myapp.fusion.engine.fuse"
    assert "numpy.random.normal" in diag.chain[-1]


def test_seeded_rng_in_fusion_is_quiet():
    sources = {
        "src/myapp/fusion/engine.py": (
            "import numpy as np\n"
            "def fuse(masses, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.permutation(masses)\n"
        ),
    }
    assert rule_ids(analyze_sources(sources, FUSION_CFG)) == []


def test_rng_outside_fusion_reach_is_quiet():
    sources = dict(RNG_TAINTED)
    sources["src/myapp/fusion/engine.py"] = (
        "def fuse(masses):\n"
        "    return sorted(masses)\n"
    )
    assert rule_ids(analyze_sources(sources, FUSION_CFG)) == []


# -- flow.order-taints-canonical ---------------------------------------------

ORDER_TAINTED = {
    "src/myapp/scan.py": (
        "import os\n"
        "def names(root):\n"
        "    return os.listdir(root)\n"
    ),
    "src/myapp/export.py": (
        CANON_IMPORT
        + "from myapp.scan import names\n"
        "def dump(root):\n"
        "    return canonical_dumps({'names': names(root)})\n"
    ),
}


def test_order_taints_canonical_fires_with_chain():
    report = analyze_sources(ORDER_TAINTED)
    assert rule_ids(report) == ["flow.order-taints-canonical"]
    (diag,) = report.diagnostics
    assert diag.symbol == "myapp.export.dump"
    assert "os.listdir" in diag.chain[-1]


def test_set_iteration_feeding_canonical_fires():
    sources = {
        "src/myapp/export.py": (
            CANON_IMPORT
            + "def dump(items):\n"
            "    rows = [i for i in set(items)]\n"
            "    return canonical_dumps(rows)\n"
        ),
    }
    report = analyze_sources(sources)
    assert rule_ids(report) == ["flow.order-taints-canonical"]


def test_order_without_canonical_sink_is_quiet():
    sources = {k: v for k, v in ORDER_TAINTED.items() if k != "src/myapp/export.py"}
    assert rule_ids(analyze_sources(sources)) == []


# -- dedup: one diagnostic per origin, not per sink --------------------------

def test_one_diagnostic_per_origin_even_with_many_callers():
    sources = dict(CLOCK_TAINTED)
    sources["src/myapp/entry2.py"] = (
        REPORT_IMPORT
        + "from myapp.mid import widen\n"
        "def produce_other(system):\n"
        "    return FailurePredictionReport(system, widen())\n"
    )
    report = analyze_sources(sources)
    assert rule_ids(report) == ["flow.clock-taints-report"]
