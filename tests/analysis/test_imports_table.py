"""Alias-resolving import tables: every Python import form resolves."""

import ast

from repro.analysis.imports import ImportTable, module_name_for_path


def table(source, module=""):
    return ImportTable.from_module(ast.parse(source), module)


def test_plain_import_binds_root():
    t = table("import os.path\n")
    assert t.qualified("os") == "os"
    assert t.resolve("os.path.join") == "os.path.join"


def test_import_as_binds_alias_to_full_target():
    t = table("import numpy.random as npr\n")
    assert t.qualified("npr") == "numpy.random"
    assert t.resolve("npr.normal") == "numpy.random.normal"


def test_from_import_and_from_import_as():
    t = table("from time import time as now, perf_counter\n")
    assert t.qualified("now") == "time.time"
    assert t.qualified("perf_counter") == "time.perf_counter"
    assert t.resolve("now") == "time.time"


def test_relative_imports_resolve_against_the_package():
    t = table("from . import shard\nfrom ..common import clock as ck\n",
              module="repro.pdme.router")
    assert t.qualified("shard") == "repro.pdme.shard"
    assert t.qualified("ck") == "repro.common.clock"


def test_function_level_imports_are_seen():
    t = table("def f():\n    from time import time as now\n    return now()\n")
    assert t.qualified("now") == "time.time"


def test_unbound_roots_resolve_unchanged():
    t = table("import os\n")
    assert t.resolve("self.clock.now") == "self.clock.now"
    assert t.qualified("clock") is None


def test_star_imports_are_ignored():
    t = table("from os.path import *\n")
    assert t.bound_names() == frozenset()


def test_module_name_for_src_rooted_paths():
    assert module_name_for_path("src/repro/pdme/shard.py") == "repro.pdme.shard"
    assert module_name_for_path("src/repro/analysis/__init__.py") == (
        "repro.analysis"
    )


def test_module_name_for_loose_paths_is_the_stem():
    assert module_name_for_path("corpus.py") == "corpus"
