"""Adversarial corpus for the conc.* rules: firing and non-firing
cases for every rule id."""

from repro.analysis.analyze import AnalyzeConfig, analyze_sources

STORE_IMPORT = "from repro.oosm.persistence import ReportStore\n"
POOL_IMPORT = "from concurrent.futures import ProcessPoolExecutor\n"


def rule_ids(report):
    return sorted(d.rule_id for d in report.diagnostics)


def conc_ids(report):
    return sorted(
        d.rule_id for d in report.diagnostics if d.rule_id.startswith("conc.")
    )


# -- conc.single-writer ------------------------------------------------------

OWNER_OK = {
    "src/myapp/worker.py": (
        STORE_IMPORT
        + "class Worker:\n"
        "    def __init__(self, path):\n"
        "        self.store = ReportStore(path)\n"
        "    def ingest_batch(self, reports, ids, intake_seqs):\n"
        "        self.store.ingest_batch(reports, ids, intake_seqs)\n"
    ),
}


def test_owner_stamped_write_is_clean():
    assert conc_ids(analyze_sources(OWNER_OK)) == []


def test_write_to_someone_elses_store_fires():
    sources = {
        "src/myapp/rogue.py": (
            STORE_IMPORT
            + "def sneak(store: ReportStore, reports, ids):\n"
            "    store.ingest_batch(reports, ids, None)\n"
        ),
    }
    report = analyze_sources(sources)
    assert conc_ids(report) == ["conc.single-writer"]
    (diag,) = report.diagnostics
    assert "does not own" in diag.message


def test_unstamped_write_with_seq_param_fires():
    sources = {
        "src/myapp/worker.py": (
            STORE_IMPORT
            + "class Worker:\n"
            "    def __init__(self, path):\n"
            "        self.store = ReportStore(path)\n"
            "    def ingest_batch(self, reports, ids, intake_seqs):\n"
            "        self.store.ingest_batch(reports, ids)\n"
        ),
    }
    report = analyze_sources(sources)
    assert conc_ids(report) == ["conc.single-writer"]
    (diag,) = report.diagnostics
    assert "sequence stamp" in diag.message


def test_function_local_store_is_clean():
    sources = {
        "src/myapp/bench.py": (
            STORE_IMPORT
            + "def run(path, reports, ids):\n"
            "    store = ReportStore(path)\n"
            "    store.ingest_batch(reports, ids, None)\n"
        ),
    }
    assert conc_ids(analyze_sources(sources)) == []


def test_single_writer_allow_comment_holds():
    sources = {
        "src/myapp/rogue.py": (
            STORE_IMPORT
            + "def sneak(store: ReportStore, reports, ids):\n"
            "    store.ingest_batch(reports, ids, None)"
            "  # mpros: allow[conc.single-writer]\n"
        ),
    }
    assert conc_ids(analyze_sources(sources)) == []


# -- conc.unpickleable-capture -----------------------------------------------

def test_lambda_into_pool_fires():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x + 1, items))\n"
        ),
    }
    report = analyze_sources(sources)
    assert "conc.unpickleable-capture" in rule_ids(report)


def test_bound_method_into_pool_fires():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "class Runner:\n"
            "    def work(self, x):\n"
            "        return x\n"
            "    def run(self, items):\n"
            "        with ProcessPoolExecutor() as pool:\n"
            "            return list(pool.map(self.work, items))\n"
        ),
    }
    report = analyze_sources(sources)
    assert "conc.unpickleable-capture" in rule_ids(report)


def test_nested_function_into_pool_fires():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "def run(items):\n"
            "    def work(x):\n"
            "        return x\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        ),
    }
    report = analyze_sources(sources)
    assert "conc.unpickleable-capture" in rule_ids(report)


def test_module_level_worker_into_pool_is_clean():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "def work(x):\n"
            "    return x\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        ),
    }
    assert conc_ids(analyze_sources(sources)) == []


# -- conc.fork-unsafe-global / conc.cross-shard-state ------------------------

GLOBAL_MUTATING_WORKER = {
    "src/myapp/par.py": (
        POOL_IMPORT
        + "_CACHE = {}\n"
        "def work(x):\n"
        "    _CACHE[x] = x + 1\n"
        "    return _CACHE[x]\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(work, items))\n"
    ),
}


def test_worker_mutating_module_global_fires_fork_unsafe():
    report = analyze_sources(GLOBAL_MUTATING_WORKER)
    ids = rule_ids(report)
    assert "conc.fork-unsafe-global" in ids
    fork = [d for d in report.diagnostics
            if d.rule_id == "conc.fork-unsafe-global"][0]
    assert "myapp.par._CACHE" in fork.message
    assert any("work" in hop for hop in fork.chain)


def test_worker_reading_mutated_global_fires_cross_shard():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "_LIMITS = {}\n"
            "def configure(k, v):\n"
            "    _LIMITS[k] = v\n"
            "def work(x):\n"
            "    return _LIMITS.get(x, 0)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        ),
    }
    report = analyze_sources(sources)
    assert "conc.cross-shard-state" in rule_ids(report)


def test_read_only_module_table_is_clean():
    sources = {
        "src/myapp/par.py": (
            POOL_IMPORT
            + "_TABLE = {1: 'a', 2: 'b'}\n"
            "def work(x):\n"
            "    return _TABLE.get(x)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        ),
    }
    ids = rule_ids(analyze_sources(sources))
    assert "conc.cross-shard-state" not in ids
    assert "conc.fork-unsafe-global" not in ids


def test_global_mutation_without_pool_is_clean():
    sources = {
        "src/myapp/solo.py": (
            "_CACHE = {}\n"
            "def work(x):\n"
            "    _CACHE[x] = x + 1\n"
            "    return _CACHE[x]\n"
        ),
    }
    assert conc_ids(analyze_sources(sources)) == []


# -- conc.blocking-in-tick ---------------------------------------------------

TICK_CFG = AnalyzeConfig(
    tick_roots=("myapp.daemon.Daemon.tick",),
    tick_exempt=("myapp.kernel",),
)

BLOCKING_TICK = {
    "src/myapp/daemon.py": (
        "import time\n"
        "class Daemon:\n"
        "    def tick(self):\n"
        "        self._advance()\n"
        "    def _advance(self):\n"
        "        time.sleep(0.1)\n"
    ),
}


def test_sleep_in_tick_stage_fires_with_chain():
    report = analyze_sources(BLOCKING_TICK, TICK_CFG)
    assert rule_ids(report) == ["conc.blocking-in-tick"]
    (diag,) = report.diagnostics
    assert diag.symbol == "myapp.daemon.Daemon._advance"
    assert "myapp.daemon.Daemon.tick" in diag.chain[0]
    assert "time.sleep" in diag.chain[-1]


def test_filesystem_write_in_tick_fires():
    sources = {
        "src/myapp/daemon.py": (
            "class Daemon:\n"
            "    def tick(self):\n"
            "        with open('state.json', 'w') as fp:\n"
            "            fp.write('{}')\n"
        ),
    }
    report = analyze_sources(sources, TICK_CFG)
    assert rule_ids(report) == ["conc.blocking-in-tick"]


def test_blocking_inside_exempt_kernel_slice_is_clean():
    sources = dict(BLOCKING_TICK)
    sources["src/myapp/daemon.py"] = (
        "from myapp.kernel import run_budgeted\n"
        "class Daemon:\n"
        "    def tick(self):\n"
        "        run_budgeted()\n"
    )
    sources["src/myapp/kernel.py"] = (
        "import sqlite3\n"
        "def run_budgeted():\n"
        "    return sqlite3.connect(':memory:')\n"
    )
    assert rule_ids(analyze_sources(sources, TICK_CFG)) == []


def test_blocking_outside_tick_reach_is_clean():
    sources = {
        "src/myapp/daemon.py": (
            "import time\n"
            "class Daemon:\n"
            "    def tick(self):\n"
            "        pass\n"
            "    def maintenance(self):\n"
            "        time.sleep(1.0)\n"
        ),
    }
    assert rule_ids(analyze_sources(sources, TICK_CFG)) == []


def test_blocking_in_tick_allow_comment_holds():
    sources = {
        "src/myapp/daemon.py": (
            "import time\n"
            "class Daemon:\n"
            "    def tick(self):\n"
            "        time.sleep(0.1)  # mpros: allow[conc.blocking-in-tick]\n"
        ),
    }
    assert rule_ids(analyze_sources(sources, TICK_CFG)) == []
