"""Guard-folding edge cases for the SBFR control-flow analysis.

Pins the three-valued semantics of ``static_truth`` at the Elapsed()
domain boundaries (∆T only takes values 0, 1, 2, ...) and through
nested And/Or/Not folds where one side is unknown.
"""

import math

import pytest

from repro.analysis.cfg import (
    build_cfg,
    dead_timer_compares,
    static_truth,
)
from repro.sbfr.spec import (
    Always,
    And,
    Compare,
    Const,
    Elapsed,
    Input,
    MachineSpec,
    Not,
    Or,
    State,
    Transition,
)


def elapsed(op, c):
    return Compare(op, Elapsed(), Const(c))


# -- Elapsed() boundary semantics --------------------------------------------

@pytest.mark.parametrize(
    "op, c, expected",
    [
        # < : unsatisfiable at and below zero, open above.
        ("<", 0.0, False),
        ("<", -1.0, False),
        ("<", 0.5, None),
        ("<", 1.0, None),
        # <= : only strictly-negative bounds are unsatisfiable.
        ("<=", -0.5, False),
        ("<=", 0.0, None),
        # > : tautology for negative bounds, open at zero.
        (">", -1.0, True),
        (">", 0.0, None),
        # >= : tautology at and below zero.
        (">=", 0.0, True),
        (">=", -2.5, True),
        (">=", 0.001, None),
        # == : negative or fractional constants can never match the
        # integer timer domain.
        ("==", -1.0, False),
        ("==", 2.5, False),
        ("==", 2.0, None),
        ("==", 0.0, None),
        # != : the mirror image.
        ("!=", -1.0, True),
        ("!=", 2.5, True),
        ("!=", 2.0, None),
    ],
)
def test_elapsed_boundaries(op, c, expected):
    assert static_truth(elapsed(op, c)) is expected


@pytest.mark.parametrize(
    "op, expected",
    [("<", False), ("<=", False), (">", False), (">=", False),
     ("==", False), ("!=", True)],
)
def test_elapsed_against_nan_is_decided(op, expected):
    assert static_truth(elapsed(op, math.nan)) is expected


def test_const_on_the_left_flips_the_operator():
    # 0 > Elapsed()  ==  Elapsed() < 0  ==  always false.
    assert static_truth(Compare(">", Const(0.0), Elapsed())) is False
    # -1 < Elapsed()  ==  Elapsed() > -1  ==  always true.
    assert static_truth(Compare("<", Const(-1.0), Elapsed())) is True
    # 2 == Elapsed() stays open; 2.5 == Elapsed() is dead.
    assert static_truth(Compare("==", Const(2.0), Elapsed())) is None
    assert static_truth(Compare("==", Const(2.5), Elapsed())) is False


def test_const_const_compare_folds_exactly():
    assert static_truth(Compare("<=", Const(1.0), Const(1.0))) is True
    assert static_truth(Compare("!=", Const(1.0), Const(1.0))) is False


UNKNOWN = Compare(">", Input(0), Const(5.0))


def test_runtime_input_is_unknown():
    assert static_truth(UNKNOWN) is None


# -- nested three-valued folds -----------------------------------------------

def test_and_short_circuits_on_a_false_side():
    assert static_truth(And(UNKNOWN, elapsed("<", 0.0))) is False
    assert static_truth(And(elapsed("<", 0.0), UNKNOWN)) is False


def test_and_with_a_true_side_stays_unknown():
    assert static_truth(And(elapsed(">=", 0.0), UNKNOWN)) is None


def test_or_short_circuits_on_a_true_side():
    assert static_truth(Or(UNKNOWN, elapsed(">=", 0.0))) is True


def test_or_with_a_false_side_stays_unknown():
    assert static_truth(Or(elapsed("<", 0.0), UNKNOWN)) is None


def test_not_propagates_unknown():
    assert static_truth(Not(UNKNOWN)) is None
    assert static_truth(Not(elapsed("<", 0.0))) is True
    assert static_truth(Not(Always())) is False


def test_deep_nested_fold_resolves_through_unknowns():
    # (unknown AND dead-timer) OR NOT(unknown) -> False OR unknown -> None
    cond = Or(And(UNKNOWN, elapsed("<", 0.0)), Not(UNKNOWN))
    assert static_truth(cond) is None
    # ((unknown OR tautology) AND NOT(dead)) -> True AND True -> True
    cond = And(Or(UNKNOWN, elapsed(">=", 0.0)), Not(elapsed("==", 2.5)))
    assert static_truth(cond) is True


# -- dead_timer_compares -----------------------------------------------------

def test_dead_timer_compares_finds_nested_unsatisfiable_guards():
    dead_a = elapsed("<", 0.0)
    dead_b = elapsed("==", 2.5)
    cond = Or(And(UNKNOWN, dead_a), Not(dead_b))
    assert set(dead_timer_compares(cond)) == {dead_a, dead_b}


def test_dead_timer_compares_ignores_non_timer_falsehoods():
    # A constant falsehood with no Elapsed() in it is not a timer bug.
    cond = And(Compare("<", Const(1.0), Const(0.0)), elapsed(">=", 1.0))
    assert dead_timer_compares(cond) == []


# -- reachability over folded edges ------------------------------------------

def test_dead_edges_do_not_contribute_reachability():
    spec = MachineSpec(
        name="m",
        states=(State("idle"), State("armed"), State("orphan")),
        transitions=(
            Transition(0, 1, elapsed(">=", 1.0)),
            Transition(0, 2, elapsed("<", 0.0)),  # statically dead
            Transition(1, 0, Always()),
        ),
    )
    cfg = build_cfg(spec)
    assert cfg.reachable_states() == frozenset({0, 1})
    verdicts = [e.verdict for e in cfg.edges]
    assert verdicts == [None, False, True]
