"""Verifier soundness against execution.

Property: any watch-pair deployment the verifier passes executes
*identically* on the AST interpreter and the vectorized watch grid —
full state/status/counter trajectories, not just final values.  The
verifier is the static gate in front of exactly these executors, so a
machine it blesses must not diverge between them.

Also: the canonical library deployments survive an encode → wire →
``verify_bytes`` round trip in their deployed slots.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_bytes, verify_set
from repro.sbfr import (
    SbfrSystem,
    SbfrWatchGrid,
    count_threshold_machine,
    level_alarm_machine,
)
from repro.sbfr.encode import encode_machine
from repro.sbfr.library import canonical_deployments


@st.composite
def watch_deployments(draw):
    n_watches = draw(st.integers(min_value=1, max_value=4))
    thresholds = [
        draw(st.integers(-8, 8)) / 4.0 for _ in range(n_watches)
    ]
    hold = draw(st.integers(min_value=0, max_value=4))
    repeat = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return thresholds, hold, repeat, seed


@settings(max_examples=25, deadline=None)
@given(watch_deployments())
def test_verified_deployment_runs_identically_on_all_executors(deploy):
    thresholds, hold, repeat, seed = deploy
    n = len(thresholds)

    specs = []
    for i, thr in enumerate(thresholds):
        specs.append(
            level_alarm_machine(channel=i, threshold=thr, hold_cycles=hold)
        )
        specs.append(
            count_threshold_machine(watched_machine=2 * i, count=repeat)
        )

    # The static gate: the deployment must verify clean...
    report = verify_set(specs, n_channels=n)
    assert report.ok, report.render()

    # ...and each machine must survive the wire in its deployed slot.
    for idx, spec in enumerate(specs):
        wire = verify_bytes(
            encode_machine(spec),
            name=spec.name,
            self_index=idx,
            n_channels=n,
            n_machines=len(specs),
        )
        assert wire.ok, wire.render()

    # Then the executors must agree cycle for cycle.
    interp = SbfrSystem(channels=[f"pv{i}" for i in range(n)])
    for spec in specs:
        interp.add_machine(spec)
    assert interp.verify().ok

    grid = SbfrWatchGrid(
        np.array(thresholds), hold_cycles=hold, repeat_count=repeat
    )
    row = grid.add_row()

    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 1.5, size=(300, n))
    present = rng.random(size=(300, n)) < 0.85
    consume = rng.random(size=(300, n)) < 0.05

    for c in range(300):
        sample = {
            f"pv{i}": float(values[c, i]) for i in range(n) if present[c, i]
        }
        interp.cycle(sample)
        cstatus = grid.cycle_rows(
            np.array([row]), values[c][np.newaxis, :],
            present[c][np.newaxis, :],
        )[0]
        for i in range(n):
            level, counter = interp.states[2 * i], interp.states[2 * i + 1]
            where = f"cycle {c} watch {i}"
            assert grid.lstate[row, i] == level.state, where
            assert grid.lstatus[row, i] == level.status, where
            assert grid.cstate[row, i] == counter.state, where
            assert cstatus[i] == counter.status, where
            assert grid.ccount[row, i] == counter.locals[0], where
            if consume[c, i]:
                interp.set_status(2 * i + 1, 0)
                grid.consume(row, i)


def test_library_machines_round_trip_through_verify_bytes():
    for name, (channels, specs) in sorted(canonical_deployments().items()):
        for idx, spec in enumerate(specs):
            report = verify_bytes(
                encode_machine(spec),
                name=f"{name}/{spec.name}",
                self_index=idx,
                n_channels=len(channels),
                n_machines=len(specs),
            )
            assert report.ok, report.render()
