"""Machine-readable output formats and the findings baseline."""

import json

import pytest

from repro.analysis.output import (
    Baseline,
    BaselineEntry,
    diagnostic_fingerprint,
    render_jsonl,
    render_sarif,
)
from repro.analysis.report import Diagnostic, Location, Severity
from repro.common.errors import AnalysisError


def diag(rule="flow.clock-taints-report", file="src/a.py", line=10,
         symbol="a.f", severity=Severity.ERROR, chain=()):
    return Diagnostic(
        rule_id=rule,
        severity=severity,
        location=Location(file=file, line=line),
        message=f"{rule} fired",
        suggestion="do the right thing",
        symbol=symbol,
        chain=tuple(chain),
    )


# -- fingerprints ------------------------------------------------------------

def test_fingerprint_is_line_independent():
    a = diag(line=10)
    b = diag(line=99)
    assert diagnostic_fingerprint(a) == diagnostic_fingerprint(b)


def test_fingerprint_distinguishes_rule_file_and_symbol():
    base = diagnostic_fingerprint(diag())
    assert diagnostic_fingerprint(diag(rule="conc.single-writer")) != base
    assert diagnostic_fingerprint(diag(file="src/b.py")) != base
    assert diagnostic_fingerprint(diag(symbol="a.g")) != base


# -- jsonl -------------------------------------------------------------------

def test_jsonl_is_one_parseable_object_per_line():
    out = render_jsonl([
        diag(chain=("a.f (src/a.py:3)", "time.time()")),
        diag(rule="conc.blocking-in-tick", severity=Severity.WARNING),
    ])
    lines = out.splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["rule"] == "flow.clock-taints-report"
    assert first["file"] == "src/a.py"
    assert first["line"] == 10
    assert first["symbol"] == "a.f"
    assert first["chain"] == ["a.f (src/a.py:3)", "time.time()"]
    assert json.loads(lines[1])["severity"] == "warning"


def test_jsonl_of_nothing_is_empty():
    assert render_jsonl([]) == ""


# -- sarif -------------------------------------------------------------------

def test_sarif_structure_and_levels():
    out = render_sarif([
        diag(),
        diag(rule="conc.blocking-in-tick", severity=Severity.WARNING,
             chain=("tick (src/a.py:3)",)),
    ])
    log = json.loads(out)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "mpros"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert set(rule_ids) == {"flow.clock-taints-report",
                             "conc.blocking-in-tick"}
    first, second = run["results"]
    assert first["level"] == "error"
    assert second["level"] == "warning"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/a.py"
    assert loc["region"]["startLine"] == 10
    assert second["properties"]["chain"] == ["tick (src/a.py:3)"]
    assert first["properties"]["symbol"] == "a.f"


def test_sarif_without_file_has_no_location():
    log = json.loads(render_sarif([diag(file=None, line=None)]))
    (result,) = log["runs"][0]["results"]
    assert "locations" not in result


# -- baseline ----------------------------------------------------------------

def test_missing_baseline_file_is_empty(tmp_path):
    b = Baseline.load(tmp_path / "nope.json")
    assert b.entries == ()
    assert not b.suppresses(diag())


def test_baseline_split_by_fingerprint(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{
            "rule": "flow.clock-taints-report",
            "file": "src/a.py",
            "symbol": "a.f",
            "reason": "legacy timestamp, tracked in #12",
        }],
    }))
    b = Baseline.load(path)
    known_diag = diag(line=123)  # different line, same fingerprint
    fresh_diag = diag(symbol="a.g")
    fresh, known = b.split([known_diag, fresh_diag])
    assert fresh == (fresh_diag,)
    assert known == (known_diag,)


def test_malformed_baseline_raises_analysis_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(AnalysisError, match="unreadable baseline"):
        Baseline.load(path)
    path.write_text(json.dumps({"entries": [{"rule": "x"}]}))
    with pytest.raises(AnalysisError, match="missing field"):
        Baseline.load(path)
    path.write_text(json.dumps({"entries": ["just-a-string"]}))
    with pytest.raises(AnalysisError, match="malformed baseline entry"):
        Baseline.load(path)


def test_baseline_round_trips_through_to_json(tmp_path):
    entries = [
        BaselineEntry("conc.single-writer", "src/b.py", "b.g", "bench"),
        BaselineEntry("flow.clock-taints-report", "src/a.py", "a.f", "legacy"),
    ]
    path = tmp_path / "baseline.json"
    path.write_text(Baseline(entries).to_json())
    again = Baseline.load(path)
    assert sorted(again.entries, key=BaselineEntry.key) == sorted(
        entries, key=BaselineEntry.key
    )


def test_committed_baseline_is_loadable_and_currently_empty():
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    b = Baseline.load(repo / "analysis" / "baseline.json")
    assert b.entries == ()
