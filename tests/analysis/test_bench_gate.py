"""The bench-regression gate script: tolerant of baseline drift.

A result document carrying a stage the committed baseline does not know
must produce a warning naming the key and exit 0 — not crash with a
KeyError — so adding a benchmark stage does not break CI until its
baseline lands.
"""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", REPO / "scripts" / "check_bench_regression.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


def test_known_stages_pass(tmp_path, capsys):
    gate = load_gate()
    result = write(tmp_path, "result.json", {"ratios": {"a": 2.0}})
    baseline = write(tmp_path, "baseline.json", {"ratios": {"a": 1.5}})
    assert gate.check(result, baseline) == 0
    assert "passed" in capsys.readouterr().out


def test_regression_fails(tmp_path, capsys):
    gate = load_gate()
    result = write(tmp_path, "result.json", {"ratios": {"a": 1.0}})
    baseline = write(tmp_path, "baseline.json", {"ratios": {"a": 2.0}})
    assert gate.check(result, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_stage_missing_from_baseline_warns_and_exits_zero(tmp_path, capsys):
    gate = load_gate()
    result = write(
        tmp_path, "result.json", {"ratios": {"a": 2.0, "new_stage": 1.1}}
    )
    baseline = write(tmp_path, "baseline.json", {"ratios": {"a": 1.5}})
    assert gate.check(result, baseline) == 0
    out = capsys.readouterr().out
    assert "warning" in out
    assert "new_stage" in out  # the offending key is named


def test_baseline_without_ratios_section_does_not_crash(tmp_path, capsys):
    gate = load_gate()
    result = write(tmp_path, "result.json", {"ratios": {"a": 2.0}})
    baseline = write(tmp_path, "baseline.json", {})
    assert gate.check(result, baseline) == 0
    assert "warning" in capsys.readouterr().out


def test_stage_missing_from_result_still_fails(tmp_path, capsys):
    gate = load_gate()
    result = write(tmp_path, "result.json", {"ratios": {}})
    baseline = write(tmp_path, "baseline.json", {"ratios": {"a": 1.5}})
    assert gate.check(result, baseline) == 1
    assert "missing" in capsys.readouterr().out


def test_evaluate_is_pure_and_tolerance_bounded():
    gate = load_gate()
    # Exactly at the floor (baseline * tolerance) passes; a hair under fails.
    at_floor = gate.evaluate({"a": 0.8}, {"a": 1.0}, tolerance=0.8)
    assert at_floor.passed and not at_floor.warnings
    under = gate.evaluate({"a": 0.7999}, {"a": 1.0}, tolerance=0.8)
    assert not under.passed
    assert "a:" in under.failures[0]


def test_evaluate_separates_warnings_from_failures():
    gate = load_gate()
    report = gate.evaluate({"new": 5.0}, {"gated": 2.0})
    # The ungated stage warns; the unmeasured gated stage fails.
    assert any("new" in w for w in report.warnings)
    assert any("gated" in f for f in report.failures)
    assert not report.passed


def test_evaluate_empty_inputs_pass():
    gate = load_gate()
    report = gate.evaluate({}, {})
    assert report.passed
    assert report.lines == [] and report.warnings == []


def test_optional_stage_missing_from_result_warns(tmp_path, capsys):
    gate = load_gate()
    result = write(tmp_path, "result.json", {"ratios": {"a": 2.0}})
    baseline = write(
        tmp_path,
        "baseline.json",
        {"ratios": {"a": 1.5, "newer": 3.0}, "optional": ["newer"]},
    )
    assert gate.check(result, baseline) == 0
    out = capsys.readouterr().out
    assert "warning" in out and "newer" in out


def test_optional_stage_present_is_still_gated(tmp_path, capsys):
    gate = load_gate()
    # Optional only affects absence: a measured regression still fails.
    result = write(tmp_path, "result.json", {"ratios": {"newer": 1.0}})
    baseline = write(
        tmp_path,
        "baseline.json",
        {"ratios": {"newer": 3.0}, "optional": ["newer"]},
    )
    assert gate.check(result, baseline) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_evaluate_optional_param_defaults_to_required():
    gate = load_gate()
    report = gate.evaluate({}, {"a": 1.0})
    assert not report.passed
    report = gate.evaluate({}, {"a": 1.0}, optional=("a",))
    assert report.passed
    assert any("a" in w for w in report.warnings)


def test_pre_pr_result_checks_against_committed_baseline(tmp_path, capsys):
    # A result document from before the scoring stage (no
    # score_bootstrap_speedup) must still pass the committed baseline.
    gate = load_gate()
    baseline_path = REPO / "benchmarks" / "baseline.json"
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    old = {k: v for k, v in doc["ratios"].items() if k not in doc["optional"]}
    result = write(tmp_path, "result.json", {"ratios": old})
    assert gate.check(result, str(baseline_path)) == 0
    assert "warning" in capsys.readouterr().out


def test_shard_metadata_gates_against_exact_baseline_key():
    gate = load_gate()
    # The exactly matching baseline key wins over the base-name entry.
    report = gate.evaluate(
        {"shard_ingest_speedup@shards=4": 1.0},
        {"shard_ingest_speedup": 0.5, "shard_ingest_speedup@shards=4": 2.0},
        optional=("shard_ingest_speedup",),
    )
    assert not report.passed
    assert "shard_ingest_speedup@shards=4" in report.failures[0]


def test_shard_metadata_falls_back_to_base_name():
    gate = load_gate()
    # No exact key: the per-shard measurement is compared against the
    # base-name floor instead of being warned-and-skipped.
    ok = gate.evaluate(
        {"shard_ingest_speedup@shards=4": 3.0}, {"shard_ingest_speedup": 2.5}
    )
    assert ok.passed and not ok.warnings
    assert any("baseline key 'shard_ingest_speedup'" in line for line in ok.lines)
    bad = gate.evaluate(
        {"shard_ingest_speedup@shards=4": 1.0}, {"shard_ingest_speedup": 2.5}
    )
    assert not bad.passed


def test_base_floor_covered_by_parameterized_measurements():
    gate = load_gate()
    # A baseline base name satisfied only via name@shards=N entries is
    # not "missing from bench result".
    report = gate.evaluate(
        {"shard_ingest_speedup@shards=2": 3.0},
        {"shard_ingest_speedup": 2.5},
    )
    assert report.passed
    assert not report.failures and not report.warnings


def test_unmeasured_shard_count_is_optional_on_small_hosts():
    gate = load_gate()
    # A 1-core host emits no shard ratios at all; the optional listing
    # keeps the gate green with a warning.
    report = gate.evaluate(
        {"a": 2.0},
        {"a": 1.5, "shard_ingest_speedup@shards=4": 2.5},
        optional=("shard_ingest_speedup@shards=4",),
    )
    assert report.passed
    assert any("shard_ingest_speedup@shards=4" in w for w in report.warnings)


def test_metadata_with_unknown_base_still_warns():
    gate = load_gate()
    report = gate.evaluate({"mystery@shards=2": 1.0}, {"a": 1.0})
    assert any("mystery@shards=2" in w for w in report.warnings)
    assert not report.passed  # 'a' is still missing from the result


def test_committed_baseline_matches_bench_stages(tmp_path, capsys):
    # The real baseline file gates a result shaped like `mpros bench`
    # output: every committed key verifies against itself cleanly.
    gate = load_gate()
    baseline_path = REPO / "benchmarks" / "baseline.json"
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    result = write(tmp_path, "result.json", {"ratios": doc["ratios"]})
    assert gate.check(result, str(baseline_path)) == 0
