"""The §6.3 'closer look' loop: PDME-side control of DC behaviour.

"Under control of the System Executive running in the PDME ..., new
finite-state machines may be downloaded into the smart sensor.  This
will allow the behavior of the sensor to adapt to its data in
appropriate ways.  It will have, for instance, the capability to take
a 'closer look' at a problem that has been discovered."
"""

import base64

import numpy as np
import pytest

from repro import build_mpros_system
from repro.algorithms.sbfr_source import SbfrKnowledgeSource, SbfrWatch
from repro.algorithms.base import SourceContext
from repro.plant.faults import FaultKind, seeded
from repro.sbfr import encode_machine, level_alarm_machine


def pdme_endpoint(system):
    # The PDME's endpoint is attached as "pdme"; reuse a DC endpoint to
    # issue control calls in tests (any client may command the DC,
    # §5.8).  We create a dedicated client endpoint instead.
    from repro.netsim.rpc import RpcEndpoint

    return RpcEndpoint("client:test", system.network, system.kernel)


# -- install_machine on the source directly ---------------------------------------

def test_install_machine_reports_on_fire():
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
    )
    # Closer look: a tighter, faster alarm on the same channel.
    spec = level_alarm_machine(
        channel=src.channel_index("superheat_c"), threshold=6.0, hold_cycles=0
    )
    src.install_machine(spec, condition_id="mc:refrigerant-leak", severity=0.4)
    reports = []
    for t in range(4):
        ctx = SourceContext(
            sensed_object_id="obj:x", timestamp=float(t),
            process={"superheat_c": 8.0},  # above 6, below the stock 10
        )
        reports.extend(src.analyze(ctx))
    assert reports
    assert reports[0].machine_condition_id == "mc:refrigerant-leak"
    assert "closer-look" in reports[0].explanation


def test_installed_machine_fires_once_per_episode():
    src = SbfrKnowledgeSource(
        watches=(SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),),
    )
    spec = level_alarm_machine(channel=0, threshold=6.0, hold_cycles=0)
    src.install_machine(spec, "mc:refrigerant-leak")
    n = 0
    for t in range(6):
        ctx = SourceContext(
            sensed_object_id="obj:x", timestamp=float(t),
            process={"superheat_c": 8.0},
        )
        n += len(src.analyze(ctx))
    # Level alarm re-asserts while the excursion persists: one report
    # per cycle after entry is acceptable closer-look verbosity; the
    # key property is it stops when the signal recovers.
    assert n >= 1
    for t in range(6, 10):
        ctx = SourceContext(
            sensed_object_id="obj:x", timestamp=float(t),
            process={"superheat_c": 2.0},
        )
        assert src.analyze(ctx) == []


# -- the full RPC loop ----------------------------------------------------------------

def test_pdme_commands_dc_test_over_rpc():
    system = build_mpros_system(n_chillers=1, seed=0)
    system.inject_fault(
        system.units[0].motor, seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)
    )
    client = pdme_endpoint(system)
    acks = []
    client.call("dc:0", "command_test", {"name": "vibration-test"},
                on_reply=acks.append)
    system.kernel.run_until(system.kernel.now() + 5.0)
    assert acks and acks[0]["ran"] == "vibration-test"
    # The commanded test produced reports without waiting for the
    # 10-minute schedule.
    system.kernel.run_until(system.kernel.now() + 5.0)
    assert system.reports_received() > 0


def test_pdme_downloads_closer_look_machine():
    system = build_mpros_system(n_chillers=1, seed=1)
    client = pdme_endpoint(system)

    # Discover the DC's SBFR channel table.
    channels = []
    client.call("dc:0", "list_channels", {},
                on_reply=lambda r: channels.extend(r["channels"]))
    system.kernel.run_until(system.kernel.now() + 1.0)
    assert "superheat_c" in channels

    # Author and download a tighter superheat alarm.
    spec = level_alarm_machine(
        channel=channels.index("superheat_c"), threshold=6.0, hold_cycles=1
    )
    payload = {
        "machine_b64": base64.b64encode(encode_machine(spec)).decode(),
        "condition_id": "mc:refrigerant-leak",
        "severity": 0.35,
        "name": "closer-look-superheat",
    }
    acks = []
    client.call("dc:0", "download_machine", payload, on_reply=acks.append)
    system.kernel.run_until(system.kernel.now() + 1.0)
    assert acks and acks[0]["installed"] >= 0

    # A mild leak that the stock threshold (10 C) misses but the
    # downloaded 6 C machine catches.
    system.inject_fault(
        system.units[0].motor,
        seeded(FaultKind.REFRIGERANT_LEAK, onset=system.kernel.now(), severity=0.35),
    )
    system.run(hours=1.0)
    reports = system.model.reports_for(system.units[0].motor)
    closer = [r for r in reports if "closer-look" in r.explanation]
    assert closer, "downloaded machine never fired"
    assert closer[0].severity == pytest.approx(0.35)


def test_download_to_dc_without_sbfr_errors_cleanly():
    import numpy as np

    from repro.dc import DataConcentrator
    from repro.netsim import EventKernel, Network, RpcEndpoint

    kernel = EventKernel()
    net = Network(kernel, np.random.default_rng(0))
    dc_ep = RpcEndpoint("dc:0", net, kernel)
    client = RpcEndpoint("client", net, kernel)
    dc = DataConcentrator(
        dc_id="dc:0", kernel=kernel, sink=lambda r: None,
        rng=np.random.default_rng(0), sources=[],
    )
    dc.serve_on(dc_ep)
    errors = []
    client.call("dc:0", "list_channels", {}, on_error=errors.append)
    kernel.run()
    assert errors  # surfaced as an RPC error, not a crash


def test_misauthored_download_rejected_at_boundary():
    """A machine referencing channels/peers this DC lacks is refused at
    download time (RPC error), never installed."""
    system = build_mpros_system(n_chillers=1, seed=2)
    client = pdme_endpoint(system)
    bad = level_alarm_machine(channel=99, threshold=1.0)  # no such channel
    errors = []
    client.call(
        "dc:0", "download_machine",
        {
            "machine_b64": base64.b64encode(encode_machine(bad)).decode(),
            "condition_id": "mc:x",
        },
        on_error=errors.append,
    )
    system.kernel.run_until(system.kernel.now() + 1.0)
    assert errors and "channel 99" in str(errors[0])
    # The DC keeps running normally afterwards.
    system.run(hours=0.25)


def test_statically_defective_download_refused_by_verifier():
    """A machine that is referentially valid but fails *static
    verification* (here: a dead transition making a state unreachable)
    is refused at the download boundary before installation."""
    from repro.sbfr import MachineSpec, State, Transition, cmp
    from repro.sbfr.spec import Input

    system = build_mpros_system(n_chillers=1, seed=3)
    client = pdme_endpoint(system)
    # The only edge into state 1 has a statically false guard: every
    # reference is in range, so only the verifier can catch it.
    bad = MachineSpec(
        "dead-end",
        (State("Wait"), State("Never")),
        (Transition(0, 1, cmp(1.0, ">", 2.0)),),
    )
    errors = []
    acks = []
    client.call(
        "dc:0", "download_machine",
        {
            "machine_b64": base64.b64encode(encode_machine(bad)).decode(),
            "condition_id": "mc:x",
        },
        on_reply=acks.append,
        on_error=errors.append,
    )
    system.kernel.run_until(system.kernel.now() + 1.0)
    assert not acks
    assert errors
    msg = str(errors[0])
    assert "static verification" in msg
    assert "sbfr.dead-transition" in msg
    assert "sbfr.unreachable-state" in msg
    # Never installed: the source still runs pure grid mode.
    source = system.dcs[0]._sbfr_source()
    assert source._systems is None
    system.run(hours=0.25)


def test_interpreter_bounds_checked():
    import pytest as _pytest

    from repro.common.errors import SbfrError
    from repro.sbfr import MachineSpec, SbfrSystem, State, Transition, cmp
    from repro.sbfr.spec import Input, Local, Status

    sys_ = SbfrSystem(channels=["a"])
    sys_.add_machine(MachineSpec(
        "bad-chan", (State("w"), State("x")),
        (Transition(0, 1, cmp(Input(7), ">", 0.0)),),
    ))
    with _pytest.raises(SbfrError):
        sys_.cycle({"a": 1.0})

    sys2 = SbfrSystem(channels=["a"])
    sys2.add_machine(MachineSpec(
        "bad-peer", (State("w"), State("x")),
        (Transition(0, 1, cmp(Status(9), "==", 0)),),
    ))
    with _pytest.raises(SbfrError):
        sys2.cycle({"a": 1.0})

    sys3 = SbfrSystem(channels=["a"])
    sys3.add_machine(MachineSpec(
        "bad-local", (State("w"), State("x")),
        (Transition(0, 1, cmp(Local(5), ">", 0.0)),),
        n_locals=1,
    ))
    with _pytest.raises(SbfrError):
        sys3.cycle({"a": 1.0})
