import pytest

from repro.common.errors import OosmError
from repro.oosm import (
    ShipModel,
    build_chilled_water_ship,
    downstream_of,
    load_model,
    parts_closure,
    proximate_entities,
    save_model,
    system_of,
    to_graph,
)
from repro.oosm.query import flow_path, upstream_of
from repro.protocol import FailurePredictionReport


@pytest.fixture
def ship():
    return build_chilled_water_ship(n_chillers=2)


# -- shipyard -----------------------------------------------------------

def test_ship_builds_expected_structure(ship):
    model, ship_entity, units = ship
    assert len(units) == 2
    assert model.find("A/C Compressor Motor 1").type_name == "induction-motor"
    u = units[0]
    assert model.related(u.motor, "part-of") == {u.chiller}
    assert len(u.sensors) >= 8


def test_ship_parts_closure_rolls_up(ship):
    model, ship_entity, units = ship
    closure = parts_closure(model, ship_entity.id)
    for u in units:
        assert u.motor in closure
        assert u.chiller in closure


def test_system_of_walks_to_ship(ship):
    model, ship_entity, units = ship
    assert system_of(model, units[0].motor) == ship_entity.id
    assert system_of(model, ship_entity.id) == ship_entity.id


def test_flow_topology(ship):
    model, _, units = ship
    u = units[0]
    down = downstream_of(model, u.motor)
    assert u.compressor in down and u.evaporator in down
    up = upstream_of(model, u.pump)
    assert u.evaporator in up
    path = flow_path(model, u.motor, u.evaporator)
    assert path[0] == u.motor and path[-1] == u.evaporator


def test_flow_path_none_returns_empty(ship):
    model, ship_entity, units = ship
    assert flow_path(model, units[0].pump, units[0].motor) == []


def test_proximity_neighbourhood(ship):
    model, _, units = ship
    u = units[0]
    hop1 = proximate_entities(model, u.motor, hops=1)
    assert u.gearset in hop1 and u.pump in hop1
    hop2 = proximate_entities(model, u.motor, hops=2)
    assert u.compressor in hop2
    assert proximate_entities(model, u.motor, hops=0) == set()


def test_to_graph_node_and_edge_counts(ship):
    model, _, _ = ship
    g = to_graph(model)
    assert g.number_of_nodes() == len(model)
    # proximity edges appear in both directions in the export
    kinds = {d["kind"] for _, _, d in g.edges(data=True)}
    assert {"part-of", "flow", "proximate-to", "monitors"} <= kinds


# -- persistence ---------------------------------------------------------

def test_save_load_roundtrip(tmp_path, ship):
    model, ship_entity, units = ship
    u = units[0]
    model.post_report(
        FailurePredictionReport(
            knowledge_source_id="ks:dli",
            sensed_object_id=u.motor,
            machine_condition_id="mc:motor-imbalance",
            severity=0.4,
            belief=0.7,
            timestamp=5.0,
        )
    )
    path = tmp_path / "oosm.sqlite"
    save_model(model, path)
    loaded = load_model(path)

    assert len(loaded) == len(model)
    assert loaded.get(u.motor).get("shaft_rpm") == model.get(u.motor).get("shaft_rpm")
    assert loaded.related(u.motor, "part-of") == {u.chiller}
    assert loaded.related(u.motor, "proximate-to") == model.related(u.motor, "proximate-to")
    assert loaded.report_count == 1
    assert loaded.reports_for(u.motor)[0].machine_condition_id == "mc:motor-imbalance"


def test_save_load_preserves_types(tmp_path):
    model = ShipModel()
    model.create("accelerometer", name="a1")
    path = tmp_path / "m.sqlite"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.types.is_kind_of("accelerometer", "sensor")


def test_save_twice_replaces(tmp_path):
    model = ShipModel()
    model.create("pump", name="p1")
    path = tmp_path / "m.sqlite"
    save_model(model, path)
    model.create("pump", name="p2")
    save_model(model, path)
    loaded = load_model(path)
    assert len(loaded) == 2


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(OosmError):
        load_model(tmp_path / "absent.sqlite")


def test_unpersistable_property_raises(tmp_path):
    model = ShipModel()
    e = model.create("pump")
    model.set_property(e.id, "weird", object())
    with pytest.raises(OosmError):
        save_model(model, tmp_path / "m.sqlite")
