import pytest

from repro.common.errors import OosmError
from repro.oosm import (
    EntityCreated,
    EntityDeleted,
    PropertyChanged,
    RelationshipAdded,
    RelationshipRemoved,
    ReportPosted,
    ShipModel,
)
from repro.protocol import FailurePredictionReport


@pytest.fixture
def model():
    return ShipModel()


def make_report(obj_id, cond="mc:motor-imbalance"):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj_id,
        machine_condition_id=cond,
        severity=0.5,
        belief=0.6,
        timestamp=1.0,
    )


# -- instances -----------------------------------------------------------

def test_create_allocates_typed_id(model):
    e = model.create("pump", name="P1")
    assert e.id.startswith("pump:")
    assert e.type_name == "pump"
    assert model.get(e.id) is e


def test_create_unknown_type_rejected(model):
    with pytest.raises(OosmError):
        model.create("warp-core")


def test_create_explicit_id(model):
    e = model.create("pump", id="pump:custom")
    assert model.get("pump:custom") is e


def test_create_duplicate_id_rejected(model):
    model.create("pump", id="pump:x")
    with pytest.raises(OosmError):
        model.create("pump", id="pump:x")


def test_get_missing_raises(model):
    with pytest.raises(OosmError):
        model.get("pump:none")


def test_len_and_contains(model):
    e = model.create("pump")
    assert len(model) == 1
    assert e.id in model


def test_delete_removes_entity_and_edges(model):
    a = model.create("pump")
    b = model.create("chiller")
    model.relate(a.id, "part-of", b.id)
    model.delete(a.id)
    assert a.id not in model
    assert model.related_in(b.id, "part-of") == frozenset()


def test_entities_filter_by_type_and_kind(model):
    model.create("pump")
    model.create("induction-motor")
    model.create("deck")
    assert len(list(model.entities(type_name="pump"))) == 1
    assert len(list(model.entities(kind_of="rotating-machine"))) == 2


def test_find_by_name(model):
    model.create("pump", name="P1")
    assert model.find("P1").get("name") == "P1"


def test_find_missing_or_ambiguous(model):
    with pytest.raises(OosmError):
        model.find("nope")
    model.create("pump", name="dup")
    model.create("pump", name="dup")
    with pytest.raises(OosmError):
        model.find("dup")


# -- properties -----------------------------------------------------------

def test_set_get_property(model):
    e = model.create("pump")
    model.set_property(e.id, "capacity", 42)
    assert model.get_property(e.id, "capacity") == 42


def test_property_change_fires_event(model):
    e = model.create("pump", capacity=1)
    events = []
    model.bus.subscribe(PropertyChanged, events.append)
    model.set_property(e.id, "capacity", 2)
    assert events == [PropertyChanged(e.id, "capacity", 1, 2)]


def test_property_same_value_no_event(model):
    e = model.create("pump", capacity=1)
    events = []
    model.bus.subscribe(PropertyChanged, events.append)
    model.set_property(e.id, "capacity", 1)
    assert events == []


# -- relationships ----------------------------------------------------------

def test_relate_and_query(model):
    a, b = model.create("pump"), model.create("chiller")
    model.relate(a.id, "part-of", b.id)
    assert model.related(a.id, "part-of") == {b.id}
    assert model.related_in(b.id, "part-of") == {a.id}


def test_relate_unknown_kind_rejected(model):
    a, b = model.create("pump"), model.create("chiller")
    with pytest.raises(OosmError):
        model.relate(a.id, "likes", b.id)


def test_relate_self_rejected(model):
    a = model.create("pump")
    with pytest.raises(OosmError):
        model.relate(a.id, "part-of", a.id)


def test_part_of_single_whole(model):
    a = model.create("pump")
    b, c = model.create("chiller"), model.create("chiller")
    model.relate(a.id, "part-of", b.id)
    with pytest.raises(OosmError):
        model.relate(a.id, "part-of", c.id)


def test_part_of_cycle_rejected(model):
    a, b, c = (model.create("machine") for _ in range(3))
    model.relate(a.id, "part-of", b.id)
    model.relate(b.id, "part-of", c.id)
    with pytest.raises(OosmError):
        model.relate(c.id, "part-of", a.id)


def test_relate_idempotent(model):
    a, b = model.create("pump"), model.create("chiller")
    events = []
    model.bus.subscribe(RelationshipAdded, events.append)
    model.relate(a.id, "part-of", b.id)
    model.relate(a.id, "part-of", b.id)
    assert len(events) == 1


def test_proximity_is_symmetric(model):
    a, b = model.create("pump"), model.create("induction-motor")
    model.relate(a.id, "proximate-to", b.id)
    assert model.related(b.id, "proximate-to") == {a.id}
    model.unrelate(b.id, "proximate-to", a.id)
    assert model.related(a.id, "proximate-to") == frozenset()


def test_unrelate_fires_event(model):
    a, b = model.create("pump"), model.create("chiller")
    model.relate(a.id, "refers-to", b.id)
    events = []
    model.bus.subscribe(RelationshipRemoved, events.append)
    model.unrelate(a.id, "refers-to", b.id)
    assert events == [RelationshipRemoved("refers-to", a.id, b.id)]


def test_unrelate_absent_is_noop(model):
    a, b = model.create("pump"), model.create("chiller")
    model.unrelate(a.id, "refers-to", b.id)  # no exception


def test_relationships_iterates_each_edge_once(model):
    a, b = model.create("pump"), model.create("induction-motor")
    model.relate(a.id, "proximate-to", b.id)
    model.relate(a.id, "flow", b.id)
    rels = list(model.relationships())
    assert len(rels) == 2
    assert {r.kind for r in rels} == {"proximate-to", "flow"}


def test_parts_closure(model):
    ship = model.create("ship")
    deck = model.create("deck")
    pump = model.create("pump")
    model.relate(deck.id, "part-of", ship.id)
    model.relate(pump.id, "part-of", deck.id)
    assert model.parts_closure_ids(ship.id) == {deck.id, pump.id}
    assert model.parts_closure_ids(pump.id, up=True) == {deck.id, ship.id}


# -- lifecycle events ---------------------------------------------------------

def test_create_delete_events(model):
    created, deleted = [], []
    model.bus.subscribe(EntityCreated, created.append)
    model.bus.subscribe(EntityDeleted, deleted.append)
    e = model.create("pump")
    model.delete(e.id)
    assert created == [EntityCreated(e.id, "pump")]
    assert deleted == [EntityDeleted(e.id, "pump")]


# -- report repository ----------------------------------------------------------

def test_post_report_stores_and_notifies(model):
    e = model.create("induction-motor")
    seen = []
    model.bus.subscribe(ReportPosted, seen.append)
    r = make_report(e.id)
    model.post_report(r)
    assert model.report_count == 1
    assert model.reports_for(e.id) == [r]
    assert seen[0].report is r


def test_post_report_unknown_object_rejected(model):
    with pytest.raises(OosmError):
        model.post_report(make_report("obj:ghost"))


def test_reports_for_filters_by_object(model):
    a, b = model.create("pump"), model.create("pump")
    model.post_report(make_report(a.id))
    model.post_report(make_report(b.id))
    assert len(model.reports_for(a.id)) == 1
    assert len(model.all_reports()) == 2


def test_materialized_reports_become_entities():
    """§4.2: failure-prediction reports as first-class OOSM objects."""
    model = ShipModel(materialize_reports=True)
    machine = model.create("induction-motor", name="M1")
    model.post_report(make_report(machine.id))
    reports = list(model.entities(type_name="failure-prediction-report"))
    assert len(reports) == 1
    entity = reports[0]
    assert entity.get("machine_condition_id") == "mc:motor-imbalance"
    # The refers-to edge points at the sensed object.
    assert model.related(entity.id, "refers-to") == {machine.id}
    assert model.related_in(machine.id, "refers-to") == {entity.id}


def test_materialization_off_by_default():
    model = ShipModel()
    machine = model.create("induction-motor")
    model.post_report(make_report(machine.id))
    assert list(model.entities(type_name="failure-prediction-report")) == []
