import pytest

from repro.common.errors import OosmError
from repro.oosm import TypeRegistry, default_types


def test_root_exists():
    reg = TypeRegistry()
    assert "entity" in reg


def test_add_and_get():
    reg = TypeRegistry()
    t = reg.add("machine")
    assert reg.get("machine") is t
    assert t.parent == "entity"


def test_add_duplicate_rejected():
    reg = TypeRegistry()
    reg.add("machine")
    with pytest.raises(OosmError):
        reg.add("machine")


def test_add_unknown_parent_rejected():
    with pytest.raises(OosmError):
        TypeRegistry().add("x", parent="nope")


def test_get_unknown_raises():
    with pytest.raises(OosmError):
        TypeRegistry().get("nope")


def test_ancestry_most_specific_first():
    reg = default_types()
    anc = reg.ancestry("induction-motor")
    assert anc[0] == "induction-motor"
    assert anc[-1] == "entity"
    assert "rotating-machine" in anc


def test_is_kind_of():
    reg = default_types()
    assert reg.is_kind_of("accelerometer", "sensor")
    assert reg.is_kind_of("centrifugal-compressor", "rotating-machine")
    assert reg.is_kind_of("chiller", "machine")
    assert not reg.is_kind_of("deck", "machine")
    assert reg.is_kind_of("ship", "entity")


def test_is_kind_of_self():
    reg = default_types()
    assert reg.is_kind_of("pump", "pump")


def test_default_types_cover_paper_entities():
    """§4.2 names sensors, motors, compressors, decks, ships, failure
    prediction reports and knowledge sources."""
    reg = default_types()
    for name in ("sensor", "induction-motor", "centrifugal-compressor",
                 "deck", "ship", "failure-prediction-report", "knowledge-source",
                 "evaporator", "machine-condition"):
        assert name in reg


def test_iter_lists_all():
    reg = TypeRegistry()
    reg.add("a")
    reg.add("b", "a")
    assert {t.name for t in reg} == {"entity", "a", "b"}
