"""Model-version tracking and the version-keyed ``to_graph`` cache."""

from __future__ import annotations

from repro.oosm.model import ShipModel
from repro.oosm.query import to_graph
from repro.protocol.report import FailurePredictionReport


def _report(oid: str) -> FailurePredictionReport:
    return FailurePredictionReport(
        knowledge_source_id="ks:v",
        sensed_object_id=oid,
        machine_condition_id="mc:motor-imbalance",
        severity=0.4,
        belief=0.3,
        timestamp=1.0,
        dc_id="dc:v",
    )


def _build():
    model = ShipModel()
    a = model.create("induction-motor", name="M1").id
    b = model.create("centrifugal-compressor", name="C1").id
    model.relate(a, "flow", b)
    return model, a, b


def test_every_mutation_bumps_version():
    model, a, b = _build()
    v = model.version
    model.set_property(a, "power", 11.0)
    assert model.version == v + 1
    model.relate(a, "proximate-to", b)
    assert model.version == v + 2
    model.post_report(_report(a))
    assert model.version == v + 3
    model.post_reports([_report(a), _report(b)])
    assert model.version == v + 4
    model.unrelate(a, "proximate-to", b)
    assert model.version == v + 5
    # delete() detaches surviving edges via unrelate, so it bumps at
    # least once (exact count depends on the entity's degree).
    model.delete(b)
    assert model.version > v + 5


def test_noop_mutations_do_not_bump():
    model, a, b = _build()
    v = model.version
    model.set_property(a, "power", 11.0)
    model.relate(a, "flow", b)  # edge already exists
    model.set_property(a, "power", 11.0)  # same value
    model.unrelate(b, "flow", a)  # edge never existed
    assert model.version == v + 1


def test_to_graph_cached_until_version_changes():
    model, a, b = _build()
    g1 = to_graph(model)
    assert to_graph(model) is g1  # same version: the identical object
    assert to_graph(model, kinds=("flow",)) is not g1  # distinct key
    model.set_property(a, "power", 22.0)
    g2 = to_graph(model)
    assert g2 is not g1  # version bumped: rebuilt
    assert g2.nodes[a]["power"] == 22.0


def test_cached_graph_reflects_topology_changes():
    model, a, b = _build()
    g1 = to_graph(model)
    assert g1.has_edge(a, b)
    model.unrelate(a, "flow", b)
    assert not to_graph(model).has_edge(a, b)
