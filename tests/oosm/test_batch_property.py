"""Property test: batched OOSM ingest is equivalent to one-at-a-time.

Hypothesis generates arbitrary report streams with arbitrary duplicate
patterns (repeated ids, id-less entries) and arbitrary batch splits;
the coalesced :meth:`ReportStore.ingest_batch` path must leave the
store byte-identical (via the canonical wire form) to scalar
:meth:`ReportStore.ingest` calls in the same order.
"""

from hypothesis import given, settings, strategies as st

from repro.oosm.persistence import ReportStore
from repro.protocol.canonical import canonical_json
from repro.protocol.report import FailurePredictionReport


def _report(i: int) -> FailurePredictionReport:
    return FailurePredictionReport(
        knowledge_source_id="ks:prop",
        sensed_object_id=f"obj:m{i % 3}",
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.25 + 0.01 * (i % 7),
        timestamp=float(i),
        dc_id="dc:prop",
    )


# Each element: (report index, id slot or None).  A small id space
# forces duplicate ids both across and within batches.
_entries = st.lists(
    st.tuples(st.integers(0, 9), st.one_of(st.none(), st.integers(0, 4))),
    min_size=0,
    max_size=20,
)


@settings(max_examples=50, deadline=None)
@given(_entries, st.integers(min_value=1, max_value=7))
def test_ingest_batch_byte_identical_to_scalar(entries, batch_size):
    reports = [_report(i) for i, _ in entries]
    ids = [None if slot is None else f"dc:prop#{slot}" for _, slot in entries]

    scalar = ReportStore()
    written_scalar = sum(
        scalar.ingest(r, rid) for r, rid in zip(reports, ids)
    )

    batched = ReportStore()
    written_batched = 0
    for s in range(0, len(reports), batch_size):
        written_batched += batched.ingest_batch(
            reports[s : s + batch_size], ids[s : s + batch_size]
        )

    assert written_batched == written_scalar
    assert canonical_json(batched.all_reports()) == canonical_json(
        scalar.all_reports()
    )
    assert batched.count == scalar.count
    for rid in {i for i in ids if i is not None}:
        assert batched.seen(rid) == scalar.seen(rid)
    scalar.close()
    batched.close()
