"""Batched OOSM posting: ``post_reports`` and ``ReportBatchPosted``.

The batch path must be *observably equivalent* to per-report posting:
subscribers see the same reports in the same order whether the model
publishes one batch event (when someone subscribed to batches) or N
per-report events (when nobody did).
"""

import pytest

from repro.common.errors import OosmError
from repro.oosm import ReportBatchPosted, ReportPosted, build_chilled_water_ship
from repro.protocol import FailurePredictionReport


def report(obj, i=0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=obj,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.4,
        timestamp=float(i),
    )


def make_model():
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    return model, units[0]


def test_post_reports_publishes_one_batch_event_when_subscribed():
    model, unit = make_model()
    batches, singles = [], []
    model.bus.subscribe(ReportBatchPosted, batches.append)
    model.bus.subscribe(ReportPosted, singles.append)
    reports = [report(unit.motor, i) for i in range(5)]
    model.post_reports(reports)
    assert len(batches) == 1
    assert list(batches[0].reports) == reports
    assert singles == []  # batch subscriber present: no per-report fanout
    assert model.report_count == 5


def test_post_reports_falls_back_to_per_report_events():
    model, unit = make_model()
    singles = []
    model.bus.subscribe(ReportPosted, singles.append)
    reports = [report(unit.motor, i) for i in range(4)]
    model.post_reports(reports)
    # No batch subscriber: same reports, same order, one event each.
    assert [e.report for e in singles] == reports
    assert model.report_count == 4


def test_post_reports_unknown_object_is_all_or_nothing():
    model, unit = make_model()
    seen = []
    model.bus.subscribe(ReportPosted, seen.append)
    bad = [report(unit.motor, 0), report("obj:ghost", 1)]
    with pytest.raises(OosmError):
        model.post_reports(bad)
    # Validation happens before any mutation or event.
    assert model.report_count == 0
    assert seen == []


def test_post_reports_empty_batch_is_a_noop():
    model, unit = make_model()
    batches = []
    model.bus.subscribe(ReportBatchPosted, batches.append)
    model.post_reports([])
    assert model.report_count == 0
    assert batches == []
