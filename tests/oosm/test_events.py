from repro.oosm import EventBus, PropertyChanged, ReportPosted


def test_subscribe_and_publish():
    bus = EventBus()
    seen = []
    bus.subscribe(PropertyChanged, seen.append)
    ev = PropertyChanged("e:1", "x", 1, 2)
    assert bus.publish(ev) == 1
    assert seen == [ev]


def test_publish_without_handlers_returns_zero():
    assert EventBus().publish(PropertyChanged("e:1", "x", 1, 2)) == 0


def test_handlers_filtered_by_class():
    bus = EventBus()
    props, reports = [], []
    bus.subscribe(PropertyChanged, props.append)
    bus.subscribe(ReportPosted, reports.append)
    bus.publish(PropertyChanged("e:1", "x", 1, 2))
    assert len(props) == 1 and len(reports) == 0


def test_wildcard_subscription_sees_everything():
    bus = EventBus()
    seen = []
    bus.subscribe(object, seen.append)
    bus.publish(PropertyChanged("e:1", "x", 1, 2))
    assert len(seen) == 1


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    seen = []
    unsub = bus.subscribe(PropertyChanged, seen.append)
    unsub()
    bus.publish(PropertyChanged("e:1", "x", 1, 2))
    assert seen == []
    assert bus.handler_count(PropertyChanged) == 0


def test_unsubscribe_twice_is_safe():
    bus = EventBus()
    unsub = bus.subscribe(PropertyChanged, lambda e: None)
    unsub()
    unsub()


def test_failing_handler_does_not_block_others():
    bus = EventBus()
    seen = []

    def bad(_):
        raise RuntimeError("boom")

    bus.subscribe(PropertyChanged, bad)
    bus.subscribe(PropertyChanged, seen.append)
    delivered = bus.publish(PropertyChanged("e:1", "x", 1, 2))
    assert delivered == 1
    assert len(seen) == 1
    assert len(bus.delivery_errors) == 1
    assert isinstance(bus.delivery_errors[0][1], RuntimeError)


def test_multiple_handlers_all_called():
    bus = EventBus()
    a, b = [], []
    bus.subscribe(PropertyChanged, a.append)
    bus.subscribe(PropertyChanged, b.append)
    assert bus.publish(PropertyChanged("e:1", "x", 1, 2)) == 2
    assert len(a) == len(b) == 1
