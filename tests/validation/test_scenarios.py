"""The scenario registry and benchmark suite runner."""

import dataclasses

import pytest

from repro.common.errors import MprosError
from repro.plant.faults import FaultKind
from repro.validation import (
    ScenarioSpec,
    chiller_scenario,
    get_scenario,
    run_scenario_suite,
    scenario_names,
    turbine_scenario_spec,
)


# -- registry -----------------------------------------------------------------

def test_registry_names_sorted_and_complete():
    assert scenario_names() == ("chiller", "turbine")


def test_get_scenario_roundtrip():
    spec = get_scenario("turbine")
    assert spec.name == "turbine"
    assert spec.plant == "turbine"
    assert spec == turbine_scenario_spec()


def test_get_scenario_unknown_raises():
    with pytest.raises(MprosError, match="unknown scenario"):
        get_scenario("windmill")


def test_quick_profile_compresses_timeline():
    full = chiller_scenario()
    quick = get_scenario("chiller", quick=True)
    assert quick.name == "chiller-quick"
    assert quick.faults == full.faults
    assert quick.duration < full.duration
    assert quick.onset < quick.failure_time <= quick.duration
    # Lead margin rescaled to the compressed onset→failure window.
    assert quick.cost_model.lead_margin < full.cost_model.lead_margin
    assert quick.cost_model.lead_margin >= 120.0


def test_both_plants_build_distinct_stacks():
    chiller = chiller_scenario()
    turbine = turbine_scenario_spec()
    c_names = {type(s).__name__ for s in chiller.build_sources()}
    t_names = {type(s).__name__ for s in turbine.build_sources()}
    assert c_names == t_names  # same three source kinds...
    import numpy as np

    c_sim = chiller.build_simulator(np.random.default_rng(0))
    t_sim = turbine.build_simulator(np.random.default_rng(0))
    assert type(c_sim).__name__ != type(t_sim).__name__  # ...different plants


# -- spec validation ----------------------------------------------------------

def test_spec_rejects_unknown_plant():
    with pytest.raises(MprosError, match="plant"):
        dataclasses.replace(chiller_scenario(), plant="reactor")


def test_spec_rejects_empty_faults():
    with pytest.raises(MprosError, match="fault"):
        dataclasses.replace(chiller_scenario(), faults=())


def test_spec_rejects_inverted_timeline():
    with pytest.raises(MprosError):
        dataclasses.replace(chiller_scenario(), onset=4000.0)
    with pytest.raises(MprosError):
        dataclasses.replace(chiller_scenario(), duration=100.0)


# -- suite runs (quick profiles only; full profiles are golden-pinned) --------

@pytest.fixture(scope="module")
def turbine_card():
    return run_scenario_suite(
        get_scenario("turbine", quick=True), seed=0, n_resamples=200
    )


def test_turbine_quick_suite_detects_every_fault(turbine_card):
    assert turbine_card.scenario == "turbine-quick"
    assert turbine_card.detection_rate == 1.0
    faulty = [r for r in turbine_card.runs if not r.healthy]
    assert len(faulty) == len(turbine_scenario_spec().faults)
    for run in faulty:
        assert run.detected
        assert run.lead_time > 0


def test_turbine_quick_suite_has_healthy_controls(turbine_card):
    healthy = [r for r in turbine_card.runs if r.healthy]
    assert len(healthy) == 1
    assert not healthy[0].detected


def test_scorecard_aggregates_are_consistent(turbine_card):
    card = turbine_card
    assert 0.0 <= card.mean_timeliness <= 1.0
    assert card.expected_cost == pytest.approx(
        sum(r.cost for r in card.runs) / len(card.runs)
    )
    lo, hi = card.cost_ci
    assert lo <= card.expected_cost <= hi


def test_suite_is_deterministic():
    spec = dataclasses.replace(
        get_scenario("chiller", quick=True),
        faults=(FaultKind.MOTOR_IMBALANCE,),
        healthy_controls=0,
    )
    a = run_scenario_suite(spec, seed=3, n_resamples=100)
    b = run_scenario_suite(spec, seed=3, n_resamples=100)
    assert a.canonical_json() == b.canonical_json()


def test_jsonl_and_markdown_render(turbine_card):
    line = turbine_card.jsonl_line()
    assert line.count("\n") == 0
    assert '"scenario"' in line
    md = turbine_card.to_markdown()
    assert md.startswith("#")
    assert "mc:compressor-fouling" in md
    assert turbine_card.summary().startswith("turbine-quick")
