"""Property tests for the prognostic scoring harness.

The invariants that make a scorecard trustworthy: cost is monotone in
warning time, scoring never depends on report arrival order, a perfect
prediction earns exactly the preventive cost, and every SBFR machine
the turbine domain deploys passes the static verifier within the
paper's budgets.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sbfr_source import SbfrKnowledgeSource, default_turbine_watches
from repro.analysis import verify_set
from repro.validation import (
    CostModel,
    maintenance_cost,
    score_run,
    timeliness,
)

MODEL = CostModel()

lead_times = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.just(-math.inf),
    st.just(math.inf),
    st.just(math.nan),
)


# -- cost monotonicity --------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(a=lead_times, b=lead_times)
def test_cost_monotone_nonincreasing_in_lead_time(a, b):
    if not (math.isnan(a) or math.isnan(b)) and a <= b:
        assert maintenance_cost(a, MODEL) >= maintenance_cost(b, MODEL)


@settings(max_examples=200, deadline=None)
@given(lead=lead_times)
def test_cost_bounded_by_model_extremes(lead):
    cost = maintenance_cost(lead, MODEL)
    assert MODEL.preventive_cost <= cost <= MODEL.corrective_cost


@settings(max_examples=100, deadline=None)
@given(lead=lead_times, horizon=st.floats(min_value=1.0, max_value=1e6))
def test_timeliness_stays_in_unit_interval(lead, horizon):
    t = timeliness(lead, horizon)
    assert 0.0 <= t <= 1.0


# -- order invariance ---------------------------------------------------------

condition_ids = st.sampled_from(
    ["mc:compressor-fouling", "mc:bearing-wear", "mc:fuel-metering-drift",
     "mc:oil-pressure-low", "mc:turbine-blade-erosion"]
)
detection_maps = st.dictionaries(
    condition_ids,
    st.floats(min_value=0.0, max_value=3300.0, allow_nan=False),
    max_size=5,
)


@settings(max_examples=150, deadline=None)
@given(detections=detection_maps, data=st.data())
def test_score_run_invariant_to_report_reordering(detections, data):
    order = data.draw(st.permutations(sorted(detections)))
    shuffled = {cond: detections[cond] for cond in order}
    a = score_run("mc:bearing-wear", 3300.0, 300.0, detections, MODEL)
    b = score_run("mc:bearing-wear", 3300.0, 300.0, shuffled, MODEL)
    assert a == b


# -- perfect prediction bound -------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    onset=st.floats(min_value=0.0, max_value=1000.0),
    window=st.floats(min_value=1.0, max_value=1e5),
)
def test_perfect_prediction_scores_the_bound(onset, window):
    # Detected at fault onset, zero false alarms: timeliness is exactly
    # 1.0 and the cost never exceeds a full-margin preventive call.
    failure = onset + window
    run = score_run(
        "mc:bearing-wear", failure, onset, {"mc:bearing-wear": onset}, MODEL
    )
    assert run.detected
    assert run.timeliness == 1.0
    assert run.false_alarm_conditions == ()
    assert run.cost >= MODEL.preventive_cost
    if window >= MODEL.lead_margin:
        assert run.cost == MODEL.preventive_cost


@settings(max_examples=100, deadline=None)
@given(n_false=st.integers(min_value=0, max_value=5))
def test_healthy_run_cost_is_false_alarm_charges(n_false):
    detections = {f"mc:spurious-{i}": 100.0 * i for i in range(n_false)}
    run = score_run("", 3300.0, 300.0, detections, MODEL)
    assert run.healthy and not run.detected
    assert run.cost == MODEL.false_alarm_cost * n_false


# -- turbine SBFR machines pass the verifier ----------------------------------

@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_turbine_watch_subsets_verify_within_budgets(data):
    # Any deployed subset of the turbine watch set — not just the full
    # five — must produce verifier-clean machines within the paper's
    # 229 B / 2 KB / 32 KB / 4 ms budgets.
    watches = default_turbine_watches()
    subset = tuple(
        data.draw(
            st.lists(
                st.sampled_from(watches), min_size=1, max_size=len(watches),
                unique_by=lambda w: w.condition_id,
            )
        )
    )
    source = SbfrKnowledgeSource(watches=subset)
    report = verify_set(
        source.deployed_specs(), n_channels=len(source.channel_names())
    )
    assert not report.errors, [d.message for d in report.errors]
