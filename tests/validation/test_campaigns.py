import math

import numpy as np
import pytest

from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.common.errors import MprosError
from repro.plant import FaultKind
from repro.validation import (
    SeededFaultCampaign,
    generate_archive,
    run_destructive_test,
)
from repro.validation.archives import believability_from_archive
from repro.validation.seeded import process_only, vibration_only


# -- seeded campaigns ------------------------------------------------------------

def test_campaign_validation():
    with pytest.raises(MprosError):
        SeededFaultCampaign(sources=[])
    with pytest.raises(MprosError):
        SeededFaultCampaign(sources=[DliExpertSystem()], severity=0.0)


def test_fault_filters():
    vib = vibration_only()
    proc = process_only()
    assert FaultKind.MOTOR_IMBALANCE in vib
    assert FaultKind.REFRIGERANT_LEAK in proc
    assert not set(vib) & set(proc)


def test_vibration_campaign_detects_and_scores():
    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem()],
        faults=(FaultKind.MOTOR_IMBALANCE, FaultKind.BEARING_WEAR),
        duration=1200.0,
        scan_period=300.0,
        rng=np.random.default_rng(0),
    )
    records = campaign.run(healthy_controls=1)
    assert len(records) == 3
    metrics = campaign.score(records)
    assert metrics.n_runs == 2
    assert metrics.detection_rate == 1.0
    assert metrics.mean_latency < math.inf
    # Detections happen only after onset.
    for r in records:
        if r.fault is not None:
            assert r.first_detection >= campaign.onset


def test_process_campaign_with_fuzzy():
    campaign = SeededFaultCampaign(
        sources=[FuzzyDiagnostics()],
        faults=(FaultKind.REFRIGERANT_LEAK,),
        duration=1800.0,
        scan_period=120.0,
        rng=np.random.default_rng(1),
    )
    records = campaign.run(healthy_controls=1)
    metrics = campaign.score(records)
    assert metrics.detection_rate == 1.0
    assert metrics.false_alarms == 0


def test_healthy_control_record_shape():
    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem()],
        faults=(),
        duration=600.0,
        scan_period=300.0,
        rng=np.random.default_rng(2),
    )
    records = campaign.run(healthy_controls=1)
    assert len(records) == 1
    assert records[0].truth == set()


# -- destructive test ---------------------------------------------------------------

def test_destructive_run_detects_before_failure():
    result = run_destructive_test(
        sources=[DliExpertSystem()],
        fault=FaultKind.MOTOR_IMBALANCE,
        time_to_failure=3000.0,
        scan_period=300.0,
        rng=np.random.default_rng(0),
    )
    assert result.detected
    assert result.lead_time > 0
    assert result.ttf_track  # TTF estimates were recorded
    # The elementary grade-based prognosis is coarse (months/weeks/days
    # categories) but must *tighten* as the fault worsens: the final
    # estimate is far shorter than the first.
    assert result.ttf_track[-1][1] < 0.2 * result.ttf_track[0][1]
    assert math.isfinite(result.mean_ttf_error())


def test_destructive_validation():
    with pytest.raises(MprosError):
        run_destructive_test([DliExpertSystem()], time_to_failure=0.0)


# -- archives -------------------------------------------------------------------------

def test_archive_generation_shape():
    records = generate_archive(np.random.default_rng(0), n_records=100)
    assert len(records) == 100
    times = [r.time for r in records]
    assert times == sorted(times)
    assert any(r.confirmed for r in records)
    assert any(not r.confirmed for r in records)


def test_archive_validation():
    with pytest.raises(MprosError):
        generate_archive(np.random.default_rng(0), n_records=0)
    with pytest.raises(MprosError):
        generate_archive(np.random.default_rng(0), confirm_rate=1.5)


def test_believability_from_archive_tracks_confirm_rate():
    records = generate_archive(
        np.random.default_rng(3), n_records=600, confirm_rate=0.9
    )
    db = believability_from_archive(records)
    values = [db.believability(c) for c in db.conditions()]
    assert np.mean(values) == pytest.approx(0.9, abs=0.06)
