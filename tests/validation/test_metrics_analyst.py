import math

import numpy as np
import pytest

from repro.algorithms.dli.believability import ReversalDatabase
from repro.common.errors import MprosError
from repro.plant import FaultKind
from repro.protocol import FailurePredictionReport
from repro.validation import (
    AnalystDecision,
    SyntheticAnalyst,
    detection_latency,
    precision_recall,
    prognostic_error,
)
from repro.validation.analyst import AgreementStudy
from repro.validation.metrics import summarize


def report(cond, t=100.0):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id="obj:m",
        machine_condition_id=cond,
        severity=0.6,
        belief=0.7,
        timestamp=t,
    )


# -- metrics -----------------------------------------------------------------

def test_detection_latency():
    assert detection_latency([150.0, 300.0], onset=100.0) == 50.0
    assert detection_latency([], onset=100.0) == math.inf
    assert detection_latency([50.0], onset=100.0) == math.inf  # pre-onset noise


def test_precision_recall():
    assert precision_recall({"a", "b"}, {"a"}) == (0.5, 1.0)
    assert precision_recall({"a"}, {"a", "b"}) == (1.0, 0.5)
    assert precision_recall(set(), set()) == (1.0, 1.0)
    assert precision_recall(set(), {"a"}) == (0.0, 0.0)
    assert precision_recall({"a"}, set())[0] == 0.0


def test_prognostic_error():
    assert prognostic_error(80.0, 100.0) == pytest.approx(0.2)
    assert prognostic_error(math.inf, 100.0) == math.inf
    with pytest.raises(MprosError):
        prognostic_error(10.0, 0.0)


def test_summarize_counts_false_alarms_separately():
    per_run = [
        ({"mc:a"}, {"mc:a"}, 400.0),       # detected at 400
        ({"mc:b"}, {"mc:a"}, math.inf),    # wrong call
        ({"mc:x"}, set(), math.inf),       # healthy control false alarm
        (set(), set(), math.inf),          # clean healthy control
    ]
    m = summarize(per_run, onset=300.0)
    assert m.n_runs == 2
    assert m.n_detected == 1
    assert m.false_alarms == 1
    assert m.mean_latency == pytest.approx(100.0)
    assert m.detection_rate == 0.5
    assert "detected" in m.describe()


# -- synthetic analyst ---------------------------------------------------------

def test_analyst_approves_correct_diagnosis():
    analyst = SyntheticAnalyst(np.random.default_rng(0), error_rate=0.0)
    decision = analyst.adjudicate(
        report("mc:motor-imbalance"), {FaultKind.MOTOR_IMBALANCE: 0.8}
    )
    assert decision is AnalystDecision.APPROVED


def test_analyst_reverses_wrong_diagnosis():
    analyst = SyntheticAnalyst(np.random.default_rng(0), error_rate=0.0)
    decision = analyst.adjudicate(report("mc:bearing-wear"), {FaultKind.MOTOR_IMBALANCE: 0.8})
    assert decision is AnalystDecision.REVERSED


def test_analyst_ignores_subthreshold_faults():
    analyst = SyntheticAnalyst(np.random.default_rng(0), error_rate=0.0,
                               severity_floor=0.5)
    decision = analyst.adjudicate(
        report("mc:motor-imbalance"), {FaultKind.MOTOR_IMBALANCE: 0.2}
    )
    assert decision is AnalystDecision.REVERSED


def test_analyst_error_rate_flips_sometimes():
    analyst = SyntheticAnalyst(np.random.default_rng(1), error_rate=0.3)
    decisions = [
        analyst.adjudicate(report("mc:motor-imbalance"), {FaultKind.MOTOR_IMBALANCE: 0.8})
        for _ in range(200)
    ]
    reversed_count = sum(d is AnalystDecision.REVERSED for d in decisions)
    assert 30 < reversed_count < 90  # ~30% of 200


def test_analyst_validation():
    with pytest.raises(MprosError):
        SyntheticAnalyst(np.random.default_rng(0), error_rate=0.7)


def test_agreement_study_tracks_database():
    study = AgreementStudy(
        analyst=SyntheticAnalyst(np.random.default_rng(0), error_rate=0.0),
        database=ReversalDatabase(),
    )
    for _ in range(9):
        study.review(report("mc:motor-imbalance"), {FaultKind.MOTOR_IMBALANCE: 0.8})
    study.review(report("mc:bearing-wear"), {FaultKind.MOTOR_IMBALANCE: 0.8})
    assert study.agreement == pytest.approx(0.9)
    assert study.database.counts("mc:motor-imbalance") == (9, 0)
    assert study.database.counts("mc:bearing-wear") == (0, 1)
