"""Golden-master pins on the per-scenario prognostic scorecards.

Both registered scenarios run their quick profiles at a fixed seed and
are compared byte-for-byte against committed canonical-JSON files.
Any behavioural drift in the plant models, knowledge sources, fusion,
RNG derivation or the scoring arithmetic shows up here first.

Regenerate intentionally with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \\
        tests/validation/test_scorecard_golden.py

and review the golden diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.validation import get_scenario, run_scenario_suite

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Cheap-but-stable bootstrap depth for the pinned cards.
N_RESAMPLES = 500


def _check_golden(name: str, payload: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("GOLDEN_REGEN"):
        path.write_text(payload, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with GOLDEN_REGEN=1"
    )
    golden = path.read_text(encoding="utf-8")
    assert payload == golden, (
        f"{name} drifted from its golden master; if the change is "
        "intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


@pytest.mark.parametrize("scenario", ["chiller", "turbine"])
def test_quick_scorecard_is_pinned(scenario):
    spec = get_scenario(scenario, quick=True)
    card = run_scenario_suite(spec, seed=0, n_resamples=N_RESAMPLES)
    _check_golden(f"score_{scenario}.json", card.canonical_json())


@pytest.mark.parametrize("scenario", ["chiller", "turbine"])
def test_committed_golden_claims_full_detection(scenario):
    # The pinned cards are not just stable — they assert the headline
    # result: every seeded fault detected, with positive lead time.
    path = GOLDEN_DIR / f"score_{scenario}.json"
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc["detection_rate"] == 1.0
    assert doc["scenario"] == f"{scenario}-quick"
    faulty = [r for r in doc["runs"] if r["fault"]]
    assert all(r["detected"] and r["lead_time"] > 0 for r in faulty)
