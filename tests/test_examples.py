"""Smoke tests: every shipped example runs end to end.

Each example's ``main()`` is executed with stdout captured; these are
the scripts a new user runs first, so they must never rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,expect",
    [
        ("quickstart", "Top suspect: mc:motor-imbalance"),
        ("ema_stiction", "Stiction condition flagged"),
        ("fleet_scale", "Fleet data-rate accounting"),
        ("destructive_test", "prognostic lead time"),
        ("future_directions", "Multi-level health rollup"),
        ("closer_look", "closer-look confirmations"),
    ],
)
def test_example_runs(name, expect, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert expect in out


def test_campaign_example_runs(capsys):
    # The campaign example is the slowest; assert its headline numbers.
    module = load_example("seeded_fault_campaign")
    module.main()
    out = capsys.readouterr().out
    assert "12/12 detected" in out
    assert "Analyst agreement" in out


def test_all_examples_have_smoke_tests():
    tested = {
        "quickstart", "ema_stiction", "fleet_scale", "destructive_test",
        "future_directions", "seeded_fault_campaign", "closer_look",
    }
    shipped = {p.stem for p in EXAMPLES.glob("*.py")}
    assert shipped == tested, f"untested examples: {shipped - tested}"
