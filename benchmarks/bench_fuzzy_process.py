"""FUZZY: the fourth suite's coverage (§1.1/§6.2).

"Fuzzy Logic diagnostics and prognostics ... draws diagnostic and
prognostic conclusions from non-vibrational data."  Reproduced shape:
the process faults (refrigerant leak, fouling, oil, surge) are
invisible to the vibration suite and caught by the fuzzy suite, and
vice versa for the mechanical faults.
"""

from benchmarks._util import mean_seconds

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.algorithms.fuzzy.inference import MamdaniEngine
from repro.algorithms.fuzzy.rules import chiller_rulebase, chiller_variables
from repro.plant import FaultKind
from repro.validation import SeededFaultCampaign
from repro.validation.seeded import process_only, vibration_only



def test_process_faults_need_the_fuzzy_suite(benchmark):
    """Coverage matrix: per fault class, which suite detects."""

    def run():
        out = {}
        for label, sources, faults in (
            ("dli_on_process", [DliExpertSystem()], process_only()),
            ("fuzzy_on_process", [FuzzyDiagnostics()], process_only()),
            ("fuzzy_on_vibration", [FuzzyDiagnostics()],
             (FaultKind.MOTOR_IMBALANCE, FaultKind.BEARING_WEAR)),
        ):
            campaign = SeededFaultCampaign(
                sources=sources, faults=faults,
                duration=1500.0, scan_period=120.0,
                rng=np.random.default_rng(0),
            )
            records = campaign.run(healthy_controls=0)
            metrics = campaign.score(records, onset=campaign.onset)
            out[label] = metrics.detection_rate
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rates["fuzzy_on_process"] == 1.0
    assert rates["dli_on_process"] == 0.0       # invisible to vibration
    assert rates["fuzzy_on_vibration"] == 0.0   # invisible to process data
    for k, v in rates.items():
        benchmark.extra_info[k] = v


def test_inference_cost(benchmark):
    """Per-scan Mamdani inference cost over the full rulebase."""
    engine = MamdaniEngine(chiller_variables(), chiller_rulebase())
    readings = {
        "superheat_c": 15.0,
        "evap_pressure_kpa": 255.0,
        "cond_pressure_kpa": 1150.0,
        "cond_water_temp_c": 34.0,
        "chw_supply_temp_c": 9.5,
        "oil_pressure_kpa": 150.0,
        "oil_temp_c": 66.0,
        "cond_pressure_std": 50.0,
    }
    conclusions = benchmark(engine.infer, readings)
    assert len(conclusions) >= 4
    benchmark.extra_info["inferences_per_second"] = f"{1.0 / mean_seconds(benchmark):,.0f}"
    benchmark.extra_info["conditions_fired"] = [c.condition_id for c in conclusions]


def test_fuzzy_severity_tracks_fault_severity(benchmark):
    """Series: defuzzified severity vs injected leak severity."""
    from repro.algorithms.base import SourceContext
    from repro.plant import ChillerSimulator
    from repro.plant.faults import seeded

    def sweep():
        out = {}
        for sev in (0.3, 0.6, 0.9):
            sim = ChillerSimulator(rng=np.random.default_rng(3))
            sim.inject(seeded(FaultKind.REFRIGERANT_LEAK, 0.0, sev))
            fz = FuzzyDiagnostics()
            last = 0.0
            history = []
            for _ in range(20):
                sim.step(60.0)
                process = sim.sample_process().values
                history.append(process)
                ctx = SourceContext(
                    sensed_object_id="obj:c", timestamp=sim.time,
                    process=process, history=history[-16:],
                )
                for r in fz.analyze(ctx):
                    if r.machine_condition_id == "mc:refrigerant-leak":
                        last = r.severity
            out[sev] = last
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert series[0.9] > series[0.3]
    for sev, reported in series.items():
        benchmark.extra_info[f"reported_severity@injected={sev}"] = round(reported, 2)
