"""KF-LAT: knowledge fusion under hostile input (§5.1).

"The knowledge fusion components must be able to accommodate inputs
which are incomplete, time-disordered, fragmentary, and which have
gaps, inconsistencies, and contradictions."  The bench feeds
adversarial report streams and measures that the engine neither
crashes nor corrupts its state, plus raw ingest throughput.
"""

from benchmarks._util import mean_seconds

import numpy as np

from repro.common.units import months, weeks
from repro.fusion import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.protocol import FailurePredictionReport, PrognosticVector


CONDITIONS = [
    "mc:motor-imbalance", "mc:shaft-misalignment", "mc:bearing-wear",
    "mc:motor-rotor-bar", "mc:oil-contamination", "mc:refrigerant-leak",
]


def _report(rng, t=None):
    cond = CONDITIONS[int(rng.integers(0, len(CONDITIONS)))]
    pairs = []
    if rng.random() < 0.5:
        t1 = float(rng.uniform(weeks(1), months(3)))
        pairs = [(t1, float(rng.uniform(0.1, 0.6))), (t1 * 2, float(rng.uniform(0.6, 1.0)))]
    return FailurePredictionReport(
        knowledge_source_id=f"ks:{int(rng.integers(0, 4))}",
        sensed_object_id=f"obj:{int(rng.integers(0, 3))}",
        machine_condition_id=cond,
        severity=float(rng.uniform(0, 1)),
        belief=float(rng.uniform(0, 0.95)),
        timestamp=t if t is not None else float(rng.uniform(0, 10_000)),
        prognostic=PrognosticVector.from_pairs(pairs),
    )


def test_ingest_throughput(benchmark):
    """Raw fused-report intake rate (reports/second)."""
    rng = np.random.default_rng(0)
    reports = [_report(rng) for _ in range(200)]
    state = {"engine": KnowledgeFusionEngine(default_chiller_groups())}

    def ingest_all():
        engine = KnowledgeFusionEngine(default_chiller_groups())
        for r in reports:
            engine.ingest(r)
        state["engine"] = engine

    benchmark(ingest_all)
    rate = len(reports) / mean_seconds(benchmark)
    benchmark.extra_info["reports_per_second"] = f"{rate:,.0f}"
    assert state["engine"].stats.ingested == len(reports)


def test_time_disordered_stream(benchmark):
    """Reports arriving in shuffled time order fuse without error and
    the prognostic state honours the newest time seen."""
    rng = np.random.default_rng(1)
    times = np.linspace(0, 5000, 64)
    rng.shuffle(times)

    def run():
        engine = KnowledgeFusionEngine(default_chiller_groups())
        for t in times:
            engine.ingest(
                FailurePredictionReport(
                    knowledge_source_id="ks:dli",
                    sensed_object_id="obj:m",
                    machine_condition_id="mc:bearing-wear",
                    severity=0.5,
                    belief=0.2,
                    timestamp=float(t),
                    prognostic=PrognosticVector.from_pairs([(weeks(2), 0.5)]),
                )
            )
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.stats.rejected == 0
    ttf = engine.time_to_failure("obj:m", "mc:bearing-wear")
    assert 0 < ttf <= weeks(2)
    benchmark.extra_info["ingested"] = engine.stats.ingested


def test_contradictory_and_fragmentary_stream(benchmark):
    """Contradictions within a group, empty reports, certainty clashes:
    counted and contained, never fatal."""
    rng = np.random.default_rng(2)

    def run():
        engine = KnowledgeFusionEngine(default_chiller_groups())
        for i in range(150):
            r = _report(rng)
            engine.ingest(r)
            if i % 10 == 0:
                # Fragmentary: neither belief nor prognosis.
                engine.ingest(
                    FailurePredictionReport(
                        knowledge_source_id="ks:x",
                        sensed_object_id="obj:frag",
                        machine_condition_id="mc:motor-imbalance",
                        severity=0.0,
                        belief=0.0,
                        timestamp=float(i),
                    )
                )
            if i % 25 == 0:
                # Contradiction with certainty: belief 1.0 both ways.
                for cond in ("mc:motor-imbalance", "mc:shaft-misalignment"):
                    engine.ingest(
                        FailurePredictionReport(
                            knowledge_source_id="ks:liar",
                            sensed_object_id="obj:clash",
                            machine_condition_id=cond,
                            severity=1.0,
                            belief=1.0,
                            timestamp=float(i),
                        )
                    )
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    # The stream was hostile: some rejects are expected, no crashes.
    assert engine.stats.ingested > 150
    assert engine.stats.diagnostic_updates > 100
    benchmark.extra_info["ingested"] = engine.stats.ingested
    benchmark.extra_info["rejected"] = engine.stats.rejected
    benchmark.extra_info["errors_contained"] = len(engine.stats.errors)
