"""OOSM: object model, events and persistence (§4).

Posting rates with KF subscribed, event-notification fan-out, and the
relational save/load round trip with fidelity checks.
"""

from benchmarks._util import mean_seconds

import numpy as np

from repro.fusion import KnowledgeFusionEngine
from repro.fusion.groups import default_chiller_groups
from repro.oosm import PropertyChanged, ReportPosted, build_chilled_water_ship, load_model, save_model
from repro.protocol import FailurePredictionReport



def _report(motor, i):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli",
        sensed_object_id=motor,
        machine_condition_id="mc:motor-imbalance",
        severity=0.5,
        belief=0.1,
        timestamp=float(i),
    )


def test_report_posting_rate_with_kf_subscribed(benchmark):
    """§5.1 steps 1-3 as a loop: post -> event -> fuse."""
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    engine = KnowledgeFusionEngine(default_chiller_groups())
    model.bus.subscribe(ReportPosted, lambda ev: engine.ingest(ev.report))
    motor = units[0].motor
    counter = {"i": 0}

    def post_one():
        counter["i"] += 1
        model.post_report(_report(motor, counter["i"]))

    benchmark(post_one)
    benchmark.extra_info["posts_per_second"] = f"{1.0 / mean_seconds(benchmark):,.0f}"
    assert engine.stats.ingested == model.report_count


def test_property_change_notification_fanout(benchmark):
    """Event delivery to many subscribers without polling (§4.5)."""
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    hits = [0] * 16
    for i in range(16):
        model.bus.subscribe(PropertyChanged, lambda ev, i=i: hits.__setitem__(i, hits[i] + 1))
    motor = units[0].motor
    counter = {"v": 0}

    def change():
        counter["v"] += 1
        model.set_property(motor, "bearing_temp_c", counter["v"])

    benchmark(change)
    assert all(h > 0 for h in hits)
    benchmark.extra_info["subscribers"] = 16


def test_persistence_roundtrip(benchmark, tmp_path):
    """Save + reload the populated ship model; verify fidelity."""
    model, ship, units = build_chilled_water_ship(n_chillers=2)
    for i in range(50):
        model.post_report(_report(units[i % 2].motor, i))
    path = tmp_path / "oosm.sqlite"

    def roundtrip():
        save_model(model, path)
        return load_model(path)

    loaded = benchmark.pedantic(roundtrip, rounds=5, iterations=1)
    assert len(loaded) == len(model)
    assert loaded.report_count == model.report_count
    assert loaded.related(units[0].motor, "part-of") == model.related(
        units[0].motor, "part-of"
    )
    benchmark.extra_info["entities"] = len(model)
    benchmark.extra_info["reports"] = model.report_count


def test_graph_query_rates(benchmark):
    """Part-of closure + proximity queries at interactive rates."""
    from repro.oosm import parts_closure, proximate_entities

    model, ship, units = build_chilled_water_ship(n_chillers=4)

    def queries():
        parts_closure(model, ship.id)
        for u in units:
            proximate_entities(model, u.motor, hops=2)

    benchmark(queries)
    benchmark.extra_info["entities"] = len(model)
