"""SBFR-SIZE: the §6.3 footprint claims.

Paper numbers: spike machine 229 B, stiction machine 93 B, interpreter
≈ 2000 B, and "100 state machines operating in parallel and their
interpreter can fit in less than 32K bytes".  The bench measures our
encoded machines and interpreter bytecode against each.
"""

from repro.hpc.budget import PAPER_SBFR_BUDGET, check_sbfr_budget, interpreter_code_bytes
from repro.sbfr import (
    build_spike_machine,
    build_stiction_machine,
    decode_machine,
    encode_machine,
    encoded_size,
)


def test_machine_encoding_sizes(benchmark):
    """Encoded machine sizes vs the paper's 229/93 bytes."""
    spike = build_spike_machine(0)
    stiction = build_stiction_machine(1)
    data = benchmark(encode_machine, spike)
    spike_b = len(data)
    stiction_b = encoded_size(stiction)
    # Same embedded ballpark as the paper (well under 512 B each).
    assert spike_b < 512 and stiction_b < 256
    assert stiction_b < spike_b
    benchmark.extra_info["spike_bytes"] = spike_b
    benchmark.extra_info["spike_bytes_paper"] = 229
    benchmark.extra_info["stiction_bytes"] = stiction_b
    benchmark.extra_info["stiction_bytes_paper"] = 93


def test_interpreter_footprint(benchmark):
    """Interpreter executable-core size vs the paper's ≈2000 bytes."""
    size = benchmark(interpreter_code_bytes)
    assert size < 8000
    benchmark.extra_info["interpreter_bytes"] = size
    benchmark.extra_info["interpreter_bytes_paper"] = 2000


def test_hundred_machines_under_32k(benchmark):
    """100 machines + interpreter vs the 32 KB ceiling."""
    machines = [build_spike_machine(i % 16, self_index=2 * i) for i in range(50)]
    machines += [
        build_stiction_machine(i % 16, spike_machine=2 * i, self_index=2 * i + 1)
        for i in range(50)
    ]
    report = benchmark(check_sbfr_budget, machines, 1e-3)
    assert report.fits_memory
    benchmark.extra_info["total_bytes"] = report.total_bytes
    benchmark.extra_info["budget_bytes"] = PAPER_SBFR_BUDGET.total_bytes
    benchmark.extra_info["verdict"] = report.describe()


def test_download_roundtrip(benchmark):
    """§6.3: 'new finite-state machines may be downloaded into the
    smart sensor' — decode speed of the wire form."""
    data = encode_machine(build_spike_machine(0))
    decoded = benchmark(decode_machine, data)
    assert len(decoded.transitions) == 7
    assert len(decoded.states) == 4
