"""SBFR-CYCLE: "can cycle with a period of less than 4 milliseconds"
for 100 parallel machines (§6.3), plus the interpreter-vs-vectorized
execution ablation.
"""

from benchmarks._util import mean_seconds, trimmed_median_seconds

import numpy as np
import pytest

from repro.sbfr import (

    SbfrSystem,
    VectorizedAlarmBank,
    build_spike_machine,
    build_stiction_machine,
    level_alarm_machine,
)

PAPER_CYCLE_LIMIT = 4e-3  # seconds


def _hundred_machine_system():
    system = SbfrSystem(channels=[f"c{i}" for i in range(50)])
    for i in range(50):
        system.add_machine(build_spike_machine(current_channel=i, self_index=2 * i))
        system.add_machine(
            build_stiction_machine(cpos_channel=i, spike_machine=2 * i, self_index=2 * i + 1)
        )
    return system


def test_hundred_machine_cycle(benchmark):
    """One interpreter cycle over 100 machines vs the 4 ms budget."""
    system = _hundred_machine_system()
    rng = np.random.default_rng(0)
    sample = rng.random(50)

    def one_cycle():
        system.cycle(sample)

    benchmark(one_cycle)
    assert not (trimmed_median_seconds(benchmark) >= PAPER_CYCLE_LIMIT)  # NaN-tolerant
    benchmark.extra_info["paper_limit_ms"] = PAPER_CYCLE_LIMIT * 1e3
    benchmark.extra_info["mean_ms"] = round(mean_seconds(benchmark) * 1e3, 4)


@pytest.mark.parametrize("n_machines", [100, 400, 1600])
def test_interpreter_alarm_bank_cycle(benchmark, n_machines):
    """Generic interpreter running n identical level alarms."""
    system = SbfrSystem(channels=[f"c{i}" for i in range(n_machines)])
    for i in range(n_machines):
        system.add_machine(level_alarm_machine(channel=i, threshold=0.7, hold_cycles=2))
    sample = np.random.default_rng(0).random(n_machines)
    benchmark(system.cycle, sample)
    benchmark.extra_info["n_machines"] = n_machines


@pytest.mark.parametrize("n_machines", [100, 400, 1600])
def test_vectorized_alarm_bank_cycle(benchmark, n_machines):
    """Vectorized bank running the same alarms: the ablation pair."""
    bank = VectorizedAlarmBank(np.full(n_machines, 0.7), hold_cycles=2)
    sample = np.random.default_rng(0).random(n_machines)
    benchmark(bank.cycle, sample)
    benchmark.extra_info["n_machines"] = n_machines


def test_vectorized_block_throughput(benchmark):
    """Whole-block execution rate of the vectorized bank
    (cycles x channels per second)."""
    n_channels, n_cycles = 256, 512
    bank = VectorizedAlarmBank(np.full(n_channels, 0.7), hold_cycles=2)
    samples = np.random.default_rng(0).random((n_cycles, n_channels))

    def run_block():
        bank.reset()
        bank.run(samples)

    benchmark(run_block)
    rate = n_channels * n_cycles / mean_seconds(benchmark)
    benchmark.extra_info["machine_cycles_per_s"] = f"{rate:,.0f}"
