"""FIG5: the Data Concentrator acquisition chain.

2 MUX x (4 banks x 4 channels) + 4-channel DSP + per-channel RMS
detectors: sustained 32-channel survey throughput, the constant-
alarming path, and alarm latency from fault onset.
"""

from benchmarks._util import mean_seconds

import numpy as np

from repro.dc.acquisition import AcquisitionChain, TOTAL_CHANNELS
from repro.plant import MachineKinematics, VibrationSynthesizer
from repro.plant.faults import FaultKind



def _loaded_chain(sample_rate=16384.0, faulty_channel=9):
    chain = AcquisitionChain(sample_rate)
    synths = {}
    for c in range(TOTAL_CHANNELS):
        synth = VibrationSynthesizer(MachineKinematics(shaft_hz=59.3), sample_rate)
        faults = {FaultKind.BEARING_WEAR: 0.9} if c == faulty_channel else None
        chain.bind(
            c,
            lambda n, rng, s=synth, f=faults: s.synthesize(n, faults=f, rng=rng),
        )
        synths[c] = synth
    return chain


def test_full_survey_throughput(benchmark):
    """Full 32-channel survey (8 bank acquisitions) of 4096-sample
    blocks: the periodic vibration-test front end."""
    chain = _loaded_chain()
    rng = np.random.default_rng(0)
    out = benchmark(chain.sweep, 4096, rng)
    assert len(out) == 32
    points = 32 * 4096
    rate = points / mean_seconds(benchmark)
    benchmark.extra_info["points_per_second"] = f"{rate:,.0f}"
    benchmark.extra_info["realtime_factor_at_16k384"] = round(
        rate / (4 * 16384.0), 1
    )  # only 4 channels are live per acquisition


def test_rms_constant_alarming(benchmark):
    """The analog RMS path: every channel scanned regardless of bank
    selection; the faulty channel alarms."""
    chain = _loaded_chain()
    for c in range(TOTAL_CHANNELS):
        chain.detectors.set_threshold(c, 0.10)
    rng = np.random.default_rng(1)
    alarms = benchmark(chain.rms_scan, 1024, rng)
    assert alarms[9]
    assert alarms.sum() == 1
    benchmark.extra_info["alarmed_channels"] = [int(c) for c in np.flatnonzero(alarms)]


def test_alarm_latency_blocks(benchmark):
    """Series: scans needed to latch the alarm after fault onset, per
    threshold margin (tight thresholds alarm on the first block)."""

    def latency_for(threshold):
        chain = AcquisitionChain()
        synth = VibrationSynthesizer(MachineKinematics(shaft_hz=59.3))
        severity = {"s": 0.0}
        chain.bind(
            0,
            lambda n, rng: synth.synthesize(
                n, faults={FaultKind.BEARING_WEAR: severity["s"]}, rng=rng
            ),
        )
        chain.detectors.set_threshold(0, threshold)
        rng = np.random.default_rng(2)
        severity["s"] = 0.9  # fault appears
        for scan in range(1, 20):
            if chain.rms_scan(1024, rng)[0]:
                return scan
        return None

    def sweep():
        return {thr: latency_for(thr) for thr in (0.08, 0.10, 0.12)}

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert latencies[0.08] is not None
    for thr, scans in latencies.items():
        benchmark.extra_info[f"scans_to_alarm@thr={thr}"] = scans
