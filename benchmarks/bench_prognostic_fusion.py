"""PROG-EX: prognostic knowledge fusion (§5.4).

Regenerates both worked examples from the text, benchmarks the
conservative envelope at scale, and ablates it against the noisy-or
combination rule.
"""

import numpy as np
import pytest

from repro.common.units import months
from repro.protocol import PrognosticVector
from repro.fusion import conservative_envelope, noisy_or_envelope

PAPER_A = PrognosticVector.from_pairs(
    [(months(3), 0.01), (months(4), 0.5), (months(5), 0.99)]
)


def test_paper_example_mild_ignored(benchmark):
    """((4.5 mo, .12)) against the 3/4/5-month curve is ignored."""
    b = PrognosticVector.from_pairs([(months(4.5), 0.12)])
    fused = benchmark(conservative_envelope, [PAPER_A, b])
    ts = np.linspace(0, months(6), 100)
    assert np.allclose(fused.probability_at(ts), PAPER_A.probability_at(ts), atol=1e-9)
    benchmark.extra_info["dominated"] = "second report ignored (matches paper)"


def test_paper_example_pessimistic_dominates(benchmark):
    """((4.5 mo, .95)) dominates and pulls certainty earlier."""
    b = PrognosticVector.from_pairs([(months(4.5), 0.95)])
    fused = benchmark(conservative_envelope, [PAPER_A, b])
    assert fused.probability_at(months(4.5)) == pytest.approx(0.95)
    t99_fused = fused.time_to_probability(0.99)
    t99_orig = PAPER_A.time_to_probability(0.99)
    assert t99_fused < t99_orig
    benchmark.extra_info["t99_original_months"] = round(t99_orig / months(1), 3)
    benchmark.extra_info["t99_fused_months"] = round(t99_fused / months(1), 3)


def _random_vectors(n, rng):
    out = []
    for _ in range(n):
        k = int(rng.integers(1, 6))
        times = np.sort(rng.uniform(months(0.5), months(12), k))
        probs = np.sort(rng.uniform(0, 1, k))
        out.append(PrognosticVector.from_pairs(list(zip(times, probs))))
    return out


@pytest.mark.parametrize("n_vectors", [4, 16, 64])
def test_envelope_scaling(benchmark, n_vectors):
    """Fusion cost as the number of contributing sources grows."""
    vectors = _random_vectors(n_vectors, np.random.default_rng(0))
    fused = benchmark(conservative_envelope, vectors)
    assert len(fused) >= 1
    benchmark.extra_info["n_vectors"] = n_vectors
    benchmark.extra_info["fused_knots"] = len(fused)


def test_ablation_noisy_or_vs_conservative(benchmark):
    """Noisy-or is systematically more pessimistic; with many weak
    sources it predicts failure far earlier than the paper's rule."""
    weak = [PrognosticVector.from_pairs([(months(4), 0.25)]) for _ in range(6)]
    cons = conservative_envelope(weak)
    nor = benchmark(noisy_or_envelope, weak)
    t50_cons = cons.time_to_probability(0.5)
    t50_nor = nor.time_to_probability(0.5)
    assert nor.probability_at(months(4)) > cons.probability_at(months(4))
    benchmark.extra_info["p_at_4mo_conservative"] = round(float(cons.probability_at(months(4))), 3)
    benchmark.extra_info["p_at_4mo_noisy_or"] = round(float(nor.probability_at(months(4))), 3)
    benchmark.extra_info["t50_conservative_months"] = (
        round(t50_cons / months(1), 2) if np.isfinite(t50_cons) else "inf"
    )
    benchmark.extra_info["t50_noisy_or_months"] = (
        round(t50_nor / months(1), 2) if np.isfinite(t50_nor) else "inf"
    )
