"""FIG1: the full MPROS pipeline.

Sensors -> DC (algorithm suites) -> ship network (RPC) -> PDME (OOSM +
knowledge fusion) -> prioritized list, on one discrete-event kernel.
Measures wall-clock cost per simulated hour and the end-to-end report
flow for a mixed fault scenario.
"""

from benchmarks._util import mean_seconds, sim_per_wall_second

from repro import build_mpros_system
from repro.netsim.network import LinkConfig
from repro.plant.faults import FaultKind, seeded



def test_end_to_end_hour(benchmark):
    """One simulated hour, two chillers, one vibration + one process
    fault: the whole Figure-1 flow."""

    def scenario():
        system = build_mpros_system(n_chillers=2, seed=0)
        system.inject_fault(
            system.units[0].motor, seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)
        )
        system.inject_fault(
            system.units[1].motor, seeded(FaultKind.REFRIGERANT_LEAK, 0.0, 0.9)
        )
        system.run(hours=1.0)
        return system

    system = benchmark.pedantic(scenario, rounds=3, iterations=1)
    reports = system.model.all_reports()
    assert reports, "no reports crossed the pipeline"
    conditions = {r.machine_condition_id for r in reports}
    assert "mc:motor-imbalance" in conditions
    assert "mc:refrigerant-leak" in conditions
    priorities = system.pdme.priorities(now=system.kernel.now())
    assert len(priorities) >= 2
    benchmark.extra_info["reports_received"] = len(reports)
    benchmark.extra_info["sim_hours_per_wall_second"] = round(
        sim_per_wall_second(benchmark, 1.0), 2
    )
    benchmark.extra_info["top_priority"] = priorities[0].machine_condition_id


def test_end_to_end_lossy_shipboard_network(benchmark):
    """Same flow over a degraded link (§4.9's shipboard conditions):
    the pipeline still converges, at lower delivery rates."""

    def scenario():
        system = build_mpros_system(
            n_chillers=1, seed=1,
            link=LinkConfig(latency=0.05, jitter=0.1, drop_rate=0.3),
        )
        system.inject_fault(
            system.units[0].motor, seeded(FaultKind.MOTOR_IMBALANCE, 0.0, 0.9)
        )
        system.run(hours=1.0)
        return system

    system = benchmark.pedantic(scenario, rounds=2, iterations=1)
    assert system.reports_received() > 0
    stats = system.network.stats()
    benchmark.extra_info["frames_sent"] = stats["sent"]
    benchmark.extra_info["frames_dropped"] = stats["dropped"]
    benchmark.extra_info["reports_received"] = system.reports_received()


def test_report_uplink_rate(benchmark):
    """Steady-state report intake rate at the PDME (reports/s through
    RPC + OOSM + fusion) — the PDME-side scalability number.

    Each round builds a fresh world (fusion state grows with history,
    so reusing one PDME across rounds would measure accumulation, not
    steady state) and posts 100 reports with distinct timestamps
    (identical retransmissions are deduplicated at intake, which is
    not the path under test).
    """
    import numpy as np

    from repro.netsim import EventKernel, Network, RpcEndpoint
    from repro.oosm import build_chilled_water_ship
    from repro.pdme import PdmeExecutive
    from repro.protocol import FailurePredictionReport, PrognosticVector
    from repro.protocol.wire import encode_report

    def setup():
        kernel = EventKernel()
        net = Network(kernel, np.random.default_rng(0))
        dc_ep = RpcEndpoint("dc:0", net, kernel)
        pdme_ep = RpcEndpoint("pdme", net, kernel)
        model, ship, units = build_chilled_water_ship(n_chillers=1)
        pdme = PdmeExecutive(model)
        pdme.serve_on(pdme_ep)
        payloads = [
            encode_report(
                FailurePredictionReport(
                    knowledge_source_id="ks:dli",
                    sensed_object_id=units[0].motor,
                    machine_condition_id="mc:motor-imbalance",
                    severity=0.5,
                    belief=0.3,
                    timestamp=float(i + 1),
                    prognostic=PrognosticVector.from_pairs([(3600.0, 0.5)]),
                )
            )
            for i in range(100)
        ]
        return (kernel, dc_ep, payloads), {}

    def post_100(kernel, dc_ep, payloads):
        for payload in payloads:
            dc_ep.call("pdme", "post_report", payload)
        kernel.run()

    benchmark.pedantic(post_100, setup=setup, rounds=5, iterations=1)
    rate = 100 / mean_seconds(benchmark)
    benchmark.extra_info["reports_per_second"] = f"{rate:,.0f}"
