"""§9's destructive chiller test as a bench: prognostic lead time and
time-to-failure tracking across failure modes, plus the survival-
analysis refinement ablation."""

from benchmarks._util import mean_seconds

import math

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.fusion import LifeRecord, fit_weibull, survival_refined_prognostic
from repro.plant.faults import FaultKind
from repro.validation import run_destructive_test


def test_lead_time_across_failure_modes(benchmark):
    """Run-to-failure per fault kind: detection and warning margin."""

    def campaign():
        out = {}
        for fault in (FaultKind.MOTOR_IMBALANCE, FaultKind.BEARING_WEAR,
                      FaultKind.REFRIGERANT_LEAK):
            result = run_destructive_test(
                sources=[DliExpertSystem(), FuzzyDiagnostics()],
                fault=fault,
                time_to_failure=4800.0,
                scan_period=300.0,
                rng=np.random.default_rng(0),
            )
            out[fault.condition_id] = (
                result.detected,
                result.lead_time if result.detected else math.nan,
            )
        return out

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    for cond, (detected, lead) in results.items():
        assert detected, f"{cond} never detected before failure"
        assert lead > 0, f"{cond} called only after failure"
        benchmark.extra_info[f"lead_s[{cond}]"] = round(lead)


def test_ttf_estimates_tighten_toward_failure(benchmark):
    """The fused TTF trajectory is non-increasing in grade era: early
    months-scale estimates give way to weeks then days."""

    def run():
        return run_destructive_test(
            sources=[DliExpertSystem()],
            fault=FaultKind.MOTOR_IMBALANCE,
            time_to_failure=6000.0,
            scan_period=300.0,
            rng=np.random.default_rng(1),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    estimates = [est for _, est in result.ttf_track if math.isfinite(est)]
    assert estimates[-1] < 0.2 * estimates[0]
    benchmark.extra_info["first_ttf_days"] = round(estimates[0] / 86400.0, 1)
    benchmark.extra_info["final_ttf_days"] = round(estimates[-1] / 86400.0, 1)


def test_survival_refinement_reduces_terminal_error(benchmark):
    """Ablation: grade-based vs survival-refined TTF near end of life."""
    rng = np.random.default_rng(2)
    beta, eta = 3.0, 6000.0
    fleet = [LifeRecord(float(t)) for t in eta * rng.weibull(beta, 200)]
    fit = fit_weibull(fleet)

    def run():
        result = run_destructive_test(
            sources=[DliExpertSystem()],
            fault=FaultKind.BEARING_WEAR,
            time_to_failure=6000.0,
            scan_period=300.0,
            rng=np.random.default_rng(3),
        )
        errors_raw, errors_refined = [], []
        for t, est in result.ttf_track:
            actual = result.failure_time - t
            if actual <= 0 or not math.isfinite(est):
                continue
            errors_raw.append(abs(est - actual) / actual)
            # The live fused vector is summarized by its median here:
            # refine it with the fleet curve at the unit's current age.
            from repro.protocol.prognostic import PrognosticVector

            live = PrognosticVector.from_pairs([(est, 0.5)])
            refined = survival_refined_prognostic(live, fit, age=t)
            est2 = refined.time_to_probability(0.5)
            errors_refined.append(abs(est2 - actual) / actual)
        return float(np.median(errors_raw)), float(np.median(errors_refined))

    err_raw, err_refined = benchmark.pedantic(run, rounds=1, iterations=1)
    assert err_refined < err_raw
    benchmark.extra_info["median_rel_error_grade_based"] = round(err_raw, 2)
    benchmark.extra_info["median_rel_error_survival_refined"] = round(err_refined, 2)
