"""DLI-AGREE + SEV-MAP: the §6.1 expert-system claims.

* "the system exceeds 95% agreement with human expert analysts" —
  reproduced with the synthetic analyst over a seeded-fault campaign.
* Severity grades map to months/weeks/days prognostic horizons.
* Believability factors emerge from the reversal statistics.
"""

from benchmarks._util import mean_seconds

import numpy as np
import pytest

from repro.algorithms.dli.believability import ReversalDatabase
from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.dli.severity import prognostic_from_grade
from repro.common.units import SECONDS_PER_DAY
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer
from repro.protocol.severity import SeverityGrade
from repro.validation import SeededFaultCampaign, SyntheticAnalyst
from repro.validation.analyst import AgreementStudy
from repro.validation.seeded import vibration_only



def test_analyst_agreement_exceeds_95(benchmark):
    """The headline §6.1 number on the vibration suite."""

    def study_run():
        campaign = SeededFaultCampaign(
            sources=[DliExpertSystem()],
            faults=vibration_only(),
            duration=1200.0,
            scan_period=120.0,
            rng=np.random.default_rng(0),
        )
        records = campaign.run(healthy_controls=2)
        study = AgreementStudy(
            analyst=SyntheticAnalyst(np.random.default_rng(1), error_rate=0.02),
            database=ReversalDatabase(),
        )
        for record in records:
            for report in record.reports:
                study.review(report, record.true_severities)
        return study, campaign.score(records, onset=campaign.onset)

    study, metrics = benchmark.pedantic(study_run, rounds=1, iterations=1)
    assert study.agreement > 0.95, f"agreement {study.agreement:.3f}"
    benchmark.extra_info["agreement_pct"] = round(study.agreement * 100, 1)
    benchmark.extra_info["paper_claim"] = "exceeds 95%"
    benchmark.extra_info["campaign"] = metrics.describe()


def test_analysis_pass_cost(benchmark):
    """Cost of one full DLI analysis pass (averaged spectrum + all
    frames) on a 2-second block — the continuous-mode budget."""
    dli = DliExpertSystem()
    synth = VibrationSynthesizer(MachineKinematics(shaft_hz=59.3))
    wave = synth.synthesize(
        32768, faults={FaultKind.MOTOR_IMBALANCE: 0.8}, rng=np.random.default_rng(0)
    )
    from repro.algorithms.base import SourceContext

    ctx = SourceContext(
        sensed_object_id="obj:m",
        timestamp=0.0,
        waveform=wave,
        sample_rate=synth.sample_rate,
        process={"prv_position_pct": 100.0},
        kinematics=synth.kinematics,
    )
    reports = benchmark(dli.analyze, ctx)
    assert reports
    benchmark.extra_info["passes_per_second"] = f"{1.0 / mean_seconds(benchmark):,.1f}"


def test_severity_grade_horizons(benchmark):
    """SEV-MAP: Slight/Moderate/Serious/Extreme -> none/months/weeks/
    days, as median predicted time to failure."""

    def horizons():
        return {
            g.label: prognostic_from_grade(g).time_to_probability(0.5)
            for g in SeverityGrade
        }

    t50 = benchmark(horizons)
    days = {k: v / SECONDS_PER_DAY for k, v in t50.items()}
    assert days["Extreme"] <= 10                     # days
    assert 7 <= days["Serious"] <= 42                # weeks
    assert 30 <= days["Moderate"] <= 180             # months
    assert days["Slight"] > 365                      # no foreseeable failure
    for k, v in days.items():
        benchmark.extra_info[f"t50_days[{k}]"] = round(v, 1)


def test_believability_separates_good_and_bad_rules(benchmark):
    """Believability factors: a frequently-reversed diagnosis ends up
    trusted less, discounting its future fused weight."""

    def build():
        db = ReversalDatabase()
        for _ in range(40):
            db.record("mc:solid-call", False)
            db.record("mc:flaky-call", True)
        return db.believability("mc:solid-call"), db.believability("mc:flaky-call")

    solid, flaky = benchmark(build)
    assert solid > 0.9 > 0.3 > flaky
    benchmark.extra_info["solid_alpha"] = round(solid, 3)
    benchmark.extra_info["flaky_alpha"] = round(flaky, 3)
