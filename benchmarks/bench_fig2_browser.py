"""FIG2: the PDME browser screen.

Reproduces the sample screen's content — six condition reports from
four knowledge sources on "A/C Compressor Motor 1", some conflicting
and some reinforcing, with fused predictions per condition group — and
measures render/update rates ("this display is updated as new reports
arrive").
"""

from benchmarks._util import mean_seconds

from repro.common.units import months
from repro.oosm import build_chilled_water_ship
from repro.pdme import PdmeExecutive, render_machine_screen, render_priority_list
from repro.protocol import FailurePredictionReport, PrognosticVector



def _fig2_pdme():
    model, ship, units = build_chilled_water_ship(n_chillers=1)
    pdme = PdmeExecutive(model)
    motor = units[0].motor

    def rep(cond, belief, ks, pairs=()):
        return FailurePredictionReport(
            knowledge_source_id=ks,
            sensed_object_id=motor,
            machine_condition_id=cond,
            severity=0.5,
            belief=belief,
            timestamp=10.0,
            prognostic=PrognosticVector.from_pairs(list(pairs)),
        )

    # Six reports, four sources, conflicting and reinforcing.
    pdme.submit(rep("mc:motor-imbalance", 0.6, "ks:dli", [(months(3), 0.5)]))
    pdme.submit(rep("mc:motor-imbalance", 0.5, "ks:wnn"))
    pdme.submit(rep("mc:motor-imbalance", 0.4, "ks:sbfr"))
    pdme.submit(rep("mc:shaft-misalignment", 0.7, "ks:fuzzy"))
    pdme.submit(rep("mc:motor-rotor-bar", 0.5, "ks:dli"))
    pdme.submit(rep("mc:oil-contamination", 0.45, "ks:fuzzy"))
    return model, pdme, motor


def test_fig2_screen_render(benchmark):
    """Render the populated machine screen."""
    model, pdme, motor = _fig2_pdme()
    screen = benchmark(render_machine_screen, model, pdme.engine, motor, 10.0)
    assert "6 report(s) from 4 knowledge source(s)" in screen
    assert "Fused failure predictions" in screen
    for group in ("[rotating-mechanical]", "[electrical]", "[lubricant]"):
        assert group in screen
    benchmark.extra_info["screen_lines"] = screen.count("\n") + 1


def test_priority_list_render(benchmark):
    """Render the prioritized maintenance list."""
    model, pdme, motor = _fig2_pdme()
    entries = pdme.priorities(now=10.0)
    text = benchmark(render_priority_list, entries)
    assert "prioritized maintenance list" in text
    benchmark.extra_info["entries"] = len(entries)


def test_live_update_rate(benchmark):
    """Reports/second the display pipeline sustains: submit + fuse +
    re-render on every arrival, as §3.2 describes."""
    model, pdme, motor = _fig2_pdme()
    counter = {"n": 0}

    def one_update():
        counter["n"] += 1
        pdme.submit(
            FailurePredictionReport(
                knowledge_source_id="ks:dli",
                sensed_object_id=motor,
                machine_condition_id="mc:motor-imbalance",
                severity=0.5,
                belief=0.1,
                timestamp=10.0 + counter["n"],
            )
        )
        render_machine_screen(model, pdme.engine, motor, now=10.0 + counter["n"])

    benchmark(one_update)
    benchmark.extra_info["updates_per_second"] = f"{1.0 / mean_seconds(benchmark):,.0f}"
