"""Shared helpers for the benchmark suite."""

import math


def mean_seconds(benchmark) -> float:
    """Mean measured time of a benchmark, or NaN when timing is
    disabled (``--benchmark-disable``), so derived report values stay
    printable and limit assertions can be made NaN-tolerant."""
    stats = getattr(benchmark, "stats", None)
    if not stats:
        return math.nan
    try:
        return float(stats["mean"])
    except (KeyError, TypeError):
        return math.nan
