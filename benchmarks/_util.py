"""Shared helpers for the benchmark suite.

Latency *limits* in this suite gate on :func:`trimmed_median_seconds`,
not the mean: on a shared CI runner a single preempted round can
inflate the mean by orders of magnitude, while the trimmed median only
moves if the typical round moves.  Throughput claims about simulated
work (e.g. "replays N simulated seconds per wall second") go through
:func:`sim_per_wall_second` so every bench reports the figure the same
way.

All helpers are NaN-tolerant: with ``--benchmark-disable`` they return
NaN, so `assert not (value >= limit)` style checks pass vacuously.
"""

import math


def _stat(benchmark, key):
    stats = getattr(benchmark, "stats", None)
    if not stats:
        return None
    try:
        return stats[key]
    except (KeyError, TypeError):
        return None


def mean_seconds(benchmark) -> float:
    """Mean measured time of a benchmark, or NaN when timing is
    disabled (``--benchmark-disable``), so derived report values stay
    printable and limit assertions can be made NaN-tolerant."""
    value = _stat(benchmark, "mean")
    return float(value) if value is not None else math.nan


def trimmed_median_seconds(benchmark, trim: int = 1) -> float:
    """Median round time after dropping the ``trim`` fastest and
    slowest rounds (when enough rounds exist), or NaN when timing is
    disabled.  The right statistic for latency-limit assertions."""
    data = _stat(benchmark, "data")
    if not data:
        value = _stat(benchmark, "median")
        return float(value) if value is not None else math.nan
    rounds = sorted(float(d) for d in data)
    if trim > 0 and len(rounds) > 2 * trim + 1:
        rounds = rounds[trim:-trim]
    mid = len(rounds) // 2
    if len(rounds) % 2:
        return rounds[mid]
    return 0.5 * (rounds[mid - 1] + rounds[mid])


def sim_per_wall_second(benchmark, sim_seconds: float) -> float:
    """Simulated seconds replayed per wall-clock second, from the
    trimmed median round time (NaN when timing is disabled).

    ``sim_seconds`` is the simulated-time span one benchmark round
    covers; a result of 1000 means the scenario replays 1000x faster
    than real time."""
    wall = trimmed_median_seconds(benchmark)
    if not wall or math.isnan(wall):
        return math.nan
    return sim_seconds / wall
