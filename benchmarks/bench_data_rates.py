"""RATES: the §1 data-load claims and the DC's ability to keep up.

"Fleet-wide, thousands of embedded processors will collect millions of
data points per second" — the accounting rows, plus the vectorized-vs-
naive feature pipeline ablation and the multiprocessing ship replay.
"""

from benchmarks._util import mean_seconds, trimmed_median_seconds

import numpy as np
import pytest

from repro.hpc import (
    FeaturePipeline,
    FleetConfig,
    LoadGenerator,
    fleet_data_rate,
    parallel_feature_extraction,
    serial_feature_extraction,
)
from repro.hpc.pipeline import naive_process



def test_fleet_accounting(benchmark):
    """The tier-by-tier points/second table."""
    rates = benchmark(fleet_data_rate, FleetConfig())
    assert rates.fleet > 1e6
    benchmark.extra_info["per_dc_points_s"] = f"{rates.per_dc:,.0f}"
    benchmark.extra_info["per_ship_points_s"] = f"{rates.per_ship:,.0f}"
    benchmark.extra_info["fleet_points_s"] = f"{rates.fleet:,.0f}"
    benchmark.extra_info["paper_claim"] = "millions of data points per second"


@pytest.mark.parametrize("n_channels", [8, 32])
def test_vectorized_pipeline_block(benchmark, n_channels):
    """One block through the vectorized pipeline."""
    block_samples = 4096
    gen = LoadGenerator(n_channels, block_samples, np.random.default_rng(0))
    pipe = FeaturePipeline(n_channels, block_samples, 16384.0)
    block = gen.next_block().copy()
    benchmark(pipe.process, block)
    rate = n_channels * block_samples / mean_seconds(benchmark)
    benchmark.extra_info["points_per_second"] = f"{rate:,.0f}"
    dc_load = fleet_data_rate(FleetConfig()).per_dc
    benchmark.extra_info["x_one_dc_load"] = round(rate / dc_load, 1)


def test_naive_pipeline_block(benchmark):
    """Ablation baseline: per-channel Python loop, fresh allocations."""
    n_channels, block_samples = 32, 4096
    gen = LoadGenerator(n_channels, block_samples, np.random.default_rng(0))
    block = gen.next_block().copy()
    bands = ((0.0, 500.0), (500.0, 2000.0), (2000.0, 8000.0))
    benchmark(naive_process, block, 16384.0, bands)
    rate = n_channels * block_samples / mean_seconds(benchmark)
    benchmark.extra_info["points_per_second"] = f"{rate:,.0f}"


def test_sustained_throughput_vs_dc_load(benchmark):
    """Sustained generator -> pipeline loop: must exceed one DC's
    average load with margin (the embedded feasibility claim)."""
    n_channels, block_samples = 32, 4096
    gen = LoadGenerator(n_channels, block_samples, np.random.default_rng(0))
    pipe = FeaturePipeline(n_channels, block_samples, 16384.0)

    def run_chunk():
        for _ in range(8):
            pipe.process(gen.next_block())

    benchmark(run_chunk)
    rate = 8 * n_channels * block_samples / trimmed_median_seconds(benchmark)
    dc_load = fleet_data_rate(FleetConfig()).per_dc
    assert not (rate <= 10 * dc_load)  # NaN-tolerant when timing disabled
    benchmark.extra_info["sustained_points_s"] = f"{rate:,.0f}"
    benchmark.extra_info["margin_over_dc_load"] = round(rate / dc_load, 1)


def test_ship_replay_parallel_farm(benchmark):
    """PDME-side replay of many DCs' blocks across a process pool."""
    rng = np.random.default_rng(1)
    blocks = rng.normal(size=(24, 16, 2048))

    def farm():
        return parallel_feature_extraction(blocks, 16384.0, n_workers=4)

    out = benchmark.pedantic(farm, rounds=2, iterations=1)
    assert np.allclose(out, serial_feature_extraction(blocks, 16384.0))
    benchmark.extra_info["blocks"] = blocks.shape[0]
