"""FIG3: the EMA seize-up prediction scenario end to end.

The two Figure-3 machines against the simulated actuator: stiction is
flagged on uncommanded spikes, commanded-motion transients are
rejected, and the whole recognition pipeline runs at embedded rates.
"""

from benchmarks._util import mean_seconds, trimmed_median_seconds

import numpy as np

from repro.plant.ema import EmaSimulator
from repro.sbfr import SbfrSystem, build_spike_machine, build_stiction_machine



def _system():
    s = SbfrSystem(channels=["current", "cpos"])
    s.add_machine(build_spike_machine(current_channel=0, self_index=0))
    s.add_machine(build_stiction_machine(cpos_channel=1, spike_machine=0, self_index=1))
    return s


def test_stiction_detection_scenario(benchmark):
    """Full scenario: healthy commanded phase then stiction onset;
    measures recognition over 2000 control cycles."""

    def scenario():
        system = _system()
        rng = np.random.default_rng(7)
        ema = EmaSimulator(stiction_rate=0.0)
        schedule = {i: float(i) / 100.0 for i in range(0, 600, 60)}
        system.run(ema.run(600, rng, command_schedule=schedule))
        healthy_count = int(system.states[1].locals[1])
        ema.stiction_rate = 0.05
        trace = ema.run(1400, rng)
        system.run(trace)
        return healthy_count, bool(system.status(1) & 1)

    healthy_count, flagged = benchmark(scenario)
    assert healthy_count == 0      # commanded transients rejected
    assert flagged                 # stiction recognized
    benchmark.extra_info["healthy_phase_counts"] = healthy_count
    benchmark.extra_info["stiction_flagged"] = flagged


def test_per_cycle_cost_two_machines(benchmark):
    """Per-control-cycle cost of the Figure-3 pair (the embedded number
    that matters for a 4 ms loop)."""
    system = _system()
    rng = np.random.default_rng(0)
    ema = EmaSimulator(stiction_rate=0.03)

    def one_cycle():
        current, cpos = ema.cycle(rng)
        system.cycle({"current": current, "cpos": cpos})

    benchmark(one_cycle)
    assert not (trimmed_median_seconds(benchmark) >= 4e-3)  # NaN-tolerant when timing disabled
    benchmark.extra_info["mean_us"] = round(mean_seconds(benchmark) * 1e6, 2)


def test_detection_latency_vs_stiction_rate(benchmark):
    """Series: cycles until the flag trips as stiction worsens."""

    def sweep():
        out = {}
        for rate in (0.01, 0.03, 0.1):
            system = _system()
            ema = EmaSimulator(stiction_rate=rate)
            rng = np.random.default_rng(1)
            tripped = None
            for cycle in range(6000):
                current, cpos = ema.cycle(rng)
                system.cycle({"current": current, "cpos": cpos})
                if system.status(1) & 1:
                    tripped = cycle
                    break
            out[rate] = tripped
        return out

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(v is not None for v in latencies.values())
    # Worse stiction -> earlier warning.
    assert latencies[0.1] < latencies[0.01]
    for rate, cycles in latencies.items():
        benchmark.extra_info[f"cycles_to_flag@rate={rate}"] = cycles
