"""WNN-TRANS: the claimed complementarity of the suites (§1.1/§6.2).

"[The WNN], like DLI's, [is] aimed at vibration data, however, unlike
DLI's, their algorithm will excel in drawing conclusions from
transitory phenomena rather than steady state data."

Reproduced shape, two regimes over the same 2-second survey blocks:

* steady state — the fault signature is present throughout the block;
  DLI's averaged-spectrum frames are accurate and the WNN no better;
* transitory — the signature exists only in a ~6% slice of the block
  (an intermittent rattle / gear event); block-averaged spectra dilute
  it ~16x and the DLI frames go quiet, while the WNN's short sliding
  windows localize and classify the event.
"""

from benchmarks._util import mean_seconds

import numpy as np
import pytest

from repro.algorithms.base import SourceContext
from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.wnn import TrainConfig, WnnFaultClassifier, assemble_features
from repro.plant import FaultKind, MachineKinematics, VibrationSynthesizer


KIN = MachineKinematics(shaft_hz=59.3)
CONDITIONS = ("mc:bearing-housing-looseness", "mc:gear-tooth-wear")
FAULTS = {
    "mc:bearing-housing-looseness": {FaultKind.BEARING_HOUSING_LOOSENESS: 0.9},
    "mc:gear-tooth-wear": {FaultKind.GEAR_TOOTH_WEAR: 0.9},
}
WINDOW = 1024
BLOCK = 32768
EVENT = 2048     # the transient's extent: ~6% of the block


def _steady_block(synth, cond, rng):
    return synth.synthesize(BLOCK, faults=FAULTS[cond] if cond else None, rng=rng)


def _transient_block(synth, cond, rng):
    """Healthy block with one short fault event spliced in."""
    block = synth.synthesize(BLOCK, faults=None, rng=rng)
    if cond is not None:
        # Align the event to the WNN window grid so exactly two windows
        # contain it (an analyzer cannot rely on that in general; the
        # vote logic must still fire on a couple of windows).
        start = int(rng.integers(0, (BLOCK - EVENT) // WINDOW)) * WINDOW
        event = synth.synthesize(EVENT, faults=FAULTS[cond], rng=rng)
        block[start : start + EVENT] = event
    return block


@pytest.fixture(scope="module")
def trained_wnn():
    """WNN trained on short windows of each fault (and healthy)."""
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(0)
    X, y = [], []
    classes = [None] + list(CONDITIONS)
    for label, cond in enumerate(classes):
        for _ in range(60):
            wave = synth.synthesize(
                WINDOW, faults=FAULTS[cond] if cond else None, rng=rng
            )
            X.append(assemble_features(wave, synth.sample_rate))
            y.append(label)
    clf = WnnFaultClassifier(
        conditions=CONDITIONS, n_hidden=24,
        min_confidence=0.6, vote_fraction=0.02,
    )
    clf.fit(np.vstack(X), np.array(y), config=TrainConfig(epochs=150, patience=25),
            rng=np.random.default_rng(1))
    return clf


def _accuracy(analyze, make_block, n_trials=10, seed=100):
    """Fraction of faulty blocks where the analyzer names the fault."""
    synth = VibrationSynthesizer(KIN)
    rng = np.random.default_rng(seed)
    correct = total = 0
    for cond in CONDITIONS:
        for _ in range(n_trials):
            wave = make_block(synth, cond, rng)
            # No process scalars: matches the WNN's training features
            # (a fielded system trains and infers with the same
            # instrumentation coverage).
            ctx = SourceContext(
                sensed_object_id="obj:m", timestamp=0.0, waveform=wave,
                sample_rate=synth.sample_rate, kinematics=KIN,
            )
            conditions = {r.machine_condition_id for r in analyze(ctx)}
            total += 1
            correct += cond in conditions
    return correct / total


def test_dli_wins_on_steady_state(benchmark, trained_wnn):
    """Persistent signatures: DLI accuracy >= WNN accuracy."""
    dli = DliExpertSystem()

    def run():
        return (
            _accuracy(dli.analyze, _steady_block, n_trials=6),
            _accuracy(trained_wnn.analyze, _steady_block, n_trials=6),
        )

    dli_acc, wnn_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dli_acc >= 0.9
    assert dli_acc >= wnn_acc - 1e-9
    benchmark.extra_info["steady_dli_accuracy"] = round(dli_acc, 2)
    benchmark.extra_info["steady_wnn_accuracy"] = round(wnn_acc, 2)


def test_wnn_wins_on_transients(benchmark, trained_wnn):
    """Intermittent events: WNN accuracy > DLI accuracy."""
    dli = DliExpertSystem()

    def run():
        return (
            _accuracy(dli.analyze, _transient_block, n_trials=8),
            _accuracy(trained_wnn.analyze, _transient_block, n_trials=8),
        )

    dli_acc, wnn_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert wnn_acc > dli_acc + 0.2
    assert wnn_acc >= 0.6
    benchmark.extra_info["transient_dli_accuracy"] = round(dli_acc, 2)
    benchmark.extra_info["transient_wnn_accuracy"] = round(wnn_acc, 2)


def test_wnn_window_classification_cost(benchmark, trained_wnn):
    """Per-window inference cost (feature assembly + forward pass)."""
    synth = VibrationSynthesizer(KIN)
    wave = synth.synthesize(
        WINDOW, faults=FAULTS["mc:gear-tooth-wear"], rng=np.random.default_rng(5)
    )
    benchmark(trained_wnn.classify_window, wave, synth.sample_rate)
    benchmark.extra_info["windows_per_second"] = f"{1.0 / mean_seconds(benchmark):,.0f}"
