"""DS-EX + DS-SCALE: Dempster-Shafer fusion (§5.3).

Regenerates the paper's worked example exactly and ablates the logical-
group heuristic against one flat frame: cost (combination time as the
focal-element lattice grows) and correctness (concurrent independent
faults must not suppress each other, the stated reason for groups).
"""

import pytest

from repro.fusion import DiagnosticFusion, GroupRegistry, MassFunction, combine, combine_many
from repro.fusion.dempster_shafer import from_simple_support
from repro.protocol import FailurePredictionReport


def test_paper_worked_example(benchmark):
    """§5.3: m1(A)=.40 ⊕ m2(B∨C)=.75 ⇒ A 14%, B∨C 64%, unknown ~22%."""
    frame = {"A", "B", "C"}
    m1 = MassFunction(frame, {"A": 0.40})
    m2 = MassFunction(frame, {("B", "C"): 0.75})
    fused = benchmark(combine, m1, m2)
    assert round(fused.mass("A"), 2) == 0.14
    assert round(fused.mass(("B", "C")), 2) == 0.64
    assert 0.21 <= fused.unknown() <= 0.22
    benchmark.extra_info["mass_A"] = round(fused.mass("A"), 4)
    benchmark.extra_info["mass_BC"] = round(fused.mass(("B", "C")), 4)
    benchmark.extra_info["unknown"] = round(fused.unknown(), 4)


def _subset_evidence(frame_list, n_reports, width=3):
    """Reports asserting overlapping subsets — the focal-element growth
    driver for flat-frame D-S."""
    frame = frozenset(frame_list)
    masses = []
    for i in range(n_reports):
        subset = tuple(frame_list[(i + j) % len(frame_list)] for j in range(width))
        masses.append(MassFunction(frame, {subset: 0.6}))
    return masses


@pytest.mark.parametrize("n_conditions", [8, 16, 32])
def test_flat_frame_combination_cost(benchmark, n_conditions):
    """Flat D-S over all conditions at once: cost grows with the
    focal-element lattice."""
    conditions = [f"mc:{i}" for i in range(n_conditions)]
    masses = _subset_evidence(conditions, n_reports=12)
    fused = benchmark(combine_many, masses)
    benchmark.extra_info["n_conditions"] = n_conditions
    benchmark.extra_info["focal_elements"] = len(list(fused.focal_elements()))


@pytest.mark.parametrize("n_conditions", [8, 16, 32])
def test_grouped_combination_cost(benchmark, n_conditions):
    """The same evidence volume split into 4 logical groups: each group
    fuses over its own small frame."""
    group_size = n_conditions // 4
    groups = [
        [f"mc:{g * group_size + i}" for i in range(group_size)] for g in range(4)
    ]

    def fuse_grouped():
        out = []
        for g in groups:
            out.append(combine_many(_subset_evidence(g, n_reports=3, width=min(3, len(g)))))
        return out

    fused = benchmark(fuse_grouped)
    benchmark.extra_info["n_conditions"] = n_conditions
    benchmark.extra_info["focal_elements"] = sum(
        len(list(m.focal_elements())) for m in fused
    )


def _report(cond, belief=0.9, obj="obj:m"):
    return FailurePredictionReport(
        knowledge_source_id="ks:x",
        sensed_object_id=obj,
        machine_condition_id=cond,
        severity=0.5,
        belief=belief,
        timestamp=0.0,
    )


def test_groups_preserve_concurrent_faults(benchmark):
    """Correctness ablation: two independent concurrent failures.

    Grouped fusion keeps both at full belief; a single flat frame
    forces them to compete (mutual exclusivity), suppressing both —
    exactly the §5.3 motivation for logical groups.
    """
    reg = GroupRegistry()
    reg.add("electrical", ["mc:rotor", "mc:stator"])
    reg.add("lubricant", ["mc:oil-a", "mc:oil-b"])

    def grouped():
        fusion = DiagnosticFusion(reg)
        for _ in range(3):
            fusion.ingest(_report("mc:rotor"))
            fusion.ingest(_report("mc:oil-a"))
        return (
            fusion.state("obj:m", "electrical").beliefs["mc:rotor"],
            fusion.state("obj:m", "lubricant").beliefs["mc:oil-a"],
        )

    rotor_belief, oil_belief = benchmark(grouped)

    # Flat frame: same six reports on one frame of all four conditions.
    flat_frame = {"mc:rotor", "mc:stator", "mc:oil-a", "mc:oil-b"}
    flat = combine_many(
        [from_simple_support(flat_frame, "mc:rotor", 0.9),
         from_simple_support(flat_frame, "mc:oil-a", 0.9)] * 3
    )
    assert rotor_belief > 0.99 and oil_belief > 0.99
    assert flat.belief("mc:rotor") < 0.6  # suppressed by forced exclusivity
    benchmark.extra_info["grouped_rotor_belief"] = round(rotor_belief, 3)
    benchmark.extra_info["flat_rotor_belief"] = round(flat.belief("mc:rotor"), 3)
