"""§10.1 extension ablations: the paper's named "future directions",
implemented and compared against the phase-1 mechanisms.

* Bayes-net diagnostic fusion (learned from campaign history) vs
  Dempster-Shafer — the §10.1 succession plan.
* Survival-refined prognostics vs the raw conservative envelope.
* Multi-level health rollup and spatial reasoning costs.
"""

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.common.units import days
from repro.fusion import (
    BayesDiagnosticFusion,
    HealthRollup,
    KnowledgeFusionEngine,
    LifeRecord,
    fit_weibull,
    learn_source_model,
    survival_refined_prognostic,
    transmitted_vibration_candidates,
)
from repro.fusion.groups import default_chiller_groups
from repro.oosm import build_chilled_water_ship
from repro.plant import FaultKind
from repro.protocol import FailurePredictionReport, PrognosticVector
from repro.validation import SeededFaultCampaign
from repro.validation.seeded import vibration_only


def _campaign_records(seed=0, duration=900.0):
    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem()],
        faults=vibration_only()[:4],
        duration=duration,
        scan_period=180.0,
        rng=np.random.default_rng(seed),
    )
    return campaign.run(healthy_controls=2)


def test_bayes_vs_dempster_shafer(benchmark):
    """Both fusion schemes rank the true fault first; the Bayes path
    additionally prices in each source's learned accuracy."""
    train = _campaign_records(seed=0)
    model = learn_source_model(train)
    test = _campaign_records(seed=1)

    def run():
        agreements = 0
        comparable = 0
        for record in test:
            if record.fault is None or not record.reports:
                continue
            ds = KnowledgeFusionEngine(default_chiller_groups())
            bayes = BayesDiagnosticFusion(model, sources=("ks:dli",))
            for r in record.reports:
                ds.ingest(r)
                bayes.ingest(r)
            ds_top = ds.suspects(threshold=0.0)
            by_top = bayes.suspects(threshold=0.0)
            if ds_top and by_top:
                comparable += 1
                ds_call = ds_top[0][1]
                by_call = by_top[0][1]
                truth = record.fault.condition_id
                agreements += (ds_call == truth) and (by_call == truth)
        return comparable, agreements

    comparable, agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert comparable >= 3
    assert agreements == comparable  # both schemes call every truth
    benchmark.extra_info["scenarios"] = comparable
    benchmark.extra_info["both_correct"] = agreements


def test_bayes_posterior_cost(benchmark):
    """Per-query cost of the learned two-layer network inference."""
    train = _campaign_records(seed=0)
    model = learn_source_model(train)
    fusion = BayesDiagnosticFusion(model, sources=("ks:dli",))
    fusion.ingest(
        FailurePredictionReport(
            knowledge_source_id="ks:dli",
            sensed_object_id="obj:m",
            machine_condition_id=FaultKind.MOTOR_IMBALANCE.condition_id,
            severity=0.5,
            belief=0.7,
            timestamp=0.0,
        )
    )
    p = benchmark(fusion.posterior, "obj:m", FaultKind.MOTOR_IMBALANCE.condition_id)
    assert 0.0 < p < 1.0
    benchmark.extra_info["posterior"] = round(p, 3)


def test_survival_refinement_improves_prognostic_error(benchmark):
    """Fleet life statistics tighten TTF estimates for old units.

    Scenario: a component class whose true life is Weibull(beta=3,
    eta=120 d).  The live (grade-based) prognostic alone is months-
    coarse; blending the fleet curve moves the median-TTF estimate for
    an aged unit toward the truth.
    """
    rng = np.random.default_rng(0)
    beta, eta = 3.0, days(120)
    history = [LifeRecord(float(t)) for t in eta * rng.weibull(beta, 300)]
    fit = fit_weibull(history)
    live = PrognosticVector.from_pairs(
        [(days(30), 0.10), (days(90), 0.50), (days(180), 0.90)]
    )
    age = days(110)  # unit is near its characteristic life
    # True conditional median remaining life at this age:
    s_age = float(np.exp(-((age / eta) ** beta)))
    grid = np.linspace(1.0, days(200), 4000)
    cond = 1.0 - np.exp(-(((age + grid) / eta) ** beta)) / ((np.exp(-((age / eta) ** beta))))
    true_median = float(grid[np.searchsorted(cond, 0.5)])

    refined = benchmark(survival_refined_prognostic, live, fit, age)
    live_median = live.time_to_probability(0.5)
    refined_median = refined.time_to_probability(0.5)
    err_live = abs(live_median - true_median) / true_median
    err_refined = abs(refined_median - true_median) / true_median
    assert err_refined < err_live
    benchmark.extra_info["true_median_days"] = round(true_median / days(1), 1)
    benchmark.extra_info["live_median_days"] = round(live_median / days(1), 1)
    benchmark.extra_info["refined_median_days"] = round(refined_median / days(1), 1)


def test_health_rollup_and_spatial_cost(benchmark):
    """Multi-level + spatial reasoning over a populated 4-chiller ship."""
    model, ship, units = build_chilled_water_ship(n_chillers=4)
    engine = KnowledgeFusionEngine(default_chiller_groups())
    for u in units[:2]:
        for _ in range(2):
            engine.ingest(
                FailurePredictionReport(
                    knowledge_source_id="ks:dli",
                    sensed_object_id=u.gearset,
                    machine_condition_id="mc:gear-tooth-wear",
                    severity=0.8,
                    belief=0.8,
                    timestamp=1.0,
                )
            )

    def analyze():
        rollup = HealthRollup(model, engine)
        summary = rollup.ship_summary(ship.id)
        candidates = transmitted_vibration_candidates(model, engine)
        return summary, candidates

    summary, candidates = benchmark(analyze)
    assert summary[0].health < 1.0
    benchmark.extra_info["assessments"] = len(summary)
    benchmark.extra_info["ship_health"] = round(
        next(a.health for a in summary if a.entity_id == ship.id), 3
    )
