#!/usr/bin/env python
"""§1's HPC claim made concrete: fleet data loads and DC throughput.

Accounts the "millions of data points per second" fleet-wide load,
measures whether one DC-class feature pipeline keeps up with its
share — vectorized vs naive per-channel processing, serial vs
multiprocessing farm — then replays a whole multi-DC fleet scenario
through the batched scan→report pipeline, serial and parallel, and
shows that both executions produce the exact same report stream.

Run:  python examples/fleet_scale.py
"""

import time

import numpy as np

from repro.hpc import (
    FeaturePipeline,
    FleetConfig,
    LoadGenerator,
    fleet_data_rate,
    parallel_feature_extraction,
    serial_feature_extraction,
)
from repro.hpc.pipeline import naive_process


def main() -> None:
    config = FleetConfig()
    rates = fleet_data_rate(config)
    print("Fleet data-rate accounting (paper: 'millions of data points/second'):")
    print(f"  per DC:   {rates.per_dc:>14,.0f} points/s")
    print(f"  per ship: {rates.per_ship:>14,.0f} points/s  ({config.dcs_per_ship} DCs)")
    print(f"  fleet:    {rates.fleet:>14,.0f} points/s  ({config.n_ships} ships)")

    n_channels, block = 32, 4096
    gen = LoadGenerator(n_channels, block, np.random.default_rng(0))
    pipeline = FeaturePipeline(n_channels, block, 16384.0)

    print(f"\nDC feature pipeline: {n_channels} channels x {block}-sample blocks")
    n_blocks = 200
    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    for _ in range(n_blocks):
        pipeline.process(gen.next_block())
    dt = time.perf_counter() - t0  # mpros: allow[lint.wall-clock]
    throughput = pipeline.points_processed / dt
    print(f"  vectorized: {throughput:,.0f} points/s "
          f"({throughput / rates.per_dc:.1f}x one DC's load)")

    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    for _ in range(20):
        naive_process(gen.next_block(), 16384.0, pipeline.bands)
    naive_rate = 20 * gen.points_per_block / (time.perf_counter() - t0)  # mpros: allow[lint.wall-clock]
    print(f"  naive loop: {naive_rate:,.0f} points/s "
          f"({throughput / naive_rate:.1f}x slower than vectorized)")

    print("\nPDME-side ship replay: multiprocessing DC farm")
    blocks = np.stack([gen.next_block().copy() for _ in range(32)])
    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    serial_feature_extraction(blocks, 16384.0)
    t_serial = time.perf_counter() - t0  # mpros: allow[lint.wall-clock]
    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    parallel_feature_extraction(blocks, 16384.0, n_workers=4)
    t_parallel = time.perf_counter() - t0  # mpros: allow[lint.wall-clock]
    print(f"  serial:   {t_serial * 1e3:7.1f} ms")
    print(f"  4 workers:{t_parallel * 1e3:7.1f} ms "
          f"(speedup {t_serial / t_parallel:.2f}x; includes pool startup)")

    print("\nWhole-DC fleet replay: 4 DCs x 2 machines, 1 simulated hour each")
    from repro.hpc import replay_fleet
    from repro.protocol.canonical import canonical_json
    from repro.system import build_fleet_specs

    specs = build_fleet_specs(n_dcs=4, machines_per_dc=2, hours=1.0, seed=0)
    sim_s = sum(s.duration_s for s in specs)
    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    serial_reports = replay_fleet(specs, n_workers=1)
    t_serial = time.perf_counter() - t0  # mpros: allow[lint.wall-clock]
    t0 = time.perf_counter()  # mpros: allow[lint.wall-clock]
    parallel_reports = replay_fleet(specs, n_workers=4)
    t_parallel = time.perf_counter() - t0  # mpros: allow[lint.wall-clock]
    identical = canonical_json(serial_reports) == canonical_json(parallel_reports)
    print(f"  serial:    {t_serial:6.2f} s  ({sim_s / t_serial:,.0f} sim-s per wall-s)")
    print(f"  4 workers: {t_parallel:6.2f} s  ({sim_s / t_parallel:,.0f} sim-s per wall-s)")
    print(f"  reports: {len(serial_reports)}; "
          f"parallel stream byte-identical to serial: {identical}")
    assert identical, "parallel replay diverged from serial"


if __name__ == "__main__":
    main()
