#!/usr/bin/env python
"""§1's HPC claim made concrete: fleet data loads and DC throughput.

Accounts the "millions of data points per second" fleet-wide load,
then measures whether one DC-class feature pipeline keeps up with its
share — vectorized vs naive per-channel processing, serial vs
multiprocessing farm.

Run:  python examples/fleet_scale.py
"""

import time

import numpy as np

from repro.hpc import (
    FeaturePipeline,
    FleetConfig,
    LoadGenerator,
    fleet_data_rate,
    parallel_feature_extraction,
    serial_feature_extraction,
)
from repro.hpc.pipeline import naive_process


def main() -> None:
    config = FleetConfig()
    rates = fleet_data_rate(config)
    print("Fleet data-rate accounting (paper: 'millions of data points/second'):")
    print(f"  per DC:   {rates.per_dc:>14,.0f} points/s")
    print(f"  per ship: {rates.per_ship:>14,.0f} points/s  ({config.dcs_per_ship} DCs)")
    print(f"  fleet:    {rates.fleet:>14,.0f} points/s  ({config.n_ships} ships)")

    n_channels, block = 32, 4096
    gen = LoadGenerator(n_channels, block, np.random.default_rng(0))
    pipeline = FeaturePipeline(n_channels, block, 16384.0)

    print(f"\nDC feature pipeline: {n_channels} channels x {block}-sample blocks")
    n_blocks = 200
    t0 = time.perf_counter()
    for _ in range(n_blocks):
        pipeline.process(gen.next_block())
    dt = time.perf_counter() - t0
    throughput = pipeline.points_processed / dt
    print(f"  vectorized: {throughput:,.0f} points/s "
          f"({throughput / rates.per_dc:.1f}x one DC's load)")

    t0 = time.perf_counter()
    for _ in range(20):
        naive_process(gen.next_block(), 16384.0, pipeline.bands)
    naive_rate = 20 * gen.points_per_block / (time.perf_counter() - t0)
    print(f"  naive loop: {naive_rate:,.0f} points/s "
          f"({throughput / naive_rate:.1f}x slower than vectorized)")

    print("\nPDME-side ship replay: multiprocessing DC farm")
    blocks = np.stack([gen.next_block().copy() for _ in range(32)])
    t0 = time.perf_counter()
    serial_feature_extraction(blocks, 16384.0)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_feature_extraction(blocks, 16384.0, n_workers=4)
    t_parallel = time.perf_counter() - t0
    print(f"  serial:   {t_serial * 1e3:7.1f} ms")
    print(f"  4 workers:{t_parallel * 1e3:7.1f} ms "
          f"(speedup {t_serial / t_parallel:.2f}x; includes pool startup)")


if __name__ == "__main__":
    main()
