#!/usr/bin/env python
"""§6.3's adaptive sensing: the PDME takes a "closer look".

A mild refrigerant leak sits below the DC's stock SBFR alarm
thresholds.  The PDME (playing the System Executive) notices weak fuzzy
evidence accumulating, authors a tighter superheat alarm machine,
downloads it into the DC's smart-sensor layer over RPC, and the
downloaded machine confirms the fault — "the capability to take a
'closer look' at a problem that has been discovered."

Run:  python examples/closer_look.py
"""

import base64

from repro import build_mpros_system
from repro.netsim.rpc import RpcEndpoint
from repro.plant.faults import FaultKind, seeded
from repro.sbfr import encode_machine, level_alarm_machine


def main() -> None:
    system = build_mpros_system(n_chillers=1, seed=11)
    motor = system.units[0].motor
    executive = RpcEndpoint("executive", system.network, system.kernel)

    print("Injecting a MILD refrigerant leak (severity 0.3)...")
    system.inject_fault(motor, seeded(FaultKind.REFRIGERANT_LEAK, onset=0.0, severity=0.3))
    system.run(hours=1.0)

    reports = system.model.reports_for(motor)
    sbfr_calls = [r for r in reports if r.knowledge_source_id == "ks:sbfr"]
    print(f"after 1 h: {len(reports)} report(s); "
          f"{len(sbfr_calls)} from the stock SBFR watches "
          f"(stock superheat threshold 10 C is too coarse)")

    print("\nPDME authors a tighter machine and downloads it into dc:0...")
    channels: list[str] = []
    executive.call("dc:0", "list_channels", {},
                   on_reply=lambda r: channels.extend(r["channels"]))
    system.kernel.run_until(system.kernel.now() + 1.0)
    spec = level_alarm_machine(
        channel=channels.index("superheat_c"), threshold=6.0, hold_cycles=2
    )
    acks = []
    executive.call(
        "dc:0", "download_machine",
        {
            "machine_b64": base64.b64encode(encode_machine(spec)).decode(),
            "condition_id": "mc:refrigerant-leak",
            "severity": 0.3,
            "name": "closer-look-superheat",
        },
        on_reply=acks.append,
    )
    system.kernel.run_until(system.kernel.now() + 1.0)
    print(f"  installed as machine #{acks[0]['installed']} "
          f"({acks[0]['bytes']} bytes over the wire)")

    print("\nRunning another hour with the closer-look machine in place...")
    system.run(hours=1.0)
    closer = [r for r in system.model.reports_for(motor)
              if "closer-look" in r.explanation]
    print(f"  closer-look confirmations: {len(closer)}")
    if closer:
        print(f"  first: {closer[0].summary()}")
        state = system.pdme.engine.diagnostic.state(motor, "refrigeration")
        print(f"  fused belief in mc:refrigerant-leak: "
              f"{state.beliefs['mc:refrigerant-leak']:.2f}")


if __name__ == "__main__":
    main()
