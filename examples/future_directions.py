#!/usr/bin/env python
"""§10.1's "Future Directions for Knowledge Fusion", implemented.

Walks through the four extensions the paper names:

1. multi-level reasoning — ship health rolled up from part health;
2. spatial reasoning — a weak vibration call next to a wildly
   vibrating neighbour is flagged as possibly transmitted;
3. flow reasoning — a downstream oil-contamination call is traced to
   the gear wear shedding metal upstream;
4. Bayes nets + survival analysis — detection statistics and life
   curves learned from (simulated) history refine diagnosis and
   prognosis.

Run:  python examples/future_directions.py
"""

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.common.units import days
from repro.fusion import (
    BayesDiagnosticFusion,
    HealthRollup,
    KnowledgeFusionEngine,
    LifeRecord,
    fit_weibull,
    flow_contamination_candidates,
    learn_source_model,
    survival_refined_prognostic,
    transmitted_vibration_candidates,
)
from repro.fusion.groups import default_chiller_groups
from repro.oosm import build_chilled_water_ship
from repro.protocol import FailurePredictionReport, PrognosticVector
from repro.validation import SeededFaultCampaign
from repro.validation.seeded import vibration_only


def rep(obj, cond, belief, sev=0.6):
    return FailurePredictionReport(
        knowledge_source_id="ks:dli", sensed_object_id=obj,
        machine_condition_id=cond, severity=sev, belief=belief, timestamp=1.0,
    )


def main() -> None:
    model, ship, units = build_chilled_water_ship(n_chillers=2)
    engine = KnowledgeFusionEngine(default_chiller_groups())
    u = units[0]

    print("Seeding fused evidence: severe gear wear on chiller 1,")
    print("a weak imbalance call on its (proximate) motor, and oil")
    print("contamination downstream in the compressor...\n")
    for _ in range(3):
        engine.ingest(rep(u.gearset, "mc:gear-tooth-wear", 0.85, sev=0.9))
    engine.ingest(rep(u.motor, "mc:motor-imbalance", 0.35, sev=0.3))
    engine.ingest(rep(u.compressor, "mc:oil-contamination", 0.6))

    print("1) Multi-level health rollup (part -> chiller -> ship):")
    rollup = HealthRollup(model, engine)
    for a in rollup.ship_summary(ship.id)[:4]:
        name = model.get(a.entity_id).name
        driver = f" <- {a.worst_condition} on {model.get(a.worst_part).name}" if not a.healthy else ""
        print(f"   {name:<28} health {a.health:.2f}{driver}")

    print("\n2) Spatial reasoning (transmitted vibration):")
    for c in transmitted_vibration_candidates(model, engine):
        print(f"   {c.describe()}")

    print("\n3) Flow reasoning (fouled fluid passed downstream):")
    for c in flow_contamination_candidates(model, engine):
        print(f"   {c.describe()}")

    print("\n4a) Bayes-net fusion learned from campaign history:")
    train = SeededFaultCampaign(
        sources=[DliExpertSystem()], faults=vibration_only()[:4],
        duration=900.0, scan_period=180.0, rng=np.random.default_rng(0),
    ).run(healthy_controls=2)
    source_model = learn_source_model(train)
    tpr, fpr = source_model.rates("ks:dli", "mc:motor-imbalance")
    print(f"   learned P(report|fault)={tpr:.2f}, P(report|healthy)={fpr:.3f}")
    bayes = BayesDiagnosticFusion(source_model, sources=("ks:dli",))
    bayes.ingest(rep(u.motor, "mc:motor-imbalance", 0.35))
    print(f"   posterior P(imbalance | one DLI report) = "
          f"{bayes.posterior(u.motor, 'mc:motor-imbalance'):.2f}")

    print("\n4b) Survival-refined prognostics:")
    rng = np.random.default_rng(1)
    fleet = [LifeRecord(float(t)) for t in days(120) * rng.weibull(3.0, 300)]
    fit = fit_weibull(fleet)
    print(f"   fleet Weibull fit: beta={fit.beta:.2f}, eta={fit.eta/days(1):.0f} d")
    live = PrognosticVector.from_pairs(
        [(days(30), 0.10), (days(90), 0.50), (days(180), 0.90)]
    )
    for age_d in (10, 110):
        refined = survival_refined_prognostic(live, fit, age=days(age_d))
        print(f"   unit age {age_d:>3} d: live median TTF "
              f"{live.time_to_probability(0.5)/days(1):.0f} d -> refined "
              f"{refined.time_to_probability(0.5)/days(1):.0f} d")


if __name__ == "__main__":
    main()
