#!/usr/bin/env python
"""§9 validation: a seeded-fault campaign over the 12 FMEA modes.

Seeds each candidate failure mode into its own simulated chiller, runs
the DLI + fuzzy + SBFR suites continuously, scores detection /
precision / latency, and replays every automated diagnosis past the
synthetic analyst to reproduce the §6.1 agreement statistic and
believability factors.

Run:  python examples/seeded_fault_campaign.py
"""

import numpy as np

from repro.algorithms.dli.believability import ReversalDatabase
from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.algorithms.sbfr_source import SbfrKnowledgeSource
from repro.validation import SeededFaultCampaign, SyntheticAnalyst
from repro.validation.analyst import AgreementStudy


def main() -> None:
    print("Seeded-fault campaign: 12 FMEA candidate modes + healthy controls")
    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem(), FuzzyDiagnostics(), SbfrKnowledgeSource()],
        duration=1800.0,
        scan_period=120.0,
        rng=np.random.default_rng(0),
    )
    records = campaign.run(healthy_controls=2)

    print(f"\n{'fault':<34} {'detected at':>12}  conditions reported")
    for r in records:
        label = r.fault.condition_id if r.fault else "(healthy control)"
        when = f"{r.first_detection:.0f}s" if r.first_detection < float("inf") else "—"
        print(f"{label:<34} {when:>12}  {sorted(r.predicted_conditions)}")

    metrics = campaign.score(records, onset=campaign.onset)
    print(f"\nCampaign metrics: {metrics.describe()}")

    # §6.1: analyst agreement + believability factors.
    study = AgreementStudy(
        analyst=SyntheticAnalyst(np.random.default_rng(1), error_rate=0.02),
        database=ReversalDatabase(),
    )
    for record in records:
        for report in record.reports:
            study.review(report, record.true_severities)
    print(f"\nAnalyst agreement: {study.agreement * 100:.1f}% "
          f"(paper: 'exceeds 95%')")
    print("Believability factors learned from reversals:")
    for condition in study.database.conditions():
        approved, reversed_ = study.database.counts(condition)
        print(f"  {condition:<34} alpha={study.database.believability(condition):.2f} "
              f"({approved} approved / {reversed_} reversed)")


if __name__ == "__main__":
    main()
