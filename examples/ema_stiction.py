#!/usr/bin/env python
"""Figure 3 end to end: EMA seize-up prediction with SBFR.

Runs the paper's two state machines — the Current SPIKE Machine and the
EMA Stiction Machine — against the simulated electro-mechanical
actuator, first healthy (with commanded moves, whose current transients
must NOT count), then with worsening stiction, until the stiction flag
trips and "higher level software (e.g., the PDME) can conclude that a
seize-up failure is imminent."

Run:  python examples/ema_stiction.py
"""

import numpy as np

from repro.plant.ema import EmaSimulator
from repro.sbfr import (
    SbfrSystem,
    build_spike_machine,
    build_stiction_machine,
    encoded_size,
)


def build_system() -> SbfrSystem:
    system = SbfrSystem(channels=["current", "cpos"])
    spike = build_spike_machine(current_channel=0, self_index=0)
    stiction = build_stiction_machine(cpos_channel=1, spike_machine=0, self_index=1)
    system.add_machine(spike)
    system.add_machine(stiction)
    print(f"  spike machine:    {encoded_size(spike)} bytes (paper: 229)")
    print(f"  stiction machine: {encoded_size(stiction)} bytes (paper: 93)")
    return system


def run_phase(system, ema, rng, n_cycles, schedule, label):
    trace = ema.run(n_cycles, rng, command_schedule=schedule)
    system.run(trace)
    count = int(system.states[1].locals[1])
    flagged = bool(system.status(1) & 1)
    print(
        f"  {label:<34} uncommanded spikes counted: {count:>2}  "
        f"stiction flag: {'SET' if flagged else 'clear'}"
    )
    return flagged


def main() -> None:
    rng = np.random.default_rng(7)
    print("Loading Figure-3 machines...")
    system = build_system()

    print("\nPhase 1: healthy actuator, busy command schedule")
    ema = EmaSimulator(stiction_rate=0.0)
    schedule = {i: float(i) / 50.0 for i in range(0, 500, 50)}
    run_phase(system, ema, rng, 500, schedule, "healthy + commanded moves:")

    print("\nPhase 2: stiction developing (spikes at rest)")
    ema.stiction_rate = 0.02
    flagged = run_phase(system, ema, rng, 800, {}, "mild stiction:")
    if not flagged:
        ema.stiction_rate = 0.06
        flagged = run_phase(system, ema, rng, 800, {}, "worsening stiction:")

    if flagged:
        print("\n>>> Stiction condition flagged: seize-up failure imminent.")
        print(">>> Consumer resets the register; counting starts over:")
        system.set_status(1, 0)
        system.cycle({"current": 1.0, "cpos": ema.position})
        print(f"    machine state: {system.state_name(1)}, "
              f"count: {int(system.states[1].locals[1])}")


if __name__ == "__main__":
    main()
