#!/usr/bin/env python
"""Quickstart: the whole MPROS system on one failing chiller.

Builds the Figure-1 stack (ship model, PDME with knowledge fusion, a
Data Concentrator per chiller running the DLI / fuzzy / SBFR suites,
all joined by the simulated ship network), injects a motor imbalance
that grows over two hours, and shows the Fig.-2 browser screen plus the
prioritized maintenance list.

Run:  python examples/quickstart.py
"""

from repro import build_mpros_system
from repro.plant.faults import FaultKind, progressive


def main() -> None:
    print("Building MPROS: 2 chillers, 1 DC each, PDME over the ship network...")
    system = build_mpros_system(n_chillers=2, seed=42)
    motor = system.units[0].motor

    print("Running 30 healthy minutes...")
    system.run(hours=0.5)
    print(f"  reports so far: {system.reports_received()} (healthy plant is quiet)\n")

    print("Injecting a progressive motor imbalance on chiller 1...")
    system.inject_fault(
        motor,
        progressive(
            FaultKind.MOTOR_IMBALANCE,
            onset=system.kernel.now(),
            end=system.kernel.now() + 2 * 3600.0,
            shape="exponential",
        ),
    )
    system.run(hours=2.5)
    print(f"  reports received by the PDME: {system.reports_received()}\n")

    print(system.browser_screen(motor))
    print()
    print(system.priority_screen())

    suspects = system.pdme.engine.suspects(threshold=0.5)
    if suspects:
        obj, cond, belief = suspects[0]
        print(f"\nTop suspect: {cond} on {obj} (fused belief {belief:.2f})")


if __name__ == "__main__":
    main()
