#!/usr/bin/env python
"""§9/§10: the destructive chiller test, simulated.

"Honeywell has donated a surplus centrifugal chiller for use by the
prognostics/diagnostics community" — ours is synthetic: a bearing-wear
fault grows linearly to functional failure while the monitoring stack
watches; the run records first detection, prognostic lead time, and
how the fused time-to-failure estimate tightened as the end approached.

Run:  python examples/destructive_test.py
"""

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.plant.faults import FaultKind
from repro.validation import run_destructive_test


def main() -> None:
    ttf_actual = 7200.0  # two hours to seize
    print("Destructive test: bearing wear grown to failure over "
          f"{ttf_actual / 3600.0:.0f} h of continuous monitoring\n")
    result = run_destructive_test(
        sources=[DliExpertSystem(), FuzzyDiagnostics()],
        fault=FaultKind.BEARING_WEAR,
        time_to_failure=ttf_actual,
        scan_period=240.0,
        rng=np.random.default_rng(0),
    )
    if not result.detected:
        print("The stack never called the failing condition — no warning.")
        return
    print(f"first correct diagnosis at t = {result.first_detection:.0f} s")
    print(f"prognostic lead time:        {result.lead_time:.0f} s "
          f"({result.lead_time / ttf_actual * 100:.0f}% of life remaining)\n")
    print(f"{'t (s)':>8} {'severity grade era':>22} {'fused TTF estimate':>22} {'actual TTF':>12}")
    for t, est in result.ttf_track:
        actual = result.failure_time - t
        est_str = f"{est / 86400.0:9.1f} d" if np.isfinite(est) else "—"
        era = ("early (months-scale)" if est > 30 * 86400
               else "serious (weeks-scale)" if est > 7 * 86400
               else "extreme (days-scale)")
        print(f"{t:>8.0f} {era:>22} {est_str:>22} {actual / 3600.0:>10.1f} h")
    print("\nThe elementary grade-based prognosis is coarse (months/weeks/")
    print("days categories, §6.1) but tightens monotonically toward failure.")


if __name__ == "__main__":
    main()
