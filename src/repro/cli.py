"""The ``mpros`` command-line interface.

Small operational surface over the library: run a demo scenario, a
seeded-fault validation campaign, the Figure-3 EMA demo, or print the
fleet data-rate accounting.

Examples
--------
::

    mpros demo --fault mc:refrigerant-leak --hours 2
    mpros campaign --duration 1800
    mpros ema
    mpros fleet
    mpros metrics --hours 1 --fault mc:motor-imbalance
    mpros list-faults
    mpros chaos --seed 7
    mpros chaos --scenario turbine --seed 11
    mpros score --all-scenarios --quick
    mpros daemon --quick
    mpros daemon --scenario none --ticks 120
    mpros verify --all-machines --lint src/repro
    mpros analyze src/repro
    mpros analyze src/repro --format sarif
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np


def _cmd_list_faults(args: argparse.Namespace) -> int:
    from repro.plant.faults import FMEA_CANDIDATES, FaultKind, PROCESS_FAULTS

    print("Machine conditions the simulator can inject:")
    for kind in FaultKind:
        tags = []
        if kind in FMEA_CANDIDATES:
            tags.append("FMEA")
        tags.append("process" if kind in PROCESS_FAULTS else "vibration")
        print(f"  {kind.condition_id:<34} [{', '.join(tags)}]")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import build_mpros_system
    from repro.plant.faults import FaultKind, progressive

    try:
        fault = FaultKind(args.fault)
    except ValueError:
        print(f"unknown fault {args.fault!r}; see `mpros list-faults`", file=sys.stderr)
        return 2
    system = build_mpros_system(n_chillers=args.chillers, seed=args.seed)
    motor = system.units[0].motor
    system.inject_fault(
        motor,
        progressive(fault, onset=0.0, end=args.hours * 3600.0, shape="exponential"),
    )
    system.run(hours=args.hours)
    print(system.browser_screen(motor))
    print()
    print(system.priority_screen())
    print(f"\nreports received: {system.reports_received()}; "
          f"uplink backlog: {system.uplink_backlog()}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.algorithms.dli.engine import DliExpertSystem
    from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
    from repro.algorithms.sbfr_source import SbfrKnowledgeSource
    from repro.validation import SeededFaultCampaign

    campaign = SeededFaultCampaign(
        sources=[DliExpertSystem(), FuzzyDiagnostics(), SbfrKnowledgeSource()],
        duration=args.duration,
        scan_period=args.scan,
        rng=np.random.default_rng(args.seed),
    )
    records = campaign.run(healthy_controls=2)
    print(f"{'fault':<34} {'detected at':>12}  reported conditions")
    for r in records:
        label = r.fault.condition_id if r.fault else "(healthy control)"
        when = f"{r.first_detection:.0f}s" if np.isfinite(r.first_detection) else "—"
        print(f"{label:<34} {when:>12}  {sorted(r.predicted_conditions)}")
    print(f"\n{campaign.score(records, onset=campaign.onset).describe()}")
    return 0


def _cmd_ema(args: argparse.Namespace) -> int:
    from repro.plant.ema import EmaSimulator
    from repro.sbfr import SbfrSystem, build_spike_machine, build_stiction_machine

    system = SbfrSystem(channels=["current", "cpos"])
    system.add_machine(build_spike_machine(0, self_index=0))
    system.add_machine(build_stiction_machine(1, spike_machine=0, self_index=1))
    rng = np.random.default_rng(args.seed)
    ema = EmaSimulator(stiction_rate=args.stiction_rate)
    for cycle in range(args.cycles):
        current, cpos = ema.cycle(rng)
        system.cycle({"current": current, "cpos": cpos})
        if system.status(1) & 1:
            count = int(system.states[1].locals[1])
            print(f"stiction flagged at cycle {cycle} "
                  f"after {count} uncommanded spikes — seize-up imminent")
            return 0
    print(f"no stiction detected in {args.cycles} cycles "
          f"(rate {args.stiction_rate})")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scripted DC→PDME run, then dump the unified metrics snapshot."""
    import json

    from repro import build_mpros_system
    from repro.obs import MetricsRegistry, export_jsonl, snapshot_json
    from repro.plant.faults import FaultKind, progressive

    registry = MetricsRegistry()
    system = build_mpros_system(
        n_chillers=args.chillers, seed=args.seed, metrics=registry
    )
    if args.fault:
        try:
            fault = FaultKind(args.fault)
        except ValueError:
            print(f"unknown fault {args.fault!r}; see `mpros list-faults`",
                  file=sys.stderr)
            return 2
        system.inject_fault(
            system.units[0].motor,
            progressive(fault, onset=0.0, end=args.hours * 3600.0,
                        shape="exponential"),
        )
    system.run(hours=args.hours)
    if args.jsonl:
        tracer = system.dcs[0].tracer if system.dcs else None
        with open(args.jsonl, "w", encoding="utf-8") as fp:
            lines = export_jsonl(registry, fp, clock=system.kernel.clock,
                                 tracer=tracer)
        print(f"wrote {lines} series to {args.jsonl}", file=sys.stderr)
    doc = json.loads(snapshot_json(registry))
    doc["subsystems"] = registry.subsystems()
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a chaos scenario and print the resilience report.

    Exit code 1 when the run misses the survivability bar (lost or
    duplicated reports, shedding, or a breaker stuck open), so CI can
    gate on it directly.
    """
    from repro.chaos import canonical_scenario, run_scenario, turbine_scenario
    from repro.obs.registry import use_registry

    factories = {"canonical": canonical_scenario, "turbine": turbine_scenario}
    if args.scenario not in factories:
        print(f"unknown scenario {args.scenario!r}; "
              f"know: {', '.join(sorted(factories))}", file=sys.stderr)
        return 2
    scenario = factories[args.scenario](seed=args.seed)
    with use_registry():
        report = run_scenario(scenario, n_chillers=args.chillers or None)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_daemon(args: argparse.Namespace) -> int:
    """Run the always-on streaming daemon, optionally under chaos.

    With ``--scenario daemon`` (the default) the loop runs the daemon
    chaos drill — storm + crash + clock-hold + heartbeat flap — and
    exits 1 unless conservation holds, every DC ends ALIVE, and the
    worst watchdog recovery beats the ceiling; CI gates on this.  With
    ``--scenario none`` it runs a plain system (machinery faults only)
    and always exits 0.
    """
    from repro.chaos import daemon_scenario
    from repro.obs.registry import use_registry
    from repro.stream import DaemonConfig, StreamDaemon, drill_config, run_daemon_drill

    if args.scenario not in ("daemon", "none"):
        print(f"unknown scenario {args.scenario!r}; know: daemon, none",
              file=sys.stderr)
        return 2
    ticks = args.ticks if args.ticks > 0 else None
    if args.scenario == "daemon":
        scenario = daemon_scenario(seed=args.seed, quick=args.quick)
        config = drill_config(tick_interval=args.tick_interval)
        with use_registry():
            report = run_daemon_drill(
                scenario=scenario, ticks=ticks, config=config
            )
        print(report.summary())
        return 0 if report.ok else 1
    from repro import build_mpros_system
    from repro.plant.faults import FaultKind, seeded

    with use_registry():
        system = build_mpros_system(
            n_chillers=max(2, args.chillers), seed=args.seed
        )
        system.inject_fault(
            system.units[0].motor,
            seeded(FaultKind.MOTOR_IMBALANCE, onset=0.0, severity=0.8),
        )
        daemon = StreamDaemon(
            system, DaemonConfig(tick_interval=args.tick_interval)
        )
        daemon_report = daemon.run(ticks if ticks is not None else 60)
    print(daemon_report.summary())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.hpc import FleetConfig, fleet_data_rate

    config = FleetConfig(n_ships=args.ships, dcs_per_ship=args.dcs)
    rates = fleet_data_rate(config)
    print("Fleet data-rate accounting (§1):")
    print(f"  per DC:   {rates.per_dc:>14,.0f} points/s")
    print(f"  per ship: {rates.per_ship:>14,.0f} points/s ({config.dcs_per_ship} DCs)")
    print(f"  fleet:    {rates.fleet:>14,.0f} points/s ({config.n_ships} ships)")
    return 0


def _render_formatted(report: "object", fmt: str) -> None:
    """Print a VerificationReport's diagnostics in the chosen format."""
    from repro.analysis import render_jsonl, render_sarif
    from repro.analysis.report import VerificationReport

    assert isinstance(report, VerificationReport)
    if fmt == "jsonl":
        text = render_jsonl(report.diagnostics)
        if text:
            print(text)
    elif fmt == "sarif":
        print(render_sarif(report.diagnostics))
    else:
        for diag in report.diagnostics:
            print(diag.render())


def _cmd_verify(args: argparse.Namespace) -> int:
    """Static verification: SBFR bytecode and/or determinism lints.

    Exit 0 when clean, 1 when diagnostics fail the gate (errors; also
    warnings under ``--strict``), 2 on misuse.
    """
    from repro.analysis import lint_paths, verify_bytes, verify_set
    from repro.analysis.report import VerificationReport
    from repro.common.errors import AnalysisError

    # Machine-readable formats keep stdout pure: status goes to stderr.
    status_stream = sys.stdout if args.format == "text" else sys.stderr

    if not (args.all_machines or args.machine or args.lint):
        print("nothing to verify: pass --all-machines, --machine and/or --lint",
              file=sys.stderr)
        return 2
    reports: list[VerificationReport] = []
    try:
        if args.all_machines:
            from repro.algorithms.sbfr_source import SbfrKnowledgeSource
            from repro.sbfr.library import canonical_deployments

            for name, (channels, specs) in sorted(canonical_deployments().items()):
                rep = verify_set(specs, n_channels=len(channels))
                print(f"deployment {name!r}: {len(specs)} machine(s), "
                      f"{len(channels)} channel(s): "
                      f"{'OK' if not rep.errors else 'FAIL'}",
                      file=status_stream)
                reports.append(rep)
            from repro.algorithms.sbfr_source import default_turbine_watches

            for dep_name, source in (
                ("dc-default", SbfrKnowledgeSource()),
                ("dc-turbine",
                 SbfrKnowledgeSource(watches=default_turbine_watches())),
            ):
                specs = source.deployed_specs()
                rep = verify_set(specs, n_channels=len(source.channel_names()))
                print(f"deployment {dep_name!r}: {len(specs)} machine(s), "
                      f"{len(source.channel_names())} channel(s): "
                      f"{'OK' if not rep.errors else 'FAIL'}",
                      file=status_stream)
                reports.append(rep)
        for path in args.machine or []:
            try:
                with open(path, "rb") as fp:
                    data = fp.read()
            except OSError as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 2
            rep = verify_bytes(
                data,
                name=path,
                n_channels=args.channels,
                n_machines=args.peers,
            )
            print(f"machine {path}: {len(data)} byte(s): "
                  f"{'OK' if not rep.errors else 'FAIL'}",
                  file=status_stream)
            reports.append(rep)
        if args.lint:
            rep = lint_paths(args.lint)
            print(f"lint {' '.join(args.lint)}: "
                  f"{'OK' if not rep.errors else 'FAIL'}",
                  file=status_stream)
            reports.append(rep)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    merged = VerificationReport()
    for rep in reports:
        merged = merged.merged(rep)
    _render_formatted(merged, args.format)
    print(f"{len(merged.errors)} error(s), {len(merged.warnings)} warning(s)",
          file=status_stream)
    return merged.exit_code(strict=args.strict)


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Whole-program effect & concurrency analysis (``flow.*``/``conc.*``).

    Findings already covered by the committed baseline are reported as
    suppressed and do not fail the run; exit 1 only on *new* errors (or
    new warnings under ``--strict``), 2 on misuse.
    """
    from repro.analysis import Baseline, SummaryCache, analyze_paths
    from repro.analysis.report import VerificationReport
    from repro.common.errors import AnalysisError

    status_stream = sys.stdout if args.format == "text" else sys.stderr
    cache = None if args.no_cache else SummaryCache(args.cache_dir or None)
    try:
        report = analyze_paths(args.paths, cache=cache)
        baseline = Baseline.load(args.baseline)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fresh, known = baseline.split(report.diagnostics)
    gate = VerificationReport(fresh)
    _render_formatted(gate, args.format)
    if cache is not None:
        print(f"analyze cache: {cache.hits} hit(s), {cache.misses} miss(es)",
              file=status_stream)
    print(f"analyze {' '.join(str(p) for p in args.paths)}: "
          f"{'OK' if not gate.errors else 'FAIL'} "
          f"({len(gate.errors)} error(s), {len(gate.warnings)} warning(s), "
          f"{len(known)} baseline-suppressed)",
          file=status_stream)
    return gate.exit_code(strict=args.strict)


def _cmd_score(args: argparse.Namespace) -> int:
    """Run the per-scenario prognostic benchmark suite.

    Exit 1 when any scored scenario misses every fault (detection rate
    0), so CI can gate on a catastrophically broken stack; quality
    regressions are caught by the golden scorecards instead.
    """
    from repro.common.errors import MprosError
    from repro.validation import get_scenario, run_scenario_suite, scenario_names

    if args.all_scenarios:
        names = list(scenario_names())
    elif args.scenario:
        names = list(args.scenario)
    else:
        print("nothing to score: pass --scenario NAME or --all-scenarios",
              file=sys.stderr)
        return 2
    try:
        specs = [get_scenario(name, quick=args.quick) for name in names]
    except MprosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cards = []
    for spec in specs:
        card = run_scenario_suite(spec, seed=args.seed)
        cards.append(card)
        print(card.summary())
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fp:
            for card in cards:
                fp.write(card.jsonl_line() + "\n")
        print(f"wrote {len(cards)} scorecard(s) to {args.jsonl}", file=sys.stderr)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fp:
            fp.write("## Prognostic scorecards\n\n")
            for card in cards:
                fp.write(card.to_markdown() + "\n")
        print(f"wrote markdown report to {args.markdown}", file=sys.stderr)
    return 0 if all(card.detection_rate > 0 for card in cards) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import summarize, write_bench

    doc = write_bench(args.output, quick=args.quick, shards=args.shards)
    print(summarize(doc))
    print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the fleet query gateway over HTTP.

    Boots a demo fleet (the deterministic bench workload fused through
    a file-backed sharded PDME), then serves it: cached fleet-health
    documents, keyset-paged report listings off read-only replica
    connections, alarms, per-object health, and bulk report POSTs that
    funnel through the shard router.  ``--store-dir`` persists the
    partition logs between runs; without it they live in a temp dir
    for the lifetime of the process.
    """
    import tempfile
    import time as _time

    from repro.bench import _ingest_workload
    from repro.gateway import gateway_for_sharded
    from repro.gateway.server import GatewayHTTPServer
    from repro.oosm.model import ShipModel
    from repro.pdme.shard import ShardedPdme

    reports, report_ids = _ingest_workload(quick=args.quick)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(args.store_dir) if args.store_dir else Path(tmp)
        store_dir.mkdir(parents=True, exist_ok=True)
        pdme = ShardedPdme(
            args.shards,
            store_paths=[
                store_dir / f"shard-{i}.sqlite" for i in range(args.shards)
            ],
        )
        model = ShipModel()
        for oid in sorted({r.sensed_object_id for r in reports}):
            model.create("rotating-machine", id=oid, name=oid)
        written = pdme.submit_batch(reports, report_ids)
        gateway = gateway_for_sharded(
            model,
            pdme,
            timer=_time.perf_counter,  # mpros: allow[lint.wall-clock]
        )
        server = GatewayHTTPServer((args.host, args.port), gateway)
        host, port = server.server_address[:2]
        tail = (
            f"({args.max_requests} requests, then exit)"
            if args.max_requests is not None
            else "(Ctrl-C to stop)"
        )
        print(f"serving {written} reports on http://{host}:{port} {tail}",
              flush=True)
        try:
            if args.max_requests is not None:
                for _ in range(args.max_requests):
                    server.handle_request()
            else:
                server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            pdme.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``mpros`` argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="mpros",
        description="MPROS condition-based-maintenance demonstrator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="run a full-system fault scenario")
    p.add_argument("--fault", default="mc:motor-imbalance")
    p.add_argument("--hours", type=float, default=2.0)
    p.add_argument("--chillers", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("campaign", help="seeded-fault validation campaign")
    p.add_argument("--duration", type=float, default=1800.0)
    p.add_argument("--scan", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("ema", help="Figure-3 EMA stiction demo")
    p.add_argument("--cycles", type=int, default=4000)
    p.add_argument("--stiction-rate", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_ema)

    p = sub.add_parser(
        "metrics",
        help="run a scripted DC→PDME scenario and dump the metrics snapshot",
    )
    p.add_argument("--fault", default="mc:motor-imbalance",
                   help="machine condition to inject ('' for a healthy run)")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--chillers", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jsonl", default="",
                   help="also export JSON-lines records to this path")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "chaos",
        help="run a seeded chaos scenario and print the resilience report",
    )
    p.add_argument("--scenario", default="canonical")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--chillers", type=int, default=0,
                   help="system size (0 = sized from the scenario)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "daemon",
        help="run the always-on streaming daemon (optionally under chaos)",
    )
    p.add_argument("--scenario", default="daemon",
                   help="'daemon' = chaos drill (exit 1 on failure); "
                        "'none' = plain streaming run")
    p.add_argument("--ticks", type=int, default=0,
                   help="exact tick count (0 = cover the scenario window)")
    p.add_argument("--tick-interval", type=float, default=60.0,
                   help="nominal seconds of simulated time per tick")
    p.add_argument("--quick", action="store_true",
                   help="compressed drill timeline for CI (~30 ticks)")
    p.add_argument("--seed", type=int, default=13)
    p.add_argument("--chillers", type=int, default=2,
                   help="system size for --scenario none")
    p.set_defaults(func=_cmd_daemon)

    p = sub.add_parser("fleet", help="fleet data-rate accounting")
    p.add_argument("--ships", type=int, default=30)
    p.add_argument("--dcs", type=int, default=200)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "score",
        help="score the prognostic benchmark scenarios (validation suite)",
    )
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="scenario to score (repeatable); see repro.validation")
    p.add_argument("--all-scenarios", action="store_true",
                   help="score every registered scenario")
    p.add_argument("--quick", action="store_true",
                   help="compressed timelines for CI (same faults, "
                        "shorter runs)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jsonl", default="",
                   help="write one compact JSON scorecard per line here")
    p.add_argument("--markdown", default="",
                   help="write a markdown scorecard report here")
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser(
        "bench",
        help="benchmark the scan→report hot path and write a JSON report",
    )
    p.add_argument("--quick", action="store_true",
                   help="small geometry for CI smoke runs (< ~1 min)")
    p.add_argument("--output", default="BENCH_pr10.json",
                   help="path of the JSON result document")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="max worker count for the shard_scaling stage "
                        "(default: 2 quick, 4 full)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="serve the fleet query gateway over HTTP",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--shards", type=int, default=2, metavar="N",
                   help="partition count for the file-backed PDME")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="persist partition logs here (default: temp dir)")
    p.add_argument("--quick", action="store_true",
                   help="small demo fleet (8 machines)")
    p.add_argument("--max-requests", type=int, default=None, metavar="N",
                   help="exit after N requests (smoke tests)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "verify",
        help="static verification: SBFR bytecode checks and determinism lints",
    )
    p.add_argument("--all-machines", action="store_true",
                   help="verify every library deployment and the default "
                        "DC watch deployment")
    p.add_argument("--machine", action="append", metavar="FILE",
                   help="verify an encoded SBFR machine file (repeatable)")
    p.add_argument("--channels", type=int, default=None,
                   help="input channel count for --machine range checks")
    p.add_argument("--peers", type=int, default=None,
                   help="machine count for --machine peer range checks")
    p.add_argument("--lint", nargs="+", metavar="PATH",
                   help="run the determinism/safety linter over these "
                        "files or directories")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail (exit 1)")
    p.add_argument("--format", choices=("text", "jsonl", "sarif"),
                   default="text",
                   help="diagnostic output format (machine formats keep "
                        "stdout pure; status goes to stderr)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "analyze",
        help="whole-program effect & concurrency analysis (flow.*/conc.*)",
    )
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help="files or directories to analyze (e.g. src/repro)")
    p.add_argument("--format", choices=("text", "jsonl", "sarif"),
                   default="text",
                   help="diagnostic output format (machine formats keep "
                        "stdout pure; status goes to stderr)")
    p.add_argument("--baseline", default="analysis/baseline.json",
                   help="committed suppression file; only findings not in "
                        "it fail the run")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-hash summary cache")
    p.add_argument("--cache-dir", default="",
                   help="summary cache directory "
                        "(default .mpros-cache/analysis)")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail (exit 1)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("list-faults", help="injectable machine conditions")
    p.set_defaults(func=_cmd_list_faults)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
