"""Whole-system assembly — Figure 1 in one object.

Builds the ship model, a PDME (OOSM + knowledge fusion) behind an RPC
endpoint, and one Data Concentrator per chiller with the algorithm
suites and standard test schedules, all on one discrete-event kernel.
``run()`` advances simulated time; reports flow DC → network → PDME →
OOSM → KF exactly as §5.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.algorithms.sbfr_source import SbfrKnowledgeSource, default_turbine_watches
from repro.common.errors import MprosError
from repro.common.rng import derive_rng, make_rng
from repro.dc.concentrator import DataConcentrator
from repro.hpc.parallel import DcReplaySpec, replay_fleet
from repro.protocol.report import FailurePredictionReport
from repro.dc.scheduler import EventScheduler
from repro.dc.uplink import ReportUplink
from repro.netsim.kernel import EventKernel
from repro.netsim.network import LinkConfig, Network
from repro.netsim.rpc import RpcEndpoint
from repro.obs.registry import MetricsRegistry, default_registry
from repro.oosm.model import ShipModel
from repro.oosm.shipyard import (
    ChillerUnit,
    TurbineUnit,
    build_chilled_water_ship,
    build_codlag_ship,
)
from repro.pdme.browser import render_machine_screen, render_priority_list
from repro.pdme.executive import PdmeExecutive
from repro.pdme.icas import register_icas_interface
from repro.plant.chiller import ChillerSimulator
from repro.plant.faults import ActiveFault
from repro.plant.turbine import TurbineSimulator
from repro.supervisor import (
    CircuitBreaker,
    DcHealth,
    GuardedEndpoint,
    HeartbeatEmitter,
    HeartbeatMonitor,
)


@dataclass
class MprosSystem:
    """An assembled MPROS installation (simulation-backed)."""

    kernel: EventKernel
    network: Network
    model: ShipModel
    pdme: PdmeExecutive
    dcs: list[DataConcentrator]
    units: list[ChillerUnit] | list[TurbineUnit]
    simulators: dict[str, ChillerSimulator | TurbineSimulator]
    uplinks: list[ReportUplink] = field(default_factory=list)
    _dc_endpoints: list[RpcEndpoint] = field(default_factory=list)
    #: The one registry every subsystem on the DC→PDME path reports to.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Per-DC circuit breakers guarding the DC→PDME RPC path.
    breakers: list[CircuitBreaker] = field(default_factory=list)
    #: Per-DC heartbeat emitters (run on each DC's scheduler).
    heartbeats: list[HeartbeatEmitter] = field(default_factory=list)
    #: PDME-side liveness monitor (None in hand-assembled systems).
    monitor: HeartbeatMonitor | None = None
    #: PDME-side scheduler driving the periodic heartbeat sweep.
    pdme_scheduler: EventScheduler | None = None

    def inject_fault(self, machine_id: str, fault: ActiveFault) -> None:
        """Inject a fault into the simulator monitored as ``machine_id``."""
        try:
            sim = self.simulators[machine_id]
        except KeyError:
            raise MprosError(f"no simulator bound to {machine_id!r}") from None
        sim.inject(fault)

    def run(self, hours: float = 1.0) -> None:
        """Advance the whole system by ``hours`` of simulated time."""
        if hours <= 0:
            raise MprosError("hours must be positive")
        self.kernel.run_until(self.kernel.now() + hours * 3600.0)

    # -- views ------------------------------------------------------------
    def browser_screen(self, machine_id: str) -> str:
        """The Fig. 2 browser screen for one machine."""
        return render_machine_screen(
            self.model, self.pdme.engine, machine_id, now=self.kernel.now()
        )

    def priority_screen(self) -> str:
        """The ship-wide prioritized maintenance list."""
        return render_priority_list(self.pdme.priorities(now=self.kernel.now()))

    def reports_received(self) -> int:
        """Reports retained by the PDME's OOSM."""
        return self.model.report_count

    def uplink_backlog(self) -> int:
        """Reports queued DC-side awaiting PDME acknowledgement."""
        return sum(u.backlog for u in self.uplinks)

    def metrics_snapshot(self) -> dict:
        """Deterministic JSON-ready view of every instrumented series."""
        return self.metrics.snapshot()

    def set_network_outage(self, dc_index: int, down: bool = True) -> None:
        """Cut (or restore) one DC's link to the PDME (§4.9 scenario).

        Reports produced during the outage are held in the DC's
        store-and-forward uplink and delivered after recovery by the
        scheduled flush."""
        self.network.set_down(f"dc:{dc_index}", "pdme", down)

    # -- supervised fault tolerance ---------------------------------------
    def dc_health(self) -> dict[str, DcHealth]:
        """The PDME's current liveness view of every DC."""
        return self.monitor.states() if self.monitor is not None else {}

    def crash_dc(self, dc_index: int) -> None:
        """Kill one DC process: volatile state (uplink queue, in-flight
        RPCs, backoff) is lost, the scheduler freezes, and the host
        drops off the network.  Durable state — the unacked uplink
        backlog and scheduler cursors — survives in the DC database."""
        dc = self.dcs[dc_index]
        if dc.scheduler.suspended:
            raise MprosError(f"dc:{dc_index} is already down")
        dc.scheduler.suspend()
        self._dc_endpoints[dc_index].reset()
        self.uplinks[dc_index].crash()
        self.network.set_down(f"dc:{dc_index}", "pdme", True)

    def restart_dc(self, dc_index: int) -> int:
        """Bring a crashed DC back: rejoin the network, reload the
        persisted uplink backlog (same report ids, so PDME-side dedup
        keeps delivery exactly-once at the OOSM), restore scheduler
        cursors, and resume the schedules.  Returns reports recovered."""
        dc = self.dcs[dc_index]
        if not dc.scheduler.suspended:
            raise MprosError(f"dc:{dc_index} is not down")
        self.network.set_down(f"dc:{dc_index}", "pdme", False)
        dc.restore_cursors()
        recovered = self.uplinks[dc_index].recover()
        dc.scheduler.resume()
        return recovered

    def force_restart_dc(self, dc_index: int) -> int:
        """Watchdog-driven full restart, valid from *any* DC state.

        :meth:`restart_dc` insists the DC is already down — correct for
        scripted chaos choreography, but a watchdog faces a DC it can
        only observe: wedged-running, half-crashed, or resumed without
        recovery.  This path forces the complete crash/recovery cycle —
        suspend, wipe volatile state, rejoin the network, reload the
        durable backlog (original report ids, so PDME dedup keeps
        delivery exactly-once), restore cursors, resume.  Reports in the
        volatile queue are all persisted unacked, so the wipe loses
        nothing.  Returns reports recovered."""
        dc = self.dcs[dc_index]
        if not dc.scheduler.suspended:
            dc.scheduler.suspend()
        self._dc_endpoints[dc_index].reset()
        self.uplinks[dc_index].crash()
        self.network.set_down(f"dc:{dc_index}", "pdme", False)
        dc.restore_cursors()
        recovered = self.uplinks[dc_index].recover()
        dc.scheduler.resume()
        return recovered


def build_mpros_system(
    n_chillers: int = 2,
    seed: int = 0,
    vibration_period: float = 600.0,
    process_period: float = 60.0,
    link: LinkConfig | None = None,
    heartbeat_period: float = 15.0,
    metrics: MetricsRegistry | None = None,
    batch: bool = True,
    plant: str = "chiller",
) -> MprosSystem:
    """Assemble the Figure-1 system.

    One DC per monitored unit; each DC monitors its unit's drive train
    through the plant simulator, runs the standard test schedule and
    uplinks §7 reports to the PDME over the simulated ship network.
    ``plant`` selects the domain: ``"chiller"`` (the paper's prototype
    chilled-water plant) or ``"turbine"`` (the gas-turbine CODLAG
    propulsion plant, with its own simulator, fuzzy rulebase and SBFR
    watch set).
    Every subsystem publishes into ``metrics`` (default: the
    process-wide registry), so ``system.metrics.snapshot()`` is the one
    observability surface for the whole DC→PDME path.

    Supervision: each DC's client RPC traffic (uplink + heartbeats) runs
    through a per-DC circuit breaker, the PDME classifies DC liveness
    from heartbeat recency, and each uplink persists its unacked backlog
    into the DC database so :meth:`MprosSystem.crash_dc` /
    :meth:`~MprosSystem.restart_dc` lose no reports.
    """
    if n_chillers < 1:
        raise MprosError("need at least one chiller")
    if plant not in ("chiller", "turbine"):
        raise MprosError(f"unknown plant {plant!r}; expected 'chiller' or 'turbine'")
    metrics = metrics if metrics is not None else default_registry()
    root = make_rng(seed)
    kernel = EventKernel(metrics=metrics)
    network = Network(kernel, derive_rng(root, "network"), metrics=metrics)
    units: list[ChillerUnit] | list[TurbineUnit]
    if plant == "turbine":
        model, ship, units = build_codlag_ship(n_trains=n_chillers)
    else:
        model, ship, units = build_chilled_water_ship(n_chillers=n_chillers)
    pdme = PdmeExecutive(model, metrics=metrics, clock=kernel.clock)
    pdme_ep = RpcEndpoint("pdme", network, kernel, metrics=metrics)
    pdme.serve_on(pdme_ep)
    register_icas_interface(pdme, pdme_ep)
    # PDME-side supervision: classify every DC from heartbeat recency.
    monitor = HeartbeatMonitor(kernel.clock, metrics=metrics)
    monitor.serve_on(pdme_ep)
    pdme_scheduler = EventScheduler(kernel, metrics=metrics, owner="pdme")
    pdme_scheduler.add_periodic(
        "heartbeat-check", heartbeat_period, lambda t: monitor.sweep(t)
    )

    dcs: list[DataConcentrator] = []
    simulators: dict[str, ChillerSimulator | TurbineSimulator] = {}
    endpoints: list[RpcEndpoint] = []
    uplinks: list[ReportUplink] = []
    breakers: list[CircuitBreaker] = []
    heartbeats: list[HeartbeatEmitter] = []
    for i, unit in enumerate(units):
        dc_name = f"dc:{i}"
        if link is not None:
            network.connect(dc_name, "pdme", link)
        dc_ep = RpcEndpoint(dc_name, network, kernel, metrics=metrics)
        endpoints.append(dc_ep)
        # All client traffic from this DC (reports *and* heartbeats)
        # shares one breaker, so heartbeats double as half-open probes.
        breaker = CircuitBreaker(kernel.clock, name=dc_name, metrics=metrics)
        breakers.append(breaker)
        guarded = GuardedEndpoint(dc_ep, breaker)
        uplink = ReportUplink(guarded, "pdme", metrics=metrics)
        uplinks.append(uplink)

        sim: ChillerSimulator | TurbineSimulator
        if plant == "turbine":
            # The turbine domain swaps the fuzzy rulebase and SBFR watch
            # set; the DLI vibration suite is kinematics-driven and
            # carries over unchanged.
            dc = DataConcentrator(
                dc_id=dc_name,
                kernel=kernel,
                sink=uplink.submit,
                rng=derive_rng(root, "dc", i),
                metrics=metrics,
                batch=batch,
                sources=[
                    DliExpertSystem(),
                    FuzzyDiagnostics.for_turbine(),
                    SbfrKnowledgeSource(watches=default_turbine_watches()),
                ],
            )
            uplink.bind_store(dc.database)
            sim = TurbineSimulator(rng=derive_rng(root, "turbine", i))
            dc.attach_machine(
                unit.primary, f"GT Power Turbine {i + 1}", sim, vibration_channel=0
            )
        else:
            dc = DataConcentrator(
                dc_id=dc_name,
                kernel=kernel,
                sink=uplink.submit,
                rng=derive_rng(root, "dc", i),
                metrics=metrics,
                batch=batch,
            )
            # Durable backlog: unacked reports survive a DC crash.
            uplink.bind_store(dc.database)
            sim = ChillerSimulator(rng=derive_rng(root, "chiller", i))
            dc.attach_machine(
                unit.primary, f"A/C Compressor Motor {i + 1}", sim, vibration_channel=0
            )
        dc.schedule_standard_tests(
            vibration_period=vibration_period, process_period=process_period
        )
        # Unattended recovery: retry unacknowledged reports each minute.
        dc.scheduler.add_periodic(
            "uplink-flush", 60.0, lambda t, u=uplink: u.flush()
        )
        # Liveness: heartbeats ride the DC scheduler, so a crashed
        # (suspended) DC goes silent exactly like a dead process would.
        emitter = HeartbeatEmitter(guarded, "pdme", metrics=metrics)
        heartbeats.append(emitter)
        monitor.register(dc_name)
        dc.scheduler.add_periodic("heartbeat", heartbeat_period, emitter.emit)
        # PDME -> DC control path (command tests, download machines).
        dc.serve_on(dc_ep)
        simulators[unit.primary] = sim
        dcs.append(dc)
    return MprosSystem(
        kernel=kernel,
        network=network,
        model=model,
        pdme=pdme,
        dcs=dcs,
        units=units,
        simulators=simulators,
        uplinks=uplinks,
        _dc_endpoints=endpoints,
        metrics=metrics,
        breakers=breakers,
        heartbeats=heartbeats,
        monitor=monitor,
        pdme_scheduler=pdme_scheduler,
    )


# -- fleet-scale replay -------------------------------------------------------

def build_fleet_specs(
    n_dcs: int = 4,
    machines_per_dc: int = 4,
    hours: float = 2.0,
    seed: int = 0,
    vibration_period: float = 600.0,
    process_period: float = 60.0,
    n_samples: int = 32768,
    batch: bool = True,
    reuse_spectra: bool = True,
    faulty_dcs: int = 1,
) -> list[DcReplaySpec]:
    """Specs for the standard fleet-scale scenario.

    ``faulty_dcs`` DCs get a progressive motor imbalance on their first
    machine (onset at 10 % of the run, end-of-life at 90 %); the rest
    run healthy.  The same spec list replayed serially or across a
    process pool produces a bit-identical merged report stream.
    """
    if n_dcs < 1 or machines_per_dc < 1:
        raise MprosError("need n_dcs >= 1 and machines_per_dc >= 1")
    duration = hours * 3600.0
    specs = []
    for i in range(n_dcs):
        fault = i < faulty_dcs
        specs.append(
            DcReplaySpec(
                dc_index=i,
                seed=seed,
                n_machines=machines_per_dc,
                duration_s=duration,
                vibration_period=vibration_period,
                process_period=process_period,
                n_samples=n_samples,
                fault_kind="MOTOR_IMBALANCE" if fault else None,
                fault_onset=0.1 * duration,
                fault_end=0.9 * duration if fault else None,
                batch=batch,
                reuse_spectra=reuse_spectra,
            )
        )
    return specs


def replay_fleet_to_model(
    specs: list[DcReplaySpec], n_workers: int = 1
) -> tuple[ShipModel, list[FailurePredictionReport]]:
    """Replay a fleet and post the merged stream into a fresh OOSM.

    The PDME-side view of a fleet replay: every machine in the specs
    becomes a rotating-machine entity, and the deterministically merged
    reports land in the model oldest-first, exactly as a live DC →
    network → PDME run would deposit them.
    """
    model = ShipModel()
    for spec in specs:
        for machine_id in spec.machine_ids():
            model.create("rotating-machine", id=machine_id, name=machine_id)
    reports = replay_fleet(specs, n_workers=n_workers)
    for r in reports:
        model.post_report(r)
    return model, reports


def build_sharded_pdme(
    n_shards: int,
    plant: str = "chiller",
    store_dir: str | None = None,
) -> "ShardedPdme":
    """A sharded PDME router for the given plant domain.

    With ``store_dir`` the partitions are file-backed (one sqlite file
    per shard — survives crash/restart drills); without it they live in
    memory.  The single-executive :func:`build_mpros_system` path stays
    the ablation/oracle the shard-invariance suite compares against.
    """
    from repro.pdme.shard import ShardedPdme, registry_for_plant

    paths = None
    if store_dir is not None:
        base = Path(store_dir)
        base.mkdir(parents=True, exist_ok=True)
        paths = [base / f"shard-{i}.sqlite" for i in range(n_shards)]
    return ShardedPdme(
        n_shards,
        registry_factory=lambda: registry_for_plant(plant),
        store_paths=paths,
    )
