"""Bayesian-network diagnostic fusion (§10.1, the planned successor).

"We expect to implement a Bayesian Network probability theory when
sufficient data exists for a priori dependence calculations" (§1) and
"Bayes' Nets seem to be a promising approach to diagnostic knowledge
fusion when causal relations and a priori relationships can be teased
out of historical data" (§10.1).

The simulated plant *is* the historical data we were missing, so this
module closes that loop: a small discrete Bayesian network engine
(variable elimination over binary nodes, written from scratch), CPT
learning from labelled campaign records, and a diagnostic-fusion
adapter comparable head-to-head with the Dempster-Shafer path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import FusionError
from repro.common.ids import ObjectId


@dataclass(frozen=True)
class Node:
    """One binary variable: parents and its CPT.

    ``cpt`` maps each combination of parent values (a tuple of bools in
    parent order) to P(node = True | parents).
    """

    name: str
    parents: tuple[str, ...]
    cpt: dict[tuple[bool, ...], float]

    def __post_init__(self) -> None:
        expected = 2 ** len(self.parents)
        if len(self.cpt) != expected:
            raise FusionError(
                f"node {self.name!r}: CPT needs {expected} rows, got {len(self.cpt)}"
            )
        for key, p in self.cpt.items():
            if len(key) != len(self.parents):
                raise FusionError(f"node {self.name!r}: bad CPT key {key}")
            if not 0.0 <= p <= 1.0:
                raise FusionError(f"node {self.name!r}: P={p} out of range")

    def probability(self, value: bool, parent_values: tuple[bool, ...]) -> float:
        """P(node = value | parents = parent_values)."""
        p_true = self.cpt[parent_values]
        return p_true if value else 1.0 - p_true


class BayesNet:
    """A discrete (binary) Bayesian network with exact inference.

    Inference is by enumeration over the ancestors of the query and
    evidence (exact; fine at diagnostic-network sizes where a logical
    group has a handful of faults and a few sources).
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._order: list[str] = []

    def add(self, name: str, parents: tuple[str, ...] = (), cpt=None, prior: float | None = None) -> Node:
        """Add a node.  For root nodes pass ``prior``; otherwise pass a
        full ``cpt`` mapping parent-value tuples to P(True)."""
        if name in self._nodes:
            raise FusionError(f"node {name!r} already exists")
        for p in parents:
            if p not in self._nodes:
                raise FusionError(f"parent {p!r} of {name!r} not yet added (order matters)")
        if parents:
            if cpt is None:
                raise FusionError(f"non-root node {name!r} needs a CPT")
            node = Node(name, tuple(parents), dict(cpt))
        else:
            if prior is None:
                raise FusionError(f"root node {name!r} needs a prior")
            node = Node(name, (), {(): float(prior)})
        self._nodes[name] = node
        self._order.append(name)
        return node

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> list[str]:
        """Node names in topological (insertion) order."""
        return list(self._order)

    def _relevant(self, targets: set[str]) -> list[str]:
        """Ancestral closure of the target set, topologically ordered."""
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(self._nodes[name].parents)
        return [n for n in self._order if n in needed]

    def joint(self, assignment: dict[str, bool]) -> float:
        """Joint probability of a full assignment over given nodes
        (must cover every node's parents)."""
        p = 1.0
        for name, value in assignment.items():
            node = self._nodes[name]
            parent_values = tuple(assignment[q] for q in node.parents)
            p *= node.probability(value, parent_values)
        return p

    def posterior(self, query: str, evidence: dict[str, bool]) -> float:
        """P(query = True | evidence) by enumeration.

        >>> net = BayesNet()
        >>> _ = net.add("rain", prior=0.2)
        >>> _ = net.add("wet", ("rain",), {(True,): 0.9, (False,): 0.1})
        >>> round(net.posterior("rain", {"wet": True}), 3)
        0.692
        """
        if query not in self._nodes:
            raise FusionError(f"unknown query node {query!r}")
        for e in evidence:
            if e not in self._nodes:
                raise FusionError(f"unknown evidence node {e!r}")
        relevant = self._relevant({query, *evidence})
        hidden = [n for n in relevant if n != query and n not in evidence]
        totals = {True: 0.0, False: 0.0}
        for qv in (True, False):
            base = dict(evidence)
            base[query] = qv
            for values in itertools.product((True, False), repeat=len(hidden)):
                assignment = dict(base)
                assignment.update(zip(hidden, values))
                totals[qv] += self.joint({n: assignment[n] for n in relevant})
        z = totals[True] + totals[False]
        if z <= 0:
            raise FusionError("evidence has zero probability under the network")
        return totals[True] / z


# ---------------------------------------------------------------------------
# Learning + diagnostic adapter
# ---------------------------------------------------------------------------

@dataclass
class LearnedSourceModel:
    """Per (knowledge source, condition) detection statistics.

    ``tpr`` = P(source reports condition | condition present);
    ``fpr`` = P(source reports condition | condition absent).
    Laplace-smoothed.
    """

    tpr: dict[tuple[str, str], float] = field(default_factory=dict)
    fpr: dict[tuple[str, str], float] = field(default_factory=dict)
    priors: dict[str, float] = field(default_factory=dict)

    def rates(self, source: str, condition: str) -> tuple[float, float]:
        """(tpr, fpr) with conservative defaults for unseen pairs."""
        return (
            self.tpr.get((source, condition), 0.6),
            self.fpr.get((source, condition), 0.05),
        )


def learn_source_model(
    records,  # list[CampaignRecord]
    prior_floor: float = 0.02,
) -> LearnedSourceModel:
    """Estimate detection statistics from labelled campaign records.

    Each record contributes one trial per (source, condition): did that
    source report that condition, and was it actually present?
    """
    present: dict[tuple[str, str], list[bool]] = {}
    absent: dict[tuple[str, str], list[bool]] = {}
    fault_runs: dict[str, int] = {}
    n_runs = 0
    sources: set[str] = set()
    conditions: set[str] = set()
    for record in records:
        n_runs += 1
        truth = record.truth
        for c in truth:
            fault_runs[c] = fault_runs.get(c, 0) + 1
            conditions.add(c)
        reported = {}
        for r in record.reports:
            sources.add(r.knowledge_source_id)
            conditions.add(r.machine_condition_id)
            reported.setdefault(
                (r.knowledge_source_id, r.machine_condition_id), True
            )
        for s in sources:
            for c in conditions:
                hit = (s, c) in reported
                (present if c in truth else absent).setdefault((s, c), []).append(hit)
    model = LearnedSourceModel()
    for key, hits in present.items():
        model.tpr[key] = (sum(hits) + 1.0) / (len(hits) + 2.0)
    for key, hits in absent.items():
        model.fpr[key] = (sum(hits) + 0.5) / (len(hits) + 10.0)
    for c in conditions:
        model.priors[c] = max(prior_floor, fault_runs.get(c, 0) / max(1, n_runs))
    return model


class BayesDiagnosticFusion:
    """The §10.1 alternative to Dempster-Shafer diagnostic fusion.

    Per (object, condition) it builds a two-layer network — fault node
    with learned prior, one report node per knowledge source with
    learned TPR/FPR — and exposes the posterior given which sources
    have (and importantly, have *not*) reported.

    Parameters
    ----------
    model:
        Learned detection statistics.
    sources:
        The knowledge sources whose silence counts as evidence of
        absence (a source that never analyzes the machine should not be
        listed).
    """

    def __init__(self, model: LearnedSourceModel, sources: tuple[str, ...]) -> None:
        if not sources:
            raise FusionError("need at least one knowledge source")
        self.model = model
        self.sources = tuple(sources)
        # (object, condition) -> set of sources that reported it.
        self._observed: dict[tuple[ObjectId, str], set[str]] = {}

    def ingest(self, report) -> None:
        """Record that a source reported a condition on an object."""
        key = (report.sensed_object_id, report.machine_condition_id)
        self._observed.setdefault(key, set()).add(report.knowledge_source_id)

    def posterior(self, sensed_object_id: ObjectId, condition: str) -> float:
        """P(condition present | who reported and who stayed silent)."""
        net = BayesNet()
        prior = self.model.priors.get(condition, 0.05)
        net.add("fault", prior=prior)
        evidence: dict[str, bool] = {}
        reported_by = self._observed.get((sensed_object_id, condition), set())
        for s in self.sources:
            tpr, fpr = self.model.rates(s, condition)
            node = f"report:{s}"
            net.add(node, ("fault",), {(True,): tpr, (False,): fpr})
            evidence[node] = s in reported_by
        return net.posterior("fault", evidence)

    def suspects(
        self, threshold: float = 0.5
    ) -> list[tuple[ObjectId, str, float]]:
        """(object, condition, posterior) above threshold, strongest
        first — the same surface as DiagnosticFusion.suspects."""
        out = []
        for (obj, condition) in self._observed:
            p = self.posterior(obj, condition)
            if p >= threshold:
                out.append((obj, condition, p))
        out.sort(key=lambda t: -t[2])
        return out
