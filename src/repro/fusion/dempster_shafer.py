"""Dempster-Shafer rules of evidence (§5.3).

"Dempster-Shafer theory is a calculus for qualifying beliefs using
numerical expressions."  A body of evidence is a *mass function*
assigning probability mass to subsets (focal elements) of a frame of
discernment Θ; mass on Θ itself is the "unknown" belief the paper
highlights as D-S's differentiating strength.

The worked example from §5.3 — m1(A)=0.40 combined with m2(B∨C)=0.75 —
yields m(A)≈14 %, m(B∨C)≈64 % and ≈21–22 % "assigned to unknown
possibilities"; :func:`combine` reproduces it exactly (the paper's 22 %
is 3/14 = 0.2142... rounded).

Two representations live here:

* :class:`MassFunction` — focal elements as frozensets.  Readable,
  validating, and the *oracle* for every equivalence claim.
* :class:`BitMass` over a :class:`BitFrame` — focal elements as integer
  bitmasks.  Set intersection is ``&``, subset is ``(a & ~b) == 0``,
  and :func:`combine_incremental` folds one new body of evidence into a
  running fused state without touching the report history.  This is the
  PDME fusion hot path at fleet scale; a bounded memoized combination
  cache short-circuits repeated (state, evidence) pairs, which recur
  whenever fleets of identical machines emit the same discrete belief
  levels.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Iterator, Mapping

from repro.common.errors import FusionError

Hypothesis = Hashable
FocalElement = frozenset

_EPS = 1e-12


class MassFunction:
    """A Dempster-Shafer basic probability assignment over a frame.

    Parameters
    ----------
    frame:
        The frame of discernment Θ — the exhaustive set of hypotheses
        (machine conditions) under consideration.
    masses:
        Mapping from focal element (any iterable of hypotheses, or a
        single hypothesis) to mass.  Masses must be non-negative and
        sum to ≤ 1; any deficit is assigned to Θ ("unknown").

    Examples
    --------
    >>> m = MassFunction({"A", "B", "C"}, {"A": 0.4})
    >>> round(m.unknown(), 2)
    0.6
    """

    __slots__ = ("_frame", "_masses")

    def __init__(
        self,
        frame: Iterable[Hypothesis],
        masses: Mapping[Hypothesis | Iterable[Hypothesis], float] | None = None,
    ) -> None:
        self._frame = frozenset(frame)
        if not self._frame:
            raise FusionError("frame of discernment must be non-empty")
        self._masses: dict[FocalElement, float] = {}
        total = 0.0
        if masses:
            for key, value in masses.items():
                elem = self._as_focal(key)
                if value < -_EPS:
                    raise FusionError(f"mass must be non-negative, got {value} for {set(elem)}")
                if value <= _EPS:
                    continue
                total += value
                self._masses[elem] = self._masses.get(elem, 0.0) + value
        if total > 1.0 + 1e-9:
            raise FusionError(f"masses sum to {total} > 1")
        residual = max(0.0, 1.0 - total)
        if residual > _EPS:
            self._masses[self._frame] = self._masses.get(self._frame, 0.0) + residual

    # -- helpers --------------------------------------------------------
    def _as_focal(self, key: Hypothesis | Iterable[Hypothesis]) -> FocalElement:
        if isinstance(key, (set, frozenset, tuple, list)):
            elem = frozenset(key)
        else:
            elem = frozenset((key,))
        if not elem:
            raise FusionError("empty focal element is not allowed (no mass on ∅)")
        extra = elem - self._frame
        if extra:
            raise FusionError(f"hypotheses {set(extra)} are outside the frame {set(self._frame)}")
        return elem

    # -- introspection ---------------------------------------------------
    @property
    def frame(self) -> frozenset:
        """The frame of discernment Θ."""
        return self._frame

    def focal_elements(self) -> Iterator[tuple[FocalElement, float]]:
        """Iterate (focal element, mass) pairs."""
        return iter(self._masses.items())

    def mass(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Mass assigned exactly to the given focal element."""
        return self._masses.get(self._as_focal(key), 0.0)

    def unknown(self) -> float:
        """Mass on Θ — the belief "assigned to unknown possibilities"."""
        return self._masses.get(self._frame, 0.0)

    def belief(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Bel(X) = Σ m(Y) over Y ⊆ X: total support committed to X."""
        target = self._as_focal(key)
        return sum(v for elem, v in self._masses.items() if elem <= target)

    def plausibility(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Pl(X) = Σ m(Y) over Y ∩ X ≠ ∅: mass not contradicting X."""
        target = self._as_focal(key)
        return sum(v for elem, v in self._masses.items() if elem & target)

    def pignistic(self) -> dict[Hypothesis, float]:
        """BetP: distribute each focal element's mass uniformly over its
        members — the standard decision-level flattening of a D-S state.
        """
        out: dict[Hypothesis, float] = {h: 0.0 for h in self._frame}
        for elem, v in self._masses.items():
            share = v / len(elem)
            for h in elem:
                out[h] += share
        return out

    def is_vacuous(self) -> bool:
        """True if all mass sits on Θ (no evidence at all)."""
        return abs(self.unknown() - 1.0) <= 1e-9

    def total(self) -> float:
        """Total mass (≈1 by construction; exposed for invariants)."""
        return sum(self._masses.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MassFunction):
            return NotImplemented
        if self._frame != other._frame:
            return False
        keys = set(self._masses) | set(other._masses)
        return all(
            abs(self._masses.get(k, 0.0) - other._masses.get(k, 0.0)) <= 1e-9 for k in keys
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{{{','.join(sorted(map(str, e)))}}}:{v:.4f}"
            for e, v in sorted(self._masses.items(), key=lambda kv: -kv[1])
        )
        return f"MassFunction({parts})"


def conflict(m1: MassFunction, m2: MassFunction) -> float:
    """The D-S conflict K: total mass landing on ∅ when combining.

    K = Σ m1(X)·m2(Y) over X ∩ Y = ∅.  K = 1 means totally
    contradictory evidence (combination undefined).
    """
    if m1.frame != m2.frame:
        raise FusionError("cannot measure conflict across different frames")
    k = 0.0
    for (e1, v1), (e2, v2) in product(m1.focal_elements(), m2.focal_elements()):
        if not (e1 & e2):
            k += v1 * v2
    return k


def combine(m1: MassFunction, m2: MassFunction) -> MassFunction:
    """Dempster's rule of combination (normalized orthogonal sum).

    m(Z) = Σ_{X∩Y=Z} m1(X)·m2(Y) / (1 − K).

    Raises :class:`FusionError` on total conflict (K = 1).

    Examples
    --------
    The §5.3 worked example:

    >>> frame = {"A", "B", "C"}
    >>> m1 = MassFunction(frame, {"A": 0.40})
    >>> m2 = MassFunction(frame, {("B", "C"): 0.75})
    >>> fused = combine(m1, m2)
    >>> round(fused.mass("A"), 2), round(fused.mass(("B", "C")), 2)
    (0.14, 0.64)
    >>> 0.21 <= round(fused.unknown(), 2) <= 0.22
    True
    """
    if m1.frame != m2.frame:
        raise FusionError("cannot combine mass functions over different frames")
    acc: dict[FocalElement, float] = {}
    k = 0.0
    for (e1, v1), (e2, v2) in product(m1.focal_elements(), m2.focal_elements()):
        inter = e1 & e2
        w = v1 * v2
        if inter:
            acc[inter] = acc.get(inter, 0.0) + w
        else:
            k += w
    if k >= 1.0 - _EPS:
        raise FusionError("total conflict (K=1): evidence is contradictory")
    norm = 1.0 / (1.0 - k)
    return MassFunction(m1.frame, {elem: v * norm for elem, v in acc.items()})


def combine_many(masses: Iterable[MassFunction]) -> MassFunction:
    """Fold :func:`combine` over a sequence ("extended to handle any
    number of inputs", §1.1).  Dempster's rule is associative and
    commutative, so order does not matter.
    """
    it = iter(masses)
    try:
        acc = next(it)
    except StopIteration:
        raise FusionError("combine_many needs at least one mass function") from None
    for m in it:
        acc = combine(acc, m)
    return acc


def from_simple_support(
    frame: Iterable[Hypothesis], hypothesis: Hypothesis | Iterable[Hypothesis], belief: float
) -> MassFunction:
    """A simple support function: one report asserting ``hypothesis``
    with the §7 ``belief`` value; the rest goes to "unknown".
    """
    if not 0.0 <= belief <= 1.0:
        raise FusionError(f"belief must be in [0, 1], got {belief}")
    return MassFunction(frame, {hypothesis: belief} if belief > 0 else {})


# -- integer-bitmask representation (the fleet-scale fast path) ---------------

class BitFrame:
    """A frame of discernment with each hypothesis assigned a bit.

    Hypotheses are ordered deterministically (sorted by string form) so
    the same frame always produces the same bit layout regardless of
    construction order — bit-identical fused state across replays.
    """

    __slots__ = ("hypotheses", "full", "_bit")

    def __init__(self, hypotheses: Iterable[Hypothesis]) -> None:
        ordered = sorted(set(hypotheses), key=str)
        if not ordered:
            raise FusionError("frame of discernment must be non-empty")
        self.hypotheses: tuple[Hypothesis, ...] = tuple(ordered)
        self._bit: dict[Hypothesis, int] = {
            h: 1 << i for i, h in enumerate(ordered)
        }
        #: The Θ mask: every hypothesis bit set.
        self.full: int = (1 << len(ordered)) - 1

    def __len__(self) -> int:
        return len(self.hypotheses)

    def __contains__(self, hypothesis: Hypothesis) -> bool:
        return hypothesis in self._bit

    def bit(self, hypothesis: Hypothesis) -> int:
        """The single-bit mask of one hypothesis."""
        try:
            return self._bit[hypothesis]
        except KeyError:
            raise FusionError(
                f"hypothesis {hypothesis!r} is outside the frame"
            ) from None

    def mask(self, key: Hypothesis | Iterable[Hypothesis]) -> int:
        """Bitmask of a focal element (hypothesis or iterable of them)."""
        if isinstance(key, (set, frozenset, tuple, list)):
            out = 0
            for h in key:
                out |= self.bit(h)
            if out == 0:
                raise FusionError("empty focal element is not allowed (no mass on ∅)")
            return out
        return self.bit(key)

    def unmask(self, mask: int) -> frozenset:
        """The frozenset of hypotheses a bitmask stands for."""
        return frozenset(
            h for h, b in self._bit.items() if mask & b
        )


#: Memoized BitFrame per frozenset frame — groups are few and reused on
#: every report, so frame construction happens once per logical group.
_FRAME_CACHE: dict[frozenset, BitFrame] = {}


def bit_frame(frame: Iterable[Hypothesis]) -> BitFrame:
    """Get-or-create the shared :class:`BitFrame` for a frame."""
    key = frozenset(frame)
    cached = _FRAME_CACHE.get(key)
    if cached is None:
        cached = BitFrame(key)
        _FRAME_CACHE[key] = cached
    return cached


class BitMass:
    """A mass function with integer-bitmask focal elements.

    Construction does *not* validate or normalize (the hot path builds
    these from already-validated report fields); use
    :meth:`from_mass_function` to convert a validated
    :class:`MassFunction`.
    """

    __slots__ = ("frame", "masses", "conflict_k")

    def __init__(
        self, frame: BitFrame, masses: dict[int, float], conflict_k: float = 0.0
    ) -> None:
        self.frame = frame
        #: Focal bitmask -> mass.
        self.masses = masses
        #: The Dempster conflict K of the combination that produced
        #: this state (0.0 for fresh evidence).
        self.conflict_k = conflict_k

    # -- construction -----------------------------------------------------
    @classmethod
    def simple_support(
        cls, frame: BitFrame, hypothesis: Hypothesis | Iterable[Hypothesis], belief: float
    ) -> "BitMass":
        """One report asserting ``hypothesis``; the rest on Θ."""
        if not 0.0 <= belief <= 1.0:
            raise FusionError(f"belief must be in [0, 1], got {belief}")
        mask = frame.mask(hypothesis)
        if belief <= _EPS:
            return cls(frame, {frame.full: 1.0})
        if belief >= 1.0 - _EPS or mask == frame.full:
            return cls(frame, {mask: 1.0} if mask != frame.full else {frame.full: 1.0})
        return cls(frame, {mask: belief, frame.full: 1.0 - belief})

    @classmethod
    def from_mass_function(cls, m: MassFunction) -> "BitMass":
        """Convert the frozenset oracle form to bitmasks."""
        frame = bit_frame(m.frame)
        masses: dict[int, float] = {}
        for elem, v in m.focal_elements():
            mask = frame.mask(elem)
            masses[mask] = masses.get(mask, 0.0) + v
        return cls(frame, masses)

    def to_mass_function(self) -> MassFunction:
        """Convert back to the validating frozenset form (the oracle)."""
        return MassFunction(
            frozenset(self.frame.hypotheses),
            {self.frame.unmask(mask): v for mask, v in self.masses.items()},
        )

    # -- queries ----------------------------------------------------------
    def mass(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Mass assigned exactly to one focal element."""
        return self.masses.get(self.frame.mask(key), 0.0)

    def belief_mask(self, target: int) -> float:
        """Bel over a bitmask: Σ m(Y) for Y ⊆ target."""
        inv = ~target
        return sum(v for e, v in self.masses.items() if not (e & inv))

    def plausibility_mask(self, target: int) -> float:
        """Pl over a bitmask: Σ m(Y) for Y ∩ target ≠ ∅."""
        return sum(v for e, v in self.masses.items() if e & target)

    def belief(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Bel(X) by hypothesis (mirror of :meth:`MassFunction.belief`)."""
        return self.belief_mask(self.frame.mask(key))

    def plausibility(self, key: Hypothesis | Iterable[Hypothesis]) -> float:
        """Pl(X) by hypothesis (mirror of the oracle form)."""
        return self.plausibility_mask(self.frame.mask(key))

    def unknown(self) -> float:
        """Mass on Θ."""
        return self.masses.get(self.frame.full, 0.0)

    def total(self) -> float:
        """Total mass (≈1; exposed for invariants)."""
        return sum(self.masses.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{{{','.join(sorted(map(str, self.frame.unmask(e))))}}}:{v:.4f}"
            for e, v in sorted(self.masses.items(), key=lambda kv: -kv[1])
        )
        return f"BitMass({parts})"


#: Bounded memo for (state, evidence) -> fused state.  Keys are the
#: exact (frame id, focal items) of both operands; hits occur whenever
#: an identical evidence sequence recurs — e.g. fleets of identical
#: machines reporting the same discrete belief levels.
_COMBINE_CACHE: dict[tuple, BitMass] = {}
_COMBINE_CACHE_MAX = 4096


def _cache_key(m: BitMass) -> tuple:
    return (id(m.frame), tuple(sorted(m.masses.items())))


def combine_incremental(prior: BitMass | None, evidence: BitMass) -> BitMass:
    """Fold one new body of evidence into a running fused state.

    Dempster's rule on bitmask dicts; with ``prior=None`` the evidence
    *is* the state.  The returned state carries the conflict K of this
    combination in :attr:`BitMass.conflict_k`.  Results are memoized
    (bounded) per (prior, evidence) value pair.

    Raises :class:`FusionError` on frame mismatch or total conflict —
    identical failure semantics to :func:`combine`.
    """
    if prior is None:
        return evidence
    if prior.frame is not evidence.frame:
        raise FusionError("cannot combine mass functions over different frames")
    key = (_cache_key(prior), _cache_key(evidence))
    cached = _COMBINE_CACHE.get(key)
    if cached is not None:
        return cached
    acc: dict[int, float] = {}
    k = 0.0
    for e1, v1 in prior.masses.items():
        for e2, v2 in evidence.masses.items():
            inter = e1 & e2
            w = v1 * v2
            if inter:
                acc[inter] = acc.get(inter, 0.0) + w
            else:
                k += w
    if k >= 1.0 - _EPS:
        raise FusionError("total conflict (K=1): evidence is contradictory")
    norm = 1.0 / (1.0 - k)
    fused = BitMass(
        prior.frame, {e: v * norm for e, v in acc.items()}, conflict_k=k
    )
    if len(_COMBINE_CACHE) >= _COMBINE_CACHE_MAX:
        _COMBINE_CACHE.clear()
    _COMBINE_CACHE[key] = fused
    return fused


def combine_incremental_many(masses: Iterable[BitMass]) -> BitMass:
    """Fold :func:`combine_incremental` over a sequence."""
    acc: BitMass | None = None
    for m in masses:
        acc = combine_incremental(acc, m)
    if acc is None:
        raise FusionError("combine_incremental_many needs at least one mass function")
    return acc
