"""Survival-analysis prognostics (§10.1, final extension).

"Prognostic knowledge fusion could be improved with the addition of
techniques from the analysis of hazard and survival data.  These
approaches scrutinize history data to refine the estimates of
life-cycle performance for failures."

From scratch: a Kaplan-Meier estimator over (possibly right-censored)
run-to-failure records, a two-parameter Weibull fit by median-rank
regression, and a refinement step that blends the fleet-historical
survival curve with a live prognostic vector — conservatively, in the
spirit of §5.4 (the blend can only bring failure *earlier*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import FusionError
from repro.protocol.prognostic import PrognosticVector


@dataclass(frozen=True)
class LifeRecord:
    """One unit's life: time in service and whether it actually failed
    (False = right-censored: removed/overhauled while still working)."""

    duration: float
    failed: bool = True

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise FusionError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class KaplanMeier:
    """The product-limit survival estimate S(t)."""

    times: np.ndarray       # distinct event times, ascending
    survival: np.ndarray    # S(t) just after each event time

    def at(self, t: float | np.ndarray) -> float | np.ndarray:
        """S(t): step function, 1.0 before the first event."""
        t_arr = np.asarray(t, dtype=np.float64)
        idx = np.searchsorted(self.times, t_arr, side="right")
        padded = np.concatenate(([1.0], self.survival))
        out = padded[idx]
        return float(out) if np.isscalar(t) else out

    def failure_probability(self, t: float | np.ndarray) -> float | np.ndarray:
        """F(t) = 1 − S(t)."""
        s = self.at(t)
        return 1.0 - s


def kaplan_meier(records: list[LifeRecord]) -> KaplanMeier:
    """Product-limit estimator over failure/censoring records.

    >>> km = kaplan_meier([LifeRecord(10.0), LifeRecord(20.0),
    ...                    LifeRecord(15.0, failed=False)])
    >>> round(km.at(12.0), 3)
    0.667
    """
    if not records:
        raise FusionError("need at least one life record")
    events = sorted(records, key=lambda r: r.duration)
    n_at_risk = len(events)
    times: list[float] = []
    survival: list[float] = []
    s = 1.0
    i = 0
    while i < len(events):
        t = events[i].duration
        deaths = 0
        removed = 0
        while i < len(events) and events[i].duration == t:
            deaths += int(events[i].failed)
            removed += 1
            i += 1
        if deaths:
            s *= 1.0 - deaths / n_at_risk
            times.append(t)
            survival.append(s)
        n_at_risk -= removed
    if not times:
        # All censored: survival never drops.
        times, survival = [events[-1].duration], [1.0]
    return KaplanMeier(np.asarray(times), np.asarray(survival))


@dataclass(frozen=True)
class WeibullFit:
    """Two-parameter Weibull: F(t) = 1 − exp(−(t/eta)^beta)."""

    beta: float   # shape (>1: wear-out, <1: infant mortality)
    eta: float    # characteristic life (63.2% failed)

    def failure_probability(self, t: float | np.ndarray) -> float | np.ndarray:
        """F(t)."""
        t_arr = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
        out = 1.0 - np.exp(-((t_arr / self.eta) ** self.beta))
        return float(out) if np.isscalar(t) else out

    def quantile(self, p: float) -> float:
        """Time by which fraction ``p`` has failed (B-life)."""
        if not 0.0 < p < 1.0:
            raise FusionError(f"p must be in (0, 1), got {p}")
        return self.eta * (-np.log(1.0 - p)) ** (1.0 / self.beta)


def fit_weibull(records: list[LifeRecord]) -> WeibullFit:
    """Median-rank regression Weibull fit over the *failure* records.

    Censored records only shift the rank denominators (Johnson's
    adjusted ranks are approximated by the standard Bernard formula on
    failures only — adequate for the lightly-censored campaigns we
    generate).
    """
    failures = sorted(r.duration for r in records if r.failed)
    if len(failures) < 3:
        raise FusionError("need at least 3 failures to fit a Weibull")
    n = len(failures)
    ranks = (np.arange(1, n + 1) - 0.3) / (n + 0.4)  # Bernard's median rank
    x = np.log(np.asarray(failures))
    y = np.log(-np.log(1.0 - ranks))
    beta, intercept = np.polyfit(x, y, 1)
    if beta <= 0:
        raise FusionError("degenerate Weibull fit (non-positive shape)")
    eta = float(np.exp(-intercept / beta))
    return WeibullFit(beta=float(beta), eta=eta)


def survival_refined_prognostic(
    live: PrognosticVector,
    fit: WeibullFit,
    age: float,
    horizons: tuple[float, ...] | None = None,
) -> PrognosticVector:
    """Blend a live prognostic vector with fleet life statistics.

    The historical hazard for a unit already ``age`` seconds old is the
    conditional failure probability F(age+t | survived to age).  Per
    §5.4's conservatism, the refined curve is the pointwise *max* of
    the live curve and the historical conditional curve — history can
    only pull failure earlier, never grant life the live evidence
    doesn't support.

    Parameters
    ----------
    live:
        The fused live prognostic vector (may be empty).
    fit:
        Fleet Weibull fit for this condition/component class.
    age:
        The unit's current age in seconds.
    horizons:
        Evaluation knots; defaults to the live vector's (or B10..B90
        lives when the live vector is empty).
    """
    if age < 0:
        raise FusionError("age must be >= 0")
    if horizons is None:
        if len(live):
            horizons = tuple(float(t) for t in live.times)
        else:
            horizons = tuple(
                max(1.0, fit.quantile(p) - age) for p in (0.1, 0.5, 0.9)
            )
    s_age = 1.0 - float(fit.failure_probability(age))
    pairs = []
    prev = 0.0
    for t in sorted(set(horizons)):
        if s_age <= 0:
            conditional = 1.0
        else:
            conditional = 1.0 - (1.0 - float(fit.failure_probability(age + t))) / s_age
        p_live = float(live.probability_at(t)) if len(live) else 0.0
        p = min(1.0, max(conditional, p_live, prev))
        pairs.append((float(t), p))
        prev = p
    return PrognosticVector.from_pairs(pairs)
