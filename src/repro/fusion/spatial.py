"""Spatial and flow reasoning (§10.1, second extension).

"Second, spatial reasoning using the object-oriented ship model could
lead us to fuse information about spatially related components.
Examples of spatial relations are proximity (for example, a device is
vibrating because a component next to it is broken and vibrating
wildly) and flow.  Flows are relationships that represent either fluid
flow through the system (one component passing fouled fluids on to
other components downstream), electrical flow or mechanical flow."

Two analyses over the fused state:

* :func:`transmitted_vibration_candidates` — a vibration condition on
  machine A with a *stronger* vibration condition on a proximate
  machine B may be B's vibration transmitted through the structure;
  the candidate carries a discount suggestion for A's belief.
* :func:`flow_contamination_candidates` — a fluid-borne condition
  downstream of a component with the matching source condition is
  plausibly secondary (fouled fluid passed along), pointing repair at
  the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.ids import ObjectId
from repro.fusion.engine import KnowledgeFusionEngine
from repro.oosm.model import ShipModel
from repro.oosm.query import proximate_entities, upstream_of

#: Vibration-borne machine conditions (transmissible through structure).
VIBRATION_CONDITIONS: frozenset[str] = frozenset(
    {
        "mc:motor-imbalance",
        "mc:shaft-misalignment",
        "mc:bearing-wear",
        "mc:bearing-housing-looseness",
        "mc:gear-tooth-wear",
        "mc:gear-mesh-misalignment",
    }
)

#: Fluid-borne conditions: (downstream symptom) -> (upstream source
#: conditions that can explain it by contamination/starvation).
FLOW_SOURCES: dict[str, frozenset[str]] = {
    "mc:oil-contamination": frozenset({"mc:oil-contamination", "mc:gear-tooth-wear",
                                       "mc:bearing-wear"}),
    "mc:evaporator-fouling": frozenset({"mc:condenser-fouling"}),
    "mc:oil-pressure-low": frozenset({"mc:oil-contamination"}),
}


@dataclass(frozen=True)
class TransmissionCandidate:
    """A possibly-transmitted vibration diagnosis."""

    victim: ObjectId            # machine whose report may be spurious
    victim_condition: ObjectId
    victim_belief: float
    source: ObjectId            # proximate machine vibrating harder
    source_condition: ObjectId
    source_belief: float
    discount: float             # suggested multiplier for the victim's belief

    def describe(self) -> str:
        """One display line for maintenance personnel."""
        return (
            f"{self.victim}:{self.victim_condition} (bel {self.victim_belief:.2f}) "
            f"may be vibration transmitted from {self.source}:"
            f"{self.source_condition} (bel {self.source_belief:.2f}); "
            f"suggest belief x{self.discount:.2f}"
        )


@dataclass(frozen=True)
class ContaminationCandidate:
    """A possibly-secondary fluid-borne diagnosis."""

    victim: ObjectId
    victim_condition: ObjectId
    source: ObjectId
    source_condition: ObjectId
    source_belief: float

    def describe(self) -> str:
        """One display line."""
        return (
            f"{self.victim}:{self.victim_condition} is downstream of "
            f"{self.source}:{self.source_condition} (bel {self.source_belief:.2f}); "
            f"treat the source first"
        )


def _vibration_suspects(
    engine: KnowledgeFusionEngine, threshold: float
) -> list[tuple[ObjectId, ObjectId, float]]:
    return [
        (obj, cond, belief)
        for obj, cond, belief in engine.suspects(threshold=threshold)
        if cond in VIBRATION_CONDITIONS
    ]


def transmitted_vibration_candidates(
    model: ShipModel,
    engine: KnowledgeFusionEngine,
    threshold: float = 0.3,
    dominance: float = 1.5,
    hops: int = 1,
) -> list[TransmissionCandidate]:
    """Vibration calls that a stronger proximate source may explain.

    A candidate requires the source's belief to exceed the victim's by
    ``dominance``; the suggested discount shrinks with that margin.
    """
    suspects = _vibration_suspects(engine, threshold)
    by_object: dict[ObjectId, list[tuple[ObjectId, float]]] = {}
    for obj, cond, belief in suspects:
        by_object.setdefault(obj, []).append((cond, belief))
    out: list[TransmissionCandidate] = []
    for victim, victim_calls in by_object.items():
        neighbours = proximate_entities(model, victim, hops=hops)
        for source in neighbours & set(by_object):
            source_cond, source_belief = max(by_object[source], key=lambda t: t[1])
            for victim_cond, victim_belief in victim_calls:
                if source == victim:
                    continue
                if source_belief >= dominance * victim_belief:
                    margin = source_belief / max(victim_belief, 1e-9)
                    discount = max(0.2, 1.0 / margin)
                    out.append(
                        TransmissionCandidate(
                            victim=victim,
                            victim_condition=victim_cond,
                            victim_belief=victim_belief,
                            source=source,
                            source_condition=source_cond,
                            source_belief=source_belief,
                            discount=round(discount, 3),
                        )
                    )
    out.sort(key=lambda c: c.discount)
    return out


def flow_contamination_candidates(
    model: ShipModel,
    engine: KnowledgeFusionEngine,
    threshold: float = 0.3,
) -> list[ContaminationCandidate]:
    """Downstream symptoms explainable by an upstream source condition."""
    suspects = engine.suspects(threshold=threshold)
    by_object: dict[ObjectId, dict[ObjectId, float]] = {}
    for obj, cond, belief in suspects:
        by_object.setdefault(obj, {})[cond] = belief
    out: list[ContaminationCandidate] = []
    for victim, calls in by_object.items():
        sources_upstream = upstream_of(model, victim)
        for victim_cond in calls:
            explaining = FLOW_SOURCES.get(victim_cond)
            if not explaining:
                continue
            for source in sources_upstream & set(by_object):
                for source_cond, source_belief in by_object[source].items():
                    if source_cond in explaining:
                        out.append(
                            ContaminationCandidate(
                                victim=victim,
                                victim_condition=victim_cond,
                                source=source,
                                source_condition=source_cond,
                                source_belief=source_belief,
                            )
                        )
    out.sort(key=lambda c: -c.source_belief)
    return out
