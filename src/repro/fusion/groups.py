"""Logical failure groups (§5.3).

Plain Dempster-Shafer over one flat frame "assumes mutual exclusivity
of failures ... However this is not the case in CBM; there can, in
fact, be several failures at one time, and two or more of them might be
independent of one another."  The paper's heuristic: partition machine
conditions into *logical groups* (electrical failures, lubricant
failures, ...).  Failures within a group "might be mistaken for one
another, so they are logically related and should share probabilities";
failures in different groups are fused independently, so concurrent
unrelated failures are both tracked at full strength.

Each group maintains its own D-S frame, with an explicit UNKNOWN
member standing for "a failure of this kind we have not enumerated".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import FusionError
from repro.common.ids import ObjectId

#: Sentinel hypothesis representing "unknown failure in this group".
#: Distinct from D-S mass on Θ; mass on Θ is total ignorance, while the
#: group report of "unknown" aggregates Θ-mass per §5.6 ("updates the
#: belief of 'unknown' failure for that logical group").
UNKNOWN = "__unknown__"


@dataclass(frozen=True)
class LogicalGroup:
    """A named logical group of related machine conditions.

    Attributes
    ----------
    name:
        Group label, e.g. ``"electrical"`` or ``"lubricant"``.
    conditions:
        The machine-condition ids belonging to the group.
    """

    name: str
    conditions: frozenset[ObjectId]

    def __post_init__(self) -> None:
        if not self.name:
            raise FusionError("logical group needs a non-empty name")
        if not self.conditions:
            raise FusionError(f"logical group {self.name!r} needs at least one condition")
        if UNKNOWN in self.conditions:
            raise FusionError(f"{UNKNOWN!r} is reserved and cannot be a condition id")

    @property
    def frame(self) -> frozenset[ObjectId]:
        """The D-S frame for this group: its conditions plus UNKNOWN."""
        return self.conditions | {UNKNOWN}

    def __contains__(self, condition: ObjectId) -> bool:
        return condition in self.conditions

    def __len__(self) -> int:
        return len(self.conditions)


@dataclass
class GroupRegistry:
    """The set of logical groups for one installation.

    Conditions not claimed by any registered group fall into an
    implicit catch-all group (one per condition) so that novel failure
    modes are still fusible rather than dropped.
    """

    _groups: dict[str, LogicalGroup] = field(default_factory=dict)
    _by_condition: dict[ObjectId, str] = field(default_factory=dict)

    def add(self, name: str, conditions: Iterable[ObjectId]) -> LogicalGroup:
        """Register a group; conditions must not already be claimed."""
        if name in self._groups:
            raise FusionError(f"logical group {name!r} already registered")
        group = LogicalGroup(name, frozenset(conditions))
        clash = {c: self._by_condition[c] for c in group.conditions if c in self._by_condition}
        if clash:
            raise FusionError(f"conditions already grouped elsewhere: {clash}")
        self._groups[name] = group
        for c in group.conditions:
            self._by_condition[c] = name
        return group

    def group_of(self, condition: ObjectId) -> LogicalGroup:
        """The group a condition belongs to (implicit singleton if new)."""
        name = self._by_condition.get(condition)
        if name is not None:
            return self._groups[name]
        # Implicit catch-all: a singleton group named after the condition.
        return LogicalGroup(f"auto:{condition}", frozenset((condition,)))

    def get(self, name: str) -> LogicalGroup:
        """Look up a registered group by name."""
        try:
            return self._groups[name]
        except KeyError:
            raise FusionError(f"unknown logical group {name!r}") from None

    def groups(self) -> Iterator[LogicalGroup]:
        """Iterate over registered groups."""
        return iter(self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, name: str) -> bool:
        return name in self._groups


def default_chiller_groups() -> GroupRegistry:
    """The logical groups for the centrifugal-chiller prototype.

    The paper names electrical and lubricant groups as examples; the
    rest follow the §3.3 FMEA's 12 candidate failure modes, organized
    by the confusability heuristic (conditions an analyst could mistake
    for one another share a group).
    """
    reg = GroupRegistry()
    reg.add(
        "electrical",
        [
            "mc:motor-rotor-bar",
            "mc:motor-stator-winding",
            "mc:motor-phase-imbalance",
        ],
    )
    reg.add(
        "lubricant",
        [
            "mc:oil-contamination",
            "mc:oil-pressure-low",
            "mc:oil-pump-wear",
        ],
    )
    reg.add(
        "rotating-mechanical",
        [
            "mc:motor-imbalance",
            "mc:shaft-misalignment",
            "mc:bearing-housing-looseness",
            "mc:bearing-wear",
        ],
    )
    reg.add(
        "transmission",
        [
            "mc:gear-tooth-wear",
            "mc:gear-mesh-misalignment",
        ],
    )
    reg.add(
        "refrigeration",
        [
            "mc:refrigerant-leak",
            "mc:condenser-fouling",
            "mc:evaporator-fouling",
            "mc:surge",
        ],
    )
    return reg


def default_turbine_groups() -> GroupRegistry:
    """The logical groups for the gas-turbine (CODLAG) domain.

    The gas-path decay modes (Anđelić et al.) are mutually confusable
    — all three shift EGT and fuel flow — so they share one D-S frame;
    the lubricant and drive-train modes keep the same confusability
    partitions they have on any geared machine.
    """
    reg = GroupRegistry()
    reg.add(
        "gas-path",
        [
            "mc:compressor-fouling",
            "mc:fuel-metering-drift",
            "mc:turbine-blade-erosion",
        ],
    )
    reg.add(
        "lubricant",
        [
            "mc:oil-contamination",
            "mc:oil-pressure-low",
            "mc:oil-pump-wear",
        ],
    )
    reg.add(
        "rotating-mechanical",
        [
            "mc:motor-imbalance",
            "mc:shaft-misalignment",
            "mc:bearing-housing-looseness",
            "mc:bearing-wear",
        ],
    )
    reg.add(
        "transmission",
        [
            "mc:gear-tooth-wear",
            "mc:gear-mesh-misalignment",
        ],
    )
    return reg
