"""The Knowledge Fusion engine (§5.1).

Follows the paper's general format:

1. New reports arriving at the PDME are posted in the OOSM.
2. New posts generate "new data" messages to the KF components.
3. KF accesses the newly arrived data and performs diagnostic and
   prognostic fusion.
4. Conclusions are posted back (to the OOSM / user displays).

The engine is deliberately decoupled from the OOSM type: it consumes
:class:`~repro.protocol.report.FailurePredictionReport` objects pushed
at it (by the OOSM event bridge in :mod:`repro.pdme.executive`, by
tests, or by anything else) and emits conclusions through a sink
callback.  §5.1 requires tolerance of "incomplete, time-disordered,
fragmentary" inputs with "gaps, inconsistencies, and contradictions" —
hence the per-report error isolation and the out-of-order handling in
the prognostic path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import MprosError
from repro.common.ids import ObjectId
from repro.fusion.diagnostic import DiagnosticFusion, FusedDiagnosis
from repro.fusion.groups import GroupRegistry
from repro.fusion.prognostic import FusedPrognosis, PrognosticFusion, conservative_envelope
from repro.obs.registry import MetricsRegistry, default_registry
from repro.protocol.report import FailurePredictionReport


@dataclass(frozen=True)
class FusionConclusion:
    """What KF posts after ingesting one report."""

    report: FailurePredictionReport
    diagnosis: FusedDiagnosis | None
    prognosis: FusedPrognosis | None


@dataclass
class EngineStats:
    """Counters for monitoring and the robustness bench."""

    ingested: int = 0
    diagnostic_updates: int = 0
    prognostic_updates: int = 0
    rejected: int = 0
    errors: list[str] = field(default_factory=list)


class KnowledgeFusionEngine:
    """Drives diagnostic + prognostic fusion from a report stream.

    Parameters
    ----------
    registry:
        Logical failure groups for diagnostic fusion.
    believability:
        Optional per-knowledge-source discount factors.
    envelope:
        Prognostic combination rule (paper default: conservative).
    sink:
        Optional callback invoked with each :class:`FusionConclusion`.
    """

    def __init__(
        self,
        registry: GroupRegistry,
        believability: dict[ObjectId, float] | None = None,
        envelope=conservative_envelope,
        sink: Callable[[FusionConclusion], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.diagnostic = DiagnosticFusion(registry, believability)
        self.prognostic = PrognosticFusion(envelope)
        self._sink = sink
        self.stats = EngineStats()
        self._max_seen_time = 0.0
        reg = metrics if metrics is not None else default_registry()
        self._m_ingested = reg.counter("fusion.ingested")
        self._m_diag = reg.counter("fusion.diagnostic_updates")
        self._m_prog = reg.counter("fusion.prognostic_updates")
        self._m_rejected = reg.counter("fusion.rejected")
        #: How stale a report is when fused (now - report timestamp):
        #: the §5.1 "time-disordered, fragmentary" tolerance, measured.
        self._m_age = reg.histogram("fusion.report_age_seconds")

    def ingest(self, report: FailurePredictionReport) -> FusionConclusion | None:
        """Fuse one report; malformed evidence is counted, not fatal.

        Returns the conclusion, or None if the report was rejected.
        """
        self.stats.ingested += 1
        self._m_ingested.inc()
        self._max_seen_time = max(self._max_seen_time, report.timestamp)
        self._m_age.observe(self._max_seen_time - report.timestamp)
        diagnosis: FusedDiagnosis | None = None
        prognosis: FusedPrognosis | None = None
        try:
            if report.belief > 0.0:
                diagnosis = self.diagnostic.ingest(report)
                self.stats.diagnostic_updates += 1
                self._m_diag.inc()
            if len(report.prognostic):
                # Fuse as of the latest time we have seen so that a
                # time-disordered (stale) report is properly age-shifted.
                prognosis = self.prognostic.ingest(report, now=self._max_seen_time)
                self.stats.prognostic_updates += 1
                self._m_prog.inc()
        except MprosError as exc:
            self.stats.rejected += 1
            self._m_rejected.inc()
            self.stats.errors.append(f"{report.summary()}: {exc}")
            return None
        if diagnosis is None and prognosis is None:
            # Carried neither usable diagnosis nor prognosis.
            self.stats.rejected += 1
            self._m_rejected.inc()
            return None
        conclusion = FusionConclusion(report, diagnosis, prognosis)
        if self._sink is not None:
            self._sink(conclusion)
        return conclusion

    def ingest_batch(
        self, reports: list[FailurePredictionReport]
    ) -> list[FusionConclusion]:
        """Fuse a batch of reports in order; rejected ones are skipped.

        Semantically identical to calling :meth:`ingest` per report —
        the fused state is incremental either way — but gives callers
        (the PDME executive's per-kernel-step drain) one call per batch.
        """
        out: list[FusionConclusion] = []
        for report in reports:
            conclusion = self.ingest(report)
            if conclusion is not None:
                out.append(conclusion)
        return out

    # -- convenience queries ----------------------------------------------
    @property
    def max_seen_time(self) -> float:
        """Latest report timestamp ingested so far (fusion "now")."""
        return self._max_seen_time

    @property
    def intake_watermark(self) -> int:
        """Monotone count of reports offered to this engine.

        Two snapshot requests at equal ``(as_of, intake_watermark)``
        are guaranteed equal — the key the gateway's versioned snapshot
        cache uses.  Rejected reports still advance the watermark
        (cheaper than proving a reject changed nothing, and a spurious
        cache miss is only a wasted recompute).
        """
        return self.stats.ingested

    def suspects(self, threshold: float = 0.5):
        """Delegates to :meth:`DiagnosticFusion.suspects`."""
        return self.diagnostic.suspects(threshold)

    def fused_snapshot(self, as_of: float | None = None) -> dict:
        """The complete fused model as a plain JSON-ready dict.

        Every (object, group) diagnostic state and every (object,
        condition) prognostic curve, evaluated at ``as_of`` (default:
        the latest report timestamp seen by *this* engine).

        Serialize with
        :func:`repro.protocol.canonical.canonical_dumps` for a
        byte-stable rendering.  Shard routers must pass the *global*
        ``as_of`` explicitly: per-shard engines see different local
        maxima, and prognostic curves age-shift history relative to
        ``now`` — only an explicit shared evaluation time makes the
        merged snapshot independent of the shard count.
        """
        t = as_of if as_of is not None else self._max_seen_time
        diagnostic: dict[str, dict] = {}
        for obj, gname in self.diagnostic.keys():
            s = self.diagnostic.state(obj, gname)
            diagnostic[f"{obj}|{gname}"] = {
                "beliefs": dict(s.beliefs),
                "plausibilities": dict(s.plausibilities),
                "unknown": s.unknown,
                "severity": s.severity,
                "report_count": s.report_count,
                "conflict": s.conflict,
            }
        prognostic: dict[str, dict] = {}
        for obj, cond in self.prognostic.keys():
            s = self.prognostic.state(obj, cond, t)
            vec = s.vector
            prognostic[f"{obj}|{cond}"] = {
                "report_count": s.report_count,
                "curve": [
                    [float(kt), float(kp)]
                    for kt, kp in zip(vec.times, vec.probabilities)
                ],
            }
        return {"as_of": t, "diagnostic": diagnostic, "prognostic": prognostic}

    def time_to_failure(
        self, sensed_object_id: ObjectId, machine_condition_id: ObjectId,
        probability: float = 0.5, now: float | None = None,
    ) -> float:
        """Fused time-to-failure estimate for a pair, in seconds."""
        t = now if now is not None else self._max_seen_time
        state = self.prognostic.state(sensed_object_id, machine_condition_id, t)
        return state.time_to_failure(probability)
