"""Knowledge fusion for diagnostics (§5.3, §5.6).

"Diagnostic knowledge fusion generates a new fused belief whenever a
diagnostic report arrives for a suspect component.  This updates the
belief for that suspect component and for every other failure in the
logical group for that component.  It also updates the belief of
'unknown' failure for that logical group for that component."

State is kept per (sensed object, logical group): the Dempster-Shafer
orthogonal sum of every report received so far, discounted by source
believability where available.

The running state lives in the bitmask representation
(:class:`~repro.fusion.dempster_shafer.BitMass`) and is updated
*incrementally* — one :func:`combine_incremental` per report, never a
re-fold over report history.  The discounted evidence of every report
is retained so :meth:`DiagnosticFusion.full_recompute` can replay the
whole history through the frozenset oracle and certify the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import FusionError
from repro.common.ids import ObjectId
from repro.fusion.dempster_shafer import (
    BitMass,
    MassFunction,
    bit_frame,
    combine,
    combine_incremental,
    conflict,
)
from repro.fusion.groups import UNKNOWN, GroupRegistry, LogicalGroup
from repro.protocol.report import FailurePredictionReport


@dataclass(frozen=True)
class FusedDiagnosis:
    """The fused state of one logical group on one sensed object.

    Attributes
    ----------
    sensed_object_id / group_name:
        Which machine and which logical failure group.
    beliefs:
        Bel(condition) per condition in the group — the fused support
        committed to each specific failure.
    plausibilities:
        Pl(condition) per condition — the support not contradicting it.
    unknown:
        Mass on "some failure in this group we have not enumerated"
        plus total ignorance (Θ), the §5.6 "belief of unknown failure".
    severity:
        Max severity reported so far for any condition in the group.
    report_count:
        Number of reports fused into this state.
    conflict:
        The Dempster-Shafer conflict K of the *latest* combination —
        how much of the incoming report's mass contradicted the fused
        state (0 = purely reinforcing, →1 = purely conflicting).  This
        is the quantitative form of §3.2's "some conflicting and some
        reinforcing".
    """

    sensed_object_id: ObjectId
    group_name: str
    beliefs: dict[ObjectId, float]
    plausibilities: dict[ObjectId, float]
    unknown: float
    severity: float
    report_count: int
    conflict: float = 0.0

    def ranked(self) -> list[tuple[ObjectId, float]]:
        """Conditions sorted by fused belief, strongest first."""
        return sorted(self.beliefs.items(), key=lambda kv: -kv[1])

    def top(self) -> tuple[ObjectId, float] | None:
        """The strongest suspect condition, if any evidence exists."""
        ranked = self.ranked()
        if not ranked or ranked[0][1] <= 0.0:
            return None
        return ranked[0]


def discounted_support(
    group: LogicalGroup, condition: ObjectId, belief: float, believability: float = 1.0
) -> MassFunction:
    """Convert one diagnostic report into a mass function on the group
    frame, applying Shafer discounting by the source's believability.

    A report (condition, belief b) from a source with believability α
    becomes m({condition}) = α·b with the rest on Θ — exactly the
    "believability factors" treatment of §6.1.
    """
    if not 0.0 <= believability <= 1.0:
        raise FusionError(f"believability must be in [0, 1], got {believability}")
    if condition not in group:
        raise FusionError(f"condition {condition!r} is not in group {group.name!r}")
    return MassFunction(group.frame, {condition: belief * believability})


class DiagnosticFusion:
    """Per-(object, group) Dempster-Shafer accumulation of reports.

    Parameters
    ----------
    registry:
        Logical-group registry mapping machine conditions to groups.
    believability:
        Optional mapping ``knowledge_source_id -> α`` used to discount
        each source's reports (defaults to 1.0, full trust).
    """

    def __init__(
        self,
        registry: GroupRegistry,
        believability: dict[ObjectId, float] | None = None,
    ) -> None:
        self._registry = registry
        self._believability = dict(believability or {})
        for source, alpha in self._believability.items():
            if not 0.0 <= alpha <= 1.0:
                raise FusionError(
                    f"believability must be in [0, 1], got {alpha} for {source!r}"
                )
        self._state: dict[tuple[ObjectId, str], BitMass] = {}
        self._severity: dict[tuple[ObjectId, str], float] = {}
        self._counts: dict[tuple[ObjectId, str], int] = {}
        self._last_conflict: dict[tuple[ObjectId, str], float] = {}
        #: Retained discounted evidence per key — the oracle's input.
        self._history: dict[tuple[ObjectId, str], list[tuple[ObjectId, float]]] = {}
        #: Snapshot memo, dropped per key on every ingest/reset.
        self._snapshots: dict[tuple[ObjectId, str], FusedDiagnosis] = {}
        #: Monotone revision counter gating the suspects cache.
        self._revision = 0
        self._suspects_rev = -1
        self._suspects_all: list[tuple[ObjectId, ObjectId, float]] = []

    # -- intake ----------------------------------------------------------
    def ingest(self, report: FailurePredictionReport) -> FusedDiagnosis:
        """Fuse one diagnostic report; returns the updated group state."""
        group = self._registry.group_of(report.machine_condition_id)
        key = (report.sensed_object_id, group.name)
        alpha = self._believability.get(report.knowledge_source_id, 1.0)
        frame = bit_frame(group.frame)
        evidence = BitMass.simple_support(
            frame, report.machine_condition_id, report.belief * alpha
        )
        prior = self._state.get(key)
        fused = combine_incremental(prior, evidence)
        self._last_conflict[key] = fused.conflict_k if prior is not None else 0.0
        self._state[key] = fused
        self._severity[key] = max(self._severity.get(key, 0.0), report.severity)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._history.setdefault(key, []).append(
            (report.machine_condition_id, report.belief * alpha)
        )
        self._snapshots.pop(key, None)
        self._revision += 1
        return self._snapshot(report.sensed_object_id, group)

    def ingest_many(
        self, reports: Iterable[FailurePredictionReport]
    ) -> list[FusedDiagnosis]:
        """Fuse a batch of reports, returning each post-update state."""
        return [self.ingest(r) for r in reports]

    # -- queries -----------------------------------------------------------
    def _snapshot(self, obj: ObjectId, group: LogicalGroup) -> FusedDiagnosis:
        key = (obj, group.name)
        mass = self._state.get(key)
        if mass is None:
            beliefs = {c: 0.0 for c in group.conditions}
            plaus = {c: 1.0 for c in group.conditions}
            return FusedDiagnosis(obj, group.name, beliefs, plaus, 1.0, 0.0, 0)
        cached = self._snapshots.get(key)
        if cached is not None:
            return cached
        beliefs = {c: mass.belief(c) for c in group.conditions}
        plaus = {c: mass.plausibility(c) for c in group.conditions}
        # "Unknown" per §5.6: explicit UNKNOWN support plus ignorance (Θ).
        unknown = mass.plausibility(UNKNOWN)
        snap = FusedDiagnosis(
            obj,
            group.name,
            beliefs,
            plaus,
            unknown,
            self._severity.get(key, 0.0),
            self._counts.get(key, 0),
            self._last_conflict.get(key, 0.0),
        )
        self._snapshots[key] = snap
        return snap

    def _resolve_group(self, group_name: str) -> LogicalGroup:
        """Look up a registered group, reconstructing implicit
        catch-all singleton groups (named ``auto:<condition>``)."""
        if group_name.startswith("auto:"):
            return LogicalGroup(group_name, frozenset((group_name[5:],)))
        return self._registry.get(group_name)

    def state(self, sensed_object_id: ObjectId, group_name: str) -> FusedDiagnosis:
        """Current fused state for an (object, group) pair."""
        return self._snapshot(sensed_object_id, self._resolve_group(group_name))

    def keys(self) -> list[tuple[ObjectId, str]]:
        """Every (object, group) pair with fused state, insertion order."""
        return list(self._state.keys())

    def states_for_object(self, sensed_object_id: ObjectId) -> list[FusedDiagnosis]:
        """All group states touched so far on one sensed object."""
        out = []
        for (obj, gname), _ in self._state.items():
            if obj == sensed_object_id:
                out.append(self._snapshot(obj, self._resolve_group(gname)))
        return out

    def suspects(self, threshold: float = 0.5) -> list[tuple[ObjectId, ObjectId, float]]:
        """All (object, condition, belief) with fused belief ≥ threshold,
        strongest first — the raw material of the PDME's prioritized
        maintenance list.

        The full sorted candidate list is memoized per fusion revision
        (spatial correlation probes it once per ingested conclusion);
        only the threshold filter runs per call.
        """
        if self._suspects_rev != self._revision:
            found: list[tuple[ObjectId, ObjectId, float]] = []
            for (obj, gname), mass in self._state.items():
                group = self._resolve_group(gname)
                for c in group.conditions:
                    found.append((obj, c, mass.belief(c)))
            found.sort(key=lambda t: -t[2])
            self._suspects_all = found
            self._suspects_rev = self._revision
        return [t for t in self._suspects_all if t[2] >= threshold]

    # -- oracle ------------------------------------------------------------
    def full_recompute(
        self, sensed_object_id: ObjectId, group_name: str
    ) -> FusedDiagnosis:
        """Replay the retained report history through the frozenset
        :class:`MassFunction` oracle and return the resulting state.

        This is the reference against which the incremental bitmask
        path is certified: for any (object, group) pair the snapshot
        returned here must match :meth:`state` to within float
        round-off (the property tests pin it to 1e-9).
        """
        group = self._resolve_group(group_name)
        key = (sensed_object_id, group.name)
        history = self._history.get(key)
        if not history:
            return self.state(sensed_object_id, group_name)
        acc: MassFunction | None = None
        last_k = 0.0
        for condition, belief in history:
            evidence = MassFunction(group.frame, {condition: belief})
            if acc is None:
                acc = evidence
            else:
                last_k = conflict(acc, evidence)
                acc = combine(acc, evidence)
        assert acc is not None
        beliefs = {c: acc.belief(c) for c in group.conditions}
        plaus = {c: acc.plausibility(c) for c in group.conditions}
        return FusedDiagnosis(
            sensed_object_id,
            group.name,
            beliefs,
            plaus,
            acc.plausibility(UNKNOWN),
            self._severity.get(key, 0.0),
            self._counts.get(key, 0),
            last_k,
        )

    def reset(self, sensed_object_id: ObjectId, group_name: str) -> None:
        """Forget fused state for an (object, group) pair (maintenance
        performed; evidence no longer applies)."""
        self._state.pop((sensed_object_id, group_name), None)
        self._severity.pop((sensed_object_id, group_name), None)
        self._counts.pop((sensed_object_id, group_name), None)
        self._last_conflict.pop((sensed_object_id, group_name), None)
        self._history.pop((sensed_object_id, group_name), None)
        self._snapshots.pop((sensed_object_id, group_name), None)
        self._revision += 1
