"""Knowledge fusion for prognostics (§5.4, §5.6).

"Our approach in phase one has been to combine the lists taking the
most conservative estimate at any given time period, and interpolating
a smooth curve from point to point."

The fused curve is the pointwise *maximum* failure probability over all
input curves (higher probability of failure by a given time = more
conservative), evaluated on the union of all knot times.

Per-input reading, chosen to reproduce the paper's two §5.4 examples:

* A multi-point vector contributes its full linearly-interpolated
  curve, linearly extrapolated past its last knot.
* A single-point report ``(t_s, p_s)`` claims nothing before ``t_s``;
  from ``t_s`` on it contributes a *level shift* of the prevailing
  trend: ``p_s + (P(t) − P(t_s))`` where ``P`` is the envelope of the
  multi-point curves.  A mild report (paper example 1) therefore stays
  strictly under the prevailing curve and is ignored; a pessimistic
  one (example 2) dominates and, riding the prevailing slope, "would
  indicate an even earlier demise" — fused certainty arrives earlier
  than under the original curve alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import FusionError
from repro.common.ids import ObjectId
from repro.protocol.prognostic import PrognosticVector
from repro.protocol.report import FailurePredictionReport


def _union_grid(vectors: Sequence[PrognosticVector]) -> np.ndarray:
    knots = [v.times for v in vectors if len(v)]
    if not knots:
        return np.zeros(0)
    return np.unique(np.concatenate(knots))


def conservative_envelope(vectors: Iterable[PrognosticVector]) -> PrognosticVector:
    """Combine prognostic vectors by the most conservative estimate.

    At every knot time of every input, the fused probability is the
    maximum over all inputs' (interpolated/extrapolated) curves.  The
    result is clipped to [0, 1] and made monotone non-decreasing.

    Examples
    --------
    The paper's first example — a mild second report is ignored:

    >>> from repro.common.units import months
    >>> a = PrognosticVector.from_pairs(
    ...     [(months(3), .01), (months(4), .5), (months(5), .99)])
    >>> b = PrognosticVector.from_pairs([(months(4.5), .12)])
    >>> fused = conservative_envelope([a, b])
    >>> round(fused.probability_at(months(4.5)), 3)  # a's value wins
    0.745
    """
    vecs = [v for v in vectors if len(v)]
    if not vecs:
        return PrognosticVector.empty()
    if len(vecs) == 1:
        return vecs[0]
    grid = _union_grid(vecs)
    multi = [v for v in vecs if len(v) >= 2]
    single = [v for v in vecs if len(v) == 1]
    contributions: list[np.ndarray] = []
    if multi:
        prevailing = np.vstack(
            [np.asarray(v.probability_at(grid)) for v in multi]
        ).max(axis=0)
        contributions.append(prevailing)
    else:
        prevailing = np.zeros_like(grid)
    for v in single:
        t_s = float(v.times[0])
        p_s = float(v.probabilities[0])
        base_at_knot = float(np.interp(t_s, grid, prevailing))
        shifted = p_s + (prevailing - base_at_knot)
        # No claim before the report's own horizon.
        contributions.append(np.where(grid >= t_s, shifted, -np.inf))
    fused = np.vstack(contributions).max(axis=0)
    fused = np.clip(np.where(np.isfinite(fused), fused, 0.0), 0.0, 1.0)
    fused = np.maximum.accumulate(fused)
    # Collapse any saturated tail to its first point: once the curve
    # hits 1.0 further knots add no information.
    pairs = list(zip(grid.tolist(), fused.tolist()))
    out: list[tuple[float, float]] = []
    for t, p in pairs:
        out.append((t, p))
        if p >= 1.0:
            break
    return PrognosticVector.from_pairs(out)


def noisy_or_envelope(vectors: Iterable[PrognosticVector]) -> PrognosticVector:
    """Ablation alternative: treat sources as independent evidence.

    Fused probability is ``1 − Π(1 − p_i)`` — always at least as
    pessimistic as the conservative envelope, and *more* pessimistic
    whenever two sources each carry partial evidence.  Benched against
    the paper's approach in ``benchmarks/bench_prognostic_fusion.py``.
    """
    vecs = [v for v in vectors if len(v)]
    if not vecs:
        return PrognosticVector.empty()
    grid = _union_grid(vecs)
    curves = np.vstack([np.asarray(v.probability_at(grid)) for v in vecs])
    fused = 1.0 - np.prod(1.0 - curves, axis=0)
    fused = np.maximum.accumulate(np.clip(fused, 0.0, 1.0))
    pairs = []
    for t, p in zip(grid.tolist(), fused.tolist()):
        pairs.append((t, p))
        if p >= 1.0:
            break
    return PrognosticVector.from_pairs(pairs)


@dataclass(frozen=True)
class FusedPrognosis:
    """Fused prognostic state for one (object, condition) pair."""

    sensed_object_id: ObjectId
    machine_condition_id: ObjectId
    vector: PrognosticVector
    as_of: float
    report_count: int

    def time_to_failure(self, probability: float = 0.5) -> float:
        """Estimated seconds until failure probability reaches the
        given level (the §3.3 "time to failure" estimate)."""
        return self.vector.time_to_probability(probability)


class PrognosticFusion:
    """Accumulates prognostic reports per (object, condition).

    Every vector is re-based to the current fusion time before
    combination: a report issued at t0 claiming failure within Δ is,
    at time t1 > t0, a claim about Δ − (t1 − t0).

    Parameters
    ----------
    envelope:
        The combination rule; defaults to the paper's
        :func:`conservative_envelope`.
    """

    def __init__(self, envelope=conservative_envelope) -> None:
        self._envelope = envelope
        self._reports: dict[tuple[ObjectId, ObjectId], list[FailurePredictionReport]] = {}

    def ingest(self, report: FailurePredictionReport, now: float | None = None) -> FusedPrognosis:
        """Fuse one prognostic report; returns the updated state.

        ``now`` defaults to the report's own timestamp.
        """
        if len(report.prognostic) == 0:
            raise FusionError("report carries no prognostic vector")
        key = (report.sensed_object_id, report.machine_condition_id)
        self._reports.setdefault(key, []).append(report)
        return self.state(*key, now=now if now is not None else report.timestamp)

    def state(
        self, sensed_object_id: ObjectId, machine_condition_id: ObjectId, now: float
    ) -> FusedPrognosis:
        """Fused prognosis for an (object, condition) pair as of ``now``."""
        key = (sensed_object_id, machine_condition_id)
        reports = self._reports.get(key, [])
        rebased = []
        for r in reports:
            age = now - r.timestamp
            if age < 0:
                # Future-stamped report (time-disordered input, §5.1):
                # treat as effective now rather than rejecting.
                age = 0.0
            rebased.append(r.prognostic.shifted(age))
        fused = self._envelope(rebased) if rebased else PrognosticVector.empty()
        return FusedPrognosis(sensed_object_id, machine_condition_id, fused, now, len(reports))

    def conditions_for_object(self, sensed_object_id: ObjectId) -> list[ObjectId]:
        """Machine conditions with prognostic evidence on an object."""
        return [c for (obj, c) in self._reports if obj == sensed_object_id]

    def reset(self, sensed_object_id: ObjectId, machine_condition_id: ObjectId) -> None:
        """Forget prognostic history for a pair (after maintenance)."""
        self._reports.pop((sensed_object_id, machine_condition_id), None)
