"""Knowledge fusion for prognostics (§5.4, §5.6).

"Our approach in phase one has been to combine the lists taking the
most conservative estimate at any given time period, and interpolating
a smooth curve from point to point."

The fused curve is the pointwise *maximum* failure probability over all
input curves (higher probability of failure by a given time = more
conservative), evaluated on the union of all knot times.

Per-input reading, chosen to reproduce the paper's two §5.4 examples:

* A multi-point vector contributes its full linearly-interpolated
  curve, linearly extrapolated past its last knot.
* A single-point report ``(t_s, p_s)`` claims nothing before ``t_s``;
  from ``t_s`` on it contributes a *level shift* of the prevailing
  trend: ``p_s + (P(t) − P(t_s))`` where ``P`` is the envelope of the
  multi-point curves.  A mild report (paper example 1) therefore stays
  strictly under the prevailing curve and is ignored; a pessimistic
  one (example 2) dominates and, riding the prevailing slope, "would
  indicate an even earlier demise" — fused certainty arrives earlier
  than under the original curve alone.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.common.errors import FusionError
from repro.common.ids import ObjectId
from repro.protocol.prognostic import PrognosticVector
from repro.protocol.report import FailurePredictionReport


def _union_grid(vectors: Sequence[PrognosticVector]) -> np.ndarray:
    knots = [v.times for v in vectors if len(v)]
    if not knots:
        return np.zeros(0)
    return np.unique(np.concatenate(knots))


def conservative_envelope(vectors: Iterable[PrognosticVector]) -> PrognosticVector:
    """Combine prognostic vectors by the most conservative estimate.

    At every knot time of every input, the fused probability is the
    maximum over all inputs' (interpolated/extrapolated) curves.  The
    result is clipped to [0, 1] and made monotone non-decreasing.

    Examples
    --------
    The paper's first example — a mild second report is ignored:

    >>> from repro.common.units import months
    >>> a = PrognosticVector.from_pairs(
    ...     [(months(3), .01), (months(4), .5), (months(5), .99)])
    >>> b = PrognosticVector.from_pairs([(months(4.5), .12)])
    >>> fused = conservative_envelope([a, b])
    >>> round(fused.probability_at(months(4.5)), 3)  # a's value wins
    0.745
    """
    vecs = [v for v in vectors if len(v)]
    if not vecs:
        return PrognosticVector.empty()
    if len(vecs) == 1:
        return vecs[0]
    grid = _union_grid(vecs)
    multi = [v for v in vecs if len(v) >= 2]
    single = [v for v in vecs if len(v) == 1]
    contributions: list[np.ndarray] = []
    if multi:
        prevailing = np.vstack(
            [np.asarray(v.probability_at(grid)) for v in multi]
        ).max(axis=0)
        contributions.append(prevailing)
    else:
        prevailing = np.zeros_like(grid)
    for v in single:
        t_s = float(v.times[0])
        p_s = float(v.probabilities[0])
        base_at_knot = float(np.interp(t_s, grid, prevailing))
        shifted = p_s + (prevailing - base_at_knot)
        # No claim before the report's own horizon.
        contributions.append(np.where(grid >= t_s, shifted, -np.inf))
    fused = np.vstack(contributions).max(axis=0)
    fused = np.clip(np.where(np.isfinite(fused), fused, 0.0), 0.0, 1.0)
    fused = np.maximum.accumulate(fused)
    # Collapse any saturated tail to its first point: once the curve
    # hits 1.0 further knots add no information.
    pairs = list(zip(grid.tolist(), fused.tolist()))
    out: list[tuple[float, float]] = []
    for t, p in pairs:
        out.append((t, p))
        if p >= 1.0:
            break
    return PrognosticVector.from_pairs(out)


def noisy_or_envelope(vectors: Iterable[PrognosticVector]) -> PrognosticVector:
    """Ablation alternative: treat sources as independent evidence.

    Fused probability is ``1 − Π(1 − p_i)`` — always at least as
    pessimistic as the conservative envelope, and *more* pessimistic
    whenever two sources each carry partial evidence.  Benched against
    the paper's approach in ``benchmarks/bench_prognostic_fusion.py``.
    """
    vecs = [v for v in vectors if len(v)]
    if not vecs:
        return PrognosticVector.empty()
    grid = _union_grid(vecs)
    curves = np.vstack([np.asarray(v.probability_at(grid)) for v in vecs])
    fused = 1.0 - np.prod(1.0 - curves, axis=0)
    fused = np.maximum.accumulate(np.clip(fused, 0.0, 1.0))
    pairs = []
    for t, p in zip(grid.tolist(), fused.tolist()):
        pairs.append((t, p))
        if p >= 1.0:
            break
    return PrognosticVector.from_pairs(pairs)


class FusedPrognosis:
    """Fused prognostic state for one (object, condition) pair.

    The fused ``vector`` is evaluated *lazily* on first access: the
    envelope over the whole rebased report history is the PDME fusion
    hot spot, and most conclusions flowing through the executive never
    have their curve inspected (only the priority list and browser
    pull it, on demand).  The snapshot is pinned at construction —
    reports ingested later do not leak into an already-issued state.
    """

    __slots__ = (
        "sensed_object_id",
        "machine_condition_id",
        "as_of",
        "report_count",
        "_vector",
        "_thunk",
    )

    def __init__(
        self,
        sensed_object_id: ObjectId,
        machine_condition_id: ObjectId,
        vector: PrognosticVector | None = None,
        as_of: float = 0.0,
        report_count: int = 0,
        *,
        thunk: Callable[[], PrognosticVector] | None = None,
    ) -> None:
        self.sensed_object_id = sensed_object_id
        self.machine_condition_id = machine_condition_id
        self.as_of = as_of
        self.report_count = report_count
        if vector is None and thunk is None:
            vector = PrognosticVector.empty()
        self._vector = vector
        self._thunk = thunk

    @property
    def vector(self) -> PrognosticVector:
        """The fused curve (computed on first access, then pinned)."""
        if self._vector is None:
            assert self._thunk is not None
            self._vector = self._thunk()
            self._thunk = None
        return self._vector

    def time_to_failure(self, probability: float = 0.5) -> float:
        """Estimated seconds until failure probability reaches the
        given level (the §3.3 "time to failure" estimate)."""
        return self.vector.time_to_probability(probability)

    def __repr__(self) -> str:
        return (
            f"FusedPrognosis({self.sensed_object_id!r}, "
            f"{self.machine_condition_id!r}, as_of={self.as_of}, "
            f"report_count={self.report_count})"
        )


class PrognosticFusion:
    """Accumulates prognostic reports per (object, condition).

    Every vector is re-based to the current fusion time before
    combination: a report issued at t0 claiming failure within Δ is,
    at time t1 > t0, a claim about Δ − (t1 − t0).

    The conservative envelope is *not* associative (a single-point
    report level-shifts the prevailing multi-point curve), so exact
    incrementality is impossible without retaining reports.  Instead
    the fusion keeps history and evaluates lazily: :meth:`state` hands
    back a thunk over a pinned (history slice, now) and the computed
    curve is memoized per pair until the next ingest changes the
    history or the query time moves.  :meth:`full_recompute` bypasses
    every cache — the oracle for the equivalence tests.

    Parameters
    ----------
    envelope:
        The combination rule; defaults to the paper's
        :func:`conservative_envelope`.
    """

    def __init__(self, envelope=conservative_envelope) -> None:
        self._envelope = envelope
        self._reports: dict[tuple[ObjectId, ObjectId], list[FailurePredictionReport]] = {}
        #: Per-pair memo: (report_count, now) -> fused vector.  Only
        #: the latest entry is kept; fleets re-query the same (count,
        #: now) snapshot many times between ingests.
        self._vector_cache: dict[
            tuple[ObjectId, ObjectId], tuple[tuple[int, float], PrognosticVector]
        ] = {}

    def ingest(self, report: FailurePredictionReport, now: float | None = None) -> FusedPrognosis:
        """Fuse one prognostic report; returns the updated state.

        ``now`` defaults to the report's own timestamp.
        """
        if len(report.prognostic) == 0:
            raise FusionError("report carries no prognostic vector")
        key = (report.sensed_object_id, report.machine_condition_id)
        self._reports.setdefault(key, []).append(report)
        return self.state(*key, now=now if now is not None else report.timestamp)

    def _fused_vector(
        self,
        key: tuple[ObjectId, ObjectId],
        reports: list[FailurePredictionReport],
        count: int,
        now: float,
    ) -> PrognosticVector:
        cached = self._vector_cache.get(key)
        if cached is not None and cached[0] == (count, now):
            return cached[1]
        rebased = []
        for r in reports[:count]:
            age = now - r.timestamp
            if age < 0:
                # Future-stamped report (time-disordered input, §5.1):
                # treat as effective now rather than rejecting.
                age = 0.0
            rebased.append(r.prognostic.shifted(age))
        fused = self._envelope(rebased) if rebased else PrognosticVector.empty()
        self._vector_cache[key] = ((count, now), fused)
        return fused

    def state(
        self, sensed_object_id: ObjectId, machine_condition_id: ObjectId, now: float
    ) -> FusedPrognosis:
        """Fused prognosis for an (object, condition) pair as of ``now``."""
        key = (sensed_object_id, machine_condition_id)
        # Capture the list object itself: a later reset() unlinks it
        # from the fusion but this snapshot keeps its pinned slice.
        reports = self._reports.get(key)
        if not reports:
            return FusedPrognosis(
                sensed_object_id, machine_condition_id, None, now, 0
            )
        count = len(reports)
        return FusedPrognosis(
            sensed_object_id,
            machine_condition_id,
            None,
            now,
            count,
            thunk=lambda: self._fused_vector(key, reports, count, now),
        )

    def full_recompute(
        self, sensed_object_id: ObjectId, machine_condition_id: ObjectId, now: float
    ) -> FusedPrognosis:
        """Recompute the fused state from the retained history with no
        caching or laziness — the oracle for :meth:`state`."""
        key = (sensed_object_id, machine_condition_id)
        reports = self._reports.get(key, [])
        rebased = []
        for r in reports:
            age = now - r.timestamp
            if age < 0:
                age = 0.0
            rebased.append(r.prognostic.shifted(age))
        fused = self._envelope(rebased) if rebased else PrognosticVector.empty()
        return FusedPrognosis(
            sensed_object_id, machine_condition_id, fused, now, len(reports)
        )

    def conditions_for_object(self, sensed_object_id: ObjectId) -> list[ObjectId]:
        """Machine conditions with prognostic evidence on an object."""
        return [c for (obj, c) in self._reports if obj == sensed_object_id]

    def keys(self) -> list[tuple[ObjectId, ObjectId]]:
        """Every (object, condition) pair with history, insertion order."""
        return list(self._reports.keys())

    def reset(self, sensed_object_id: ObjectId, machine_condition_id: ObjectId) -> None:
        """Forget prognostic history for a pair (after maintenance)."""
        self._reports.pop((sensed_object_id, machine_condition_id), None)
        self._vector_cache.pop((sensed_object_id, machine_condition_id), None)
