"""Temporal reasoning over failure histories (§10.1, third extension).

"Third, temporal reasoning components could be implemented to
scrutinize failure histories and provide better projections of future
faults as they develop."

Two temporal signatures matter for developing faults:

* **episodes** — intermittent conditions come and go; the tracker
  segments a belief trajectory into episodes (belief crossing an
  onset/clear hysteresis band);
* **acceleration** — on a degrading machine the episodes recur faster
  and last longer; the recurrence trend projects when the condition
  becomes continuous (effectively: failed).

The output is a standard §7 prognostic vector, so temporal projections
fuse with everything else through the conservative envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import FusionError
from repro.protocol.prognostic import PrognosticVector


@dataclass(frozen=True)
class Episode:
    """One contiguous period with the condition active."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        """Episode length in seconds."""
        return self.end - self.start


@dataclass
class EpisodeTracker:
    """Segments a (time, belief) stream into condition episodes.

    Hysteresis: an episode opens when belief rises above ``onset`` and
    closes when it falls below ``clear`` (< onset), so noise riding on
    the threshold does not fragment episodes.
    """

    onset: float = 0.5
    clear: float = 0.3
    _episodes: list[Episode] = field(default_factory=list)
    _open_since: float | None = field(default=None)
    _last_time: float = field(default=float("-inf"))
    # Episode-boundary revision: bumped whenever an episode opens or
    # closes; gates the intervals/acceleration memos so the per-sample
    # observe() stays O(1) and queries amortize to O(1) between
    # boundary events.
    _rev: int = field(default=0)
    _iv_cache: tuple[int, np.ndarray] | None = field(default=None)
    _accel_cache: tuple[int, float] | None = field(default=None)

    def __post_init__(self) -> None:
        if not 0.0 < self.clear < self.onset <= 1.0:
            raise FusionError(
                f"need 0 < clear < onset <= 1, got ({self.clear}, {self.onset})"
            )

    def observe(self, time: float, belief: float) -> None:
        """Feed one belief sample (times must be non-decreasing)."""
        if time < self._last_time:
            raise FusionError(f"time went backwards: {time} < {self._last_time}")
        self._last_time = time
        if self._open_since is None and belief >= self.onset:
            self._open_since = time
            self._rev += 1
        elif self._open_since is not None and belief <= self.clear:
            self._episodes.append(Episode(self._open_since, time))
            self._open_since = None
            self._rev += 1

    @property
    def episodes(self) -> list[Episode]:
        """Closed episodes, oldest first."""
        return list(self._episodes)

    @property
    def active(self) -> bool:
        """Is an episode currently open?"""
        return self._open_since is not None

    def intervals(self) -> np.ndarray:
        """Start-to-start recurrence intervals between episodes."""
        if self._iv_cache is not None and self._iv_cache[0] == self._rev:
            return self._iv_cache[1]
        starts = [e.start for e in self._episodes]
        if self._open_since is not None:
            starts.append(self._open_since)
        iv = np.diff(np.asarray(starts, dtype=np.float64))
        self._iv_cache = (self._rev, iv)
        return iv

    def acceleration(self) -> float:
        """Per-recurrence shrink factor of the intervals.

        Fitted as the geometric mean ratio of successive intervals:
        < 1 means episodes recur ever faster (developing fault);
        1.0 means steady; needs >= 2 intervals, else returns 1.0.
        """
        if self._accel_cache is not None and self._accel_cache[0] == self._rev:
            return self._accel_cache[1]
        iv = self.intervals()
        if iv.size < 2 or np.any(iv <= 0):
            accel = 1.0
        else:
            ratios = iv[1:] / iv[:-1]
            accel = float(np.exp(np.mean(np.log(ratios))))
        self._accel_cache = (self._rev, accel)
        return accel

    def project(self, now: float, min_interval: float = 1.0) -> PrognosticVector:
        """Project the recurrence trend into a prognostic vector.

        Sums the geometric series of shrinking intervals until they
        fall below ``min_interval`` (the condition is then effectively
        continuous = functional failure).  Steady or decelerating
        recurrence yields a far-horizon, low-probability vector.
        """
        iv = self.intervals()
        r = self.acceleration()
        if iv.size < 2 or r >= 0.97:
            return PrognosticVector.from_pairs(
                [(180 * 86400.0, 0.05), (720 * 86400.0, 0.15)]
            )
        last_interval = float(iv[-1])
        t = 0.0
        interval = last_interval * r
        steps = 0
        while interval > min_interval and steps < 10_000:
            t += interval
            interval *= r
            steps += 1
        # Bracket the projected saturation time.
        return PrognosticVector.from_pairs(
            [(max(min_interval, 0.5 * t), 0.2), (max(2 * min_interval, t), 0.6),
             (max(4 * min_interval, 1.8 * t), 0.9)]
        )


@dataclass
class TemporalAnalyzer:
    """Per-(object, condition) episode tracking over fused beliefs.

    Wire :meth:`observe_conclusion` to the KF engine's sink; query
    :meth:`projection` for the temporal prognostic of any pair.
    """

    onset: float = 0.5
    clear: float = 0.3
    _trackers: dict[tuple[str, str], EpisodeTracker] = field(default_factory=dict)

    def observe(self, obj: str, condition: str, time: float, belief: float) -> None:
        """Record one fused-belief sample."""
        key = (obj, condition)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = EpisodeTracker(self.onset, self.clear)
            self._trackers[key] = tracker
        tracker.observe(time, belief)

    def tracker(self, obj: str, condition: str) -> EpisodeTracker:
        """The tracker for a pair (created empty if absent)."""
        return self._trackers.setdefault(
            (obj, condition), EpisodeTracker(self.onset, self.clear)
        )

    def projection(self, obj: str, condition: str, now: float) -> PrognosticVector:
        """Temporal prognostic for a pair."""
        return self.tracker(obj, condition).project(now)

    def accelerating(self, threshold: float = 0.9) -> list[tuple[str, str, float]]:
        """Pairs whose episodes recur faster and faster, worst first."""
        out = []
        for (obj, condition), tracker in self._trackers.items():
            a = tracker.acceleration()
            if a < threshold:
                out.append((obj, condition, a))
        out.sort(key=lambda t: t[2])
        return out
