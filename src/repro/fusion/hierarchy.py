"""Multi-level health reasoning (§10.1, first extension).

"First, multi-level data is represented [in] the object-oriented ship
model.  We are not currently exploiting this fully.  For example, we
could reason about the health of a system based on the health of a
constituent part.  Currently, only the parts are tracked."

This module rolls fused part-level state up the OOSM part-of tree: the
health of an assembly is the health of its worst constituent, weighted
by how critical that constituent is, yielding a health score in [0, 1]
per entity at every level (machine → chiller → deck → ship).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ObjectId
from repro.fusion.engine import KnowledgeFusionEngine
from repro.oosm.model import ShipModel


@dataclass(frozen=True)
class HealthAssessment:
    """Health of one entity, with the part chain that explains it.

    Attributes
    ----------
    entity_id:
        The assessed entity.
    health:
        1.0 = no evidence of trouble; 0.0 = confirmed severe failure.
    worst_part:
        The constituent (possibly itself) driving the score.
    worst_condition:
        The machine condition on that constituent (None if healthy).
    suspect_parts:
        Every direct-or-transitive part with health below 1.
    """

    entity_id: ObjectId
    health: float
    worst_part: ObjectId
    worst_condition: ObjectId | None
    suspect_parts: dict[ObjectId, float] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """No evidence of any problem anywhere below this entity."""
        return self.health >= 0.999


def part_health(
    engine: KnowledgeFusionEngine, entity_id: ObjectId
) -> tuple[float, ObjectId | None]:
    """Health of one part from its fused diagnostic state.

    Health = 1 − max over groups of (belief × (0.5 + 0.5·severity)):
    a fully-believed, fully-severe condition zeroes the part's health;
    a believed-but-mild one costs half.
    Returns (health, worst condition id or None).
    """
    worst = 0.0
    worst_condition: ObjectId | None = None
    for state in engine.diagnostic.states_for_object(entity_id):
        top = state.top()
        if top is None:
            continue
        condition, belief = top
        impact = belief * (0.5 + 0.5 * state.severity)
        if impact > worst:
            worst = impact
            worst_condition = condition
    return 1.0 - min(1.0, worst), worst_condition


@dataclass
class HealthRollup:
    """Computes system-level health over the OOSM part-of tree.

    Parameters
    ----------
    model:
        The ship model (structure source).
    engine:
        The fusion engine (evidence source).
    criticality:
        Optional per-entity weights in (0, 1]: how much a constituent's
        ill health degrades its parent (default 1.0 — a dead part makes
        the assembly dead).
    """

    model: ShipModel
    engine: KnowledgeFusionEngine
    criticality: dict[ObjectId, float] = field(default_factory=dict)

    def _weight(self, entity_id: ObjectId) -> float:
        w = self.criticality.get(entity_id, 1.0)
        return min(1.0, max(0.0, w))

    def assess(self, entity_id: ObjectId) -> HealthAssessment:
        """Assess an entity from its own state and all its parts."""
        self.model.get(entity_id)  # existence check
        members = {entity_id} | self.model.parts_closure_ids(entity_id)
        worst_health = 1.0
        worst_part = entity_id
        worst_condition: ObjectId | None = None
        suspects: dict[ObjectId, float] = {}
        for part in members:
            h, condition = part_health(self.engine, part)
            if h < 1.0:
                # Criticality discounts how far a sick part drags the
                # assembly: effective health = 1 - w * (1 - h).
                effective = 1.0 - self._weight(part) * (1.0 - h)
                suspects[part] = h
                if effective < worst_health:
                    worst_health = effective
                    worst_part = part
                    worst_condition = condition
        return HealthAssessment(
            entity_id=entity_id,
            health=worst_health,
            worst_part=worst_part,
            worst_condition=worst_condition,
            suspect_parts=suspects,
        )

    def ship_summary(self, ship_id: ObjectId) -> list[HealthAssessment]:
        """Assessments for the ship and each of its direct subsystems,
        worst first — the multi-level view §10.1 asks for."""
        out = [self.assess(ship_id)]
        for child in self.model.related_in(ship_id, "part-of"):
            out.append(self.assess(child))
            for grandchild in self.model.related_in(child, "part-of"):
                out.append(self.assess(grandchild))
        out.sort(key=lambda a: a.health)
        return out
