"""§5 Knowledge Fusion — the paper's central contribution.

Diagnostic fusion uses Dempster-Shafer rules of evidence over *logical
failure groups*; prognostic fusion combines (time, probability) vectors
with a conservative envelope.  :class:`KnowledgeFusionEngine` wires
both to the OOSM event stream.
"""

from repro.fusion.dempster_shafer import (
    MassFunction,
    combine,
    combine_many,
    conflict,
)
from repro.fusion.diagnostic import DiagnosticFusion, FusedDiagnosis
from repro.fusion.groups import GroupRegistry, LogicalGroup
from repro.fusion.prognostic import (
    PrognosticFusion,
    conservative_envelope,
    noisy_or_envelope,
)
from repro.fusion.engine import KnowledgeFusionEngine
from repro.fusion.bayes import BayesDiagnosticFusion, BayesNet, learn_source_model
from repro.fusion.hierarchy import HealthRollup
from repro.fusion.spatial import (
    flow_contamination_candidates,
    transmitted_vibration_candidates,
)
from repro.fusion.temporal import EpisodeTracker, TemporalAnalyzer
from repro.fusion.survival import (
    LifeRecord,
    WeibullFit,
    fit_weibull,
    kaplan_meier,
    survival_refined_prognostic,
)

__all__ = [
    "EpisodeTracker",
    "TemporalAnalyzer",
    "BayesDiagnosticFusion",
    "BayesNet",
    "learn_source_model",
    "HealthRollup",
    "flow_contamination_candidates",
    "transmitted_vibration_candidates",
    "LifeRecord",
    "WeibullFit",
    "fit_weibull",
    "kaplan_meier",
    "survival_refined_prognostic",
    "MassFunction",
    "combine",
    "combine_many",
    "conflict",
    "DiagnosticFusion",
    "FusedDiagnosis",
    "GroupRegistry",
    "LogicalGroup",
    "PrognosticFusion",
    "conservative_envelope",
    "noisy_or_envelope",
    "KnowledgeFusionEngine",
]
