"""SBFR as a knowledge source (§6.3).

"SBFR embedded in the DC will take as input the raw sensor data and the
output of other algorithms ... and perform trending analysis, feature
extraction, and some diagnostics and prognostics."

This adapter trends process channels per *sensed object*: each object
gets its own (level-alarm → count-threshold) machine pair per watch, so
a fouling condenser on one machine cannot pollute the trend state of
its neighbours on the same DC.  While only the standard watch pairs are
running, all objects execute on the vectorized
:class:`~repro.sbfr.batch.SbfrWatchGrid` — one numpy pass per scan
instead of ``2 * n_watches * n_objects`` AST walks.  The moment a
closer-look machine is downloaded (§6.3), every object is migrated —
state intact — onto a generic :class:`~repro.sbfr.interpreter.SbfrSystem`
that can host arbitrary specs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SourceContext
from repro.algorithms.dli.severity import prognostic_from_grade, score_to_grade
from repro.common.errors import MprosError, SbfrError
from repro.common.ids import ObjectId
from repro.protocol.report import FailurePredictionReport
from repro.sbfr.batch import SbfrWatchGrid
from repro.sbfr.interpreter import SbfrSystem
from repro.sbfr.library import count_threshold_machine, level_alarm_machine


@dataclass(frozen=True)
class SbfrWatch:
    """One monitored condition: a process channel and its alarm level.

    Attributes
    ----------
    channel:
        Process-variable name to watch.
    threshold:
        Alarm level (crossings must be *sustained*).
    condition_id:
        Machine condition asserted when the layered machine fires.
    invert:
        Watch for the value dropping *below* threshold instead.
    severity:
        Severity reported when fired.
    """

    channel: str
    threshold: float
    condition_id: str
    invert: bool = False
    severity: float = 0.6


def default_chiller_watches() -> tuple[SbfrWatch, ...]:
    """Trend watches on the chiller process channels."""
    return (
        SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),
        SbfrWatch("cond_pressure_kpa", 1120.0, "mc:condenser-fouling"),
        SbfrWatch("oil_pressure_kpa", 210.0, "mc:oil-pressure-low", invert=True),
        SbfrWatch("oil_temp_c", 63.0, "mc:oil-contamination"),
        SbfrWatch("chw_supply_temp_c", 9.0, "mc:evaporator-fouling"),
    )


def default_turbine_watches() -> tuple[SbfrWatch, ...]:
    """Trend watches on the gas-turbine (CODLAG) process channels.

    Thresholds sit between the healthy 0.9-load operating point
    (:data:`repro.plant.turbine.TURBINE_NOMINALS`) and the fully
    developed fault signature, with at least ~5 sigma of sensor-noise
    margin on either side so the layered hold/repeat machines trend
    real excursions, not noise.
    """
    return (
        SbfrWatch("egt_c", 640.0, "mc:turbine-blade-erosion"),
        SbfrWatch(
            "compressor_discharge_kpa", 890.0, "mc:compressor-fouling", invert=True
        ),
        SbfrWatch("fuel_flow_kg_s", 1.22, "mc:fuel-metering-drift"),
        SbfrWatch(
            "lube_oil_pressure_kpa", 240.0, "mc:oil-pressure-low", invert=True
        ),
        SbfrWatch("lube_oil_temp_c", 78.0, "mc:oil-contamination"),
    )


class SbfrKnowledgeSource:
    """State-based feature recognition over process snapshots.

    Each watch gets a level-alarm machine (hold = ``hold_cycles``) and
    a counter machine that fires after ``repeat_count`` alarms — the
    §6.3 layered architecture.  Trend state is kept *per sensed object*
    and persists across ``analyze`` calls: each call feeds exactly one
    new snapshot (one SBFR cycle) to that object's machines.
    """

    def __init__(
        self,
        watches: tuple[SbfrWatch, ...] | None = None,
        knowledge_source_id: ObjectId = "ks:sbfr",
        hold_cycles: int = 2,
        repeat_count: int = 3,
    ) -> None:
        self.knowledge_source_id = knowledge_source_id
        self.watches = watches if watches is not None else default_chiller_watches()
        if not self.watches:
            raise MprosError("need at least one watch")
        self.hold_cycles = hold_cycles
        self.repeat_count = repeat_count
        channels = [w.channel for w in self.watches]
        if len(set(channels)) != len(channels):
            raise MprosError("duplicate watch channels")
        self._channels = channels
        self._chan_index = {c: i for i, c in enumerate(channels)}
        # Inverted watches negate threshold and sample, so every
        # machine looks for "above threshold".
        self._signs = np.array(
            [-1.0 if w.invert else 1.0 for w in self.watches]
        )
        self._grid = SbfrWatchGrid(
            self._signs * np.array([w.threshold for w in self.watches]),
            hold_cycles=hold_cycles,
            repeat_count=repeat_count,
        )
        self._rows: dict[ObjectId, int] = {}
        # Downloaded "closer look" machines, in installation order.
        self._custom_specs: list[tuple[object, ObjectId, float]] = []
        # Populated on the first closer-look download; None means every
        # object still runs on the vectorized grid.
        self._systems: dict[ObjectId, SbfrSystem] | None = None

    # -- closer-look downloads --------------------------------------------
    def install_machine(
        self, spec, condition_id: ObjectId, severity: float = 0.6
    ) -> int:
        """Install a downloaded machine (§6.3's 'closer look').

        "Under control of the System Executive running in the PDME ...
        new finite-state machines may be downloaded into the smart
        sensor.  This will allow the behavior of the sensor to adapt to
        its data" — the machine's input channel indices refer to this
        source's watch-channel order; when it raises its status bit, a
        report for ``condition_id`` is emitted and the bit is consumed.
        Every sensed object of this source gets its own instance of the
        machine (trend state is per object).

        Returns the installed machine's index.  The spec's channel /
        local / peer references are validated against this system
        before installation; a mis-authored machine is rejected here
        (surfacing as an RPC error to the downloading PDME) rather
        than crashing interpreter cycles later.
        """
        from repro.analysis.sbfr_verifier import verify_machine
        from repro.sbfr.spec import validate_references

        n_machines = 2 * len(self.watches) + len(self._custom_specs) + 1
        validate_references(
            spec, n_channels=len(self._channels), n_machines=n_machines
        )
        idx = n_machines - 1
        errors = [
            d
            for d in verify_machine(
                spec,
                self_index=idx,
                n_channels=len(self._channels),
                n_machines=n_machines,
            )
            if d.severity.name == "ERROR"
        ]
        if errors:
            raise SbfrError(
                "machine failed static verification: "
                + "; ".join(d.render() for d in errors)
            )
        self._custom_specs.append((spec, condition_id, float(severity)))
        if self._systems is None:
            # Promote every grid row onto the general interpreter.
            self._systems = {
                oid: self._build_system(row) for oid, row in self._rows.items()
            }
        else:
            for sys_ in self._systems.values():
                sys_.add_machine(spec)
        return idx

    def deployed_specs(self) -> list:
        """Every machine spec this source deploys, in index order.

        The watch pairs come first (level alarm at ``2*i``, its counter
        at ``2*i + 1``), then downloaded closer-look machines in
        installation order — exactly the layout of the per-object
        interpreters.  This is the set ``mpros verify`` checks for the
        default DC deployment.
        """
        specs = []
        for i, w in enumerate(self.watches):
            thr = -w.threshold if w.invert else w.threshold
            specs.append(
                level_alarm_machine(
                    channel=i, threshold=thr, hold_cycles=self.hold_cycles
                )
            )
            specs.append(
                count_threshold_machine(
                    watched_machine=2 * i, count=self.repeat_count
                )
            )
        specs.extend(spec for spec, _, _ in self._custom_specs)
        return specs

    def _build_system(self, row: int | None) -> SbfrSystem:
        """A scalar SbfrSystem for one object, seeded from grid ``row``
        (None builds a fresh one for an object first seen after the
        closer-look download)."""
        sys_ = SbfrSystem(channels=list(self._channels))
        for spec in self.deployed_specs():
            sys_.add_machine(spec)
        if row is not None:
            g = self._grid
            for i in range(len(self.watches)):
                level = sys_.states[2 * i]
                level.state = int(g.lstate[row, i])
                level.status = int(g.lstatus[row, i])
                level.entered_cycle = int(g.lentered[row, i])
                counter = sys_.states[2 * i + 1]
                counter.state = int(g.cstate[row, i])
                counter.status = int(g.cstatus[row, i])
                counter.entered_cycle = int(g.centered[row, i])
                counter.locals[0] = float(g.ccount[row, i])
            sys_.adopt_inputs(g.inputs[row], int(g.cycles[row]))
        return sys_

    # -- analysis ----------------------------------------------------------
    def _signed_sample(
        self, process: dict[str, float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(values, present) arrays over the watch channels; values are
        sign-adjusted so inverted watches read as 'above'."""
        w = len(self.watches)
        values = np.zeros(w)
        present = np.zeros(w, dtype=bool)
        for i, watch in enumerate(self.watches):
            v = process.get(watch.channel)
            if v is not None:
                values[i] = self._signs[i] * float(v)
                present[i] = True
        return values, present

    def _watch_report(
        self, w: SbfrWatch, ctx: SourceContext
    ) -> FailurePredictionReport:
        grade = score_to_grade(w.severity)
        return FailurePredictionReport(
            knowledge_source_id=self.knowledge_source_id,
            sensed_object_id=ctx.sensed_object_id,
            machine_condition_id=w.condition_id,
            severity=w.severity,
            belief=0.7,
            timestamp=ctx.timestamp,
            dc_id=ctx.dc_id,
            explanation=(
                f"SBFR: {self.repeat_count}+ sustained excursions of "
                f"{w.channel} past {w.threshold}"
            ),
            prognostic=prognostic_from_grade(grade),
        )

    def _custom_report(
        self, condition_id: ObjectId, severity: float, ctx: SourceContext
    ) -> FailurePredictionReport:
        grade = score_to_grade(severity)
        return FailurePredictionReport(
            knowledge_source_id=self.knowledge_source_id,
            sensed_object_id=ctx.sensed_object_id,
            machine_condition_id=condition_id,
            severity=severity,
            belief=0.7,
            timestamp=ctx.timestamp,
            dc_id=ctx.dc_id,
            explanation="SBFR: downloaded closer-look machine fired",
            prognostic=prognostic_from_grade(grade),
        )

    def _analyze_scalar(
        self, ctx: SourceContext, values: np.ndarray, present: np.ndarray
    ) -> list[FailurePredictionReport]:
        """One cycle on the per-object interpreter (closer-look mode)."""
        assert self._systems is not None
        sys_ = self._systems.get(ctx.sensed_object_id)
        if sys_ is None:
            sys_ = self._build_system(None)
            self._systems[ctx.sensed_object_id] = sys_
        sample = {
            self.watches[i].channel: values[i] for i in np.flatnonzero(present)
        }
        sys_.cycle(sample)
        reports: list[FailurePredictionReport] = []
        base = 2 * len(self.watches)
        for j, (_, condition_id, severity) in enumerate(self._custom_specs):
            idx = base + j
            if sys_.status(idx) & 1:
                reports.append(self._custom_report(condition_id, severity, ctx))
                sys_.set_status(idx, 0)
        for i, w in enumerate(self.watches):
            counter_idx = 2 * i + 1
            if sys_.status(counter_idx) & 1:
                reports.append(self._watch_report(w, ctx))
                # Consume the flag so the report fires once per episode.
                sys_.set_status(counter_idx, 0)
        return reports

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Feed one snapshot; report every newly fired condition."""
        if not ctx.process:
            return []
        values, present = self._signed_sample(ctx.process)
        if not present.any():
            return []
        if self._systems is not None:
            return self._analyze_scalar(ctx, values, present)
        row = self._rows.get(ctx.sensed_object_id)
        if row is None:
            row = self._grid.add_row()
            self._rows[ctx.sensed_object_id] = row
        cstatus = self._grid.cycle_rows(
            np.array([row]), values[np.newaxis, :], present[np.newaxis, :]
        )[0]
        reports: list[FailurePredictionReport] = []
        for i, w in enumerate(self.watches):
            if cstatus[i] & 1:
                reports.append(self._watch_report(w, ctx))
                self._grid.consume(row, i)
        return reports

    def analyze_batch(
        self, ctxs: list[SourceContext]
    ) -> list[list[FailurePredictionReport]]:
        """Feed one snapshot per context, advancing all their objects'
        machines in a single vectorized grid pass.

        Equivalent to ``[self.analyze(c) for c in ctxs]`` (each context
        still counts as exactly one cycle for its object); the batched
        path just moves the per-object loop into numpy.  Falls back to
        the scalar loop in closer-look mode or when a batch references
        the same object twice.
        """
        eligible: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        out: list[list[FailurePredictionReport]] = [[] for _ in ctxs]
        if self._systems is None:
            rows_seen: set[int] = set()
            duplicate = False
            for pos, ctx in enumerate(ctxs):
                if not ctx.process:
                    continue
                values, present = self._signed_sample(ctx.process)
                if not present.any():
                    continue
                row = self._rows.get(ctx.sensed_object_id)
                if row is None:
                    row = self._grid.add_row()
                    self._rows[ctx.sensed_object_id] = row
                if row in rows_seen:
                    duplicate = True
                    break
                rows_seen.add(row)
                eligible.append((pos, row, values, present))
            if not duplicate:
                if not eligible:
                    return out
                rows = np.array([e[1] for e in eligible])
                values = np.stack([e[2] for e in eligible])
                present = np.stack([e[3] for e in eligible])
                cstatus = self._grid.cycle_rows(rows, values, present)
                for k, (pos, row, _, _) in enumerate(eligible):
                    ctx = ctxs[pos]
                    for i, w in enumerate(self.watches):
                        if cstatus[k, i] & 1:
                            out[pos].append(self._watch_report(w, ctx))
                            self._grid.consume(row, i)
                return out
        return [self.analyze(ctx) for ctx in ctxs]

    # -- inspection / control ----------------------------------------------
    def channel_index(self, name: str) -> int:
        """Index of a watch channel (for authoring downloadable
        machines against this source's channel table)."""
        try:
            return self._chan_index[name]
        except KeyError:
            raise SbfrError(f"unknown channel {name!r}") from None

    def channel_names(self) -> list[str]:
        """The watch-channel table, in index order."""
        return list(self._channels)

    def reset(self) -> None:
        """Forget all trend state (e.g. after maintenance)."""
        self._grid.reset()
        if self._systems is not None:
            for sys_ in self._systems.values():
                sys_.reset()
