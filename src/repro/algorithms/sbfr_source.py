"""SBFR as a knowledge source (§6.3).

"SBFR embedded in the DC will take as input the raw sensor data and the
output of other algorithms ... and perform trending analysis, feature
extraction, and some diagnostics and prognostics."

This adapter runs a persistent :class:`~repro.sbfr.interpreter.SbfrSystem`
of sustained-level alarm machines over the process channels, with a
layered count-threshold machine per condition: repeated alarms (the
trend, not one excursion) produce a §7 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import SourceContext
from repro.algorithms.dli.severity import prognostic_from_grade, score_to_grade
from repro.common.errors import MprosError
from repro.common.ids import ObjectId
from repro.protocol.report import FailurePredictionReport
from repro.sbfr.interpreter import SbfrSystem
from repro.sbfr.library import count_threshold_machine, level_alarm_machine


@dataclass(frozen=True)
class SbfrWatch:
    """One monitored condition: a process channel and its alarm level.

    Attributes
    ----------
    channel:
        Process-variable name to watch.
    threshold:
        Alarm level (crossings must be *sustained*).
    condition_id:
        Machine condition asserted when the layered machine fires.
    invert:
        Watch for the value dropping *below* threshold instead.
    severity:
        Severity reported when fired.
    """

    channel: str
    threshold: float
    condition_id: str
    invert: bool = False
    severity: float = 0.6


def default_chiller_watches() -> tuple[SbfrWatch, ...]:
    """Trend watches on the chiller process channels."""
    return (
        SbfrWatch("superheat_c", 10.0, "mc:refrigerant-leak"),
        SbfrWatch("cond_pressure_kpa", 1120.0, "mc:condenser-fouling"),
        SbfrWatch("oil_pressure_kpa", 210.0, "mc:oil-pressure-low", invert=True),
        SbfrWatch("oil_temp_c", 63.0, "mc:oil-contamination"),
        SbfrWatch("chw_supply_temp_c", 9.0, "mc:evaporator-fouling"),
    )


class SbfrKnowledgeSource:
    """State-based feature recognition over process snapshots.

    Each watch gets a level-alarm machine (hold = ``hold_cycles``) and
    a counter machine that fires after ``repeat_count`` alarms — the
    §6.3 layered architecture.  State persists across ``analyze``
    calls: each call feeds exactly one new snapshot (one SBFR cycle).
    """

    def __init__(
        self,
        watches: tuple[SbfrWatch, ...] | None = None,
        knowledge_source_id: ObjectId = "ks:sbfr",
        hold_cycles: int = 2,
        repeat_count: int = 3,
    ) -> None:
        self.knowledge_source_id = knowledge_source_id
        self.watches = watches if watches is not None else default_chiller_watches()
        if not self.watches:
            raise MprosError("need at least one watch")
        self.hold_cycles = hold_cycles
        self.repeat_count = repeat_count
        channels = [w.channel for w in self.watches]
        if len(set(channels)) != len(channels):
            raise MprosError("duplicate watch channels")
        self._system = SbfrSystem(channels=channels)
        self._counter_index: dict[SbfrWatch, int] = {}
        # Downloaded "closer look" machines: index -> (condition, severity).
        self._custom: dict[int, tuple[ObjectId, float]] = {}
        for i, w in enumerate(self.watches):
            # Inverted watches negate the sample, so the level machine
            # always looks for "above threshold".
            thr = -w.threshold if w.invert else w.threshold
            alarm_idx = self._system.add_machine(
                level_alarm_machine(channel=i, threshold=thr, hold_cycles=hold_cycles)
            )
            counter_idx = self._system.add_machine(
                count_threshold_machine(watched_machine=alarm_idx, count=repeat_count)
            )
            self._counter_index[w] = counter_idx

    def install_machine(
        self, spec, condition_id: ObjectId, severity: float = 0.6
    ) -> int:
        """Install a downloaded machine (§6.3's 'closer look').

        "Under control of the System Executive running in the PDME ...
        new finite-state machines may be downloaded into the smart
        sensor.  This will allow the behavior of the sensor to adapt to
        its data" — the machine's input channel indices refer to this
        source's watch-channel order; when it raises its status bit, a
        report for ``condition_id`` is emitted and the bit is consumed.

        Returns the installed machine's index.  The spec's channel /
        local / peer references are validated against this system
        before installation; a mis-authored machine is rejected here
        (surfacing as an RPC error to the downloading PDME) rather
        than crashing interpreter cycles later.
        """
        from repro.sbfr.spec import validate_references

        validate_references(
            spec,
            n_channels=len(self._system.channels),
            n_machines=len(self._system.machines) + 1,
        )
        idx = self._system.add_machine(spec)
        self._custom[idx] = (condition_id, float(severity))
        return idx

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Feed one snapshot; report every newly fired condition."""
        if not ctx.process:
            return []
        sample: dict[str, float] = {}
        for w in self.watches:
            if w.channel in ctx.process:
                value = float(ctx.process[w.channel])
                sample[w.channel] = -value if w.invert else value
        if not sample:
            return []
        self._system.cycle(sample)
        reports: list[FailurePredictionReport] = []
        for idx, (condition_id, severity) in self._custom.items():
            if self._system.status(idx) & 1:
                grade = score_to_grade(severity)
                reports.append(
                    FailurePredictionReport(
                        knowledge_source_id=self.knowledge_source_id,
                        sensed_object_id=ctx.sensed_object_id,
                        machine_condition_id=condition_id,
                        severity=severity,
                        belief=0.7,
                        timestamp=ctx.timestamp,
                        dc_id=ctx.dc_id,
                        explanation="SBFR: downloaded closer-look machine fired",
                        prognostic=prognostic_from_grade(grade),
                    )
                )
                self._system.set_status(idx, 0)
        for w, counter_idx in self._counter_index.items():
            if self._system.status(counter_idx) & 1:
                grade = score_to_grade(w.severity)
                reports.append(
                    FailurePredictionReport(
                        knowledge_source_id=self.knowledge_source_id,
                        sensed_object_id=ctx.sensed_object_id,
                        machine_condition_id=w.condition_id,
                        severity=w.severity,
                        belief=0.7,
                        timestamp=ctx.timestamp,
                        dc_id=ctx.dc_id,
                        explanation=(
                            f"SBFR: {self.repeat_count}+ sustained excursions of "
                            f"{w.channel} past {w.threshold}"
                        ),
                        prognostic=prognostic_from_grade(grade),
                    )
                )
                # Consume the flag so the report fires once per episode.
                self._system.set_status(counter_idx, 0)
        return reports

    def channel_index(self, name: str) -> int:
        """Index of a watch channel (for authoring downloadable
        machines against this source's channel table)."""
        return self._system.channel_index(name)

    def channel_names(self) -> list[str]:
        """The watch-channel table, in index order."""
        return list(self._system.channels)

    def reset(self) -> None:
        """Forget all trend state (e.g. after maintenance)."""
        self._system.reset()
