"""The four DC-resident diagnostic/prognostic algorithm suites (§1.1).

1. :mod:`repro.algorithms.dli` — frame-based vibration expert system.
2. :mod:`repro.algorithms.sbfr_source` — SBFR adapter (trending and
   time-correlated events on process data).
3. :mod:`repro.algorithms.wnn` — wavelet-neural-network classifier for
   transitory phenomena.
4. :mod:`repro.algorithms.fuzzy` — fuzzy-logic diagnostics/prognostics
   on non-vibration data.

All of them emit §7 failure-prediction reports through the common
:class:`~repro.algorithms.base.KnowledgeSource` interface.
"""

from repro.algorithms.base import KnowledgeSource, SourceContext

__all__ = ["KnowledgeSource", "SourceContext"]
