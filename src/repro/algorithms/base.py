"""The common knowledge-source interface.

§7.1: "One of the goals of the MPROS system is to encourage the
incorporation of many diverse expert systems supplying diagnostic and
prognostic conclusions based upon similar, overlapping or entirely
disjoint sensor readings."  Every algorithm suite therefore consumes
one :class:`SourceContext` (whatever slice of it it cares about) and
returns §7 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.ids import ObjectId
from repro.dsp.batch import SpectralView
from repro.plant.rotating import MachineKinematics
from repro.protocol.report import FailurePredictionReport


@dataclass
class SourceContext:
    """Everything a knowledge source may draw on for one analysis pass.

    Attributes
    ----------
    sensed_object_id:
        The machine under analysis (§7: SensedObjectID).
    timestamp:
        Effective time of the measurements, simulated seconds.
    waveform / sample_rate:
        Latest vibration block (None for process-only passes).
    process:
        Latest scalar process variables by name.
    kinematics:
        The machine's frequency content (speeds, gears, bearings).
    history:
        Optional recent process snapshots (oldest first) for trending.
    dc_id:
        The data concentrator issuing the analysis.
    spectra:
        Optional precomputed spectral view over ``waveform`` (shared
        with the other machines of the same scan when the DC runs in
        batched mode).  Sources that need spectra should prefer it —
        transforms are computed once per scan instead of once per
        source per machine.
    """

    sensed_object_id: ObjectId
    timestamp: float
    waveform: np.ndarray | None = None
    sample_rate: float = 0.0
    process: dict[str, float] = field(default_factory=dict)
    kinematics: MachineKinematics | None = None
    history: list[dict[str, float]] = field(default_factory=list)
    dc_id: ObjectId = ""
    spectra: SpectralView | None = None

    @property
    def load(self) -> float:
        """Load fraction inferred from the pre-rotation vane position
        (the §6.1 'available load indicator'), defaulting to full load."""
        prv = self.process.get("prv_position_pct")
        if prv is None:
            return 1.0
        return float(np.clip(prv / 100.0, 0.0, 1.0))


@runtime_checkable
class KnowledgeSource(Protocol):
    """A diagnostic/prognostic algorithm suite."""

    #: Unique MPROS object id of this knowledge source (§7 KS ID).
    knowledge_source_id: ObjectId

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Analyze one context; return zero or more §7 reports."""
        ...  # pragma: no cover - protocol signature
