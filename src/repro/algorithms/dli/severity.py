"""Severity grading and the elementary prognostic (§6.1).

"An elementary level of machinery prognostics has always been provided
by the DLI expert system which ... has provided a numerical severity
score along with the fault diagnosis.  This numerical score is
interpreted through empirical methods which map it into four gradient
categories ... Slight, Moderate, Serious and Extreme and correspond to
expected lengths of time to failure described loosely as: no
foreseeable failure, failure in months, weeks, and days of operation."
"""

from __future__ import annotations

from repro.common.units import days, months, weeks
from repro.protocol.prognostic import PrognosticVector
from repro.protocol.severity import SeverityGrade, grade_from_score


def score_to_grade(score: float) -> SeverityGrade:
    """Map the numeric severity score to its gradient category."""
    return grade_from_score(score)


#: Per-grade prognostic vector templates: the loose "months / weeks /
#: days" horizons expressed as (time, probability) knots.
_GRADE_VECTORS: dict[SeverityGrade, tuple[tuple[float, float], ...]] = {
    # "no foreseeable failure": low probability even far out.
    SeverityGrade.SLIGHT: ((months(6.0), 0.02), (months(24.0), 0.10)),
    # "failure in months"
    SeverityGrade.MODERATE: ((months(1.0), 0.10), (months(3.0), 0.50), (months(6.0), 0.90)),
    # "failure in weeks"
    SeverityGrade.SERIOUS: ((weeks(1.0), 0.15), (weeks(2.0), 0.50), (weeks(6.0), 0.95)),
    # "failure in days"
    SeverityGrade.EXTREME: ((days(1.0), 0.25), (days(3.0), 0.60), (days(10.0), 0.97)),
}


def prognostic_from_grade(grade: SeverityGrade) -> PrognosticVector:
    """The elementary DLI prognostic vector for a severity grade.

    >>> v = prognostic_from_grade(SeverityGrade.SERIOUS)
    >>> from repro.common.units import weeks
    >>> v.time_to_probability(0.5) == weeks(2.0)
    True
    """
    return PrognosticVector.from_pairs(list(_GRADE_VECTORS[grade]))


def prognostic_from_score(score: float) -> PrognosticVector:
    """Convenience: grade the score, then emit its vector."""
    return prognostic_from_grade(score_to_grade(score))
