"""Frame-based rules.

A *frame* packages one diagnosis: which machine condition it asserts,
how to measure its signature strength from the averaged spectrum (and
waveform scalars), and how process parameters *sensitize* it.  §6.1's
worked example: "the DLI expert system rule for bearing looseness can
be sensitized to available load indicators (such as pre-rotation vane
position) in order to ensure that a false positive bearing looseness
call is not made when the compressor enters a low load period of
operation."

Sensitization is a multiplicative threshold adjustment: the rule's raw
strength is divided by ``sensitizer(process) >= 1`` before scoring, so
conditions expected to look noisier in the current regime must show
proportionally more signature to alarm.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.common.errors import MprosError
from repro.dsp.batch import SpectralView
from repro.dsp.fft import Spectrum
from repro.plant.rotating import MachineKinematics

#: Measures signature strength (>= 0; 1.0 ≈ full-scale defect).  May
#: optionally accept a fifth :class:`SpectralView` argument to share
#: cached transforms with the other frames of the same analysis.
StrengthFn = Callable[[Spectrum, np.ndarray, float, MachineKinematics], float]
#: Maps process variables to a threshold multiplier (>= 1).
SensitizerFn = Callable[[dict[str, float]], float]


@lru_cache(maxsize=256)
def _accepts_view(fn: Callable) -> bool:
    """Whether a strength function takes the optional SpectralView arg.

    Inspected once per function so legacy four-argument rules (user
    rulebases, tests) keep working unmodified.
    """
    try:
        params = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    if any(p.kind == p.VAR_POSITIONAL for p in params):
        return True
    positional = [
        p
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 5


@dataclass(frozen=True)
class RuleResult:
    """Outcome of evaluating one frame."""

    condition_id: str
    score: float            # severity score in [0, 1]
    raw_strength: float     # before sensitization, for explanations
    sensitization: float    # the divisor that was applied
    explanation: str

    @property
    def fired(self) -> bool:
        """Whether the rule considers the condition present at all."""
        return self.score > 0.0


@dataclass(frozen=True)
class RuleFrame:
    """One frame-based diagnostic rule.

    Attributes
    ----------
    condition_id:
        The machine condition this frame diagnoses (§7 id).
    strength:
        Signature-strength measurement over (spectrum, waveform,
        sample_rate, kinematics).
    threshold:
        Minimum *sensitized* strength that fires the rule; below it the
        score is 0 (no report).
    full_scale:
        Sensitized strength mapped to score 1.0; scores scale linearly
        between threshold and full scale.
    sensitizers:
        Process-parameter threshold adjustments, each returning a
        multiplier >= 1.
    describe:
        Human-readable template for the §7 Explanation field; receives
        the raw strength.
    """

    condition_id: str
    strength: StrengthFn
    threshold: float = 0.1
    full_scale: float = 1.0
    sensitizers: tuple[SensitizerFn, ...] = ()
    describe: str = "{condition}: signature strength {strength:.3f}"

    def __post_init__(self) -> None:
        if not self.condition_id:
            raise MprosError("rule frame needs a condition id")
        if not 0 <= self.threshold < self.full_scale:
            raise MprosError(
                f"need 0 <= threshold < full_scale, got ({self.threshold}, {self.full_scale})"
            )

    def evaluate(
        self,
        spectrum: Spectrum,
        waveform: np.ndarray,
        sample_rate: float,
        kinematics: MachineKinematics,
        process: dict[str, float],
        spectra: SpectralView | None = None,
    ) -> RuleResult:
        """Apply the frame; returns a result (score 0 if not fired).

        ``spectra`` is an optional shared view over the waveform's
        cached transforms; frames whose strength function accepts it
        avoid recomputing the full-resolution spectrum per frame.
        """
        if spectra is not None and _accepts_view(self.strength):
            raw = float(
                self.strength(spectrum, waveform, sample_rate, kinematics, spectra)
            )
        else:
            raw = float(self.strength(spectrum, waveform, sample_rate, kinematics))
        if raw < 0:
            raw = 0.0
        divisor = 1.0
        for s in self.sensitizers:
            m = float(s(process))
            if m < 1.0:
                raise MprosError(
                    f"sensitizer for {self.condition_id} returned {m} < 1"
                )
            divisor *= m
        adjusted = raw / divisor
        if adjusted < self.threshold:
            score = 0.0
        else:
            score = (adjusted - self.threshold) / (self.full_scale - self.threshold)
            score = float(np.clip(score, 0.0, 1.0))
            # A fired rule always reports at least a sliver of severity.
            score = max(score, 0.05)
        return RuleResult(
            condition_id=self.condition_id,
            score=score,
            raw_strength=raw,
            sensitization=divisor,
            explanation=self.describe.format(condition=self.condition_id, strength=raw),
        )


def load_sensitizer(
    gain: float = 1.5, indicator: str = "prv_position_pct"
) -> SensitizerFn:
    """The §6.1 low-load sensitization.

    At full load the multiplier is 1 (no adjustment); as the
    pre-rotation vanes close the threshold rises up to ``1 + gain``,
    matching the extra vibration an unloaded compressor shows.
    """

    def sensitize(process: dict[str, float]) -> float:
        prv = process.get(indicator)
        if prv is None:
            return 1.0
        load = float(np.clip(prv / 100.0, 0.0, 1.0))
        return 1.0 + gain * (1.0 - load)

    return sensitize
