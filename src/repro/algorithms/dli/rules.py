"""The standard vibration rulebase.

One frame per vibration-visible FMEA failure mode, measuring the
textbook signature the synthesizer produces (and real machines show):
the rule content is ours, the mechanism is §6.1's.

Strength conventions: each strength function returns ≈0 on a healthy
machine and ≈1 at a severe defect, using baseline-relative amplitudes
so the rules transfer across machines with different absolute levels.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.dli.frames import RuleFrame, load_sensitizer
from repro.dsp.batch import SpectralView
from repro.dsp.envelope import envelope_spectrum
from repro.dsp.features import kurtosis_excess
from repro.dsp.fft import Spectrum, order_amplitudes, spectrum as _spectrum
from repro.plant.rotating import MachineKinematics


def _full_spectrum(
    wave: np.ndarray, fs: float, view: SpectralView | None = None
) -> Spectrum:
    """Full-length (maximum-resolution) spectrum for sideband rules.

    With a view, the spectrum comes from the scan-wide cache — one FFT
    per machine per scan instead of one per rule frame.
    """
    if view is not None:
        return view.full()
    return _spectrum(wave, fs, window="hann")


def _twice_shaft_vs_twice_line(
    hires: Spectrum, k: MachineKinematics
) -> tuple[float, float]:
    """Attribute the 2x region to misalignment (2x shaft) vs electrical
    (2x line).

    On a near-synchronous motor the two tones sit ~1-2 Hz apart, inside
    each other's window leakage.  The local peak decides ownership: the
    loser only keeps amplitude measured away from the winner's
    mainlobe.  Returns (amp at 2x shaft, amp at 2x line).
    """
    f_mis = 2 * k.shaft_hz
    f_ph = 2 * k.line_hz
    res = hires.resolution
    if abs(f_mis - f_ph) > 6 * res:
        # Well separated: plain windowed measurements.
        return (
            hires.amplitude_at(f_mis, tolerance_bins=2),
            hires.amplitude_at(f_ph, tolerance_bins=2),
        )
    lo = min(f_mis, f_ph) - 3 * res
    hi = max(f_mis, f_ph) + 3 * res
    mask = (hires.freqs >= lo) & (hires.freqs <= hi)
    if not mask.any():
        return 0.0, 0.0
    idx = np.flatnonzero(mask)
    peak_idx = idx[int(np.argmax(hires.amps[idx]))]
    f_peak = float(hires.freqs[peak_idx])
    peak_amp = float(hires.amps[peak_idx])
    winner_is_mis = abs(f_peak - f_mis) <= abs(f_peak - f_ph)
    # Loser amplitude: its window, excluding the winner's mainlobe.
    loser_f = f_ph if winner_is_mis else f_mis
    loser_mask = (np.abs(hires.freqs - loser_f) <= 2 * res) & (
        np.abs(hires.freqs - f_peak) > 2.5 * res
    )
    loser_amp = float(hires.amps[loser_mask].max()) if loser_mask.any() else 0.0
    if winner_is_mis:
        return peak_amp, loser_amp
    return loser_amp, peak_amp

#: Healthy-machine reference amplitudes at 1x/2x/3x (matches the
#: synthesizer's baseline; a fielded system would learn these from
#: baseline surveys).
BASELINE_1X = 0.05
BASELINE_2X = 0.02
BASELINE_3X = 0.01


def _imbalance_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Excess 1x amplitude, requiring 1x to dominate 2x (else it's more
    likely misalignment/looseness).

    Measured on the full-resolution spectrum with a tight window so
    rotor-bar pole-pass sidebands (±1-2 Hz off 1x) do not inflate the
    1x reading.
    """
    hires = _full_spectrum(wave, fs, view)
    a1 = hires.amplitude_at(k.shaft_hz, tolerance_bins=2)
    a2 = hires.amplitude_at(2 * k.shaft_hz, tolerance_bins=2)
    excess = max(0.0, a1 - 2 * BASELINE_1X)
    if a1 / (a2 + 1e-9) < 2.0:
        excess *= 0.3
    return excess / 0.5


def _misalignment_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Excess 2x with 2x/1x ratio above the healthy ratio.

    High-resolution, tight-window measurement: 2x shaft speed on a
    near-synchronous motor sits ~1.4 Hz from 2x line frequency, so a
    wide window would swallow the phase-imbalance signature.
    """
    hires = _full_spectrum(wave, fs, view)
    a1 = hires.amplitude_at(k.shaft_hz, tolerance_bins=2)
    a2, _ = _twice_shaft_vs_twice_line(hires, k)
    excess = max(0.0, a2 - 2 * BASELINE_2X)
    if a2 / (a1 + 1e-9) < 0.8:
        excess *= 0.3
    return excess / 0.4


def _looseness_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Harmonic raft (orders 3..8) plus the ½x subharmonic.

    Looseness is *broadband*: many harmonics elevated at once.  A
    single strong harmonic (e.g. misalignment's 3x) must not fire this
    rule, so the raft only counts when at least three orders are
    elevated together.
    """
    o = order_amplitudes(spec, k.shaft_hz, max_order=8)
    elevated = o[2:8] > 2.5 * BASELINE_3X
    raft = float(np.sum(np.maximum(0.0, o[2:8] - BASELINE_3X)))
    if int(elevated.sum()) < 3:
        raft *= 0.15
    sub = _full_spectrum(wave, fs, view).amplitude_at(0.5 * k.shaft_hz, tolerance_bins=2)
    return (raft + 3.0 * sub) / 0.35


def _bearing_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Envelope line at BPFO (band-limited demodulation) plus kurtosis.

    The BPFO line is judged against the *local* envelope-spectrum
    background (same decade of frequency) because the envelope spectrum
    of broadband noise is strongly low-pass — a global median would
    make every low-frequency bin look like a line.
    """
    bf = k.bearing_defect_frequencies()
    hi = min(4500.0, fs / 2 * 0.9)
    if view is not None:
        es = view.envelope_spectrum(band=(2000.0, hi))
    else:
        es = envelope_spectrum(wave, fs, band=(2000.0, hi))
    line = es.amplitude_at(bf.bpfo, tolerance_bins=3)
    # Local background: same band as BPFO, excluding the line itself.
    lo_f, hi_f = 0.5 * bf.bpfo, 2.0 * bf.bpfo
    mask = (es.freqs >= lo_f) & (es.freqs < hi_f) & (np.abs(es.freqs - bf.bpfo) > 5 * es.resolution)
    background = float(np.median(es.amps[mask])) + 1e-12 if mask.any() else 1e-12
    ratio = line / background
    line_score = max(0.0, (ratio - 4.0)) / 30.0
    kurt = max(0.0, kurtosis_excess(wave)) / 10.0
    return line_score + float(kurt)


def _gear_wear_strength(
    spec: Spectrum, wave: np.ndarray, fs: float, k: MachineKinematics
) -> float:
    """Gear-mesh amplitude plus shaft-rate sidebands."""
    if not k.gear_teeth:
        return 0.0
    mesh = k.gear_mesh_hz
    main = max(0.0, spec.amplitude_at(mesh) - 0.05)
    sb = spec.amplitude_at(mesh + k.shaft_hz) + spec.amplitude_at(mesh - k.shaft_hz)
    return (main + sb) / 0.35


def _gear_misalignment_strength(
    spec: Spectrum, wave: np.ndarray, fs: float, k: MachineKinematics
) -> float:
    """Dominant 2x gear mesh."""
    if not k.gear_teeth:
        return 0.0
    m2 = spec.amplitude_at(2 * k.gear_mesh_hz)
    m1 = spec.amplitude_at(k.gear_mesh_hz) + 1e-9
    excess = max(0.0, m2 - 0.04)
    if m2 / m1 < 1.0:
        excess *= 0.4
    return excess / 0.3


def _rotor_bar_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Pole-pass sidebands around 1x plus 2x line component.

    Sidebands sit within ~1-2 Hz of the 1x peak, so this rule builds
    its own full-length (high-resolution) spectrum instead of using the
    averaged one, and requires *both* sidebands (leakage from 1x is
    symmetric, but genuine rotor-bar sidebands are far stronger).
    """
    hires = _full_spectrum(wave, fs, view)
    pp = max(k.pole_pass_hz, 0.5)
    upper = hires.amplitude_at(k.shaft_hz + pp, tolerance_bins=1)
    lower = hires.amplitude_at(k.shaft_hz - pp, tolerance_bins=1)
    a1 = hires.amplitude_at(k.shaft_hz, tolerance_bins=2)
    sb = 2.0 * min(upper, lower)
    # Genuine rotor-bar sidebands are large *relative to 1x*; window
    # leakage from a big imbalance peak is not.  Without credible
    # sidebands the 2x-line term must not fire this rule either (that
    # alone is the phase-imbalance signature).
    if sb < 0.06 or sb < 0.3 * a1:
        return 0.0
    line2 = hires.amplitude_at(2 * k.line_hz, tolerance_bins=2)
    return (max(0.0, sb - 0.05) + 0.5 * max(0.0, line2 - 0.02)) / 0.35


def _phase_imbalance_strength(
    spec: Spectrum,
    wave: np.ndarray,
    fs: float,
    k: MachineKinematics,
    view: SpectralView | None = None,
) -> float:
    """Strong 2x line frequency, with rotor-bar sidebands absent and
    not explainable as 2x shaft (misalignment)."""
    hires = _full_spectrum(wave, fs, view)
    _, raw_line2 = _twice_shaft_vs_twice_line(hires, k)
    line2 = max(0.0, raw_line2 - 0.02)
    pp = max(k.pole_pass_hz, 0.5)
    upper = hires.amplitude_at(k.shaft_hz + pp, tolerance_bins=1)
    lower = hires.amplitude_at(k.shaft_hz - pp, tolerance_bins=1)
    if 2.0 * min(upper, lower) > 0.08:  # sidebands: prefer rotor-bar
        line2 *= 0.3
    return line2 / 0.4


def standard_rulebase() -> tuple[RuleFrame, ...]:
    """The default frame set for motors/gears/pumps/compressors.

    The looseness frame carries the §6.1 load sensitization; the others
    are regime-independent.
    """
    return (
        RuleFrame(
            "mc:motor-imbalance",
            _imbalance_strength,
            threshold=0.15,
            describe="1x running-speed amplitude excess {strength:.3f} over baseline",
        ),
        RuleFrame(
            "mc:shaft-misalignment",
            _misalignment_strength,
            threshold=0.15,
            describe="2x running-speed amplitude excess {strength:.3f}; 2x/1x ratio high",
        ),
        RuleFrame(
            "mc:bearing-housing-looseness",
            _looseness_strength,
            threshold=0.18,
            sensitizers=(load_sensitizer(gain=2.0),),
            describe="harmonic raft + half-order subharmonic, strength {strength:.3f}",
        ),
        RuleFrame(
            "mc:bearing-wear",
            _bearing_strength,
            threshold=0.12,
            describe="BPFO envelope line and impulsiveness, strength {strength:.3f}",
        ),
        RuleFrame(
            "mc:gear-tooth-wear",
            _gear_wear_strength,
            threshold=0.15,
            describe="gear-mesh amplitude with shaft-rate sidebands, strength {strength:.3f}",
        ),
        RuleFrame(
            "mc:gear-mesh-misalignment",
            _gear_misalignment_strength,
            threshold=0.15,
            describe="2x gear-mesh dominance, strength {strength:.3f}",
        ),
        RuleFrame(
            "mc:motor-rotor-bar",
            _rotor_bar_strength,
            threshold=0.12,
            describe="pole-pass sidebands around 1x, strength {strength:.3f}",
        ),
        RuleFrame(
            "mc:motor-phase-imbalance",
            _phase_imbalance_strength,
            threshold=0.12,
            describe="2x line-frequency component, strength {strength:.3f}",
        ),
    )
