"""Believability factors from reversal statistics (§6.1).

"These believability factors are based on DLI's statistical database
that demonstrates the individual accuracy of each diagnosis by tracking
how often each was reversed or modified by a human analyst prior to
report approval."

The database records, per machine condition, how many automated calls a
human analyst approved vs reversed; the believability factor is the
Laplace-smoothed approval rate.  The validation harness
(:mod:`repro.validation.analyst`) populates it during seeded-fault
campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MprosError


@dataclass
class ReversalDatabase:
    """Per-condition approval/reversal tallies with smoothing.

    Parameters
    ----------
    prior_approvals / prior_reversals:
        Laplace pseudo-counts so fresh conditions start at a sensible
        believability instead of 0/0.
    """

    prior_approvals: float = 8.0
    prior_reversals: float = 1.0
    _approved: dict[str, int] = field(default_factory=dict)
    _reversed: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.prior_approvals < 0 or self.prior_reversals < 0:
            raise MprosError("priors must be non-negative")
        if self.prior_approvals + self.prior_reversals <= 0:
            raise MprosError("priors must not both be zero")

    def record(self, condition_id: str, reversed_by_analyst: bool) -> None:
        """Record one analyst adjudication of an automated diagnosis."""
        table = self._reversed if reversed_by_analyst else self._approved
        table[condition_id] = table.get(condition_id, 0) + 1

    def believability(self, condition_id: str) -> float:
        """Smoothed approval rate for a condition, in (0, 1)."""
        a = self._approved.get(condition_id, 0) + self.prior_approvals
        r = self._reversed.get(condition_id, 0) + self.prior_reversals
        return a / (a + r)

    def counts(self, condition_id: str) -> tuple[int, int]:
        """(approved, reversed) raw counts for a condition."""
        return (
            self._approved.get(condition_id, 0),
            self._reversed.get(condition_id, 0),
        )

    def conditions(self) -> list[str]:
        """Every condition with at least one recorded adjudication."""
        return sorted(set(self._approved) | set(self._reversed))
