"""§6.1 The DLI-style vibration expert system.

"All standard machinery vibration FFT analysis and associated
diagnostics in the Data Concentrator are handled by the DLI expert
system ... The frame based rules application method employed allows the
spectral vibration features to be analyzed in conjunction with process
parameters such as load or bearing temperatures."

DLI's actual Expert Alert rulebase is proprietary; this package
reproduces the *mechanism*: frame-based rules over averaged spectra,
sensitization to process parameters, a numeric severity score graded
Slight/Moderate/Serious/Extreme, and believability factors derived from
a reversal-statistics database.
"""

from repro.algorithms.dli.believability import ReversalDatabase
from repro.algorithms.dli.engine import DliExpertSystem
from repro.algorithms.dli.frames import RuleFrame, RuleResult
from repro.algorithms.dli.rules import standard_rulebase
from repro.algorithms.dli.severity import prognostic_from_grade, score_to_grade

__all__ = [
    "ReversalDatabase",
    "DliExpertSystem",
    "RuleFrame",
    "RuleResult",
    "standard_rulebase",
    "prognostic_from_grade",
    "score_to_grade",
]
