"""The DLI expert-system engine.

Runs the frame rulebase over an averaged spectrum of the latest
vibration block plus the process parameters, grades fired rules,
attaches believability factors and the elementary grade-based
prognostic, and emits §7 reports.  "Adapted to run in a continuous
mode" (§1.1): the engine is stateless per call, so the DC scheduler can
invoke it on every acquisition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SourceContext
from repro.algorithms.dli.believability import ReversalDatabase
from repro.algorithms.dli.frames import RuleFrame
from repro.algorithms.dli.rules import standard_rulebase
from repro.algorithms.dli.severity import prognostic_from_grade, score_to_grade
from repro.common.errors import MprosError
from repro.common.ids import ObjectId
from repro.dsp.batch import SpectralView
from repro.dsp.fft import averaged_spectrum
from repro.protocol.report import FailurePredictionReport


@dataclass
class DliExpertSystem:
    """The frame-based vibration expert system as a knowledge source.

    Parameters
    ----------
    knowledge_source_id:
        §7 KS ID of this instance.
    rulebase:
        Frames to evaluate (default: :func:`standard_rulebase`).
    reversal_db:
        Believability statistics; None means full belief (1.0) minus
        the rule's own uncertainty.
    n_averages:
        Spectral averages per analysis.
    """

    knowledge_source_id: ObjectId = "ks:dli"
    rulebase: tuple[RuleFrame, ...] = ()
    reversal_db: ReversalDatabase | None = None
    n_averages: int = 4
    #: Track running speed from the spectrum before rule evaluation
    #: (±3 % search around nameplate).  Real machines drift with load;
    #: order-based rules mis-window without this.
    track_speed: bool = True
    #: Share spectra across rule frames (and, via ``ctx.spectra``,
    #: across all machines of a batched DC scan).  ``False`` restores
    #: the legacy per-frame recomputation — kept as the honest baseline
    #: for the benchmark harness, not for production use.
    reuse_spectra: bool = True

    def __post_init__(self) -> None:
        if not self.rulebase:
            self.rulebase = standard_rulebase()

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Evaluate every frame against the context's vibration block.

        Returns one report per fired rule.  Contexts without a waveform
        or kinematics produce no reports (DLI is vibration-only).
        """
        if ctx.waveform is None or ctx.kinematics is None:
            return []
        if ctx.sample_rate <= 0:
            raise MprosError("vibration context requires a positive sample_rate")
        view: SpectralView | None = None
        if self.reuse_spectra:
            view = ctx.spectra
            if view is None:
                view = SpectralView.from_waveform(ctx.waveform, ctx.sample_rate)
        if view is not None:
            spec = view.averaged(self.n_averages)
        else:
            spec = averaged_spectrum(ctx.waveform, ctx.sample_rate, self.n_averages)
        kinematics = ctx.kinematics
        if self.track_speed:
            from dataclasses import replace as _replace

            from repro.dsp.fft import estimate_shaft_speed, spectrum as _full

            hires = (
                view.full()
                if view is not None
                else _full(ctx.waveform, ctx.sample_rate)
            )
            actual = estimate_shaft_speed(
                hires, kinematics.shaft_hz, search_pct=8.0
            )
            if actual != kinematics.shaft_hz:
                kinematics = _replace(kinematics, shaft_hz=actual)
        reports: list[FailurePredictionReport] = []
        for frame in self.rulebase:
            result = frame.evaluate(
                spec,
                ctx.waveform,
                ctx.sample_rate,
                kinematics,
                ctx.process,
                spectra=view,
            )
            if not result.fired:
                continue
            grade = score_to_grade(result.score)
            believability = (
                self.reversal_db.believability(result.condition_id)
                if self.reversal_db is not None
                else 1.0
            )
            # Belief combines rule confidence (how far past threshold)
            # with the per-diagnosis believability factor.
            rule_confidence = 0.5 + 0.5 * min(1.0, result.score * 2.0)
            belief = believability * rule_confidence
            reports.append(
                FailurePredictionReport(
                    knowledge_source_id=self.knowledge_source_id,
                    sensed_object_id=ctx.sensed_object_id,
                    machine_condition_id=result.condition_id,
                    severity=result.score,
                    belief=belief,
                    timestamp=ctx.timestamp,
                    dc_id=ctx.dc_id,
                    explanation=(
                        f"{result.explanation} (grade {grade.label}, "
                        f"sensitization x{result.sensitization:.2f})"
                    ),
                    recommendations=_RECOMMENDATIONS.get(result.condition_id, ""),
                    prognostic=prognostic_from_grade(grade),
                )
            )
        return reports


_RECOMMENDATIONS: dict[str, str] = {
    "mc:motor-imbalance": "Field balance the rotor at next opportunity.",
    "mc:shaft-misalignment": "Check coupling alignment; laser-align at next shutdown.",
    "mc:bearing-housing-looseness": "Inspect hold-down bolts and housing fit.",
    "mc:bearing-wear": "Schedule bearing replacement; increase monitoring interval.",
    "mc:gear-tooth-wear": "Inspect gear mesh; check lubricant for wear metals.",
    "mc:gear-mesh-misalignment": "Check gearbox alignment and backlash.",
    "mc:motor-rotor-bar": "Perform current-signature analysis; plan rotor repair.",
    "mc:motor-phase-imbalance": "Check supply phases and stator connections.",
}
