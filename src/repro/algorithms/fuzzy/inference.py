"""Mamdani inference with centroid defuzzification.

Rules are of the form::

    IF superheat IS high AND evap_pressure IS low
    THEN mc:refrigerant-leak severity IS severe

Firing strength is the min over antecedent memberships; per-condition
output fuzzy sets (severity terms over [0, 1]) are clipped at the rule
strength, aggregated by max, and the centroid of the aggregate is the
crisp severity.  The strongest single firing is kept as the belief.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.fuzzy.sets import LinguisticVariable, MembershipFunction, Triangle
from repro.common.errors import MprosError

#: Output severity terms on the unit interval.
SEVERITY_TERMS: dict[str, MembershipFunction] = {
    "slight": Triangle(0.0, 0.15, 0.35),
    "moderate": Triangle(0.25, 0.45, 0.65),
    "severe": Triangle(0.55, 0.8, 1.0),
}

_GRID = np.linspace(0.0, 1.0, 201)


@dataclass(frozen=True)
class FuzzyRule:
    """One Mamdani rule.

    Attributes
    ----------
    antecedents:
        ``((variable_name, term), ...)`` — all must hold (AND/min).
    condition_id:
        The machine condition asserted.
    severity_term:
        Which output severity set the rule activates.
    """

    antecedents: tuple[tuple[str, str], ...]
    condition_id: str
    severity_term: str = "moderate"

    def __post_init__(self) -> None:
        if not self.antecedents:
            raise MprosError("rule needs at least one antecedent")
        if self.severity_term not in SEVERITY_TERMS:
            raise MprosError(f"unknown severity term {self.severity_term!r}")


@dataclass(frozen=True)
class FuzzyConclusion:
    """Aggregated inference output for one machine condition."""

    condition_id: str
    severity: float        # centroid-defuzzified, [0, 1]
    belief: float          # strongest firing strength
    fired_rules: int


class MamdaniEngine:
    """Evaluates a rulebase against crisp process readings."""

    def __init__(
        self, variables: dict[str, LinguisticVariable], rules: tuple[FuzzyRule, ...]
    ) -> None:
        self.variables = dict(variables)
        for rule in rules:
            for var, term in rule.antecedents:
                if var not in self.variables:
                    raise MprosError(f"rule references unknown variable {var!r}")
                if term not in self.variables[var].terms:
                    raise MprosError(f"variable {var!r} has no term {term!r}")
        self.rules = tuple(rules)

    def firing_strength(self, rule: FuzzyRule, readings: dict[str, float]) -> float:
        """Min over antecedent memberships; 0 if any input is missing
        (§5.1 tolerance: a rule simply cannot fire without its data)."""
        strength = 1.0
        for var, term in rule.antecedents:
            if var not in readings:
                return 0.0
            strength = min(strength, self.variables[var].membership(term, readings[var]))
            if strength == 0.0:
                return 0.0
        return strength

    def infer(
        self, readings: dict[str, float], activation_threshold: float = 0.05
    ) -> list[FuzzyConclusion]:
        """Run every rule; aggregate and defuzzify per condition."""
        clipped: dict[str, list[tuple[str, float]]] = {}
        strongest: dict[str, float] = {}
        fired: dict[str, int] = {}
        for rule in self.rules:
            s = self.firing_strength(rule, readings)
            if s < activation_threshold:
                continue
            clipped.setdefault(rule.condition_id, []).append((rule.severity_term, s))
            strongest[rule.condition_id] = max(strongest.get(rule.condition_id, 0.0), s)
            fired[rule.condition_id] = fired.get(rule.condition_id, 0) + 1
        out: list[FuzzyConclusion] = []
        for cond, activations in clipped.items():
            agg = np.zeros_like(_GRID)
            for term, s in activations:
                np.maximum(agg, np.minimum(np.asarray(SEVERITY_TERMS[term](_GRID)), s), out=agg)
            mass = float(agg.sum())
            severity = float((agg * _GRID).sum() / mass) if mass > 0 else 0.0
            out.append(
                FuzzyConclusion(
                    condition_id=cond,
                    severity=severity,
                    belief=strongest[cond],
                    fired_rules=fired[cond],
                )
            )
        out.sort(key=lambda c: -c.belief)
        return out
