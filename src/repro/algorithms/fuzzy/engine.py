"""The fuzzy suite as a knowledge source."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import SourceContext
from repro.algorithms.fuzzy.inference import FuzzyRule, MamdaniEngine
from repro.algorithms.fuzzy.prognosis import trend_prognostic
from repro.algorithms.fuzzy.rules import (
    chiller_rulebase,
    chiller_variables,
    turbine_rulebase,
    turbine_variables,
)
from repro.common.ids import ObjectId
from repro.protocol.prognostic import PrognosticVector
from repro.protocol.report import FailurePredictionReport


@dataclass
class FuzzyDiagnostics:
    """Mamdani process diagnostics + trend prognostics.

    Parameters
    ----------
    min_belief:
        Conclusions firing below this strength are not reported.
    history_dt:
        Assumed spacing of the context's history snapshots (seconds),
        used by the trend prognostic.
    """

    knowledge_source_id: ObjectId = "ks:fuzzy"
    min_belief: float = 0.15
    history_dt: float = 60.0
    engine: MamdaniEngine = field(
        default_factory=lambda: MamdaniEngine(chiller_variables(), chiller_rulebase())
    )
    # Rolling per-(object, condition) severity history for trending.
    _severity_history: dict[tuple[str, str], list[float]] = field(default_factory=dict)

    def _derived(self, ctx: SourceContext) -> dict[str, float]:
        """Crisp readings plus derived variables (oscillation measure)."""
        readings = dict(ctx.process)
        if ctx.history:
            heads = [h.get("cond_pressure_kpa") for h in ctx.history]
            heads = [h for h in heads if h is not None]
            if len(heads) >= 4:
                # Oscillation measure: median absolute successive
                # difference (scaled to sigma-equivalents).  A fouling
                # step or ramp produces one or two large differences
                # (median stays at the noise level); genuine surge
                # wobbles on every sample.
                y = np.asarray(heads, dtype=np.float64)
                masd = float(np.median(np.abs(np.diff(y))))
                readings["cond_pressure_std"] = masd / 1.349  # MAD->sigma
        return readings

    @classmethod
    def for_turbine(cls, **kwargs) -> "FuzzyDiagnostics":
        """The fuzzy suite wired for the gas-turbine (CODLAG) domain."""
        return cls(
            engine=MamdaniEngine(turbine_variables(), turbine_rulebase()), **kwargs
        )

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Infer on the current process snapshot; returns §7 reports
        for every sufficiently strong conclusion (non-vibration only)."""
        if not ctx.process:
            return []
        conclusions = self.engine.infer(self._derived(ctx))
        reports: list[FailurePredictionReport] = []
        for c in conclusions:
            if c.belief < self.min_belief:
                continue
            key = (ctx.sensed_object_id, c.condition_id)
            history = self._severity_history.setdefault(key, [])
            history.append(c.severity)
            if len(history) > 64:
                del history[: len(history) - 64]
            prognostic: PrognosticVector = trend_prognostic(history, self.history_dt)
            reports.append(
                FailurePredictionReport(
                    knowledge_source_id=self.knowledge_source_id,
                    sensed_object_id=ctx.sensed_object_id,
                    machine_condition_id=c.condition_id,
                    severity=c.severity,
                    belief=c.belief,
                    timestamp=ctx.timestamp,
                    dc_id=ctx.dc_id,
                    explanation=(
                        f"fuzzy: {c.fired_rules} rule(s) fired, "
                        f"defuzzified severity {c.severity:.2f}"
                    ),
                    prognostic=prognostic,
                )
            )
        return reports
