"""Fuzzy prognostics: trend-extrapolated failure probability.

The suite is "diagnostics *and prognostics*" (§1.1).  Prognosis here
extrapolates the severity trend over the recent history window: a
least-squares severity slope projects when severity will cross the
failure region, and that projection becomes a §7 prognostic vector.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import MprosError
from repro.common.units import days, months
from repro.protocol.prognostic import PrognosticVector


def trend_prognostic(
    severities: list[float] | np.ndarray,
    dt_seconds: float,
    failure_severity: float = 0.95,
) -> PrognosticVector:
    """Project a severity history into a prognostic vector.

    Parameters
    ----------
    severities:
        Severity samples, oldest first, uniformly spaced.
    dt_seconds:
        Spacing between samples.
    failure_severity:
        Severity level treated as functional failure.

    Behaviour
    ---------
    * Fewer than 3 samples or a non-increasing trend: a long-horizon,
      low-probability vector (no foreseeable failure).
    * Increasing trend: failure time = when the fitted line crosses
      ``failure_severity``; the vector brackets it with rising
      probabilities (uncertainty widens the bracket).
    """
    s = np.asarray(severities, dtype=np.float64)
    if dt_seconds <= 0:
        raise MprosError("dt_seconds must be positive")
    if s.ndim != 1:
        raise MprosError("severities must be 1-D")
    far = PrognosticVector.from_pairs([(months(6.0), 0.02), (months(24.0), 0.10)])
    if s.size < 3:
        return far
    t = np.arange(s.size) * dt_seconds
    slope, intercept = np.polyfit(t, s, 1)
    if slope <= 1e-12:
        return far
    now = t[-1]
    current = slope * now + intercept
    if current >= failure_severity:
        # Already at failure level: imminent.
        return PrognosticVector.from_pairs(
            [(days(1.0), 0.5), (days(3.0), 0.9), (days(7.0), 0.99)]
        )
    t_fail = (failure_severity - intercept) / slope - now
    # Bracket the crossing at 0.6x / 1.0x / 1.6x the projected time.
    return PrognosticVector.from_pairs(
        [(0.6 * t_fail, 0.15), (t_fail, 0.5), (1.6 * t_fail, 0.9)]
    )
