"""§6.2 Fuzzy-logic diagnostics and prognostics on non-vibration data.

The fourth algorithm suite "draws diagnostic and prognostic conclusions
from non-vibrational data": chiller process variables (pressures,
temperatures, superheat, oil system) evaluated through a Mamdani
rulebase with centroid defuzzification, plus trend-based prognostic
vectors.
"""

from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
from repro.algorithms.fuzzy.inference import FuzzyRule, MamdaniEngine
from repro.algorithms.fuzzy.prognosis import trend_prognostic
from repro.algorithms.fuzzy.rules import (
    chiller_rulebase,
    chiller_variables,
    turbine_rulebase,
    turbine_variables,
)
from repro.algorithms.fuzzy.sets import (
    Gaussian,
    LinguisticVariable,
    Trapezoid,
    Triangle,
)

__all__ = [
    "FuzzyDiagnostics",
    "FuzzyRule",
    "MamdaniEngine",
    "trend_prognostic",
    "chiller_rulebase",
    "chiller_variables",
    "turbine_rulebase",
    "turbine_variables",
    "Gaussian",
    "LinguisticVariable",
    "Trapezoid",
    "Triangle",
]
