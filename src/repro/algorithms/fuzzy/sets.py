"""Fuzzy membership functions and linguistic variables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.common.errors import MprosError


class MembershipFunction:
    """Base: maps crisp values to membership degrees in [0, 1]."""

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class Triangle(MembershipFunction):
    """Triangular MF with feet at ``a``/``c`` and apex at ``b``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise MprosError(f"need a <= b <= c, got ({self.a}, {self.b}, {self.c})")

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        left = np.where(
            self.b > self.a, (x - self.a) / max(self.b - self.a, 1e-300), 1.0
        )
        right = np.where(
            self.c > self.b, (self.c - x) / max(self.c - self.b, 1e-300), 1.0
        )
        out = np.clip(np.minimum(left, right), 0.0, 1.0)
        return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class Trapezoid(MembershipFunction):
    """Trapezoidal MF: feet a/d, plateau b..c.  Open-ended shoulders
    are expressed with a == b (left shoulder) or c == d (right)."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c <= self.d:
            raise MprosError(f"need a <= b <= c <= d, got {(self.a, self.b, self.c, self.d)}")

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        left = np.where(
            self.b > self.a, (x - self.a) / max(self.b - self.a, 1e-300), 1.0
        )
        right = np.where(
            self.d > self.c, (self.d - x) / max(self.d - self.c, 1e-300), 1.0
        )
        out = np.clip(np.minimum(left, right), 0.0, 1.0)
        # Outside [a, d] membership is zero even for degenerate ramps.
        out = np.where((x < self.a) | (x > self.d), 0.0, out)
        return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class Gaussian(MembershipFunction):
    """Gaussian MF centred at ``mu`` with width ``sigma``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise MprosError(f"sigma must be positive, got {self.sigma}")

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.exp(-0.5 * ((x - self.mu) / self.sigma) ** 2)
        return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class LinguisticVariable:
    """A named crisp quantity with linguistic terms.

    >>> sh = LinguisticVariable("superheat_c", {
    ...     "normal": Triangle(2.0, 4.5, 7.0),
    ...     "high": Trapezoid(6.0, 10.0, 50.0, 50.0),
    ... })
    >>> sh.membership("high", 12.0)
    1.0
    """

    name: str
    terms: Mapping[str, MembershipFunction]

    def __post_init__(self) -> None:
        if not self.name or not self.terms:
            raise MprosError("linguistic variable needs a name and terms")

    def membership(self, term: str, x: float) -> float:
        """Degree to which ``x`` is ``term``."""
        try:
            mf = self.terms[term]
        except KeyError:
            raise MprosError(f"{self.name!r} has no term {term!r}") from None
        return float(mf(x))
