"""Process rulebases: chiller and gas-turbine.

Linguistic variables over a DC's process channels (nominal values from
:data:`repro.plant.chiller.NOMINALS` /
:data:`repro.plant.turbine.TURBINE_NOMINALS`) and the Mamdani rules
tying symptom patterns to the process-visible FMEA failure modes of
each plant domain.
"""

from __future__ import annotations

from repro.algorithms.fuzzy.inference import FuzzyRule
from repro.algorithms.fuzzy.sets import LinguisticVariable, Trapezoid, Triangle


def chiller_variables() -> dict[str, LinguisticVariable]:
    """Linguistic terms for the monitored chiller process variables.

    ``cond_pressure_std`` is a derived variable: the standard deviation
    of head pressure over the recent history window (surge shows as
    oscillation, not as a level shift).
    """
    v: dict[str, LinguisticVariable] = {}
    v["evap_pressure_kpa"] = LinguisticVariable(
        "evap_pressure_kpa",
        {
            "low": Trapezoid(150.0, 150.0, 270.0, 310.0),
            "normal": Trapezoid(290.0, 320.0, 370.0, 400.0),
            "high": Trapezoid(380.0, 420.0, 600.0, 600.0),
        },
    )
    v["cond_pressure_kpa"] = LinguisticVariable(
        "cond_pressure_kpa",
        {
            "low": Trapezoid(500.0, 500.0, 800.0, 870.0),
            "normal": Trapezoid(850.0, 900.0, 1050.0, 1100.0),
            "high": Trapezoid(1080.0, 1150.0, 1600.0, 1600.0),
        },
    )
    v["superheat_c"] = LinguisticVariable(
        "superheat_c",
        {
            "normal": Trapezoid(1.0, 2.5, 6.0, 8.0),
            "high": Trapezoid(7.0, 10.0, 40.0, 40.0),
        },
    )
    v["chw_supply_temp_c"] = LinguisticVariable(
        "chw_supply_temp_c",
        {
            "normal": Trapezoid(4.0, 5.5, 7.5, 8.5),
            "high": Trapezoid(8.0, 9.5, 25.0, 25.0),
        },
    )
    v["cond_water_temp_c"] = LinguisticVariable(
        "cond_water_temp_c",
        {
            "normal": Trapezoid(24.0, 26.0, 31.0, 33.0),
            "high": Trapezoid(31.5, 33.5, 50.0, 50.0),
        },
    )
    v["oil_pressure_kpa"] = LinguisticVariable(
        "oil_pressure_kpa",
        {
            "low": Trapezoid(0.0, 0.0, 170.0, 230.0),
            "normal": Trapezoid(220.0, 250.0, 320.0, 350.0),
        },
    )
    v["oil_temp_c"] = LinguisticVariable(
        "oil_temp_c",
        {
            "normal": Trapezoid(40.0, 45.0, 58.0, 62.0),
            "high": Trapezoid(60.0, 64.0, 100.0, 100.0),
        },
    )
    v["cond_pressure_std"] = LinguisticVariable(
        "cond_pressure_std",
        {
            "steady": Trapezoid(0.0, 0.0, 12.0, 22.0),
            "oscillating": Trapezoid(18.0, 35.0, 300.0, 300.0),
        },
    )
    return v


def chiller_rulebase() -> tuple[FuzzyRule, ...]:
    """Symptom patterns → process failure modes."""
    return (
        # Refrigerant loss: starving evaporator.
        FuzzyRule(
            (("superheat_c", "high"), ("evap_pressure_kpa", "low")),
            "mc:refrigerant-leak",
            "severe",
        ),
        FuzzyRule(
            (("superheat_c", "high"), ("evap_pressure_kpa", "normal")),
            "mc:refrigerant-leak",
            "moderate",
        ),
        # Condenser fouling: head pressure up, condenser water hot.
        FuzzyRule(
            (("cond_pressure_kpa", "high"), ("cond_water_temp_c", "high")),
            "mc:condenser-fouling",
            "severe",
        ),
        FuzzyRule(
            (("cond_pressure_kpa", "high"), ("cond_water_temp_c", "normal")),
            "mc:condenser-fouling",
            "moderate",
        ),
        # Evaporator fouling: warm chilled water at normal suction.
        FuzzyRule(
            (("chw_supply_temp_c", "high"), ("evap_pressure_kpa", "normal")),
            "mc:evaporator-fouling",
            "moderate",
        ),
        # Oil system.
        FuzzyRule(
            (("oil_pressure_kpa", "low"),),
            "mc:oil-pressure-low",
            "severe",
        ),
        FuzzyRule(
            (("oil_temp_c", "high"), ("oil_pressure_kpa", "normal")),
            "mc:oil-contamination",
            "moderate",
        ),
        # Surge: oscillating head pressure.
        FuzzyRule(
            (("cond_pressure_std", "oscillating"),),
            "mc:surge",
            "severe",
        ),
    )


def turbine_variables() -> dict[str, LinguisticVariable]:
    """Linguistic terms for the gas-turbine (CODLAG) process channels.

    Membership supports straddle the healthy 0.9-load operating point
    of :data:`repro.plant.turbine.TURBINE_NOMINALS` on one side and the
    fully developed fault signatures on the other, so each gas-path
    decay mode lands in a distinct symptom cell.
    """
    v: dict[str, LinguisticVariable] = {}
    v["egt_c"] = LinguisticVariable(
        "egt_c",
        {
            "normal": Trapezoid(420.0, 480.0, 585.0, 605.0),
            "high": Trapezoid(590.0, 610.0, 640.0, 665.0),
            "very_high": Trapezoid(645.0, 670.0, 900.0, 900.0),
        },
    )
    v["compressor_discharge_kpa"] = LinguisticVariable(
        "compressor_discharge_kpa",
        {
            "low": Trapezoid(300.0, 300.0, 880.0, 920.0),
            "normal": Trapezoid(900.0, 935.0, 1010.0, 1060.0),
        },
    )
    v["fuel_flow_kg_s"] = LinguisticVariable(
        "fuel_flow_kg_s",
        {
            "normal": Trapezoid(0.2, 0.4, 1.10, 1.16),
            "high": Trapezoid(1.14, 1.20, 2.0, 2.0),
        },
    )
    v["shaft_torque_knm"] = LinguisticVariable(
        "shaft_torque_knm",
        {
            "low": Trapezoid(0.0, 0.0, 106.0, 112.0),
            "normal": Trapezoid(110.0, 114.0, 125.0, 129.0),
            "high": Trapezoid(126.0, 130.0, 300.0, 300.0),
        },
    )
    v["lube_oil_pressure_kpa"] = LinguisticVariable(
        "lube_oil_pressure_kpa",
        {
            "low": Trapezoid(0.0, 0.0, 230.0, 270.0),
            "normal": Trapezoid(260.0, 290.0, 360.0, 390.0),
        },
    )
    v["lube_oil_temp_c"] = LinguisticVariable(
        "lube_oil_temp_c",
        {
            "normal": Trapezoid(50.0, 56.0, 72.0, 76.0),
            "high": Trapezoid(74.0, 79.0, 120.0, 120.0),
        },
    )
    v["thrust_brg_temp_c"] = LinguisticVariable(
        "thrust_brg_temp_c",
        {
            "normal": Trapezoid(55.0, 62.0, 79.0, 83.0),
            "high": Trapezoid(81.0, 85.0, 130.0, 130.0),
        },
    )
    return v


def turbine_rulebase() -> tuple[FuzzyRule, ...]:
    """Gas-path symptom patterns → turbine failure modes.

    The discriminating couplings: fouling is the only mode that drops
    compressor discharge; metering drift over-fuels at *normal*
    discharge; blade erosion runs the hot section hottest while torque
    sags.  Thrust-bearing temperature corroborates the
    vibration-primary bearing wear from the process side.
    """
    return (
        # Compressor fouling: discharge sags while EGT and fuel climb.
        FuzzyRule(
            (("compressor_discharge_kpa", "low"), ("egt_c", "high")),
            "mc:compressor-fouling",
            "severe",
        ),
        FuzzyRule(
            (("compressor_discharge_kpa", "low"), ("fuel_flow_kg_s", "high")),
            "mc:compressor-fouling",
            "moderate",
        ),
        # Fuel-metering drift: over-fuelling at healthy discharge.
        FuzzyRule(
            (("fuel_flow_kg_s", "high"), ("compressor_discharge_kpa", "normal")),
            "mc:fuel-metering-drift",
            "moderate",
        ),
        FuzzyRule(
            (("fuel_flow_kg_s", "high"), ("shaft_torque_knm", "high")),
            "mc:fuel-metering-drift",
            "severe",
        ),
        # Turbine blade erosion: hot section hottest, torque sagging.
        FuzzyRule(
            (("egt_c", "very_high"),),
            "mc:turbine-blade-erosion",
            "severe",
        ),
        FuzzyRule(
            (("egt_c", "high"), ("shaft_torque_knm", "low")),
            "mc:turbine-blade-erosion",
            "moderate",
        ),
        # Lube system.
        FuzzyRule(
            (("lube_oil_pressure_kpa", "low"),),
            "mc:oil-pressure-low",
            "severe",
        ),
        FuzzyRule(
            (("lube_oil_temp_c", "high"), ("lube_oil_pressure_kpa", "normal")),
            "mc:oil-contamination",
            "moderate",
        ),
        # Thrust-bearing heat: process-side corroboration of wear.
        FuzzyRule(
            (("thrust_brg_temp_c", "high"),),
            "mc:bearing-wear",
            "moderate",
        ),
    )
