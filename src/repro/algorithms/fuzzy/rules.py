"""The chiller process rulebase.

Linguistic variables over the DC's process channels (nominal values
from :data:`repro.plant.chiller.NOMINALS`) and the Mamdani rules tying
symptom patterns to the process-visible FMEA failure modes.
"""

from __future__ import annotations

from repro.algorithms.fuzzy.inference import FuzzyRule
from repro.algorithms.fuzzy.sets import LinguisticVariable, Trapezoid, Triangle


def chiller_variables() -> dict[str, LinguisticVariable]:
    """Linguistic terms for the monitored chiller process variables.

    ``cond_pressure_std`` is a derived variable: the standard deviation
    of head pressure over the recent history window (surge shows as
    oscillation, not as a level shift).
    """
    v: dict[str, LinguisticVariable] = {}
    v["evap_pressure_kpa"] = LinguisticVariable(
        "evap_pressure_kpa",
        {
            "low": Trapezoid(150.0, 150.0, 270.0, 310.0),
            "normal": Trapezoid(290.0, 320.0, 370.0, 400.0),
            "high": Trapezoid(380.0, 420.0, 600.0, 600.0),
        },
    )
    v["cond_pressure_kpa"] = LinguisticVariable(
        "cond_pressure_kpa",
        {
            "low": Trapezoid(500.0, 500.0, 800.0, 870.0),
            "normal": Trapezoid(850.0, 900.0, 1050.0, 1100.0),
            "high": Trapezoid(1080.0, 1150.0, 1600.0, 1600.0),
        },
    )
    v["superheat_c"] = LinguisticVariable(
        "superheat_c",
        {
            "normal": Trapezoid(1.0, 2.5, 6.0, 8.0),
            "high": Trapezoid(7.0, 10.0, 40.0, 40.0),
        },
    )
    v["chw_supply_temp_c"] = LinguisticVariable(
        "chw_supply_temp_c",
        {
            "normal": Trapezoid(4.0, 5.5, 7.5, 8.5),
            "high": Trapezoid(8.0, 9.5, 25.0, 25.0),
        },
    )
    v["cond_water_temp_c"] = LinguisticVariable(
        "cond_water_temp_c",
        {
            "normal": Trapezoid(24.0, 26.0, 31.0, 33.0),
            "high": Trapezoid(31.5, 33.5, 50.0, 50.0),
        },
    )
    v["oil_pressure_kpa"] = LinguisticVariable(
        "oil_pressure_kpa",
        {
            "low": Trapezoid(0.0, 0.0, 170.0, 230.0),
            "normal": Trapezoid(220.0, 250.0, 320.0, 350.0),
        },
    )
    v["oil_temp_c"] = LinguisticVariable(
        "oil_temp_c",
        {
            "normal": Trapezoid(40.0, 45.0, 58.0, 62.0),
            "high": Trapezoid(60.0, 64.0, 100.0, 100.0),
        },
    )
    v["cond_pressure_std"] = LinguisticVariable(
        "cond_pressure_std",
        {
            "steady": Trapezoid(0.0, 0.0, 12.0, 22.0),
            "oscillating": Trapezoid(18.0, 35.0, 300.0, 300.0),
        },
    )
    return v


def chiller_rulebase() -> tuple[FuzzyRule, ...]:
    """Symptom patterns → process failure modes."""
    return (
        # Refrigerant loss: starving evaporator.
        FuzzyRule(
            (("superheat_c", "high"), ("evap_pressure_kpa", "low")),
            "mc:refrigerant-leak",
            "severe",
        ),
        FuzzyRule(
            (("superheat_c", "high"), ("evap_pressure_kpa", "normal")),
            "mc:refrigerant-leak",
            "moderate",
        ),
        # Condenser fouling: head pressure up, condenser water hot.
        FuzzyRule(
            (("cond_pressure_kpa", "high"), ("cond_water_temp_c", "high")),
            "mc:condenser-fouling",
            "severe",
        ),
        FuzzyRule(
            (("cond_pressure_kpa", "high"), ("cond_water_temp_c", "normal")),
            "mc:condenser-fouling",
            "moderate",
        ),
        # Evaporator fouling: warm chilled water at normal suction.
        FuzzyRule(
            (("chw_supply_temp_c", "high"), ("evap_pressure_kpa", "normal")),
            "mc:evaporator-fouling",
            "moderate",
        ),
        # Oil system.
        FuzzyRule(
            (("oil_pressure_kpa", "low"),),
            "mc:oil-pressure-low",
            "severe",
        ),
        FuzzyRule(
            (("oil_temp_c", "high"), ("oil_pressure_kpa", "normal")),
            "mc:oil-contamination",
            "moderate",
        ),
        # Surge: oscillating head pressure.
        FuzzyRule(
            (("cond_pressure_std", "oscillating"),),
            "mc:surge",
            "severe",
        ),
    )
