"""The wavelet neural network, implemented in plain numpy.

Architecture: a single hidden layer of *wavelons*.  Wavelon ``j``
computes ``psi((w_j . x - t_j) / a_j)`` where ``psi`` is the Mexican-hat
mother wavelet, ``t_j`` a learnable translation and ``a_j`` a learnable
dilation — the multi-resolution/localization structure the paper
credits the WNN with.  A linear softmax head classifies faults.

Training is full manual backprop (no autograd available offline), with
Adam updates in :mod:`repro.algorithms.wnn.train`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import MprosError

_A_MIN = 1e-2  # dilations are kept away from zero


def mexican_hat(z: np.ndarray) -> np.ndarray:
    """psi(z) = (1 - z^2) exp(-z^2 / 2)."""
    z2 = z * z
    return (1.0 - z2) * np.exp(-0.5 * z2)


def mexican_hat_prime(z: np.ndarray) -> np.ndarray:
    """psi'(z) = (z^3 - 3 z) exp(-z^2 / 2)."""
    z2 = z * z
    return (z2 - 3.0) * z * np.exp(-0.5 * z2)


@dataclass
class WaveletNeuralNetwork:
    """A wavelon-layer classifier.

    Parameters
    ----------
    n_inputs / n_hidden / n_classes:
        Layer sizes.
    rng:
        Generator for weight initialization.
    """

    n_inputs: int
    n_hidden: int
    n_classes: int
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if min(self.n_inputs, self.n_hidden, self.n_classes) < 1:
            raise MprosError("all layer sizes must be >= 1")
        scale = 1.0 / np.sqrt(self.n_inputs)
        self.W = self.rng.normal(0.0, scale, (self.n_hidden, self.n_inputs))
        self.t = self.rng.normal(0.0, 0.5, self.n_hidden)
        self.a = np.ones(self.n_hidden)
        self.V = self.rng.normal(0.0, 1.0 / np.sqrt(self.n_hidden), (self.n_classes, self.n_hidden))
        self.c = np.zeros(self.n_classes)
        # Input standardization learned by fit-time calibration.
        self.mu = np.zeros(self.n_inputs)
        self.sigma = np.ones(self.n_inputs)

    # -- normalization ------------------------------------------------------
    def calibrate(self, X: np.ndarray) -> None:
        """Fit input standardization to the training distribution."""
        X = self._check_X(X)
        self.mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        self.sigma = np.where(sigma > 1e-12, sigma, 1.0)

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_inputs:
            raise MprosError(f"expected {self.n_inputs} features, got {X.shape[1]}")
        return X

    # -- forward ------------------------------------------------------------
    def hidden(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Wavelon pre-activations and activations for a batch."""
        Xn = (self._check_X(X) - self.mu) / self.sigma
        Z = (Xn @ self.W.T - self.t) / self.a
        return Z, mexican_hat(Z)

    def logits(self, X: np.ndarray) -> np.ndarray:
        """Class scores for a batch."""
        _, H = self.hidden(X)
        return H @ self.V.T + self.c

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, shape (n, n_classes)."""
        L = self.logits(X)
        L = L - L.max(axis=1, keepdims=True)
        e = np.exp(L)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Arg-max class indices."""
        return np.argmax(self.logits(X), axis=1)

    # -- loss / gradients -------------------------------------------------------
    def loss_and_grads(
        self, X: np.ndarray, y: np.ndarray, l2: float = 1e-4
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Cross-entropy loss and parameter gradients for a batch.

        ``y`` holds integer class labels.
        """
        X = self._check_X(X)
        y = np.asarray(y, dtype=np.int64)
        if y.shape != (X.shape[0],):
            raise MprosError(f"labels shape {y.shape} != batch size {X.shape[0]}")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise MprosError("label out of range")
        n = X.shape[0]
        Xn = (X - self.mu) / self.sigma
        Z = (Xn @ self.W.T - self.t) / self.a
        H = mexican_hat(Z)
        L = H @ self.V.T + self.c
        L = L - L.max(axis=1, keepdims=True)
        e = np.exp(L)
        P = e / e.sum(axis=1, keepdims=True)
        nll = -np.log(np.maximum(P[np.arange(n), y], 1e-300)).mean()
        loss = nll + 0.5 * l2 * (np.sum(self.W**2) + np.sum(self.V**2))

        dL = P.copy()
        dL[np.arange(n), y] -= 1.0
        dL /= n                                  # (n, C)
        dV = dL.T @ H + l2 * self.V              # (C, H)
        dc = dL.sum(axis=0)
        dH = dL @ self.V                         # (n, H)
        dZ = dH * mexican_hat_prime(Z)           # (n, H)
        dW = (dZ / self.a).T @ Xn + l2 * self.W  # (H, d)
        dt = -(dZ / self.a).sum(axis=0)
        da = -(dZ * Z / self.a).sum(axis=0)
        return float(loss), {"W": dW, "t": dt, "a": da, "V": dV, "c": dc}

    def apply_update(self, deltas: dict[str, np.ndarray]) -> None:
        """Add parameter deltas in place (dilations clipped positive)."""
        self.W += deltas["W"]
        self.t += deltas["t"]
        self.a += deltas["a"]
        np.clip(self.a, _A_MIN, None, out=self.a)
        self.V += deltas["V"]
        self.c += deltas["c"]

    def parameters(self) -> dict[str, np.ndarray]:
        """Live parameter arrays (for optimizer state shapes)."""
        return {"W": self.W, "t": self.t, "a": self.a, "V": self.V, "c": self.c}
