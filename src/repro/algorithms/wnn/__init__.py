"""§6.2 Wavelet Neural Network diagnostics and prognostics.

"The WNN belongs to a new class of neural networks with such unique
capabilities as multi-resolution and localization in addressing
classification problems.  For fault diagnosis, the WNN serves as a
classifier ... Results of the WNN can be used to perform fault
diagnosis via classification using information such as the peak of the
signal amplitude, standard deviation, cepstrum, DCT coefficients,
wavelet maps, temperature, humidity, speed, and mass."

Unlike the DLI suite (steady-state averaged spectra), the WNN "will
excel in drawing conclusions from transitory phenomena": its features
are computed on short windows and are dominated by localized
time-scale content.
"""

from repro.algorithms.wnn.classifier import WnnFaultClassifier
from repro.algorithms.wnn.features import FEATURE_NAMES, assemble_features
from repro.algorithms.wnn.network import WaveletNeuralNetwork
from repro.algorithms.wnn.train import TrainConfig, train_network

__all__ = [
    "WnnFaultClassifier",
    "FEATURE_NAMES",
    "assemble_features",
    "WaveletNeuralNetwork",
    "TrainConfig",
    "train_network",
]
