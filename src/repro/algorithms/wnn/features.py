"""The WNN feature vector (§6.2).

"Features extracted from input data are organized into a feature
vector, which is fed into the WNN."  The assembly mirrors the paper's
list: signal peak, standard deviation, cepstrum, DCT coefficients,
wavelet maps (as per-band energies), plus available process scalars
(temperature, speed, ...).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import MprosError
from repro.dsp.cepstrum import real_cepstrum
from repro.dsp.dct import dct_features
from repro.dsp.features import scalar_features
from repro.dsp.wavelet import wavedec_energies

#: Process scalars appended when present (zeros otherwise) so the
#: vector length is fixed regardless of instrumentation coverage.
PROCESS_KEYS: tuple[str, ...] = (
    "oil_temp_c",
    "superheat_c",
    "motor_current_a",
    "prv_position_pct",
)

_N_CEPS = 8
_N_DCT = 8
_N_WAVELET_LEVELS = 6

FEATURE_NAMES: tuple[str, ...] = (
    ("peak", "rms", "std", "crest", "kurtosis")
    + tuple(f"ceps{i}" for i in range(1, _N_CEPS + 1))
    + tuple(f"dct{i}" for i in range(1, _N_DCT + 1))
    + tuple(f"wav{i}" for i in range(_N_WAVELET_LEVELS + 1))
    + PROCESS_KEYS
)


def assemble_features(
    waveform: np.ndarray,
    sample_rate: float,
    process: dict[str, float] | None = None,
) -> np.ndarray:
    """Build the fixed-length WNN feature vector for one window.

    Parameters
    ----------
    waveform:
        Short analysis window; length must be a multiple of
        ``2 ** 6`` = 64 for the 6-level wavelet decomposition.
    sample_rate:
        Unused by the scale-free features but kept for interface
        symmetry (and future band features).
    process:
        Process scalars; missing keys contribute 0.
    """
    x = np.asarray(waveform, dtype=np.float64)
    if x.ndim != 1 or x.size < 64:
        raise MprosError(f"need a 1-D window of >= 64 samples, got shape {x.shape}")
    if x.size % (2**_N_WAVELET_LEVELS):
        raise MprosError(
            f"window length {x.size} must be a multiple of {2**_N_WAVELET_LEVELS}"
        )
    s = scalar_features(x)
    parts = [
        np.array([s["peak"], s["rms"], s["std"], s["crest"], s["kurtosis"]]),
        real_cepstrum(x, n_coeffs=_N_CEPS + 1)[1:],
        dct_features(x, n_coeffs=_N_DCT),
        wavedec_energies(x, "db4", levels=_N_WAVELET_LEVELS),
    ]
    proc = process or {}
    parts.append(np.array([float(proc.get(k, 0.0)) for k in PROCESS_KEYS]))
    vec = np.concatenate(parts)
    assert vec.shape == (len(FEATURE_NAMES),)
    return vec


def assemble_batch(
    windows: np.ndarray, sample_rate: float, process: dict[str, float] | None = None
) -> np.ndarray:
    """Feature matrix for a (n_windows, window_len) batch."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 2:
        raise MprosError("windows must be 2-D (n_windows, window_len)")
    return np.vstack([assemble_features(w, sample_rate, process) for w in windows])
