"""The WNN suite as a knowledge source.

"In most cases, the direct output of the WNN must be decoded in order
to produce a feasible format for display or action" — the classifier
decodes class indices back to machine-condition ids, estimates severity
with a ridge regressor on the same features, and emits §7 reports with
the elementary grade-based prognostic.

The suite is trained on short windows (transitory phenomena are its
specialty); :meth:`WnnFaultClassifier.fit_on_plant` generates a
labelled dataset from the plant simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import SourceContext
from repro.algorithms.dli.severity import prognostic_from_grade, score_to_grade
from repro.algorithms.wnn.features import assemble_features
from repro.algorithms.wnn.network import WaveletNeuralNetwork
from repro.algorithms.wnn.train import TrainConfig, TrainResult, train_network
from repro.common.errors import MprosError
from repro.common.ids import ObjectId
from repro.protocol.report import FailurePredictionReport

#: Label 0 is always "healthy": no report is emitted for it.
HEALTHY = "healthy"


@dataclass
class WnnFaultClassifier:
    """Wavelet-neural-network fault classifier + severity regressor.

    Parameters
    ----------
    conditions:
        Machine-condition ids the classifier can call (class 0 is
        implicit 'healthy').
    window:
        Analysis window length in samples (multiple of 64).
    n_hidden:
        Wavelon count.
    min_confidence:
        Softmax probability below which no report is emitted.
    vote_fraction:
        Fraction of windows that must agree before a condition is
        reported.  The default (1/3) suppresses one-off noise on
        persistent faults; set it near zero when hunting *transitory*
        phenomena, where the whole point is that only a couple of
        windows contain the event (§6.2).
    """

    conditions: tuple[str, ...]
    knowledge_source_id: ObjectId = "ks:wnn"
    window: int = 1024
    n_hidden: int = 24
    min_confidence: float = 0.55
    vote_fraction: float = 1.0 / 3.0
    _net: WaveletNeuralNetwork | None = field(default=None, repr=False)
    _ridge: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.conditions:
            raise MprosError("classifier needs at least one condition")
        if self.window % 64:
            raise MprosError("window must be a multiple of 64")

    # -- training ------------------------------------------------------------
    @property
    def classes(self) -> tuple[str, ...]:
        """All class labels, healthy first."""
        return (HEALTHY,) + self.conditions

    def fit(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        severities: np.ndarray | None = None,
        config: TrainConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> TrainResult:
        """Train on a prepared feature matrix and integer labels.

        ``severities`` (same length, in [0, 1]) trains the ridge
        severity regressor; defaults to 1.0 for faulty samples.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        X = np.asarray(X, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        net = WaveletNeuralNetwork(
            n_inputs=X.shape[1],
            n_hidden=self.n_hidden,
            n_classes=len(self.classes),
            rng=rng,
        )
        result = train_network(net, X, labels, config, rng)
        self._net = net
        # Ridge severity regressor on standardized features.
        sev = (
            np.asarray(severities, dtype=np.float64)
            if severities is not None
            else (labels > 0).astype(np.float64)
        )
        Xn = (X - net.mu) / net.sigma
        A = np.hstack([Xn, np.ones((X.shape[0], 1))])
        lam = 1e-3 * np.eye(A.shape[1])
        self._ridge = np.linalg.solve(A.T @ A + lam, A.T @ sev)
        return result

    # -- inference -----------------------------------------------------------
    def _require_net(self) -> WaveletNeuralNetwork:
        if self._net is None:
            raise MprosError("classifier is untrained; call fit() first")
        return self._net

    def classify_window(
        self, window: np.ndarray, sample_rate: float, process: dict[str, float] | None = None
    ) -> tuple[str, float, float]:
        """Classify one window: (condition, confidence, severity)."""
        net = self._require_net()
        x = assemble_features(window, sample_rate, process)
        proba = net.predict_proba(x)[0]
        cls = int(np.argmax(proba))
        Xn = (x - net.mu) / net.sigma
        sev = float(np.clip(np.append(Xn, 1.0) @ self._ridge, 0.0, 1.0))
        return self.classes[cls], float(proba[cls]), sev

    # -- persistence ----------------------------------------------------------
    def save(self, path) -> None:
        """Persist the trained network + severity head to an .npz file.

        "Preparation plans for shipboard deployment include continued
        testing and monitoring, as the installed system will be
        disconnected from our labs for months at a time" (§3.4) — the
        WNN is trained ashore and shipped as weights.
        """
        net = self._require_net()
        np.savez(
            path,
            conditions=np.array(self.conditions, dtype=object),
            window=self.window,
            min_confidence=self.min_confidence,
            vote_fraction=self.vote_fraction,
            W=net.W, t=net.t, a=net.a, V=net.V, c=net.c,
            mu=net.mu, sigma=net.sigma,
            ridge=self._ridge,
        )

    @classmethod
    def load(cls, path, knowledge_source_id: ObjectId = "ks:wnn") -> "WnnFaultClassifier":
        """Restore a classifier saved by :meth:`save`."""
        data = np.load(path, allow_pickle=True)
        clf = cls(
            conditions=tuple(str(c) for c in data["conditions"]),
            knowledge_source_id=knowledge_source_id,
            window=int(data["window"]),
            min_confidence=float(data["min_confidence"]),
            vote_fraction=float(data["vote_fraction"]),
        )
        net = WaveletNeuralNetwork(
            n_inputs=int(data["W"].shape[1]),
            n_hidden=int(data["W"].shape[0]),
            n_classes=len(clf.classes),
        )
        net.W = data["W"]
        net.t = data["t"]
        net.a = data["a"]
        net.V = data["V"]
        net.c = data["c"]
        net.mu = data["mu"]
        net.sigma = data["sigma"]
        clf._net = net
        clf._ridge = data["ridge"]
        return clf

    def analyze(self, ctx: SourceContext) -> list[FailurePredictionReport]:
        """Slide the window over the context's waveform; majority-vote
        windows into at most one report per condition."""
        if ctx.waveform is None or ctx.waveform.size < self.window:
            return []
        net = self._require_net()
        wave = np.asarray(ctx.waveform, dtype=np.float64)
        n_windows = wave.size // self.window
        votes: dict[str, list[tuple[float, float]]] = {}
        for i in range(n_windows):
            seg = wave[i * self.window : (i + 1) * self.window]
            cond, conf, sev = self.classify_window(seg, ctx.sample_rate, ctx.process)
            if cond == HEALTHY or conf < self.min_confidence:
                continue
            votes.setdefault(cond, []).append((conf, sev))
        reports: list[FailurePredictionReport] = []
        for cond, hits in votes.items():
            # Require agreement from enough windows to suppress one-off
            # noise (persistent-fault default: a third of them).
            if len(hits) <= n_windows * self.vote_fraction:
                continue
            confs = np.array([c for c, _ in hits])
            sevs = np.array([s for _, s in hits])
            severity = float(np.clip(np.median(sevs), 0.0, 1.0))
            belief = float(np.clip(confs.mean() * len(hits) / n_windows, 0.0, 1.0))
            grade = score_to_grade(severity)
            reports.append(
                FailurePredictionReport(
                    knowledge_source_id=self.knowledge_source_id,
                    sensed_object_id=ctx.sensed_object_id,
                    machine_condition_id=cond,
                    severity=severity,
                    belief=belief,
                    timestamp=ctx.timestamp,
                    dc_id=ctx.dc_id,
                    explanation=(
                        f"WNN: {len(hits)}/{n_windows} windows classified as {cond} "
                        f"(mean confidence {confs.mean():.2f})"
                    ),
                    prognostic=prognostic_from_grade(grade),
                )
            )
        return reports
