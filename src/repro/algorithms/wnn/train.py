"""Training loop for the wavelet neural network.

Minibatch Adam with early stopping on a validation split — the
"learning to refine its estimates over time" machinery in its simplest
credible form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.wnn.network import WaveletNeuralNetwork
from repro.common.errors import MprosError


@dataclass(frozen=True)
class TrainConfig:
    """Optimizer and schedule settings."""

    epochs: int = 200
    batch_size: int = 64
    learning_rate: float = 3e-3
    l2: float = 1e-4
    validation_fraction: float = 0.2
    patience: int = 20
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise MprosError("epochs and batch_size must be >= 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise MprosError("validation_fraction must be in [0, 1)")


@dataclass
class TrainResult:
    """What a training run reports back."""

    train_losses: list[float]
    val_accuracies: list[float]
    best_epoch: int
    best_val_accuracy: float


def train_network(
    net: WaveletNeuralNetwork,
    X: np.ndarray,
    y: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TrainResult:
    """Train ``net`` in place; returns the loss/accuracy history.

    The network's input standardization is calibrated on the training
    split.  Early stopping restores the best-validation parameters.
    """
    cfg = config or TrainConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise MprosError(f"bad dataset shapes X{X.shape} y{y.shape}")
    n = X.shape[0]
    if n < 4:
        raise MprosError("need at least 4 samples to train")

    order = rng.permutation(n)
    n_val = int(n * cfg.validation_fraction)
    val_idx, train_idx = order[:n_val], order[n_val:]
    Xt, yt = X[train_idx], y[train_idx]
    Xv, yv = (X[val_idx], y[val_idx]) if n_val else (Xt, yt)

    net.calibrate(Xt)
    # Adam state per parameter.
    m = {k: np.zeros_like(v) for k, v in net.parameters().items()}
    v = {k: np.zeros_like(val) for k, val in net.parameters().items()}
    step = 0

    best_acc = -1.0
    best_epoch = 0
    best_params = {k: p.copy() for k, p in net.parameters().items()}
    train_losses: list[float] = []
    val_accs: list[float] = []

    for epoch in range(cfg.epochs):
        perm = rng.permutation(Xt.shape[0])
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, Xt.shape[0], cfg.batch_size):
            idx = perm[start : start + cfg.batch_size]
            loss, grads = net.loss_and_grads(Xt[idx], yt[idx], l2=cfg.l2)
            epoch_loss += loss
            n_batches += 1
            step += 1
            deltas = {}
            for key, g in grads.items():
                m[key] = cfg.beta1 * m[key] + (1 - cfg.beta1) * g
                v[key] = cfg.beta2 * v[key] + (1 - cfg.beta2) * g * g
                mhat = m[key] / (1 - cfg.beta1**step)
                vhat = v[key] / (1 - cfg.beta2**step)
                deltas[key] = -cfg.learning_rate * mhat / (np.sqrt(vhat) + cfg.eps)
            net.apply_update(deltas)
        train_losses.append(epoch_loss / max(1, n_batches))
        acc = float((net.predict(Xv) == yv).mean())
        val_accs.append(acc)
        if acc > best_acc:
            best_acc = acc
            best_epoch = epoch
            best_params = {k: p.copy() for k, p in net.parameters().items()}
        elif epoch - best_epoch >= cfg.patience:
            break

    # Restore the best parameters.
    live = net.parameters()
    for key, p in best_params.items():
        live[key][...] = p
    return TrainResult(
        train_losses=train_losses,
        val_accuracies=val_accs,
        best_epoch=best_epoch,
        best_val_accuracy=best_acc,
    )
