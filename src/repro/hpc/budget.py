"""Embedded resource budgets (§6.3's footprint and cycle claims).

"Our implementation of the SBFR system requires very little memory (100
state machines operating in parallel and their interpreter can fit in
less than 32K bytes) and can cycle with a period of less than 4
milliseconds."  The budget object makes those numbers executable so the
benches and tests can assert against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MprosError
from repro.sbfr.encode import encoded_size
from repro.sbfr.spec import MachineSpec


@dataclass(frozen=True)
class EmbeddedBudget:
    """Resource ceilings for one embedded deployment."""

    total_bytes: int = 32 * 1024      # "less than 32K bytes"
    cycle_seconds: float = 4e-3       # "period of less than 4 ms"
    n_machines: int = 100

    def __post_init__(self) -> None:
        if self.total_bytes < 1 or self.cycle_seconds <= 0 or self.n_machines < 1:
            raise MprosError("budget limits must be positive")


#: The paper's §6.3 deployment budget.
PAPER_SBFR_BUDGET = EmbeddedBudget()


@dataclass(frozen=True)
class BudgetReport:
    """Measured consumption against a budget."""

    machine_bytes: int
    interpreter_bytes: int
    total_bytes: int
    cycle_seconds: float
    budget: EmbeddedBudget

    @property
    def fits_memory(self) -> bool:
        """Within the byte ceiling?"""
        return self.total_bytes < self.budget.total_bytes

    @property
    def fits_cycle(self) -> bool:
        """Within the cycle-period ceiling?"""
        return self.cycle_seconds < self.budget.cycle_seconds

    def describe(self) -> str:
        """One-line summary for bench output."""
        return (
            f"{self.total_bytes} B ({self.machine_bytes} machines + "
            f"{self.interpreter_bytes} interpreter) vs {self.budget.total_bytes} B; "
            f"cycle {self.cycle_seconds * 1e3:.3f} ms vs "
            f"{self.budget.cycle_seconds * 1e3:.1f} ms — "
            f"memory {'OK' if self.fits_memory else 'OVER'}, "
            f"cycle {'OK' if self.fits_cycle else 'OVER'}"
        )


def interpreter_code_bytes() -> int:
    """Bytecode size of the SBFR interpreter's executable core.

    The paper counts its embedded C interpreter at "about 2000 bytes";
    the closest Python analogue is the compiled bytecode of the
    interpreter's methods (strings and constants excluded).
    """
    from repro.sbfr import interpreter as interp_mod

    total = 0
    cls = interp_mod.SbfrSystem
    for name in vars(cls):
        fn = getattr(cls, name)
        code = getattr(fn, "__code__", None)
        if code is not None:
            total += len(code.co_code)
    return total


def check_sbfr_budget(
    machines: list[MachineSpec],
    cycle_seconds: float,
    budget: EmbeddedBudget = PAPER_SBFR_BUDGET,
) -> BudgetReport:
    """Measure a machine population against a budget."""
    machine_bytes = sum(encoded_size(m) for m in machines)
    interp = interpreter_code_bytes()
    return BudgetReport(
        machine_bytes=machine_bytes,
        interpreter_bytes=interp,
        total_bytes=machine_bytes + interp,
        cycle_seconds=cycle_seconds,
        budget=budget,
    )
