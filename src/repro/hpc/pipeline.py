"""Chunked, vectorized feature pipelines.

The DC must reduce raw sample streams to scalar indicators (RMS, peak,
crest, band energies) fast enough to keep up with acquisition.  The
pipeline processes whole (n_channels, n_samples) blocks with a handful
of vectorized passes and writes results into pre-allocated output
arrays — the "vectorize, avoid copies, in-place" discipline from the
HPC guides, measurable against a naive per-channel loop in
``benchmarks/bench_data_rates.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MprosError
from repro.obs.registry import MetricsRegistry, default_registry


@dataclass(frozen=True)
class ChannelSummary:
    """Per-channel scalar indicators for one block."""

    rms: np.ndarray
    peak: np.ndarray
    crest: np.ndarray
    band_energy: np.ndarray   # (n_channels, n_bands)


class FeaturePipeline:
    """Block-at-a-time scalar reduction over many channels.

    Parameters
    ----------
    n_channels / block_samples:
        Fixed block geometry (buffers are pre-allocated for it).
    sample_rate:
        For the band-energy bins.
    bands:
        (lo, hi) Hz band edges for the band-energy outputs.
    """

    def __init__(
        self,
        n_channels: int,
        block_samples: int,
        sample_rate: float,
        bands: tuple[tuple[float, float], ...] = ((0.0, 500.0), (500.0, 2000.0), (2000.0, 8000.0)),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_channels < 1 or block_samples < 8:
            raise MprosError("need n_channels >= 1 and block_samples >= 8")
        if sample_rate <= 0:
            raise MprosError("sample_rate must be positive")
        self.n_channels = n_channels
        self.block_samples = block_samples
        self.sample_rate = sample_rate
        self.bands = bands
        freqs = np.fft.rfftfreq(block_samples, d=1.0 / sample_rate)
        self._band_masks = np.vstack(
            [(freqs >= lo) & (freqs < hi) for lo, hi in bands]
        )
        # Pre-allocated work and output buffers.
        self._sq = np.empty((n_channels, block_samples))
        self._rms = np.empty(n_channels)
        self._peak = np.empty(n_channels)
        self._crest = np.empty(n_channels)
        self._band = np.empty((n_channels, len(bands)))
        self.blocks_processed = 0
        self.points_processed = 0
        reg = metrics if metrics is not None else default_registry()
        self._m_blocks = reg.counter("hpc.pipeline.blocks")
        self._m_points = reg.counter("hpc.pipeline.points")

    def process(self, block: np.ndarray) -> ChannelSummary:
        """Reduce one block; returns views into the internal buffers.

        Callers that need to retain results across blocks must copy.
        """
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (self.n_channels, self.block_samples):
            raise MprosError(
                f"block must be ({self.n_channels}, {self.block_samples}), got {block.shape}"
            )
        np.square(block, out=self._sq)
        np.mean(self._sq, axis=1, out=self._rms)
        np.sqrt(self._rms, out=self._rms)
        np.max(np.abs(block), axis=1, out=self._peak)
        np.divide(
            self._peak,
            np.where(self._rms > 0, self._rms, 1.0),
            out=self._crest,
        )
        spec = np.fft.rfft(block, axis=1)
        power = np.abs(spec) ** 2
        # (n_channels, n_freqs) @ (n_freqs, n_bands) — one matmul for
        # every band of every channel.
        self._band[:] = power @ self._band_masks.T.astype(np.float64)
        self._band /= self.block_samples**2
        self.blocks_processed += 1
        self.points_processed += block.size
        self._m_blocks.inc()
        self._m_points.inc(block.size)
        return ChannelSummary(
            rms=self._rms, peak=self._peak, crest=self._crest, band_energy=self._band
        )


def naive_process(
    block: np.ndarray, sample_rate: float, bands: tuple[tuple[float, float], ...]
) -> ChannelSummary:
    """Per-channel Python-loop reference implementation (the ablation
    baseline: same outputs, no batching, fresh allocations)."""
    n_channels, n_samples = block.shape
    rms = np.empty(n_channels)
    peak = np.empty(n_channels)
    crest = np.empty(n_channels)
    band = np.empty((n_channels, len(bands)))
    freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate)
    for c in range(n_channels):
        x = block[c]
        rms[c] = np.sqrt(np.mean(x**2))
        peak[c] = np.max(np.abs(x))
        crest[c] = peak[c] / rms[c] if rms[c] > 0 else 0.0
        power = np.abs(np.fft.rfft(x)) ** 2
        for b, (lo, hi) in enumerate(bands):
            mask = (freqs >= lo) & (freqs < hi)
            band[c, b] = power[mask].sum() / n_samples**2
    return ChannelSummary(rms=rms, peak=peak, crest=crest, band_energy=band)
