"""Embedded high-performance computing concerns (§1).

"Fleet-wide, thousands of embedded processors will collect millions of
data points per second of data from tens of thousands of locations
each ... The result is evident: significant data loads, multiple
embedded processors, and critical high performance computing needs."

This package quantifies and exercises those loads: fleet data-rate
accounting, chunked vectorized feature pipelines (single-pass,
allocation-free per the HPC guides), a multiprocessing DC farm, and
embedded resource budgets for the SBFR footprint/cycle claims.
"""

from repro.hpc.budget import EmbeddedBudget, check_sbfr_budget
from repro.hpc.datarates import FleetConfig, fleet_data_rate, LoadGenerator
from repro.hpc.parallel import (
    DcReplaySpec,
    merge_fleet_reports,
    parallel_feature_extraction,
    replay_dc,
    replay_fleet,
    serial_feature_extraction,
)
from repro.hpc.pipeline import ChannelSummary, FeaturePipeline

__all__ = [
    "EmbeddedBudget",
    "check_sbfr_budget",
    "FleetConfig",
    "fleet_data_rate",
    "LoadGenerator",
    "DcReplaySpec",
    "merge_fleet_reports",
    "replay_dc",
    "replay_fleet",
    "parallel_feature_extraction",
    "serial_feature_extraction",
    "ChannelSummary",
    "FeaturePipeline",
]
