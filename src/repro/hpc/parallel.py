"""Multiprocessing DC farm.

One physical DC is a single embedded CPU, but the PDME-side replay of a
whole ship (hundreds of DCs) benefits from process parallelism.  Two
farms live here:

* feature extraction — map (n_blocks, n_channels, n_samples) chunks
  over a process pool;
* whole-DC replay — :class:`DcReplaySpec` describes one DC's scenario
  (machines, schedules, faults, seeds) and :func:`replay_fleet` runs
  many specs serially or across a pool.  DCs share nothing (each spec
  derives its own RNG streams and builds its own kernel), so the merged
  report stream is bit-identical either way — property the golden tests
  pin down.

Workers are module-level functions so they pickle cleanly.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.common.errors import MprosError
from repro.hpc.pipeline import FeaturePipeline
from repro.protocol.report import FailurePredictionReport

_BANDS = ((0.0, 500.0), (500.0, 2000.0), (2000.0, 8000.0))


def _summarize_chunk(args: tuple[np.ndarray, float]) -> np.ndarray:
    """Worker: reduce a (n_blocks, n_channels, n_samples) chunk to a
    (n_blocks, n_channels, 3 + n_bands) feature tensor."""
    chunk, sample_rate = args
    n_blocks, n_channels, n_samples = chunk.shape
    pipeline = FeaturePipeline(n_channels, n_samples, sample_rate, _BANDS)
    out = np.empty((n_blocks, n_channels, 3 + len(_BANDS)))
    for i in range(n_blocks):
        s = pipeline.process(chunk[i])
        out[i, :, 0] = s.rms
        out[i, :, 1] = s.peak
        out[i, :, 2] = s.crest
        out[i, :, 3:] = s.band_energy
    return out


def serial_feature_extraction(
    blocks: np.ndarray, sample_rate: float
) -> np.ndarray:
    """Reference single-process reduction of (n_blocks, n_ch, n_s)."""
    return _summarize_chunk((np.asarray(blocks, dtype=np.float64), sample_rate))


def parallel_feature_extraction(
    blocks: np.ndarray, sample_rate: float, n_workers: int = 2
) -> np.ndarray:
    """Reduce blocks across a process pool; identical output to
    :func:`serial_feature_extraction` (order preserved)."""
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 3:
        raise MprosError("blocks must be (n_blocks, n_channels, n_samples)")
    if n_workers < 1:
        raise MprosError("n_workers must be >= 1")
    if n_workers == 1 or blocks.shape[0] < 2:
        return serial_feature_extraction(blocks, sample_rate)
    chunks = np.array_split(blocks, n_workers)
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        parts = list(pool.map(_summarize_chunk, [(c, sample_rate) for c in chunks if c.size]))
    return np.concatenate(parts, axis=0)


# -- whole-DC replay ---------------------------------------------------------

@dataclass(frozen=True)
class DcReplaySpec:
    """Everything needed to replay one DC's scenario in isolation.

    Frozen and picklable: a spec crosses the process-pool boundary, the
    worker rebuilds the DC from it, and the produced reports come back.
    All randomness derives from ``(seed, dc_index)``, so a spec replays
    to the same report stream in any process.

    Attributes
    ----------
    dc_index:
        Position in the fleet (also salts the RNG streams).
    seed:
        Fleet-wide base seed.
    n_machines:
        Machines attached to this DC (vibration channels 0..n-1).
    duration_s:
        Simulated seconds to run.
    vibration_period / process_period:
        Standard test schedule periods.
    n_samples / sample_rate:
        Vibration test block geometry.
    fault_kind:
        Name of a :class:`~repro.plant.faults.FaultKind` to inject on
        ``fault_machine`` (None = healthy DC).
    fault_onset / fault_end / fault_severity:
        Fault profile; ``fault_end`` None gives a constant (seeded)
        fault, otherwise an exponential progression to ``fault_end``.
    fault_machine:
        Index of the machine carrying the fault.
    batch:
        Run the DC's batched hot path (False = scalar ablation).
    reuse_spectra:
        Let the DLI suite share per-scan spectra (False = legacy
        per-frame recomputation; the honest pre-optimization baseline).
    """

    dc_index: int
    seed: int
    n_machines: int = 1
    duration_s: float = 3600.0
    vibration_period: float = 600.0
    process_period: float = 60.0
    n_samples: int = 32768
    sample_rate: float = 16384.0
    fault_kind: str | None = None
    fault_onset: float = 0.0
    fault_end: float | None = None
    fault_severity: float = 1.0
    fault_machine: int = 0
    batch: bool = True
    reuse_spectra: bool = True

    def machine_ids(self) -> tuple[str, ...]:
        """Sensed-object ids of this DC's machines, channel order."""
        return tuple(
            f"obj:fleet-dc{self.dc_index}-m{j}" for j in range(self.n_machines)
        )


def replay_dc(spec: DcReplaySpec) -> list[FailurePredictionReport]:
    """Replay one DC scenario; returns its report stream in sink order.

    Builds a private kernel, metrics registry and simulators (nothing
    shared, nothing global), runs the standard schedules for
    ``duration_s`` and collects every report the DC produces.
    """
    # Local imports keep worker start-up (and pickling surface) small.
    from repro.algorithms.dli.engine import DliExpertSystem
    from repro.algorithms.fuzzy.engine import FuzzyDiagnostics
    from repro.algorithms.sbfr_source import SbfrKnowledgeSource
    from repro.common.rng import derive_rng, make_rng
    from repro.dc.concentrator import DataConcentrator
    from repro.netsim.kernel import EventKernel
    from repro.obs.registry import MetricsRegistry
    from repro.plant import FaultKind
    from repro.plant.chiller import ChillerSimulator
    from repro.plant.faults import progressive, seeded

    if spec.n_machines < 1:
        raise MprosError("spec needs at least one machine")
    root = make_rng(spec.seed)
    metrics = MetricsRegistry()
    kernel = EventKernel(metrics=metrics)
    reports: list[FailurePredictionReport] = []
    dc = DataConcentrator(
        dc_id=f"dc:{spec.dc_index}",
        kernel=kernel,
        sink=reports.append,
        rng=derive_rng(root, "dc", spec.dc_index),
        sample_rate=spec.sample_rate,
        sources=[
            DliExpertSystem(reuse_spectra=spec.reuse_spectra),
            FuzzyDiagnostics(),
            SbfrKnowledgeSource(),
        ],
        metrics=metrics,
        batch=spec.batch,
    )
    for j, machine_id in enumerate(spec.machine_ids()):
        sim = ChillerSimulator(
            rng=derive_rng(root, "chiller", spec.dc_index, j)
        )
        if spec.fault_kind is not None and j == spec.fault_machine:
            kind = FaultKind[spec.fault_kind]
            if spec.fault_end is None:
                sim.inject(
                    seeded(kind, onset=spec.fault_onset, severity=spec.fault_severity)
                )
            else:
                sim.inject(
                    progressive(
                        kind,
                        onset=spec.fault_onset,
                        end=spec.fault_end,
                        peak=spec.fault_severity,
                    )
                )
        dc.attach_machine(
            machine_id,
            f"Fleet machine {spec.dc_index}.{j}",
            sim,
            vibration_channel=j,
        )
    dc.schedule_standard_tests(
        vibration_period=spec.vibration_period,
        process_period=spec.process_period,
    )
    kernel.run_until(spec.duration_s)
    return reports


def merge_fleet_reports(
    streams: list[list[FailurePredictionReport]],
) -> list[FailurePredictionReport]:
    """Deterministic PDME-side merge of per-DC report streams.

    Concatenates in DC order then stable-sorts by timestamp, so
    same-timestamp reports keep DC order — the merged list is a pure
    function of the streams, independent of which process produced
    which."""
    merged: list[FailurePredictionReport] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda r: r.timestamp)
    return merged


def replay_fleet(
    specs: list[DcReplaySpec], n_workers: int = 1
) -> list[FailurePredictionReport]:
    """Replay many DC scenarios and merge their report streams.

    ``n_workers=1`` runs in-process; more workers map specs over a
    process pool.  The output is bit-identical either way (each DC is
    self-contained and the merge is deterministic)."""
    if n_workers < 1:
        raise MprosError("n_workers must be >= 1")
    if n_workers == 1 or len(specs) < 2:
        streams = [replay_dc(s) for s in specs]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            streams = list(pool.map(replay_dc, specs))
    return merge_fleet_reports(streams)
