"""Multiprocessing DC farm.

One physical DC is a single embedded CPU, but the PDME-side replay of a
whole ship (hundreds of DCs) benefits from process parallelism.  The
farm maps channel blocks over a process pool; the worker is a module-
level function so it pickles cleanly, and each worker builds its
pipeline once per chunk (not per block).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.common.errors import MprosError
from repro.hpc.pipeline import FeaturePipeline

_BANDS = ((0.0, 500.0), (500.0, 2000.0), (2000.0, 8000.0))


def _summarize_chunk(args: tuple[np.ndarray, float]) -> np.ndarray:
    """Worker: reduce a (n_blocks, n_channels, n_samples) chunk to a
    (n_blocks, n_channels, 3 + n_bands) feature tensor."""
    chunk, sample_rate = args
    n_blocks, n_channels, n_samples = chunk.shape
    pipeline = FeaturePipeline(n_channels, n_samples, sample_rate, _BANDS)
    out = np.empty((n_blocks, n_channels, 3 + len(_BANDS)))
    for i in range(n_blocks):
        s = pipeline.process(chunk[i])
        out[i, :, 0] = s.rms
        out[i, :, 1] = s.peak
        out[i, :, 2] = s.crest
        out[i, :, 3:] = s.band_energy
    return out


def serial_feature_extraction(
    blocks: np.ndarray, sample_rate: float
) -> np.ndarray:
    """Reference single-process reduction of (n_blocks, n_ch, n_s)."""
    return _summarize_chunk((np.asarray(blocks, dtype=np.float64), sample_rate))


def parallel_feature_extraction(
    blocks: np.ndarray, sample_rate: float, n_workers: int = 2
) -> np.ndarray:
    """Reduce blocks across a process pool; identical output to
    :func:`serial_feature_extraction` (order preserved)."""
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 3:
        raise MprosError("blocks must be (n_blocks, n_channels, n_samples)")
    if n_workers < 1:
        raise MprosError("n_workers must be >= 1")
    if n_workers == 1 or blocks.shape[0] < 2:
        return serial_feature_extraction(blocks, sample_rate)
    chunks = np.array_split(blocks, n_workers)
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        parts = list(pool.map(_summarize_chunk, [(c, sample_rate) for c in chunks if c.size]))
    return np.concatenate(parts, axis=0)
