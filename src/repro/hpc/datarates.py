"""Fleet data-rate accounting and synthetic load generation.

The §1 numbers: thousands of embedded processors, tens of thousands of
locations, "millions of data points per second".  The accounting makes
those loads explicit per tier (sensor → DC → PDME → fleet), and the
load generator produces blocks at a prescribed aggregate rate to drive
throughput benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MprosError


@dataclass(frozen=True)
class FleetConfig:
    """Instrumentation scale knobs.

    Defaults sketch the paper's "eventual implementation": hundreds of
    DCs per ship, 32 dynamic channels per DC, plus slow process scans.
    """

    n_ships: int = 30
    dcs_per_ship: int = 200
    dynamic_channels_per_dc: int = 32
    dynamic_rate_hz: float = 16384.0
    dynamic_duty_cycle: float = 0.05     # vibration tests are periodic
    process_channels_per_dc: int = 64
    process_rate_hz: float = 1.0

    def __post_init__(self) -> None:
        if min(self.n_ships, self.dcs_per_ship, self.dynamic_channels_per_dc) < 1:
            raise MprosError("fleet dimensions must be >= 1")
        if not 0.0 < self.dynamic_duty_cycle <= 1.0:
            raise MprosError("dynamic_duty_cycle must be in (0, 1]")


@dataclass(frozen=True)
class DataRateBreakdown:
    """Points/second at each tier."""

    per_dc: float
    per_ship: float
    fleet: float


def fleet_data_rate(config: FleetConfig) -> DataRateBreakdown:
    """Average data points per second at DC, ship and fleet level.

    >>> rates = fleet_data_rate(FleetConfig())
    >>> rates.fleet > 1e6     # "millions of data points per second"
    True
    """
    dynamic = (
        config.dynamic_channels_per_dc
        * config.dynamic_rate_hz
        * config.dynamic_duty_cycle
    )
    process = config.process_channels_per_dc * config.process_rate_hz
    per_dc = dynamic + process
    per_ship = per_dc * config.dcs_per_ship
    return DataRateBreakdown(
        per_dc=per_dc, per_ship=per_ship, fleet=per_ship * config.n_ships
    )


class LoadGenerator:
    """Produces multichannel sample blocks at a prescribed rate.

    Pre-allocates one block buffer and refills it in place per call —
    the generator must never be the bottleneck of what it drives.
    """

    def __init__(
        self,
        n_channels: int,
        block_samples: int,
        rng: np.random.Generator,
        tone_hz: float = 60.0,
        sample_rate: float = 16384.0,
    ) -> None:
        if n_channels < 1 or block_samples < 1:
            raise MprosError("n_channels and block_samples must be >= 1")
        self.n_channels = n_channels
        self.block_samples = block_samples
        self.rng = rng
        self._buf = np.empty((n_channels, block_samples))
        t = np.arange(block_samples) / sample_rate
        self._carrier = np.sin(2 * np.pi * tone_hz * t)
        self.blocks_generated = 0

    @property
    def points_per_block(self) -> int:
        """Data points produced per call."""
        return self.n_channels * self.block_samples

    def next_block(self) -> np.ndarray:
        """Refill and return the (shared!) block buffer.

        Callers must consume the block before requesting the next one;
        this mirrors DMA double-buffering without the copy.
        """
        # One gaussian fill + broadcast carrier: two vectorized passes.
        self._buf[:] = self.rng.normal(0.0, 0.1, self._buf.shape)
        self._buf += self._carrier
        self.blocks_generated += 1
        return self._buf
