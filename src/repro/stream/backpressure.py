"""Backpressure for the streaming daemon.

The uplink already *survives* overload by shedding its oldest reports —
but shedding is the failure the daemon exists to avoid, not a control
strategy.  This controller reads the same ``dc.uplink.backlog`` gauges
the observability layer exports (one per DC) and reacts *before* the
queue fills:

* above the high-water utilization (or the moment any uplink sheds),
  low-priority periodic scans are deferred on the pressured DCs and the
  daemon's tick interval is stretched, giving each tick a longer drain
  window per unit of new work;
* once every DC is back under the low-water mark (hysteresis — a
  controller that flaps with the queue is worse than none), deferred
  scans are re-enabled and the tick interval returns to nominal.

What counts as "low-priority" is configuration: the default defers the
process-variable scan (the high-rate report producer) and never touches
the RMS alarm scan — constant alarming is the §5 safety function and
keeps running under any pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MprosError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.system import MprosSystem


@dataclass(frozen=True)
class BackpressureEvent:
    """One engage/release transition."""

    t: float
    dc: str
    state: str          # "engaged" | "released"
    utilization: float  # backlog / capacity at the transition
    backlog: int


class BackpressureController:
    """Hysteresis controller over the per-DC uplink backlog gauges.

    Parameters
    ----------
    high / low:
        Utilization (backlog / capacity) water marks; engage at or
        above ``high``, release at or below ``low``.
    stretch:
        Tick-interval multiplier while any DC is under pressure.
    defer_tasks:
        Scheduler task names to disable on a pressured DC (silently
        skipped when a DC does not run them).
    """

    def __init__(
        self,
        system: MprosSystem,
        high: float = 0.5,
        low: float = 0.2,
        stretch: float = 2.0,
        defer_tasks: tuple[str, ...] = ("process-scan",),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < low < high <= 1.0:
            raise MprosError(f"need 0 < low < high <= 1, got low={low} high={high}")
        if stretch < 1.0:
            raise MprosError(f"stretch must be >= 1, got {stretch}")
        self.system = system
        self.high = high
        self.low = low
        self.stretch = stretch
        self.defer_tasks = tuple(defer_tasks)
        self.events: list[BackpressureEvent] = []
        self.ticks_active = 0
        self._pressured: set[str] = set()
        self._last_shed: dict[str, int] = {}
        reg = metrics if metrics is not None else default_registry()
        self._reg = reg
        self._m_active = reg.gauge("stream.backpressure.active_dcs")
        self._m_engaged = reg.counter("stream.backpressure.engaged")
        self._m_released = reg.counter("stream.backpressure.released")

    @property
    def active(self) -> bool:
        """Is any DC currently under backpressure?"""
        return bool(self._pressured)

    def utilization(self, dc_index: int) -> float:
        """One DC's backlog gauge reading over its uplink capacity."""
        uplink = self.system.uplinks[dc_index]
        dc = str(self.system.dcs[dc_index].dc_id)
        # Read the published gauge, not the queue, so the controller
        # sees exactly what a fleet dashboard would see.
        backlog = self.system.metrics.gauge("dc.uplink.backlog", dc=dc).value
        return float(backlog) / float(uplink.capacity)

    def _set_deferred(self, dc_index: int, deferred: bool) -> None:
        scheduler = self.system.dcs[dc_index].scheduler
        names = {t.name for t in scheduler.tasks()}
        for task in self.defer_tasks:
            if task in names:
                scheduler.enable(task, not deferred)

    def update(self) -> float:
        """Re-evaluate every DC; returns the tick-interval multiplier.

        Call once per daemon tick, after the sweep.  Shedding since the
        previous tick engages a DC immediately regardless of the water
        marks — by the time the queue sheds, "approaching full" is no
        longer a question.
        """
        now = self.system.kernel.now()
        for i, uplink in enumerate(self.system.uplinks):
            dc = str(self.system.dcs[i].dc_id)
            util = self.utilization(i)
            shed = uplink.stats.shed
            shedding = shed > self._last_shed.get(dc, 0)
            self._last_shed[dc] = shed
            pressured = dc in self._pressured
            if not pressured and (util >= self.high or shedding):
                self._pressured.add(dc)
                self._set_deferred(i, True)
                self._m_engaged.inc()
                self.events.append(
                    BackpressureEvent(now, dc, "engaged", util, uplink.backlog)
                )
            elif pressured and util <= self.low and not shedding:
                self._pressured.discard(dc)
                self._set_deferred(i, False)
                self._m_released.inc()
                self.events.append(
                    BackpressureEvent(now, dc, "released", util, uplink.backlog)
                )
        self._m_active.set(len(self._pressured))
        if self._pressured:
            self.ticks_active += 1
            return self.stretch
        return 1.0
