"""Always-on streaming mode: the wall-tick pipeline daemon.

§4.9's goal is "long-term unattended operation": MPROS on board is not
a batch job but a process that keeps the acquisition → uplink → PDME
ingest → fusion loop turning through stalls, outages, and bursts.  This
package is that mode over the simulated installation:

* :class:`~repro.stream.daemon.StreamDaemon` — the tick loop itself,
  with per-stage deterministic deadline budgets and skip-empty stages;
* :class:`~repro.stream.watchdog.Watchdog` — dual-signal stall
  detection (heartbeat sweeps × progress beacons) driving the
  retry → stage-restart → DC-restart escalation ladder;
* :class:`~repro.stream.backpressure.BackpressureController` —
  hysteresis over the uplink backlog gauges: defer low-priority scans
  and stretch the tick before the queue ever sheds;
* :class:`~repro.stream.catchup.CatchupController` — bounded replay of
  outage backlogs with a hard staleness cutoff;
* :func:`~repro.stream.drill.run_daemon_drill` — the whole loop under
  a scheduled chaos drill, merged into one CI-gateable verdict.

Time is simulated end to end, so every drill and recovery-time gate is
deterministic and replayable.
"""

from repro.stream.backpressure import BackpressureController, BackpressureEvent
from repro.stream.catchup import CatchupController, CatchupStats
from repro.stream.daemon import STAGES, DaemonConfig, DaemonReport, StreamDaemon
from repro.stream.drill import (
    RECOVERY_CEILING,
    DaemonDrillReport,
    drill_config,
    run_daemon_drill,
)
from repro.stream.watchdog import RUNGS, Watchdog, WatchdogEvent, WatchdogStats

__all__ = [
    "BackpressureController",
    "BackpressureEvent",
    "CatchupController",
    "CatchupStats",
    "DaemonConfig",
    "DaemonDrillReport",
    "DaemonReport",
    "RECOVERY_CEILING",
    "RUNGS",
    "STAGES",
    "StreamDaemon",
    "Watchdog",
    "WatchdogEvent",
    "WatchdogStats",
    "drill_config",
    "run_daemon_drill",
]
