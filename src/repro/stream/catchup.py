"""Bounded catch-up after downtime.

A DC returning from an outage carries its missed window as a recovered
uplink backlog.  Replaying all of it at once is the classic recovery
anti-pattern: the burst competes with live traffic for the link, the
PDME, and the tick budget — exactly when the system is at its most
fragile.  This controller drains the backlog through the batched OOSM
intake (``post_report_batch``, PDME-side dedup by durable report id) in
*bounded per-tick chunks*, after first applying the hard staleness
cutoff: reports older than the cutoff are shed (with full age
accounting, so the loss is visible and attributable) rather than
replayed, because hours-old condition data has already been superseded
by fresher scans and replaying it only delays the live ones.

Catch-up is a skipped stage while every backlog sits at or under the
activation threshold — the threshold separates "normal in-flight tail"
from "missed window", so steady-state ticks never pay for recovery
machinery they do not need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MprosError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.system import MprosSystem


@dataclass
class CatchupStats:
    """What bounded catch-up did over a daemon run."""

    #: Reports put on the wire by catch-up chunks.
    drained: int = 0
    #: Reports shed by the staleness cutoff instead of replayed.
    stale_shed: int = 0
    #: Ticks on which at least one DC was in catch-up.
    ticks_active: int = 0


class CatchupController:
    """Per-tick bounded drain of outage backlogs.

    Parameters
    ----------
    threshold:
        Backlog size (reports) above which a DC enters catch-up; at or
        below it the stage is skipped for that DC.
    chunk:
        Maximum reports a DC replays per tick — the bound that keeps
        recovery from starving live traffic.
    max_batch:
        Reports per ``post_report_batch`` RPC within a chunk.
    staleness_cutoff:
        Hard age bound (seconds, by report timestamp); older reports
        are shed, not replayed.
    """

    def __init__(
        self,
        system: MprosSystem,
        threshold: int = 32,
        chunk: int = 64,
        max_batch: int = 64,
        staleness_cutoff: float = 3600.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if threshold < 0:
            raise MprosError(f"catch-up threshold must be >= 0, got {threshold}")
        if chunk < 1:
            raise MprosError(f"catch-up chunk must be >= 1, got {chunk}")
        if staleness_cutoff <= 0:
            raise MprosError(
                f"staleness cutoff must be > 0, got {staleness_cutoff}"
            )
        self.system = system
        self.threshold = threshold
        self.chunk = chunk
        self.max_batch = max_batch
        self.staleness_cutoff = staleness_cutoff
        self.stats = CatchupStats()
        reg = metrics if metrics is not None else default_registry()
        self._m_drained = reg.counter("stream.catchup.drained")
        self._m_stale = reg.counter("stream.catchup.stale_shed")

    def pending(self) -> bool:
        """Is any DC over the catch-up threshold?  (The daemon's
        skip-empty check for this stage.)"""
        return any(u.backlog > self.threshold for u in self.system.uplinks)

    def update(self) -> int:
        """Run one bounded catch-up slice; returns reports replayed.

        Order per DC: staleness shed first (never spend the chunk
        budget on reports the cutoff would discard), then one forced
        batched flush of at most ``chunk`` reports, oldest first.
        """
        drained = 0
        active = False
        for uplink in self.system.uplinks:
            if uplink.backlog <= self.threshold:
                continue
            active = True
            stale = uplink.shed_stale(self.staleness_cutoff)
            if stale:
                self.stats.stale_shed += stale
                self._m_stale.inc(stale)
            if uplink.backlog <= self.threshold:
                continue
            drained += uplink.flush_batched(
                force=True, max_batch=self.max_batch, limit=self.chunk
            )
        if active:
            self.stats.ticks_active += 1
        if drained:
            self.stats.drained += drained
            self._m_drained.inc(drained)
        return drained
