"""The streaming daemon's watchdog: stall detection + escalation.

The daemon cannot ask a DC whether it is stuck — a hung process answers
nothing — so the watchdog triangulates from two independent signals it
can always read:

* the PDME-side :class:`~repro.supervisor.heartbeat.HeartbeatMonitor`
  sweep (network-visible liveness), and
* per-DC *progress beacons*: the sum of the DC scheduler's task run
  counters.  A process that is alive and scheduled does work every
  tick; a frozen one does not, no matter what the network says.

The two signals split the failure space cleanly.  ``not ALIVE`` with
beacons still advancing is a *network* problem (partition, flap, storm)
— the circuit breaker and store-and-forward uplink own that, and a
restart would only destroy queue state (and, worse, "heal" a partition
the daemon has no business healing).  ``not ALIVE`` with beacons frozen
is a *process* problem, and that is what the escalation ladder is for:

1. ``retry`` — force one uplink flush attempt and wait a tick; a DC
   that was merely slow recovers here for free.
2. ``stage-restart`` — resume the DC scheduler.  This single call heals
   a clock-hold (the §4.9 hung-process case) outright; for a real crash
   it restarts report *production* immediately while the ladder
   continues toward recovery of the backlog.
3. ``dc-restart`` — :meth:`~repro.system.MprosSystem.force_restart_dc`:
   the full crash/recovery choreography (durable backlog reload with
   original report ids, cursor restore, network rejoin).

Once a DC enters the ladder it stays on it until the monitor reports it
ALIVE again — a rung-2 resume restarts the beacons, and without that
stickiness the ladder would reset one rung short of the restart a
crashed DC actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MprosError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.supervisor import DcHealth
from repro.system import MprosSystem

#: Escalation rungs, in order.
RUNGS = ("retry", "stage-restart", "dc-restart")


@dataclass(frozen=True)
class WatchdogEvent:
    """One escalation the watchdog performed."""

    t: float
    dc: str
    rung: str
    reason: str


@dataclass
class WatchdogStats:
    """Counters a daemon report folds in."""

    escalations: dict[str, int] = field(
        default_factory=lambda: {rung: 0 for rung in RUNGS}
    )
    restarts: int = 0
    recovered_reports: int = 0
    #: Completed unhealthy episodes as (dc, seconds-to-recovery).
    recovery_times: list[tuple[str, float]] = field(default_factory=list)


class Watchdog:
    """Per-sweep stall classification and the escalation ladder.

    Parameters
    ----------
    system:
        The assembled installation (must carry a heartbeat monitor).
    restart_cooldown_ticks:
        Healthy-or-not sweeps to wait after a forced restart before the
        ladder may escalate the same DC again — a restart needs a few
        ticks to prove itself before it can be judged a failure.
    """

    def __init__(
        self,
        system: MprosSystem,
        restart_cooldown_ticks: int = 3,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if system.monitor is None:
            raise MprosError("watchdog needs a system with a heartbeat monitor")
        if restart_cooldown_ticks < 1:
            raise MprosError(
                f"restart_cooldown_ticks must be >= 1, got {restart_cooldown_ticks}"
            )
        self.system = system
        self.restart_cooldown_ticks = restart_cooldown_ticks
        self.stats = WatchdogStats()
        self.events: list[WatchdogEvent] = []
        self._strikes: dict[str, int] = {}
        self._cooldown: dict[str, int] = {}
        self._episode_start: dict[str, float] = {}
        self._last_beacon: dict[str, int] = {}
        reg = metrics if metrics is not None else default_registry()
        self._m_rung = {
            rung: reg.counter("stream.watchdog.escalations", rung=rung)
            for rung in RUNGS
        }
        self._m_restarts = reg.counter("stream.watchdog.restarts")

    def beacon(self, dc_index: int) -> int:
        """One DC's progress beacon: total scheduler task runs."""
        return sum(t.runs for t in self.system.dcs[dc_index].scheduler.tasks())

    # -- the ladder --------------------------------------------------------
    def _escalate(self, dc_index: int, name: str, reason: str) -> WatchdogEvent | None:
        now = self.system.kernel.now()
        self._episode_start.setdefault(name, now)
        if self._cooldown.get(name, 0) > 0:
            self._cooldown[name] -= 1
            return None
        strikes = self._strikes.get(name, 0) + 1
        self._strikes[name] = strikes
        rung = RUNGS[min(strikes, len(RUNGS)) - 1]
        self.stats.escalations[rung] += 1
        self._m_rung[rung].inc()
        if rung == "retry":
            self.system.uplinks[dc_index].flush(force=True)
        elif rung == "stage-restart":
            self.system.dcs[dc_index].scheduler.resume()
            self.system.uplinks[dc_index].flush(force=True)
        else:  # dc-restart
            recovered = self.system.force_restart_dc(dc_index)
            self.stats.restarts += 1
            self.stats.recovered_reports += recovered
            self._m_restarts.inc()
            self._strikes[name] = 0
            self._cooldown[name] = self.restart_cooldown_ticks
        event = WatchdogEvent(t=now, dc=name, rung=rung, reason=reason)
        self.events.append(event)
        return event

    def observe(self, states: dict[str, DcHealth]) -> list[WatchdogEvent]:
        """Classify every DC from one monitor sweep; act on stalls.

        Call once per daemon tick with the fresh sweep result.  Returns
        the escalations performed this sweep (often empty).
        """
        now = self.system.kernel.now()
        fired: list[WatchdogEvent] = []
        for i, dc in enumerate(self.system.dcs):
            name = str(dc.dc_id)
            beacon = self.beacon(i)
            progressed = beacon > self._last_beacon.get(name, -1)
            self._last_beacon[name] = beacon
            alive = states.get(name) is DcHealth.ALIVE
            if alive and (progressed or not dc.scheduler.suspended):
                start = self._episode_start.pop(name, None)
                if start is not None:
                    self.stats.recovery_times.append((name, now - start))
                self._strikes[name] = 0
                if self._cooldown.get(name, 0) > 0:
                    self._cooldown[name] -= 1
                continue
            in_episode = name in self._episode_start
            if in_episode or (not alive and not progressed):
                reason = (
                    "beacons frozen"
                    if not progressed
                    else "episode open, still not alive"
                )
                event = self._escalate(i, name, f"{reason}; monitor={states.get(name)}")
                if event is not None:
                    fired.append(event)
            else:
                # Degraded on the network but locally progressing and
                # never frozen: a link problem.  The breaker fails fast,
                # the uplink queues — no restart will improve anything.
                self._strikes[name] = 0
        return fired
