"""The always-on streaming daemon: a wall-tick pipeline loop.

Everything else in the repro is replay-driven — build a system, run the
kernel to a horizon, inspect the wreckage.  The paper's MPROS is the
opposite: an unattended shipboard process that must keep the DC
acquisition → uplink → PDME ingest → fusion loop turning through
stalls, outages and traffic bursts for months.  :class:`StreamDaemon`
is that mode: a long-running loop that drives the existing event kernel
in fixed *ticks*, with a watchdog, backpressure, and bounded catch-up
wrapped around every one.

Each tick runs four stages:

``advance``
    One budgeted kernel slice up to the tick boundary.  The per-stage
    deadline is an *event* budget, not a wall clock — an event budget
    is a pure function of the schedule, so a runaway stage (event
    storm, reschedule loop) is detected identically on every host and
    the detection itself is replayable.  A slice that exhausts its
    budget gets up to ``retry_slices`` more (the watchdog ladder's
    rung 0); a tick that still cannot reach its boundary is recorded as
    stalled and the loop moves on rather than hanging.
``flush``
    Backoff-respecting uplink retry for every DC — skipped entirely
    when no uplink holds a report (skip-empty-stages).
``catchup``
    Bounded replay of outage backlogs through the batched OOSM intake,
    with the hard staleness cutoff (see :mod:`repro.stream.catchup`) —
    skipped while no backlog exceeds the activation threshold.
``sweep``
    Heartbeat-monitor sweep → watchdog escalation ladder → backpressure
    re-evaluation.  Backpressure's verdict sets the *next* tick's
    interval stretch and scan deferrals.

Time is simulated throughout, which is what makes the chaos drills and
the CI recovery gate deterministic: the "wall tick" maps to real time
only at deployment, where the loop body would be driven by a monotonic
timer instead of :meth:`EventKernel.run_budgeted`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import MprosError
from repro.obs.registry import MetricsRegistry, default_registry
from repro.stream.backpressure import BackpressureController, BackpressureEvent
from repro.stream.catchup import CatchupController, CatchupStats
from repro.stream.watchdog import Watchdog, WatchdogEvent, WatchdogStats
from repro.system import MprosSystem

#: Stage names, in per-tick execution order.
STAGES = ("advance", "flush", "catchup", "sweep")


@dataclass(frozen=True)
class DaemonConfig:
    """Knobs for the streaming loop.

    Per-stage deadline budgets are expressed in deterministic units:
    kernel events for ``advance`` (``advance_budget`` per slice,
    ``retry_slices`` extra slices before a tick is declared stalled)
    and report counts for flush/catch-up (``catchup_chunk`` per tick).
    """

    tick_interval: float = 60.0
    advance_budget: int = 200_000
    retry_slices: int = 3
    backpressure_high: float = 0.5
    backpressure_low: float = 0.2
    stretch_factor: float = 2.0
    defer_tasks: tuple[str, ...] = ("process-scan",)
    catchup_threshold: int = 32
    catchup_chunk: int = 64
    catchup_max_batch: int = 64
    staleness_cutoff: float = 3600.0
    restart_cooldown_ticks: int = 3

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise MprosError(f"tick_interval must be > 0, got {self.tick_interval}")
        if self.advance_budget < 1:
            raise MprosError(
                f"advance_budget must be >= 1, got {self.advance_budget}"
            )
        if self.retry_slices < 0:
            raise MprosError(f"retry_slices must be >= 0, got {self.retry_slices}")


@dataclass
class DaemonReport:
    """What the loop did over a run — the daemon-side complement to the
    chaos engine's conservation-law resilience report."""

    ticks: int
    sim_start: float
    sim_end: float
    stage_runs: dict[str, int]
    stage_skips: dict[str, int]
    stalled_ticks: int
    extra_slices: int
    events_executed: int
    watchdog: WatchdogStats
    watchdog_events: list[WatchdogEvent]
    backpressure_events: list[BackpressureEvent]
    ticks_under_backpressure: int
    catchup: CatchupStats
    #: Completed degradation→recovery cycles per DC (satellite of the
    #: flap-detection counter in the heartbeat monitor).
    flap_counts: dict[str, int] = field(default_factory=dict)
    final_health: dict[str, str] = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def all_alive(self) -> bool:
        """Did the run end with every DC healthy?"""
        return all(state == "alive" for state in self.final_health.values())

    @property
    def max_recovery_seconds(self) -> float:
        """Worst watchdog-handled outage, detection to healthy (0.0
        when nothing needed healing)."""
        times = [seconds for _dc, seconds in self.watchdog.recovery_times]
        return max(times) if times else 0.0

    def summary(self) -> str:
        """Human-readable daemon report."""
        lines = [
            f"daemon: {self.ticks} ticks, {self.sim_seconds:.0f} s simulated "
            f"[t+{self.sim_start:.0f}s .. t+{self.sim_end:.0f}s], "
            f"{self.events_executed} kernel events",
            "  stages: " + "  ".join(
                f"{name}={self.stage_runs[name]}r/{self.stage_skips[name]}s"
                for name in STAGES
            ) + "  (r=ran, s=skipped)",
            f"  stalls: {self.stalled_ticks} stalled ticks, "
            f"{self.extra_slices} extra budget slices granted",
            f"  watchdog: "
            + ", ".join(
                f"{rung}={count}"
                for rung, count in self.watchdog.escalations.items()
            )
            + f"; {self.watchdog.restarts} forced restarts, "
            f"{self.watchdog.recovered_reports} reports recovered",
            f"  backpressure: {len(self.backpressure_events)} transitions, "
            f"{self.ticks_under_backpressure} ticks under pressure",
            f"  catch-up: {self.catchup.drained} reports replayed in bounded "
            f"chunks, {self.catchup.stale_shed} shed by staleness cutoff, "
            f"{self.catchup.ticks_active} active ticks",
        ]
        for dc, seconds in self.watchdog.recovery_times:
            lines.append(f"  recovery {dc}: healthy {seconds:.0f} s after detection")
        if self.flap_counts:
            flaps = ", ".join(
                f"{dc}={n}" for dc, n in sorted(self.flap_counts.items())
            )
            lines.append(f"  heartbeat flaps: {flaps}")
        health = ", ".join(
            f"{dc}={state}" for dc, state in sorted(self.final_health.items())
        )
        lines.append(f"  final health: {health or '(no monitor)'}")
        return "\n".join(lines)


class StreamDaemon:
    """The wall-tick pipeline loop over an assembled system."""

    def __init__(
        self,
        system: MprosSystem,
        config: DaemonConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if system.monitor is None:
            raise MprosError(
                "the streaming daemon needs a system with a heartbeat monitor"
            )
        self.system = system
        self.config = config if config is not None else DaemonConfig()
        reg = metrics if metrics is not None else default_registry()
        self.watchdog = Watchdog(
            system,
            restart_cooldown_ticks=self.config.restart_cooldown_ticks,
            metrics=reg,
        )
        self.backpressure = BackpressureController(
            system,
            high=self.config.backpressure_high,
            low=self.config.backpressure_low,
            stretch=self.config.stretch_factor,
            defer_tasks=self.config.defer_tasks,
            metrics=reg,
        )
        self.catchup = CatchupController(
            system,
            threshold=self.config.catchup_threshold,
            chunk=self.config.catchup_chunk,
            max_batch=self.config.catchup_max_batch,
            staleness_cutoff=self.config.staleness_cutoff,
            metrics=reg,
        )
        self.ticks = 0
        self.stalled_ticks = 0
        self.extra_slices = 0
        self.events_executed = 0
        self.stage_runs = {name: 0 for name in STAGES}
        self.stage_skips = {name: 0 for name in STAGES}
        self._stretch = 1.0
        self._sim_start = system.kernel.now()
        self._m_ticks = reg.counter("stream.ticks")
        self._m_stalled = reg.counter("stream.stalled_ticks")
        self._m_stage_runs = {
            name: reg.counter("stream.stage_runs", stage=name) for name in STAGES
        }
        self._m_stage_skips = {
            name: reg.counter("stream.stage_skips", stage=name) for name in STAGES
        }
        self._m_interval = reg.gauge("stream.tick_interval_seconds")
        self._m_interval.set(self.config.tick_interval)

    def _ran(self, stage: str) -> None:
        self.stage_runs[stage] += 1
        self._m_stage_runs[stage].inc()

    def _skipped(self, stage: str) -> None:
        self.stage_skips[stage] += 1
        self._m_stage_skips[stage].inc()

    def tick(self) -> None:
        """Run one full tick: advance → flush → catchup → sweep."""
        cfg = self.config
        kernel = self.system.kernel
        monitor = self.system.monitor
        assert monitor is not None  # constructor guarantees it

        # -- advance: budgeted kernel slice to the tick boundary ----------
        interval = cfg.tick_interval * self._stretch
        self._m_interval.set(interval)
        target = kernel.now() + interval
        completed = False
        for granted in range(cfg.retry_slices + 1):
            executed, completed = kernel.run_budgeted(target, cfg.advance_budget)
            self.events_executed += executed
            if granted > 0:
                self.extra_slices += 1
            if completed:
                break
        if not completed:
            # The tick could not reach its boundary under any granted
            # budget: record the stall and move on — the sweep stage
            # still runs so the watchdog can act, and the next tick
            # resumes from wherever the kernel stopped.
            self.stalled_ticks += 1
            self._m_stalled.inc()
        self._ran("advance")

        # -- flush: backoff-respecting retry (skip-empty) ------------------
        if any(u.backlog for u in self.system.uplinks):
            for uplink in self.system.uplinks:
                if uplink.backlog:
                    uplink.flush()
            self._ran("flush")
        else:
            self._skipped("flush")

        # -- catchup: bounded outage replay (skip-empty) -------------------
        if self.catchup.pending():
            self.catchup.update()
            self._ran("catchup")
        else:
            self._skipped("catchup")

        # -- sweep: monitor → watchdog → backpressure ----------------------
        states = monitor.sweep()
        self.watchdog.observe(states)
        self._stretch = self.backpressure.update()
        self._ran("sweep")

        self.ticks += 1
        self._m_ticks.inc()

    def run(self, ticks: int) -> DaemonReport:
        """Run ``ticks`` full ticks and distill the report."""
        if ticks < 1:
            raise MprosError(f"ticks must be >= 1, got {ticks}")
        for _ in range(ticks):
            self.tick()
        return self.report()

    def run_for(self, sim_seconds: float) -> DaemonReport:
        """Run whole ticks until at least ``sim_seconds`` have elapsed.

        Backpressure stretches ticks, so the tick *count* needed to
        cover a window is not knowable up front; this keeps ticking
        until the window is covered (a stalled tick still counts toward
        the loop bound via the stretched clock, so a wedged kernel
        cannot spin this forever — every tick executes at most
        ``(retry_slices + 1) * advance_budget`` events).
        """
        if sim_seconds <= 0:
            raise MprosError(f"sim_seconds must be > 0, got {sim_seconds}")
        end = self.system.kernel.now() + sim_seconds
        # Worst case every tick stalls without advancing the clock; cap
        # the loop at the unstretched tick count plus the same again in
        # stall headroom so a dead kernel terminates with a report.
        cap = 2 * max(1, math.ceil(sim_seconds / self.config.tick_interval)) + 2
        for _ in range(cap):
            self.tick()
            if self.system.kernel.now() >= end:
                break
        return self.report()

    def report(self) -> DaemonReport:
        """Distill the run so far into a :class:`DaemonReport`."""
        monitor = self.system.monitor
        assert monitor is not None
        final = {dc: state.value for dc, state in monitor.sweep().items()}
        return DaemonReport(
            ticks=self.ticks,
            sim_start=self._sim_start,
            sim_end=self.system.kernel.now(),
            stage_runs=dict(self.stage_runs),
            stage_skips=dict(self.stage_skips),
            stalled_ticks=self.stalled_ticks,
            extra_slices=self.extra_slices,
            events_executed=self.events_executed,
            watchdog=self.watchdog.stats,
            watchdog_events=list(self.watchdog.events),
            backpressure_events=list(self.backpressure.events),
            ticks_under_backpressure=self.backpressure.ticks_active,
            catchup=self.catchup.stats,
            flap_counts=monitor.flap_counts(),
            final_health=final,
        )
