"""The daemon chaos drill: streaming loop under scheduled abuse.

The chaos engine's :class:`~repro.chaos.engine.ResilienceReport` judges
the *installation* (conservation law, breakers, recovery); the daemon's
:class:`~repro.stream.daemon.DaemonReport` judges the *loop* (stalls,
escalations, backpressure, catch-up).  A daemon drill runs both at once
— the scenario scheduled on the same kernel the daemon ticks — and
merges the verdicts into one gate CI can trust:

* the conservation law must balance: zero lost, zero duplicated.
  Shedding is allowed *only* because it is accounted — the daemon's
  backpressure exists to keep it at zero, and the default drill does —
  but an unaccounted report is always a failure;
* every breaker re-closed and every DC ALIVE at the end;
* the worst watchdog-handled outage recovered within the ceiling
  (simulated seconds from detection to healthy — deterministic, so the
  gate never flakes on a loaded CI host).

The drill tunes the daemon for the compressed chaos timeline: low
backpressure water marks (the scenario's storm backlog is small against
the uplink's absolute capacity) and a catch-up threshold under the
crash backlog, so every mechanism actually engages during the run.

One caveat when reading the merged output: the chaos engine's per-fault
recovery inference assumes the *schedule* performs recovery at the end
of each fault window.  Under a daemon the watchdog usually heals the DC
mid-window, so those per-fault lines can read "NOT RECOVERED" while the
daemon report carries the true detection-to-healthy time — the gated
number is :attr:`DaemonReport.max_recovery_seconds`, always.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.engine import ChaosEngine, ResilienceReport
from repro.chaos.scenario import ChaosScenario, daemon_scenario
from repro.obs.registry import MetricsRegistry, default_registry
from repro.stream.daemon import DaemonConfig, DaemonReport, StreamDaemon
from repro.system import build_mpros_system

#: Worst acceptable watchdog recovery (simulated seconds, detection to
#: healthy).  Sweep period 15 s + suspect 40 s / down 90 s thresholds +
#: three ladder rungs a tick apart fit comfortably inside this.
RECOVERY_CEILING = 300.0


def drill_config(tick_interval: float = 60.0) -> DaemonConfig:
    """Daemon knobs tuned for the compressed chaos timeline."""
    return DaemonConfig(
        tick_interval=tick_interval,
        # The scenario's storm builds tens of reports against a 512-slot
        # queue; absolute-capacity water marks would never trip.
        backpressure_high=0.05,
        backpressure_low=0.01,
        # Under the post-crash recovered backlog, over the in-flight tail.
        catchup_threshold=16,
        catchup_chunk=32,
        staleness_cutoff=3600.0,
    )


@dataclass
class DaemonDrillReport:
    """Combined verdict: the installation's resilience report plus the
    daemon's loop report, gated together."""

    resilience: ResilienceReport
    daemon: DaemonReport
    recovery_ceiling: float = RECOVERY_CEILING

    @property
    def ok(self) -> bool:
        """Did the drill meet the always-on bar?

        Unlike :attr:`ResilienceReport.ok`, accounted shedding does not
        fail the drill by itself — backpressure and the staleness
        cutoff shed *deliberately* and visibly — but conservation,
        breaker state, final liveness, and the recovery ceiling are all
        hard requirements.
        """
        return (
            self.resilience.lost == 0
            and self.resilience.duplicated == 0
            and self.resilience.breakers_closed
            and self.daemon.ticks > 0
            and self.daemon.all_alive
            and self.daemon.max_recovery_seconds <= self.recovery_ceiling
        )

    def summary(self) -> str:
        """Both reports plus the merged verdict."""
        lines = [
            self.resilience.summary(),
            self.daemon.summary(),
            f"  recovery ceiling: {self.daemon.max_recovery_seconds:.0f} s "
            f"worst observed vs {self.recovery_ceiling:.0f} s allowed",
            f"  drill verdict: {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines)


def run_daemon_drill(
    scenario: ChaosScenario | None = None,
    quick: bool = False,
    ticks: int | None = None,
    config: DaemonConfig | None = None,
    metrics: MetricsRegistry | None = None,
    recovery_ceiling: float = RECOVERY_CEILING,
) -> DaemonDrillReport:
    """Run the streaming daemon through a chaos scenario and gate it.

    Builds the system from the scenario's seed, schedules the scenario
    on the kernel, then lets the daemon tick through the whole window
    (or exactly ``ticks`` ticks when given).  Fully deterministic: the
    same (scenario, config) pair replays event-for-event.
    """
    scenario = scenario if scenario is not None else daemon_scenario(quick=quick)
    reg = metrics if metrics is not None else default_registry()
    system = build_mpros_system(
        n_chillers=max(2, scenario.max_dc_index() + 1),
        seed=scenario.seed,
        plant=scenario.plant,
        metrics=reg,
    )
    engine = ChaosEngine(system, scenario)
    engine.schedule()
    cfg = config if config is not None else drill_config()
    daemon = StreamDaemon(system, cfg, metrics=reg)
    if ticks is not None:
        daemon_report = daemon.run(ticks)
    else:
        daemon_report = daemon.run_for(scenario.duration)
    # The engine's accounting must also credit reports the *watchdog*
    # recovered via forced restarts, not just its own scheduled ones.
    engine.recovered_reports += daemon.watchdog.stats.recovered_reports
    return DaemonDrillReport(
        resilience=engine.report(),
        daemon=daemon_report,
        recovery_ceiling=recovery_ceiling,
    )
