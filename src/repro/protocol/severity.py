"""DLI severity grades (§6.1).

The DLI expert system "has provided a numerical severity score along
with the fault diagnosis", interpreted through empirical methods into
four gradient categories — Slight, Moderate, Serious and Extreme —
corresponding to expected time to failure of roughly: no foreseeable
failure, months, weeks and days of operation.
"""

from __future__ import annotations

import enum

from repro.common.units import days, months, weeks


class SeverityGrade(enum.IntEnum):
    """The four empirical severity categories, ordered by urgency."""

    SLIGHT = 0
    MODERATE = 1
    SERIOUS = 2
    EXTREME = 3

    @property
    def label(self) -> str:
        """Human-readable capitalized label ('Slight', ...)."""
        return self.name.capitalize()


#: Default numeric-score thresholds (score in [0, 1]) separating the
#: grades.  The paper calls the mapping "empirical"; these cut points
#: are our calibration and can be overridden per installation.
DEFAULT_THRESHOLDS: tuple[float, float, float] = (0.25, 0.50, 0.75)

#: Nominal expected-time-to-failure horizon per grade, in seconds.
#: "no foreseeable failure, failure in months, weeks, and days".
#: SLIGHT uses a 2-year stand-in for "no foreseeable failure".
GRADE_HORIZONS: dict[SeverityGrade, float] = {
    SeverityGrade.SLIGHT: months(24.0),
    SeverityGrade.MODERATE: months(3.0),
    SeverityGrade.SERIOUS: weeks(2.0),
    SeverityGrade.EXTREME: days(3.0),
}


def grade_from_score(
    score: float, thresholds: tuple[float, float, float] = DEFAULT_THRESHOLDS
) -> SeverityGrade:
    """Map a numeric severity score in [0, 1] to a grade.

    Parameters
    ----------
    score:
        Severity score; values outside [0, 1] are rejected.
    thresholds:
        Ascending cut points ``(slight|moderate, moderate|serious,
        serious|extreme)``.

    Examples
    --------
    >>> grade_from_score(0.1).label
    'Slight'
    >>> grade_from_score(0.9).label
    'Extreme'
    """
    if not 0.0 <= score <= 1.0:
        raise ValueError(f"severity score must be in [0, 1], got {score}")
    t1, t2, t3 = thresholds
    if not (0.0 < t1 < t2 < t3 < 1.0):
        raise ValueError(f"thresholds must be strictly ascending in (0,1): {thresholds}")
    if score < t1:
        return SeverityGrade.SLIGHT
    if score < t2:
        return SeverityGrade.MODERATE
    if score < t3:
        return SeverityGrade.SERIOUS
    return SeverityGrade.EXTREME


def grade_to_horizon(grade: SeverityGrade) -> float:
    """Expected time-to-failure horizon (seconds) for a grade."""
    return GRADE_HORIZONS[grade]
