"""Wire encoding of §7 reports.

The original system shipped reports DC→PDME over DCOM; our network
substitute (:mod:`repro.netsim`) carries JSON-compatible dictionaries.
This module is the single place that knows the field layout, so the
schema can evolve without touching transport code.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.common.errors import ProtocolError
from repro.protocol.prognostic import PrognosticVector
from repro.protocol.report import FailurePredictionReport

#: Wire schema version; bumped on incompatible layout changes.
WIRE_VERSION = 1

_REQUIRED = (
    "knowledge_source_id",
    "sensed_object_id",
    "machine_condition_id",
    "severity",
    "belief",
    "timestamp",
)


def encode_report(report: FailurePredictionReport) -> dict[str, Any]:
    """Encode a report into a JSON-compatible dict."""
    return {
        "v": WIRE_VERSION,
        "knowledge_source_id": report.knowledge_source_id,
        "sensed_object_id": report.sensed_object_id,
        "machine_condition_id": report.machine_condition_id,
        "severity": report.severity,
        "belief": report.belief,
        "timestamp": report.timestamp,
        "dc_id": report.dc_id,
        "explanation": report.explanation,
        "recommendations": report.recommendations,
        "additional_info": report.additional_info,
        "prognostic": report.prognostic.to_pairs(),
        "degraded": report.degraded,
    }


def decode_report(payload: Mapping[str, Any]) -> FailurePredictionReport:
    """Decode a wire dict back into a report, validating the schema."""
    version = payload.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    missing = [k for k in _REQUIRED if k not in payload]
    if missing:
        raise ProtocolError(f"wire payload missing fields: {missing}")
    try:
        prognostic = PrognosticVector.from_pairs(
            [(float(t), float(p)) for t, p in payload.get("prognostic", [])]
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed prognostic pairs: {exc}") from exc
    return FailurePredictionReport(
        knowledge_source_id=str(payload["knowledge_source_id"]),
        sensed_object_id=str(payload["sensed_object_id"]),
        machine_condition_id=str(payload["machine_condition_id"]),
        severity=float(payload["severity"]),
        belief=float(payload["belief"]),
        timestamp=float(payload["timestamp"]),
        dc_id=str(payload.get("dc_id", "")),
        explanation=str(payload.get("explanation", "")),
        recommendations=str(payload.get("recommendations", "")),
        additional_info=str(payload.get("additional_info", "")),
        prognostic=prognostic,
        degraded=bool(payload.get("degraded", False)),
    )


def to_json(report: FailurePredictionReport) -> str:
    """Serialize a report to a JSON string (network/persistence form)."""
    return json.dumps(encode_report(report), separators=(",", ":"))


def from_json(text: str) -> FailurePredictionReport:
    """Parse a JSON string produced by :func:`to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid report JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("report JSON must be an object")
    return decode_report(payload)
