"""The failure-prediction report (§5.5, §7.2, §7.3).

Every knowledge source — DC-resident or PDME-resident — communicates
conclusions in this one format, so that the PDME can fuse and display
results "from many diverse expert systems supplying diagnostic and
prognostic conclusions based upon similar, overlapping or entirely
disjoint sensor readings" (§7.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ProtocolError
from repro.common.ids import ObjectId
from repro.protocol.prognostic import PrognosticVector


class ReportKind(enum.Enum):
    """Whether a report carries a diagnosis, a prognosis, or both."""

    DIAGNOSTIC = "diagnostic"
    PROGNOSTIC = "prognostic"
    COMBINED = "combined"


@dataclass(frozen=True)
class FailurePredictionReport:
    """One §7 report.

    Field names follow §7.2/§7.3; §5.5 notes "not all reports need use
    all fields", so the text fields and the prognostic vector are
    optional.

    Attributes
    ----------
    knowledge_source_id:
        Unique MPROS object ID of the emitting knowledge source (KS ID).
    sensed_object_id:
        Unique MPROS object ID of the machine/part this report applies to.
    machine_condition_id:
        Unique MPROS object ID of the diagnosed machine condition
        (e.g. motor imbalance, pump bearing housing looseness).
    severity:
        Relative severity of the condition, in [0, 1]; 1.0 maximal.
    belief:
        Belief that the diagnosis is true, in [0, 1]; 1.0 maximal.
    timestamp:
        Simulated seconds at which the report is "effective".
    dc_id:
        Identifier of the data concentrator that sourced the report
        (empty for PDME-resident sources).
    explanation / recommendations / additional_info:
        Optional human-readable text (possibly very long; may be blank).
    prognostic:
        Optional prognostic vector; an empty vector means the source
        offers no failure projection ("zero to n ordered pairs").
    degraded:
        True when the issuing DC produced this report in degraded mode
        (e.g. its vibration channel is quarantined and the analysis ran
        on process variables only).  Consumers should weight such
        conclusions accordingly rather than treat the DC as silent.
    """

    knowledge_source_id: ObjectId
    sensed_object_id: ObjectId
    machine_condition_id: ObjectId
    severity: float
    belief: float
    timestamp: float
    dc_id: ObjectId = ""
    explanation: str = ""
    recommendations: str = ""
    additional_info: str = ""
    prognostic: PrognosticVector = field(default_factory=PrognosticVector.empty)
    degraded: bool = False

    def __post_init__(self) -> None:
        for name in ("knowledge_source_id", "sensed_object_id", "machine_condition_id"):
            if not getattr(self, name):
                raise ProtocolError(f"report field {name} must be non-empty")
        if not 0.0 <= self.severity <= 1.0:
            raise ProtocolError(f"severity must be in [0, 1], got {self.severity}")
        if not 0.0 <= self.belief <= 1.0:
            raise ProtocolError(f"belief must be in [0, 1], got {self.belief}")
        if self.timestamp < 0:
            raise ProtocolError(f"timestamp must be >= 0, got {self.timestamp}")
        if not isinstance(self.prognostic, PrognosticVector):
            raise ProtocolError("prognostic must be a PrognosticVector")

    @property
    def kind(self) -> ReportKind:
        """Classify the report by what it carries."""
        if len(self.prognostic) and self.belief > 0:
            return ReportKind.COMBINED
        if len(self.prognostic):
            return ReportKind.PROGNOSTIC
        return ReportKind.DIAGNOSTIC

    def with_timestamp(self, t: float) -> "FailurePredictionReport":
        """Copy of this report re-stamped at time ``t``."""
        return FailurePredictionReport(
            knowledge_source_id=self.knowledge_source_id,
            sensed_object_id=self.sensed_object_id,
            machine_condition_id=self.machine_condition_id,
            severity=self.severity,
            belief=self.belief,
            timestamp=t,
            dc_id=self.dc_id,
            explanation=self.explanation,
            recommendations=self.recommendations,
            additional_info=self.additional_info,
            prognostic=self.prognostic,
            degraded=self.degraded,
        )

    def summary(self) -> str:
        """One-line human-readable summary for logs and the browser."""
        tail = f", {len(self.prognostic)}-pt prognosis" if len(self.prognostic) else ""
        tail += ", degraded" if self.degraded else ""
        return (
            f"[{self.timestamp:.1f}s] {self.knowledge_source_id} -> "
            f"{self.sensed_object_id}: {self.machine_condition_id} "
            f"(sev {self.severity:.2f}, bel {self.belief:.2f}{tail})"
        )
