"""§7 Failure Prediction Reporting Protocol.

The standard report every knowledge source emits toward the PDME:
identifiers, machine condition, severity, belief, human-readable text
and an optional prognostic vector of (probability, time) pairs.
"""

from repro.protocol.canonical import canonical_json, report_to_dict
from repro.protocol.prognostic import PrognosticPoint, PrognosticVector
from repro.protocol.report import FailurePredictionReport, ReportKind
from repro.protocol.severity import SeverityGrade, grade_from_score, grade_to_horizon
from repro.protocol.wire import decode_report, encode_report

__all__ = [
    "canonical_json",
    "report_to_dict",
    "PrognosticPoint",
    "PrognosticVector",
    "FailurePredictionReport",
    "ReportKind",
    "SeverityGrade",
    "grade_from_score",
    "grade_to_horizon",
    "decode_report",
    "encode_report",
]
