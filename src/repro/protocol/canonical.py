"""Canonical JSON serialization of report streams.

Golden-master tests and the fleet replay equivalence checks need a
*byte-stable* rendering of a report list: same reports in, same bytes
out, across processes and platforms.  Floats are rounded to a fixed
number of decimals before encoding — enough precision to catch any
real behavioural change, while immune to last-ulp formatting drift.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.protocol.report import FailurePredictionReport

#: Decimal places kept for float fields.  12 significant decimals is far
#: below any physically meaningful tolerance in the pipeline but well
#: above float32 noise, so a golden mismatch is a genuine change.
FLOAT_DECIMALS = 12


def report_to_dict(report: FailurePredictionReport) -> dict:
    """One report as a plain, JSON-ready dict (fields in schema order)."""
    return {
        "knowledge_source_id": report.knowledge_source_id,
        "sensed_object_id": report.sensed_object_id,
        "machine_condition_id": report.machine_condition_id,
        "severity": round(float(report.severity), FLOAT_DECIMALS),
        "belief": round(float(report.belief), FLOAT_DECIMALS),
        "timestamp": round(float(report.timestamp), FLOAT_DECIMALS),
        "dc_id": report.dc_id,
        "explanation": report.explanation,
        "recommendations": report.recommendations,
        "additional_info": report.additional_info,
        "prognostic": [
            [round(float(t), FLOAT_DECIMALS), round(float(p), FLOAT_DECIMALS)]
            for t, p in zip(report.prognostic.times, report.prognostic.probabilities)
        ],
        "degraded": report.degraded,
    }


def canonical_json(reports: Iterable[FailurePredictionReport]) -> str:
    """Byte-stable JSON document for a report stream (order preserved)."""
    doc = {"reports": [report_to_dict(r) for r in reports]}
    return json.dumps(doc, indent=2, sort_keys=True, ensure_ascii=True) + "\n"


def _round_tree(value):
    if isinstance(value, float):
        # + 0.0 folds -0.0 into 0.0 so sign-of-zero drift between two
        # arithmetically equal pipelines cannot break byte identity.
        return round(value, FLOAT_DECIMALS) + 0.0
    if isinstance(value, dict):
        return {key: _round_tree(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_tree(v) for v in value]
    return value


def canonical_dumps(doc) -> str:
    """Byte-stable JSON for an arbitrary JSON-ready tree.

    The generalization of :func:`canonical_json` used by the fused-model
    snapshots: every float in the tree is rounded to
    :data:`FLOAT_DECIMALS`, keys are sorted, output is ASCII.  Two
    pipelines that compute the same values — e.g. a single fusion
    engine and N sharded engines over the same report stream — produce
    the same bytes.
    """
    return json.dumps(
        _round_tree(doc), indent=2, sort_keys=True, ensure_ascii=True
    ) + "\n"
