"""Prognostic vectors (§5.4, §7.3).

"Prognostics are defined in this system as time point, probability
pairs, and lists of these pairs."  A pair ``(t, p)`` asserts
probability ``p`` that the machine condition leads to failure within
``t`` seconds from the report's effective time.

A well-formed vector has strictly increasing times and non-decreasing
probabilities in [0, 1] — the probability of having failed *by* a
later time can never be smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.common.errors import ProtocolError


@dataclass(frozen=True, order=True)
class PrognosticPoint:
    """One (time, probability) pair.

    Attributes
    ----------
    time:
        Horizon in seconds from the report's effective timestamp.
    probability:
        Probability of failure within ``time`` seconds.
    """

    time: float
    probability: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ProtocolError(f"prognostic time must be >= 0, got {self.time}")
        if not 0.0 <= self.probability <= 1.0:
            raise ProtocolError(
                f"prognostic probability must be in [0, 1], got {self.probability}"
            )


class PrognosticVector:
    """An ordered list of :class:`PrognosticPoint`.

    Immutable after construction.  Provides the numeric views that
    knowledge fusion needs (times/probabilities arrays, interpolation
    and extrapolation of failure probability at arbitrary horizons).

    Examples
    --------
    >>> from repro.common.units import months
    >>> v = PrognosticVector.from_pairs(
    ...     [(months(3), 0.01), (months(4), 0.5), (months(5), 0.99)])
    >>> len(v)
    3
    >>> round(v.probability_at(months(4)), 2)
    0.5
    """

    __slots__ = ("_points", "_times", "_probs")

    def __init__(self, points: Iterable[PrognosticPoint]) -> None:
        pts = sorted(points, key=lambda p: p.time)
        times = np.array([p.time for p in pts], dtype=np.float64)
        probs = np.array([p.probability for p in pts], dtype=np.float64)
        if times.size:
            if np.any(np.diff(times) <= 0):
                raise ProtocolError(f"prognostic times must be strictly increasing: {times}")
            if np.any(np.diff(probs) < 0):
                raise ProtocolError(
                    f"failure probabilities must be non-decreasing in time: {probs}"
                )
        self._points = tuple(pts)
        self._times = times
        self._probs = probs

    # -- construction -------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "PrognosticVector":
        """Build from ``(time_seconds, probability)`` tuples."""
        return cls(PrognosticPoint(t, p) for t, p in pairs)

    @classmethod
    def empty(cls) -> "PrognosticVector":
        """The zero-length vector ('zero to n ordered pairs', §7.3)."""
        return cls(())

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[PrognosticPoint]:
        return iter(self._points)

    def __getitem__(self, i: int) -> PrognosticPoint:
        return self._points[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrognosticVector):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    # -- numeric views -------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Horizon times in seconds (read-only view)."""
        v = self._times.view()
        v.flags.writeable = False
        return v

    @property
    def probabilities(self) -> np.ndarray:
        """Failure probabilities (read-only view)."""
        v = self._probs.view()
        v.flags.writeable = False
        return v

    def probability_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """Failure probability by horizon ``t``, linearly interpolated.

        Before the first point the curve ramps linearly from (0, 0);
        past the last point it extrapolates along the final segment's
        slope, clipped to 1.0 (and held at the last value for a
        single-point vector).
        """
        t_arr = np.asarray(t, dtype=np.float64)
        if len(self) == 0:
            out = np.zeros_like(t_arr)
            return float(out) if np.isscalar(t) else out

        times = self._times
        probs = self._probs
        # Anchor at (0, 0) unless the vector already starts at t=0.
        if times[0] > 0:
            times = np.concatenate(([0.0], times))
            probs = np.concatenate(([0.0], probs))
        out = np.interp(t_arr, times, probs)
        # Linear extrapolation beyond the last knot (single-point
        # vectors hold their value: one observation defines no slope).
        if len(self) >= 2:
            slope = (probs[-1] - probs[-2]) / (times[-1] - times[-2])
            beyond = t_arr > times[-1]
            out = np.where(beyond, probs[-1] + slope * (t_arr - times[-1]), out)
        out = np.clip(out, 0.0, 1.0)
        return float(out) if np.isscalar(t) else out

    def time_to_probability(self, p: float) -> float:
        """Earliest horizon at which failure probability reaches ``p``.

        Used for "time to failure" estimates (§3.3): e.g.
        ``time_to_probability(0.5)`` is the median predicted life.
        Returns ``inf`` if the (extrapolated) curve never reaches ``p``.
        """
        if not 0.0 < p <= 1.0:
            raise ProtocolError(f"probability threshold must be in (0, 1], got {p}")
        if len(self) == 0:
            return float("inf")
        times = self._times
        probs = self._probs
        if times[0] > 0:
            times = np.concatenate(([0.0], times))
            probs = np.concatenate(([0.0], probs))
        idx = int(np.searchsorted(probs, p, side="left"))
        if idx < probs.size:
            if idx == 0:
                return float(times[0])
            t0, t1 = times[idx - 1], times[idx]
            p0, p1 = probs[idx - 1], probs[idx]
            if p1 == p0:
                return float(t1)
            return float(t0 + (p - p0) * (t1 - t0) / (p1 - p0))
        # Extrapolate along the final segment.
        if len(self) >= 2:
            slope = (probs[-1] - probs[-2]) / (times[-1] - times[-2])
            if slope > 0:
                return float(times[-1] + (p - probs[-1]) / slope)
        return float("inf")

    def shifted(self, dt: float) -> "PrognosticVector":
        """Re-base the vector by ``dt`` seconds (report-age correction).

        A vector issued ``dt`` seconds ago asserting failure within
        ``t`` is, from *now*, a claim about ``t - dt``; horizons that
        have already elapsed are clamped to a zero-time point.
        """
        if dt == 0 or len(self) == 0:
            return self
        pairs: list[tuple[float, float]] = []
        for p in self._points:
            pairs.append((max(0.0, p.time - dt), p.probability))
        # Clamping can create duplicate zero times; keep the max prob.
        dedup: dict[float, float] = {}
        for t, pr in pairs:
            dedup[t] = max(dedup.get(t, 0.0), pr)
        out = sorted(dedup.items())
        # Enforce monotone probabilities after dedup.
        mono: list[tuple[float, float]] = []
        running = 0.0
        for t, pr in out:
            running = max(running, pr)
            mono.append((t, running))
        return PrognosticVector.from_pairs(mono)

    def to_pairs(self) -> list[tuple[float, float]]:
        """Plain ``[(time, probability), ...]`` list (wire form)."""
        return [(p.time, p.probability) for p in self._points]

    def __repr__(self) -> str:
        inner = ", ".join(f"({p.time:.6g}s, {p.probability:.3g})" for p in self._points)
        return f"PrognosticVector([{inner}])"
