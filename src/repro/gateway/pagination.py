"""Keyset pagination: opaque cursors, never OFFSET.

Every paged gateway listing seeks from the last key of the previous
page.  ``OFFSET n`` re-scans n rows per page — O(n²) to drain a log —
and, worse, skips or duplicates rows when a writer inserts below the
offset mid-pagination.  A keyset cursor is immune to both: the seek
cost is constant and concurrent appends land strictly beyond
already-served keys, so an in-flight pagination sees every row that
existed when it started, exactly once.

Cursor wire form: ``"k<key>.<seq>"`` for log pages (the
``(IFNULL(intake_seq,-1), seq)`` coordinate) and ``"s<key>"`` for
string-keyed listings (managed objects by id).  Cursors are opaque to
clients — only :func:`encode_cursor` / :func:`decode_cursor` may
interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.common.errors import GatewayError

#: Listing page-size ceiling: a single page never costs more than this
#: many rows, no matter what the client asks for.
MAX_PAGE_SIZE = 1000

DEFAULT_PAGE_SIZE = 50


def clamp_limit(limit: int | None) -> int:
    """The effective page size for a requested limit."""
    if limit is None:
        return DEFAULT_PAGE_SIZE
    if limit < 1:
        raise GatewayError(f"page limit must be positive, got {limit}")
    return min(limit, MAX_PAGE_SIZE)


def encode_cursor(key: tuple[int, int]) -> str:
    """Render a log-page coordinate as an opaque cursor string."""
    return f"k{key[0]}.{key[1]}"


def decode_cursor(cursor: str | None) -> tuple[int, int] | None:
    """Parse a log-page cursor (None passes through: first page)."""
    if cursor is None or cursor == "":
        return None
    if not cursor.startswith("k") or "." not in cursor:
        raise GatewayError(f"malformed page cursor {cursor!r}")
    head, _, tail = cursor[1:].partition(".")
    try:
        return (int(head), int(tail))
    except ValueError as exc:
        raise GatewayError(f"malformed page cursor {cursor!r}") from exc


def encode_string_cursor(key: str) -> str:
    """Cursor form for string-keyed listings (entity ids)."""
    return f"s{key}"


def decode_string_cursor(cursor: str | None) -> str | None:
    if cursor is None or cursor == "":
        return None
    if not cursor.startswith("s"):
        raise GatewayError(f"malformed string cursor {cursor!r}")
    return cursor[1:]


@dataclass(frozen=True)
class Page:
    """One page of resources plus the cursor to fetch the next one.

    ``next_cursor`` is None exactly when this page is known to be the
    last (fewer items than requested).  A full page always carries a
    cursor, even if it happens to end on the final row — the client's
    next fetch returns an empty last page.
    """

    items: tuple[Any, ...]
    next_cursor: str | None

    def to_json(self) -> dict:
        return {
            "items": [
                item.to_json() if hasattr(item, "to_json") else item
                for item in self.items
            ],
            "nextCursor": self.next_cursor,
        }


def page_sequence(
    items: Sequence[Any],
    key_of: Callable[[Any], str],
    after: str | None,
    limit: int,
) -> Page:
    """Keyset-paginate an in-memory sequence sorted by ``key_of``.

    ``items`` must already be sorted by the key (unique per item).  The
    seek is a binary search, so deep pages stay cheap even on long
    listings.
    """
    import bisect

    keys = [key_of(item) for item in items]
    start = 0 if after is None else bisect.bisect_right(keys, after)
    window = items[start : start + limit]
    cursor = (
        encode_string_cursor(key_of(window[-1]))
        if len(window) == limit
        else None
    )
    return Page(items=tuple(window), next_cursor=cursor)
