"""The fleet query gateway: MPROS's high-throughput read path.

A typed resource layer (managed objects, measurements, reports,
alarms, subscriptions) over the OOSM and fused PDME state, engineered
for the "millions of users" serving claim: versioned snapshot caching
keyed by intake watermarks, keyset pagination over the durable report
log, push subscriptions riding the OOSM event bus, and read replicas
over the sharded PDME's partition logs so readers never contend with
ingest.  See :mod:`repro.gateway.service` for the architecture notes.
"""

from repro.gateway.cache import DEFAULT_MAX_ENTRIES, VersionedCache
from repro.gateway.pagination import (
    DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE,
    Page,
    clamp_limit,
    decode_cursor,
    encode_cursor,
    page_sequence,
)
from repro.gateway.replica import ReadReplica
from repro.gateway.resources import (
    Alarm,
    ManagedObject,
    Measurement,
    Report,
    Subscription,
)
from repro.gateway.server import GatewayHTTPServer, serve
from repro.gateway.service import (
    FleetGateway,
    gateway_for_executive,
    gateway_for_sharded,
)

__all__ = [
    "Alarm",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_PAGE_SIZE",
    "FleetGateway",
    "GatewayHTTPServer",
    "ManagedObject",
    "MAX_PAGE_SIZE",
    "Measurement",
    "Page",
    "ReadReplica",
    "Report",
    "Subscription",
    "VersionedCache",
    "clamp_limit",
    "decode_cursor",
    "encode_cursor",
    "gateway_for_executive",
    "gateway_for_sharded",
    "page_sequence",
    "serve",
]
