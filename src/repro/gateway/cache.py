"""The versioned snapshot/response cache behind the gateway read path.

The perf problem: every fleet-health query used to re-walk the fused
model (``fused_snapshot()`` re-evaluates every prognostic curve at
``as_of``) and re-serialize canonical JSON — O(fleet) work per query,
repeated for every one of "millions of users" asking the same
question.  The fix is not time-based expiry (wall clocks are banned in
this tree, and staleness bugs hide behind TTLs) but *versioned keys*:

* every cache key embeds the version of the state it was derived from
  — the PDME's ``intake_watermark`` (the next global ``intake_seq``)
  for fused state, :attr:`ShipModel.version` for entity state;
* ingest bumps the watermark, so the next query's key simply *misses*
  and recomputes — invalidation is a consequence of the key, never a
  side effect someone can forget;
* repeat queries between ingest batches are O(1) dict hits returning
  the exact bytes the uncached path would produce (the bench asserts
  byte-identity every run).

Entries are LRU-evicted at ``max_entries``; superseded versions age
out of the LRU naturally since nothing ever asks for them again.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.common.errors import GatewayError
from repro.obs.registry import MetricsRegistry, default_registry

#: Default response-cache capacity.  Keys are (endpoint, params,
#: version) tuples; one fleet snapshot dominates the byte budget, so
#: a few hundred entries cover every distinct live query shape.
DEFAULT_MAX_ENTRIES = 512


class VersionedCache:
    """A bounded LRU for version-keyed responses, with obs counters.

    ``get``/``put`` are the whole interface; the *caller* builds keys
    that embed the source-state version, which is what makes hits
    sound.  Metrics land in the shared registry:

    * ``gateway.cache.hits`` / ``gateway.cache.misses`` — hit-rate
      visibility for capacity planning;
    * ``gateway.cache.evictions`` — thrash detector (rising evictions
      at a steady working set means ``max_entries`` is too small).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 1:
            raise GatewayError(
                f"cache needs at least one entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        reg = metrics if metrics is not None else default_registry()
        self._m_hits = reg.counter("gateway.cache.hits")
        self._m_misses = reg.counter("gateway.cache.misses")
        self._m_evictions = reg.counter("gateway.cache.evictions")

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or None; hits refresh LRU recency."""
        try:
            value = self._entries[key]
        except KeyError:
            self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._m_hits.inc()
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Store and return ``value``, evicting the LRU tail if full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._m_evictions.inc()
        return value

    def clear(self) -> int:
        """Drop everything (administrative reset); returns the count."""
        n = len(self._entries)
        self._entries.clear()
        return n

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def misses(self) -> int:
        return int(self._m_misses.value)
