"""Typed gateway resources over OOSM entities and fused PDME state.

The split follows the Cumulocity ``c8y_api.model`` layout the ROADMAP
names as the reference — one small typed class per API resource kind —
mapped onto MPROS concepts:

* :class:`ManagedObject`  — an OOSM entity plus its relationship view
* :class:`Measurement`    — one (severity, belief) sample about an
  object at a time, the time-series view of a §7 report
* :class:`Report`         — one stored failure-prediction report with
  its log identity (``intake_seq`` + row id)
* :class:`Alarm`          — a fused diagnostic state crossing the
  alarm threshold
* :class:`Subscription`   — a live push registration riding the OOSM
  event bus

Every resource renders through :meth:`to_json` into a plain JSON-ready
dict with deterministically ordered collections, so
:func:`repro.protocol.canonical.canonical_dumps` yields byte-stable
responses — the property the gateway's golden tests and the bench's
cached-vs-uncached oracle both pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.ids import ObjectId
from repro.oosm.model import ShipModel
from repro.oosm.query import system_of
from repro.protocol.canonical import FLOAT_DECIMALS, report_to_dict
from repro.protocol.report import FailurePredictionReport


def _rounded(value: float) -> float:
    return round(float(value), FLOAT_DECIMALS) + 0.0


@dataclass(frozen=True)
class ManagedObject:
    """One OOSM entity as an API resource.

    Relationship sets are materialized sorted so the rendering is
    byte-stable regardless of the model's internal set ordering.
    """

    id: ObjectId
    type: str
    name: str
    properties: dict[str, Any]
    parent: ObjectId | None
    system: ObjectId
    child_assets: tuple[ObjectId, ...]
    proximate: tuple[ObjectId, ...]
    flows_to: tuple[ObjectId, ...]
    monitored_by: tuple[ObjectId, ...]

    @classmethod
    def from_entity(cls, model: ShipModel, entity_id: ObjectId) -> "ManagedObject":
        entity = model.get(entity_id)
        wholes = model.related(entity_id, "part-of")
        return cls(
            id=entity.id,
            type=entity.type_name,
            name=entity.name,
            properties=dict(entity.properties),
            parent=next(iter(wholes)) if wholes else None,
            system=system_of(model, entity_id),
            child_assets=tuple(sorted(model.related_in(entity_id, "part-of"))),
            proximate=tuple(sorted(model.related(entity_id, "proximate-to"))),
            flows_to=tuple(sorted(model.related(entity_id, "flow"))),
            monitored_by=tuple(sorted(model.related_in(entity_id, "monitors"))),
        )

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "type": self.type,
            "name": self.name,
            "properties": dict(self.properties),
            "parent": self.parent,
            "system": self.system,
            "childAssets": list(self.child_assets),
            "proximate": list(self.proximate),
            "flowsTo": list(self.flows_to),
            "monitoredBy": list(self.monitored_by),
        }


@dataclass(frozen=True)
class Measurement:
    """One condition sample about an object — the series view of a
    report, without the prose fields."""

    object_id: ObjectId
    condition_id: ObjectId
    source_id: ObjectId
    time: float
    severity: float
    belief: float
    degraded: bool

    @classmethod
    def from_report(cls, report: FailurePredictionReport) -> "Measurement":
        return cls(
            object_id=report.sensed_object_id,
            condition_id=report.machine_condition_id,
            source_id=report.knowledge_source_id,
            time=report.timestamp,
            severity=report.severity,
            belief=report.belief,
            degraded=report.degraded,
        )

    def to_json(self) -> dict:
        return {
            "object": self.object_id,
            "condition": self.condition_id,
            "source": self.source_id,
            "time": _rounded(self.time),
            "severity": _rounded(self.severity),
            "belief": _rounded(self.belief),
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class Report:
    """One stored failure-prediction report with its log identity.

    ``intake_seq`` is the router-stamped global arrival order (None for
    rows predating the sharded log); ``row_id`` identifies the row
    within its partition.  Together they are the keyset-pagination
    coordinate the log index seeks on.
    """

    intake_seq: int | None
    row_id: int
    report_id: str | None
    report: FailurePredictionReport

    def to_json(self) -> dict:
        return {
            "intakeSeq": self.intake_seq,
            "rowId": self.row_id,
            "reportId": self.report_id,
            "report": report_to_dict(self.report),
        }


@dataclass(frozen=True)
class Alarm:
    """A fused diagnostic state whose severity crossed the threshold.

    Derived resources: alarms are *views* of the fused snapshot, not
    stored rows — re-deriving at the same ``(as_of, watermark)`` yields
    the identical list, which is why alarm responses are cacheable.
    """

    object_id: ObjectId
    group: str
    condition_id: ObjectId
    severity: float
    belief: float
    status: str  # "ACTIVE" (listings only contain raised alarms)

    def to_json(self) -> dict:
        return {
            "object": self.object_id,
            "group": self.group,
            "condition": self.condition_id,
            "severity": _rounded(self.severity),
            "belief": _rounded(self.belief),
            "status": self.status,
        }


@dataclass
class Subscription:
    """A live push registration on the gateway.

    Handlers receive :class:`FailurePredictionReport` objects as they
    are posted to the OOSM (§4.5's "without the need to poll"),
    optionally filtered to one sensed object.  ``delivered`` counts
    pushes; ``cancel()`` detaches from the bus.
    """

    id: str
    object_id: ObjectId | None
    handler: Callable[[FailurePredictionReport], None]
    delivered: int = 0
    active: bool = True
    _detach: Callable[[], None] | None = field(default=None, repr=False)

    def cancel(self) -> None:
        if self.active and self._detach is not None:
            self._detach()
        self.active = False

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "object": self.object_id,
            "delivered": self.delivered,
            "active": self.active,
        }
